//! Deterministic random-number generation, self-contained.
//!
//! Every experiment in the workspace is seeded so results reproduce
//! bit-for-bit, and the workspace builds offline: this module implements
//! the full PRNG stack in-repo instead of depending on the `rand` crate.
//! [`StdRng`] is a xoshiro256++ generator, [`Rng`] mirrors the small slice
//! of the `rand` API the workspace uses (`gen`, `gen_range`, `gen_bool`),
//! and [`SeedStream`] derives independent child seeds from one master seed
//! (so, e.g., 100 SAT instances each get their own stream and adding an
//! experiment never perturbs existing ones).
//!
//! # Example
//!
//! ```
//! use numerics::rng::{Rng, SeedStream};
//!
//! let mut stream = SeedStream::new(42);
//! let a = stream.next_seed();
//! let b = stream.next_seed();
//! assert_ne!(a, b);
//!
//! // Same master seed ⇒ same children.
//! let mut again = SeedStream::new(42);
//! assert_eq!(again.next_seed(), a);
//!
//! let mut rng = stream.next_rng();
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let roll = rng.gen_range(0..6);
//! assert!((0..6).contains(&roll));
//! ```

use std::ops::{Range, RangeInclusive};

/// SplitMix64 finalizer: the canonical seed expander.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform pseudo-random generator: the required method is
/// [`Rng::next_u64`]; everything else is provided on top of it.
///
/// This is the workspace-local replacement for `rand::Rng`, covering the
/// idioms the simulators use: `gen::<f64>()`, `gen::<bool>()`,
/// `gen_range(a..b)` / `gen_range(a..=b)`, and `gen_bool(p)`.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits: exactly representable, uniform in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples a uniform value of a primitive type (`f64` in `[0, 1)`,
    /// full-range integers, fair `bool`).
    #[inline]
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types [`Rng::gen`] can sample uniformly.
pub trait Sample: Sized {
    /// Draws one uniform value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Sample for bool {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // Use the high bit: xoshiro's low bits are its weakest.
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for u64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for usize {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Uniform draw from `0..span` (`span ≥ 1`) without modulo bias, via
/// Lemire's multiply-shift rejection method.
#[inline]
fn uniform_below<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    let mut m = u128::from(rng.next_u64()) * u128::from(span);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            m = u128::from(rng.next_u64()) * u128::from(span);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width inclusive range: every draw is in range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range on empty range");
        start + rng.next_f64() * (end - start)
    }
}

/// The workspace's standard PRNG: xoshiro256++.
///
/// Fast, 256-bit state, passes BigCrush; named `StdRng` to mirror the
/// `rand` type it replaced. Always constructed from an explicit seed —
/// there is deliberately no entropy-based constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator from a 64-bit seed, expanding it through
    /// SplitMix64 as the xoshiro authors recommend.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        StdRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Derives a deterministic sequence of independent `u64` seeds from one
/// master seed using the SplitMix64 finalizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedStream {
    state: u64,
}

impl SeedStream {
    /// Creates a stream rooted at `master_seed`.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        SeedStream { state: master_seed }
    }

    /// Returns the next child seed.
    pub fn next_seed(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Returns a ready-to-use PRNG seeded with the next child seed.
    pub fn next_rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.next_seed())
    }

    /// Restarts the stream at a new master seed.
    pub fn reseed(&mut self, master_seed: u64) {
        self.state = master_seed;
    }
}

/// Creates a deterministic PRNG from a seed.
#[must_use]
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples a standard normal via the Box–Muller transform.
///
/// Kept here (rather than a distributions dependency) per the workspace's
/// dependency policy.
pub fn sample_normal<R: Rng>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would send ln to -inf.
    let u1: f64 = loop {
        let v: f64 = rng.gen();
        if v > f64::MIN_POSITIVE {
            break v;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `N(mu, sigma²)`.
pub fn sample_gaussian<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    mu + sigma * sample_normal(rng)
}

/// Fisher–Yates shuffles a slice in place.
pub fn shuffle<R: Rng, T>(rng: &mut R, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Draws `k` distinct indices from `0..n` (partial Fisher–Yates).
///
/// # Panics
///
/// Panics when `k > n`.
pub fn sample_indices<R: Rng>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct indices from {n}");
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_stream_deterministic() {
        let mut a = SeedStream::new(7);
        let mut b = SeedStream::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn seed_stream_distinct_masters_diverge() {
        let mut a = SeedStream::new(1);
        let mut b = SeedStream::new(2);
        assert_ne!(a.next_seed(), b.next_seed());
    }

    #[test]
    fn seed_stream_children_distinct() {
        let mut s = SeedStream::new(0);
        let children: Vec<u64> = (0..100).map(|_| s.next_seed()).collect();
        let mut unique = children.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), children.len());
    }

    #[test]
    fn seed_stream_reseed_restarts() {
        let mut s = SeedStream::new(5);
        let first = s.next_seed();
        s.next_seed();
        s.reseed(5);
        assert_eq!(s.next_seed(), first);
    }

    #[test]
    fn std_rng_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut c = StdRng::seed_from_u64(10);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_f64_in_range_and_uniform() {
        let mut rng = rng_from_seed(3);
        let n = 40_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_is_fair() {
        let mut rng = rng_from_seed(8);
        let heads = (0..20_000).filter(|_| rng.gen::<bool>()).count();
        assert!((heads as f64 / 20_000.0 - 0.5).abs() < 0.02, "{heads}");
    }

    #[test]
    fn gen_range_int_bounds_and_coverage() {
        let mut rng = rng_from_seed(12);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.gen_range(0..6);
            assert!((0..6).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = rng_from_seed(2);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let w = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&w));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_empty_panics() {
        let mut rng = rng_from_seed(1);
        let _ = rng.gen_range(5..5);
    }

    #[test]
    fn rng_usable_through_mut_reference() {
        fn draw<R: Rng>(rng: &mut R) -> f64 {
            sample_normal(rng)
        }
        let mut rng = rng_from_seed(4);
        let _ = draw(&mut rng);
        let by_ref: &mut StdRng = &mut rng;
        let _ = draw(by_ref);
    }

    #[test]
    fn normal_sample_moments() {
        let mut rng = rng_from_seed(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian_shift_scale() {
        let mut rng = rng_from_seed(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| sample_gaussian(&mut rng, 5.0, 2.0))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = rng_from_seed(4);
        let mut v: Vec<usize> = (0..50).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = rng_from_seed(11);
        for _ in 0..20 {
            let idx = sample_indices(&mut rng, 10, 4);
            assert_eq!(idx.len(), 4);
            let mut sorted = idx.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4);
            assert!(idx.iter().all(|&i| i < 10));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_overdraw_panics() {
        let mut rng = rng_from_seed(1);
        let _ = sample_indices(&mut rng, 3, 4);
    }
}
