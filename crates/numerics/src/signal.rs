//! Waveform analysis for oscillator readout.
//!
//! The coupled-oscillator computing model of the paper's §III never reads
//! voltages directly — it thresholds waveforms into boolean streams, XORs
//! two streams, and time-averages the result over a window of cycles
//! (Fig. 4). This module provides exactly those primitives, plus the
//! frequency/period estimators used to detect frequency locking (Fig. 3).
//!
//! # Example
//!
//! ```
//! use numerics::signal;
//!
//! // A 5 Hz square-ish wave sampled at 1 kHz.
//! let dt = 1e-3;
//! let wave: Vec<f64> = (0..2000)
//!     .map(|i| (2.0 * std::f64::consts::PI * 5.0 * i as f64 * dt).sin())
//!     .collect();
//! let freq = signal::estimate_frequency(&wave, dt, 0.0).expect("enough cycles");
//! assert!((freq - 5.0).abs() < 0.1);
//! ```

use crate::NumericsError;

/// Thresholds a waveform into a boolean stream: `true` where
/// `sample > threshold`.
#[must_use]
pub fn threshold(wave: &[f64], level: f64) -> Vec<bool> {
    wave.iter().map(|&v| v > level).collect()
}

/// Pointwise XOR of two boolean streams.
///
/// # Errors
///
/// Returns [`NumericsError::DimensionMismatch`] when the streams have
/// different lengths.
pub fn xor(a: &[bool], b: &[bool]) -> Result<Vec<bool>, NumericsError> {
    if a.len() != b.len() {
        return Err(NumericsError::DimensionMismatch {
            expected: a.len(),
            actual: b.len(),
        });
    }
    Ok(a.iter().zip(b).map(|(&x, &y)| x ^ y).collect())
}

/// Fraction of `true` samples — the time average of a boolean stream.
///
/// Returns 0 for an empty stream.
#[must_use]
pub fn duty(stream: &[bool]) -> f64 {
    if stream.is_empty() {
        return 0.0;
    }
    stream.iter().filter(|&&b| b).count() as f64 / stream.len() as f64
}

/// The paper's Fig. 4 readout: threshold both waveforms, XOR, time-average,
/// and return `1 − Avg(XOR)` so that identical waveforms score 1 and
/// anti-phase waveforms score 0.
///
/// # Errors
///
/// Returns [`NumericsError::DimensionMismatch`] when waveforms have
/// different lengths, or [`NumericsError::InsufficientData`] when empty.
pub fn xor_measure(a: &[f64], b: &[f64], level: f64) -> Result<f64, NumericsError> {
    if a.is_empty() {
        return Err(NumericsError::InsufficientData {
            required: 1,
            provided: 0,
        });
    }
    let ta = threshold(a, level);
    let tb = threshold(b, level);
    let x = xor(&ta, &tb)?;
    Ok(1.0 - duty(&x))
}

/// Times (in samples, linearly interpolated) of rising crossings through
/// `level`.
#[must_use]
pub fn rising_crossings(wave: &[f64], level: f64) -> Vec<f64> {
    let mut out = Vec::new();
    for i in 1..wave.len() {
        let (lo, hi) = (wave[i - 1], wave[i]);
        if lo <= level && hi > level {
            let frac = if hi != lo {
                (level - lo) / (hi - lo)
            } else {
                0.0
            };
            out.push((i - 1) as f64 + frac);
        }
    }
    out
}

/// Estimates the fundamental period of a waveform (in seconds) from the mean
/// spacing of rising threshold crossings.
///
/// # Errors
///
/// Returns [`NumericsError::InsufficientData`] when fewer than two rising
/// crossings exist (less than one full cycle captured).
pub fn estimate_period(wave: &[f64], dt: f64, level: f64) -> Result<f64, NumericsError> {
    let crossings = rising_crossings(wave, level);
    if crossings.len() < 2 {
        return Err(NumericsError::InsufficientData {
            required: 2,
            provided: crossings.len(),
        });
    }
    let total = crossings.last().expect("nonempty") - crossings[0];
    Ok(total / (crossings.len() - 1) as f64 * dt)
}

/// Estimates the fundamental frequency in Hz. See [`estimate_period`].
///
/// # Errors
///
/// Propagates [`estimate_period`] errors.
pub fn estimate_frequency(wave: &[f64], dt: f64, level: f64) -> Result<f64, NumericsError> {
    Ok(1.0 / estimate_period(wave, dt, level)?)
}

/// Mean phase difference between two locked waveforms, in radians `[0, 2π)`.
///
/// Computed from the offsets of `b`'s rising crossings relative to the
/// nearest preceding rising crossing of `a`, normalized by `a`'s period.
///
/// # Errors
///
/// Returns [`NumericsError::InsufficientData`] when either waveform has
/// fewer than two rising crossings.
pub fn phase_difference(a: &[f64], b: &[f64], dt: f64, level: f64) -> Result<f64, NumericsError> {
    let ca = rising_crossings(a, level);
    let cb = rising_crossings(b, level);
    if ca.len() < 2 || cb.len() < 2 {
        return Err(NumericsError::InsufficientData {
            required: 2,
            provided: ca.len().min(cb.len()),
        });
    }
    let period = estimate_period(a, dt, level)? / dt; // in samples
                                                      // Use circular mean so phases near 0/2π do not cancel.
    let (mut sx, mut sy) = (0.0, 0.0);
    let mut count = 0usize;
    for &tb in &cb {
        // Nearest preceding crossing of `a`.
        let prev = ca.iter().rev().find(|&&ta| ta <= tb);
        if let Some(&ta) = prev {
            let phase = (tb - ta) / period * std::f64::consts::TAU;
            sx += phase.cos();
            sy += phase.sin();
            count += 1;
        }
    }
    if count == 0 {
        return Err(NumericsError::InsufficientData {
            required: 1,
            provided: 0,
        });
    }
    let mean = sy.atan2(sx);
    Ok(if mean < 0.0 {
        mean + std::f64::consts::TAU
    } else {
        mean
    })
}

/// Returns `true` when two waveforms are frequency locked: their estimated
/// frequencies agree to within `rel_tol` relative tolerance.
///
/// # Errors
///
/// Propagates estimation errors from [`estimate_frequency`].
pub fn is_locked(
    a: &[f64],
    b: &[f64],
    dt: f64,
    level: f64,
    rel_tol: f64,
) -> Result<bool, NumericsError> {
    let fa = estimate_frequency(a, dt, level)?;
    let fb = estimate_frequency(b, dt, level)?;
    Ok(((fa - fb) / fa).abs() <= rel_tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(freq: f64, phase: f64, dt: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (std::f64::consts::TAU * freq * i as f64 * dt + phase).sin())
            .collect()
    }

    #[test]
    fn threshold_basic() {
        let t = threshold(&[-1.0, 0.5, 2.0], 0.0);
        assert_eq!(t, vec![false, true, true]);
    }

    #[test]
    fn xor_and_duty() {
        let a = vec![true, true, false, false];
        let b = vec![true, false, true, false];
        let x = xor(&a, &b).unwrap();
        assert_eq!(x, vec![false, true, true, false]);
        assert_eq!(duty(&x), 0.5);
    }

    #[test]
    fn xor_length_mismatch() {
        assert!(xor(&[true], &[true, false]).is_err());
    }

    #[test]
    fn duty_empty_is_zero() {
        assert_eq!(duty(&[]), 0.0);
    }

    #[test]
    fn xor_measure_identical_waves_is_one() {
        let w = sine(5.0, 0.0, 1e-3, 2000);
        let m = xor_measure(&w, &w, 0.0).unwrap();
        assert_eq!(m, 1.0);
    }

    #[test]
    fn xor_measure_antiphase_near_zero() {
        let a = sine(5.0, 0.0, 1e-3, 2000);
        let b = sine(5.0, std::f64::consts::PI, 1e-3, 2000);
        let m = xor_measure(&a, &b, 0.0).unwrap();
        assert!(m < 0.02, "measure was {m}");
    }

    #[test]
    fn xor_measure_quadrature_is_half() {
        let a = sine(5.0, 0.0, 1e-3, 2000);
        let b = sine(5.0, std::f64::consts::FRAC_PI_2, 1e-3, 2000);
        let m = xor_measure(&a, &b, 0.0).unwrap();
        assert!((m - 0.5).abs() < 0.05, "measure was {m}");
    }

    #[test]
    fn frequency_estimate_accurate() {
        let w = sine(7.5, 0.3, 1e-4, 40000);
        let f = estimate_frequency(&w, 1e-4, 0.0).unwrap();
        assert!((f - 7.5).abs() < 0.01, "estimated {f}");
    }

    #[test]
    fn period_needs_two_crossings() {
        let w = vec![0.0; 10];
        assert!(matches!(
            estimate_period(&w, 1e-3, 0.5),
            Err(NumericsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn phase_difference_quadrature() {
        let a = sine(5.0, 0.0, 1e-4, 20000);
        // b lags a by π/2.
        let b = sine(5.0, -std::f64::consts::FRAC_PI_2, 1e-4, 20000);
        let dphi = phase_difference(&a, &b, 1e-4, 0.0).unwrap();
        assert!(
            (dphi - std::f64::consts::FRAC_PI_2).abs() < 0.05,
            "phase was {dphi}"
        );
    }

    #[test]
    fn phase_difference_zero_for_identical() {
        let a = sine(5.0, 0.0, 1e-4, 20000);
        let dphi = phase_difference(&a, &a, 1e-4, 0.0).unwrap();
        // Either ~0 or ~2π.
        let wrapped = dphi.min(std::f64::consts::TAU - dphi);
        assert!(wrapped < 0.02, "phase was {dphi}");
    }

    #[test]
    fn locked_detection() {
        let a = sine(5.0, 0.0, 1e-4, 20000);
        let b = sine(5.0, 1.0, 1e-4, 20000);
        let c = sine(6.0, 0.0, 1e-4, 20000);
        assert!(is_locked(&a, &b, 1e-4, 0.0, 0.01).unwrap());
        assert!(!is_locked(&a, &c, 1e-4, 0.0, 0.01).unwrap());
    }

    #[test]
    fn rising_crossings_interpolate() {
        // Line from -1 to 1 over two samples crosses 0 midway.
        let w = vec![-1.0, 1.0];
        let c = rising_crossings(&w, 0.0);
        assert_eq!(c.len(), 1);
        assert!((c[0] - 0.5).abs() < 1e-12);
    }
}
