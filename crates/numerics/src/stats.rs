//! Descriptive statistics, online accumulators, and histograms.
//!
//! Every experiment harness in the workspace reports medians and percentile
//! spreads over many seeded trials (e.g. time-to-solution distributions for
//! the memcomputing solver of §IV), so these helpers are shared here.
//!
//! # Example
//!
//! ```
//! use numerics::stats::Summary;
//!
//! let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 100.0])?;
//! assert_eq!(s.median, 3.0);
//! assert_eq!(s.min, 1.0);
//! assert_eq!(s.max, 100.0);
//! # Ok::<(), numerics::NumericsError>(())
//! ```

use crate::NumericsError;

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n = 1).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub q25: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 75th percentile.
    pub q75: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InsufficientData`] for an empty slice.
    pub fn from_slice(data: &[f64]) -> Result<Self, NumericsError> {
        if data.is_empty() {
            return Err(NumericsError::InsufficientData {
                required: 1,
                provided: 0,
            });
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in stats input"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Ok(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            q25: percentile_sorted(&sorted, 25.0),
            median: percentile_sorted(&sorted, 50.0),
            q75: percentile_sorted(&sorted, 75.0),
            max: sorted[n - 1],
        })
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} p25={:.4} med={:.4} p75={:.4} max={:.4}",
            self.n, self.mean, self.std_dev, self.min, self.q25, self.median, self.q75, self.max
        )
    }
}

/// Linear-interpolated percentile of *sorted* data, `p` in `[0, 100]`.
///
/// # Panics
///
/// Panics (in debug builds) when `data` is empty.
#[must_use]
pub fn percentile_sorted(data: &[f64], p: f64) -> f64 {
    debug_assert!(!data.is_empty());
    if data.len() == 1 {
        return data[0];
    }
    let rank = (p / 100.0).clamp(0.0, 1.0) * (data.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    data[lo] * (1.0 - frac) + data[hi] * frac
}

/// Median of unsorted data.
///
/// # Errors
///
/// Returns [`NumericsError::InsufficientData`] for an empty slice.
pub fn median(data: &[f64]) -> Result<f64, NumericsError> {
    if data.is_empty() {
        return Err(NumericsError::InsufficientData {
            required: 1,
            provided: 0,
        });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in stats input"));
    Ok(percentile_sorted(&sorted, 50.0))
}

/// Numerically stable single-pass accumulator (Welford's algorithm).
///
/// Useful when trajectories are too long to buffer, e.g. boundedness
/// diagnostics over millions of DMM integration steps.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Online {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Online {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Online {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n−1 denominator; 0 when n < 2).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+∞` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−∞` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Online) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let total = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / total as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / total as f64;
        self.n = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-bin histogram over `[lo, hi)` with out-of-range counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] when `bins == 0` or
    /// `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, NumericsError> {
        if bins == 0 {
            return Err(NumericsError::InvalidArgument {
                what: "histogram needs at least one bin",
            });
        }
        if !(hi > lo) {
            return Err(NumericsError::InvalidArgument {
                what: "histogram range must have hi > lo",
            });
        }
        Ok(Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            below: 0,
            above: 0,
        })
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    #[must_use]
    pub fn below(&self) -> u64 {
        self.below
    }

    /// Observations at or above the range's upper edge.
    #[must_use]
    pub fn above(&self) -> u64 {
        self.above
    }

    /// Total observations, including out-of-range ones.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.below + self.above
    }

    /// The center value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.bins.len());
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn summary_basic() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!(approx_eq(s.mean, 5.0, 1e-12));
        assert!(approx_eq(s.std_dev, (32.0f64 / 7.0).sqrt(), 1e-12));
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_empty_rejected() {
        assert!(Summary::from_slice(&[]).is_err());
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::from_slice(&[3.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [0.0, 10.0];
        assert_eq!(percentile_sorted(&data, 50.0), 5.0);
        assert_eq!(percentile_sorted(&data, 0.0), 0.0);
        assert_eq!(percentile_sorted(&data, 100.0), 10.0);
    }

    #[test]
    fn online_matches_batch() {
        let data = [1.0, 2.5, -3.0, 7.0, 0.25];
        let mut online = Online::new();
        for &x in &data {
            online.push(x);
        }
        let batch = Summary::from_slice(&data).unwrap();
        assert!(approx_eq(online.mean(), batch.mean, 1e-12));
        assert!(approx_eq(online.std_dev(), batch.std_dev, 1e-12));
        assert_eq!(online.min(), batch.min);
        assert_eq!(online.max(), batch.max);
    }

    #[test]
    fn online_merge_equals_sequential() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0];
        let mut a = Online::new();
        let mut b = Online::new();
        for &x in &a_data {
            a.push(x);
        }
        for &x in &b_data {
            b.push(x);
        }
        let mut merged = a;
        merged.merge(&b);

        let mut seq = Online::new();
        for &x in a_data.iter().chain(&b_data) {
            seq.push(x);
        }
        assert!(approx_eq(merged.mean(), seq.mean(), 1e-12));
        assert!(approx_eq(merged.variance(), seq.variance(), 1e-12));
        assert_eq!(merged.count(), seq.count());
    }

    #[test]
    fn online_merge_with_empty() {
        let mut a = Online::new();
        a.push(5.0);
        let before = a;
        a.merge(&Online::new());
        assert_eq!(a, before);

        let mut empty = Online::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for x in [0.5, 1.5, 2.5, 9.9, -1.0, 10.0, 100.0] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.below(), 1);
        assert_eq!(h.above(), 2);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    fn histogram_rejects_bad_params() {
        assert!(Histogram::new(0.0, 10.0, 0).is_err());
        assert!(Histogram::new(10.0, 0.0, 5).is_err());
    }
}
