//! Randomized tests of the numerics crate's invariants.
//!
//! Formerly written with `proptest`; rewritten on the in-repo
//! `numerics::rng` so the suite builds offline. Each test draws many
//! random cases from a fixed seed, so failures reproduce deterministically.

use numerics::interp::Interpolator;
use numerics::ode::{integrate, OdeSystem, Rk4};
use numerics::rng::{rng_from_seed, Rng, StdRng};
use numerics::stats::{Online, Summary};

const CASES: usize = 128;

fn random_vec(rng: &mut StdRng, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Welford accumulation agrees with batch statistics.
#[test]
fn online_matches_batch() {
    let mut rng = rng_from_seed(0x0A1);
    for _ in 0..CASES {
        let len = rng.gen_range(1..50);
        let data = random_vec(&mut rng, len, -1e3, 1e3);
        let mut online = Online::new();
        for &x in &data {
            online.push(x);
        }
        let batch = Summary::from_slice(&data).unwrap();
        assert!((online.mean() - batch.mean).abs() < 1e-6);
        assert!((online.std_dev() - batch.std_dev).abs() < 1e-6);
        assert_eq!(online.min(), batch.min);
        assert_eq!(online.max(), batch.max);
    }
}

/// Merging accumulators equals accumulating the concatenation.
#[test]
fn online_merge_associative() {
    let mut rng = rng_from_seed(0x0A2);
    for _ in 0..CASES {
        let len_a = rng.gen_range(0..30);
        let a = random_vec(&mut rng, len_a, -1e2, 1e2);
        let len_b = rng.gen_range(0..30);
        let b = random_vec(&mut rng, len_b, -1e2, 1e2);
        let mut left = Online::new();
        for &x in &a {
            left.push(x);
        }
        let mut right = Online::new();
        for &x in &b {
            right.push(x);
        }
        left.merge(&right);
        let mut seq = Online::new();
        for &x in a.iter().chain(&b) {
            seq.push(x);
        }
        assert_eq!(left.count(), seq.count());
        assert!((left.mean() - seq.mean()).abs() < 1e-9 || left.count() == 0);
        assert!((left.variance() - seq.variance()).abs() < 1e-6);
    }
}

/// Linear interpolation stays within the convex hull of the knot values.
#[test]
fn linear_interp_within_hull() {
    let mut rng = rng_from_seed(0x0A3);
    for _ in 0..CASES {
        let len = rng.gen_range(2..12);
        let ys = random_vec(&mut rng, len, -10.0, 10.0);
        let t = rng.gen_range(0.0..1.0);
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let interp = Interpolator::linear(&xs, &ys).unwrap();
        let x = t * (ys.len() - 1) as f64;
        let y = interp.eval(x);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            y >= lo - 1e-12 && y <= hi + 1e-12,
            "y = {y} outside [{lo}, {hi}]"
        );
    }
}

/// PCHIP interpolation of monotone data is monotone.
#[test]
fn pchip_preserves_monotonicity() {
    let mut rng = rng_from_seed(0x0A4);
    for _ in 0..CASES {
        let len = rng.gen_range(2..10);
        let increments = random_vec(&mut rng, len, 0.0, 5.0);
        let xs: Vec<f64> = (0..=increments.len()).map(|i| i as f64).collect();
        let mut ys = vec![0.0];
        for &d in &increments {
            ys.push(ys.last().unwrap() + d);
        }
        let interp = Interpolator::pchip(&xs, &ys).unwrap();
        let mut prev = interp.eval(0.0);
        for i in 1..=(increments.len() * 20) {
            let x = i as f64 * 0.05;
            let y = interp.eval(x);
            assert!(y >= prev - 1e-9, "non-monotone at x = {x}");
            prev = y;
        }
    }
}

/// RK4 on dy/dt = a·y matches the exact exponential for stable rates.
#[test]
fn rk4_matches_exponential() {
    struct Linear {
        a: f64,
    }
    impl OdeSystem for Linear {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
            dy[0] = self.a * y[0];
        }
    }
    let mut rng = rng_from_seed(0x0A5);
    // Fewer cases: each integrates 1000 RK4 steps.
    for _ in 0..CASES / 4 {
        let a = rng.gen_range(-2.0..0.5);
        let y0 = rng.gen_range(0.1..5.0);
        let sys = Linear { a };
        let mut y = vec![y0];
        integrate(&sys, &mut Rk4::new(1e-3), 0.0, 1.0, &mut y);
        let exact = y0 * a.exp();
        assert!((y[0] - exact).abs() < 1e-6 * exact.abs().max(1.0));
    }
}

/// Power-law fitting recovers exponents from clean synthetic data.
#[test]
fn power_law_fit_recovers_exponent() {
    let mut rng = rng_from_seed(0x0A6);
    for _ in 0..CASES / 4 {
        let k = rng.gen_range(0.5..4.0);
        let amp = rng.gen_range(0.5..3.0);
        let xs: Vec<f64> = (1..=40).map(|i| i as f64 * 0.05).collect();
        let ys: Vec<f64> = xs.iter().map(|x| amp * x.powf(k) + 0.1).collect();
        let fit = numerics::fit::fit_power_law_offset(&xs, &ys, 0.2, 6.0).unwrap();
        assert!(
            (fit.exponent - k).abs() < 0.01,
            "k = {k} fitted {}",
            fit.exponent
        );
    }
}

/// Seed streams never collide across distinct masters (spot check).
#[test]
fn seed_streams_distinct() {
    let mut rng = rng_from_seed(0x0A7);
    for _ in 0..CASES {
        let master_a: u64 = rng.gen();
        let master_b: u64 = rng.gen();
        if master_a == master_b {
            continue;
        }
        let mut sa = numerics::rng::SeedStream::new(master_a);
        let mut sb = numerics::rng::SeedStream::new(master_b);
        assert_ne!(sa.next_seed(), sb.next_seed());
    }
}
