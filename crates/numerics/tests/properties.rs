//! Property-based tests of the numerics crate's invariants.

use numerics::interp::Interpolator;
use numerics::ode::{integrate, OdeSystem, Rk4};
use numerics::stats::{Online, Summary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Welford accumulation agrees with batch statistics.
    #[test]
    fn online_matches_batch(data in prop::collection::vec(-1e3f64..1e3, 1..50)) {
        let mut online = Online::new();
        for &x in &data {
            online.push(x);
        }
        let batch = Summary::from_slice(&data).unwrap();
        prop_assert!((online.mean() - batch.mean).abs() < 1e-6);
        prop_assert!((online.std_dev() - batch.std_dev).abs() < 1e-6);
        prop_assert_eq!(online.min(), batch.min);
        prop_assert_eq!(online.max(), batch.max);
    }

    /// Merging accumulators equals accumulating the concatenation.
    #[test]
    fn online_merge_associative(
        a in prop::collection::vec(-1e2f64..1e2, 0..30),
        b in prop::collection::vec(-1e2f64..1e2, 0..30),
    ) {
        let mut left = Online::new();
        for &x in &a {
            left.push(x);
        }
        let mut right = Online::new();
        for &x in &b {
            right.push(x);
        }
        left.merge(&right);
        let mut seq = Online::new();
        for &x in a.iter().chain(&b) {
            seq.push(x);
        }
        prop_assert_eq!(left.count(), seq.count());
        prop_assert!((left.mean() - seq.mean()).abs() < 1e-9 || left.count() == 0);
        prop_assert!((left.variance() - seq.variance()).abs() < 1e-6);
    }

    /// Linear interpolation stays within the convex hull of the knot values.
    #[test]
    fn linear_interp_within_hull(
        ys in prop::collection::vec(-10.0f64..10.0, 2..12),
        t in 0.0f64..1.0,
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let interp = Interpolator::linear(&xs, &ys).unwrap();
        let x = t * (ys.len() - 1) as f64;
        let y = interp.eval(x);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(y >= lo - 1e-12 && y <= hi + 1e-12, "y = {} outside [{}, {}]", y, lo, hi);
    }

    /// PCHIP interpolation of monotone data is monotone.
    #[test]
    fn pchip_preserves_monotonicity(increments in prop::collection::vec(0.0f64..5.0, 2..10)) {
        let xs: Vec<f64> = (0..=increments.len()).map(|i| i as f64).collect();
        let mut ys = vec![0.0];
        for &d in &increments {
            ys.push(ys.last().unwrap() + d);
        }
        let interp = Interpolator::pchip(&xs, &ys).unwrap();
        let mut prev = interp.eval(0.0);
        for i in 1..=(increments.len() * 20) {
            let x = i as f64 * 0.05;
            let y = interp.eval(x);
            prop_assert!(y >= prev - 1e-9, "non-monotone at x = {}", x);
            prev = y;
        }
    }

    /// RK4 on dy/dt = a·y matches the exact exponential for stable rates.
    #[test]
    fn rk4_matches_exponential(a in -2.0f64..0.5, y0 in 0.1f64..5.0) {
        struct Linear {
            a: f64,
        }
        impl OdeSystem for Linear {
            fn dim(&self) -> usize {
                1
            }
            fn rhs(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
                dy[0] = self.a * y[0];
            }
        }
        let sys = Linear { a };
        let mut y = vec![y0];
        integrate(&sys, &mut Rk4::new(1e-3), 0.0, 1.0, &mut y);
        let exact = y0 * a.exp();
        prop_assert!((y[0] - exact).abs() < 1e-6 * exact.abs().max(1.0));
    }

    /// Power-law fitting recovers exponents from clean synthetic data.
    #[test]
    fn power_law_fit_recovers_exponent(k in 0.5f64..4.0, amp in 0.5f64..3.0) {
        let xs: Vec<f64> = (1..=40).map(|i| i as f64 * 0.05).collect();
        let ys: Vec<f64> = xs.iter().map(|x| amp * x.powf(k) + 0.1).collect();
        let fit = numerics::fit::fit_power_law_offset(&xs, &ys, 0.2, 6.0).unwrap();
        prop_assert!((fit.exponent - k).abs() < 0.01, "k = {} fitted {}", k, fit.exponent);
    }

    /// Seed streams never collide across distinct masters (spot check).
    #[test]
    fn seed_streams_distinct(master_a in any::<u64>(), master_b in any::<u64>()) {
        prop_assume!(master_a != master_b);
        let mut sa = numerics::rng::SeedStream::new(master_a);
        let mut sb = numerics::rng::SeedStream::new(master_b);
        prop_assert_ne!(sa.next_seed(), sb.next_seed());
    }
}
