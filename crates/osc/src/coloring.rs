//! Graph vertex coloring by coupled-oscillator phase dynamics.
//!
//! §III cites "vertex coloring of graphs \[via\] phase dynamics of coupled
//! oscillatory networks" (Parihar, Shukla, Jerry, Datta & Raychowdhury,
//! *Scientific Reports* 2017, the paper's ref. \[42\]): identical oscillators
//! coupled along the edges of a graph repel each other in phase, so after
//! the transient, phase-ordering clusters the vertices — adjacent vertices
//! end up phase-separated, and rounding phases into `k` sectors yields a
//! (heuristic) `k`-coloring.
//!
//! [`color_graph`] runs the fabric, extracts relative phases, greedily
//! clusters them on the circle, and reports the coloring plus how many
//! edges it leaves monochromatic.
//!
//! # Example
//!
//! ```no_run
//! use osc::coloring::{color_graph, ColoringConfig};
//!
//! // A 4-cycle is 2-colorable; anti-phase ordering finds it.
//! let edges = [(0, 1), (1, 2), (2, 3), (3, 0)];
//! let result = color_graph(4, &edges, &ColoringConfig::default())?;
//! assert_eq!(result.conflicts, 0);
//! # Ok::<(), osc::OscError>(())
//! ```

use crate::network::OscillatorGraph;
use crate::norms::NormRegime;
use crate::pair::PairConfig;
use crate::OscError;
use device::units::Seconds;

/// Configuration of a phase-coloring run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColoringConfig {
    /// The oscillator fabric configuration (cells are identical; coupling
    /// along edges).
    pub pair: PairConfig,
    /// Gate voltage shared by every cell.
    pub v_gs: f64,
    /// Number of colors (phase sectors) to round into.
    pub n_colors: usize,
}

impl Default for ColoringConfig {
    fn default() -> Self {
        let mut pair = NormRegime::Shallow.config();
        pair.sim.duration = Seconds(4e-6);
        ColoringConfig {
            pair,
            v_gs: 0.62,
            n_colors: 2,
        }
    }
}

/// Result of a phase-coloring run.
#[derive(Debug, Clone, PartialEq)]
pub struct ColoringResult {
    /// The color assigned to each vertex (`0..n_colors`).
    pub colors: Vec<usize>,
    /// The relative phase of each vertex, radians in `[0, 2π)`.
    pub phases: Vec<f64>,
    /// Number of edges whose endpoints share a color (0 = proper coloring).
    pub conflicts: usize,
}

/// Colors a graph by simulating phase dynamics and rounding phases into
/// `n_colors` sectors anchored on the largest phase gaps.
///
/// This is a heuristic: like the hardware it models, it succeeds on graphs
/// whose chromatic structure matches a stable phase ordering (bipartite
/// graphs and small cliques are the well-behaved cases in ref. \[42\]).
///
/// # Errors
///
/// * [`OscError::Numerics`] for invalid graphs.
/// * Propagates simulation/phase-estimation errors.
pub fn color_graph(
    n_vertices: usize,
    edges: &[(usize, usize)],
    config: &ColoringConfig,
) -> Result<ColoringResult, OscError> {
    let v_gs = vec![config.v_gs; n_vertices];
    let fabric = OscillatorGraph::new(config.pair, &v_gs, edges)?;
    let run = fabric.simulate_default()?;
    let phases = run.phases_relative_to(0)?;
    let colors = cluster_phases(&phases, config.n_colors);
    let conflicts = edges
        .iter()
        .filter(|&&(a, b)| colors[a] == colors[b])
        .count();
    Ok(ColoringResult {
        colors,
        phases,
        conflicts,
    })
}

/// Clusters phases on the circle into `k` groups by cutting the circle at
/// the `k` largest angular gaps between sorted phases.
#[must_use]
pub fn cluster_phases(phases: &[f64], k: usize) -> Vec<usize> {
    let n = phases.len();
    let k = k.max(1).min(n.max(1));
    if n == 0 {
        return Vec::new();
    }
    // Sort vertex indices by phase.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| phases[a].partial_cmp(&phases[b]).expect("finite phases"));
    // Circular gaps between consecutive sorted phases.
    let mut gaps: Vec<(f64, usize)> = (0..n)
        .map(|i| {
            let a = phases[order[i]];
            let b = phases[order[(i + 1) % n]];
            let gap = if i + 1 == n {
                b + std::f64::consts::TAU - a
            } else {
                b - a
            };
            (gap, i)
        })
        .collect();
    gaps.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("finite gaps"));
    // Cut at the k largest gaps: cluster boundaries AFTER sorted index i.
    let mut cuts: Vec<usize> = gaps.iter().take(k).map(|&(_, i)| i).collect();
    cuts.sort_unstable();
    // Assign cluster ids walking the sorted order.
    let mut colors = vec![0usize; n];
    let mut cluster = 0usize;
    for (pos, &vertex) in order.iter().enumerate() {
        colors[vertex] = cluster % k;
        if cuts.contains(&pos) {
            cluster += 1;
        }
    }
    colors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(n_colors: usize) -> ColoringConfig {
        let mut cfg = ColoringConfig::default();
        cfg.pair.sim.duration = Seconds(3e-6);
        cfg.n_colors = n_colors;
        cfg
    }

    #[test]
    fn cluster_phases_two_groups() {
        // Phases near 0 and near π cluster into two colors.
        let phases = [0.05, 3.1, 0.1, 3.2, 6.2];
        let colors = cluster_phases(&phases, 2);
        assert_eq!(colors[0], colors[2]);
        assert_eq!(colors[1], colors[3]);
        assert_ne!(colors[0], colors[1]);
        // 6.2 rad wraps around to the 0-cluster.
        assert_eq!(colors[4], colors[0]);
    }

    #[test]
    fn cluster_phases_respects_k() {
        let phases = [0.0, 2.0, 4.0];
        let colors = cluster_phases(&phases, 3);
        let distinct: std::collections::HashSet<_> = colors.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn cluster_phases_edge_cases() {
        assert!(cluster_phases(&[], 2).is_empty());
        assert_eq!(cluster_phases(&[1.0], 3), vec![0]);
    }

    #[test]
    fn two_vertices_anti_phase_two_colors() {
        let result = color_graph(2, &[(0, 1)], &quick_config(2)).unwrap();
        assert_eq!(result.conflicts, 0, "phases {:?}", result.phases);
        assert_ne!(result.colors[0], result.colors[1]);
    }

    #[test]
    fn four_cycle_is_two_colored() {
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0)];
        let result = color_graph(4, &edges, &quick_config(2)).unwrap();
        assert_eq!(
            result.conflicts, 0,
            "colors {:?} phases {:?}",
            result.colors, result.phases
        );
    }

    #[test]
    fn triangle_needs_and_gets_three_colors() {
        // K3 settles into three ~120°-spaced phases.
        let edges = [(0, 1), (1, 2), (0, 2)];
        let result = color_graph(3, &edges, &quick_config(3)).unwrap();
        assert_eq!(
            result.conflicts, 0,
            "colors {:?} phases {:?}",
            result.colors, result.phases
        );
        let distinct: std::collections::HashSet<_> = result.colors.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn invalid_graph_rejected() {
        let cfg = quick_config(2);
        assert!(color_graph(2, &[(0, 2)], &cfg).is_err());
        assert!(color_graph(2, &[(1, 1)], &cfg).is_err());
        assert!(color_graph(1, &[], &cfg).is_err());
    }
}
