//! Coupled VO₂ relaxation-oscillator computing (paper §III).
//!
//! This crate reproduces the paper's "intrinsic computing using weakly
//! coupled oscillators" stack, bottom-up:
//!
//! * [`relaxation`] — a single 1T1R VO₂ relaxation oscillator: a hysteretic
//!   IMT device loaded by a gate-voltage-tunable MOSFET channel resistance,
//!   integrated as an ODE. The oscillation frequency is the analog encoding
//!   of an input value (`V_gs`).
//! * [`pair`] — two oscillators coupled through a series-RC network
//!   ([`device::passive::CouplingNetwork`]); exhibits frequency locking
//!   (paper Fig. 3) with a phase difference governed by the detuning
//!   `ΔV_gs` and the coupling strength.
//! * [`locking`] — sweep utilities that measure locking ranges.
//! * [`readout`] — the thresholded, time-averaged XOR readout of Fig. 4.
//! * [`norms`] — the XOR measure as a function of `ΔV_gs` realizes tunable
//!   `l_k` distance norms (Fig. 5); this module sweeps and fits `k`, and
//!   packages the pair + readout as an [`norms::OscillatorDistance`]
//!   primitive for the vision workload.
//! * [`network`] — arrays of pairwise-coupled oscillators (the 16-way
//!   comparison fabric used by FAST corner detection) and chains for
//!   synchronization studies.
//! * [`power`] — supply-current power accounting of the oscillator block,
//!   the paper's 0.936 mW side of the CMOS comparison.
//!
//! # Example
//!
//! Build a coupled pair, simulate it, and check that it frequency-locks:
//!
//! ```
//! use osc::pair::{CoupledPair, PairConfig};
//! use device::units::Volts;
//!
//! let config = PairConfig::default();
//! let pair = CoupledPair::new(config, Volts(0.62), Volts(0.63))?;
//! let run = pair.simulate_default()?;
//! let f1 = run.frequency(0)?;
//! let f2 = run.frequency(1)?;
//! assert!((f1 - f2).abs() / f1 < 0.01, "pair should lock: {f1} vs {f2}");
//! # Ok::<(), osc::OscError>(())
//! ```

// Deliberate style choices for numerical simulation code: `!(x > 0.0)`
// rejects NaN alongside non-positive values, and indexed loops mirror the
// mathematics they implement (state-vector strides, lattice walks).
#![allow(
    clippy::neg_cmp_op_on_partial_ord,
    clippy::needless_range_loop,
    clippy::manual_is_multiple_of,
    clippy::field_reassign_with_default
)]
pub mod coloring;
pub mod locking;
pub mod matching;
pub mod network;
pub mod norms;
pub mod pair;
pub mod power;
pub mod readout;
pub mod relaxation;

/// Crate-wide error type.
#[derive(Debug, Clone, PartialEq)]
pub enum OscError {
    /// A circuit parameter was rejected by a device model.
    Device(device::DeviceError),
    /// A numerical routine failed.
    Numerics(numerics::NumericsError),
    /// The chosen bias point cannot oscillate (load line misses the
    /// hysteretic window).
    NoOscillation {
        /// The offending series resistance in ohms.
        r_series_ohms: f64,
    },
    /// The simulated waveform did not contain enough cycles for the
    /// requested analysis.
    TooFewCycles {
        /// Cycles found.
        found: usize,
        /// Cycles required.
        required: usize,
    },
    /// An index referred to a nonexistent oscillator.
    BadIndex {
        /// The index supplied.
        index: usize,
        /// Number of oscillators available.
        len: usize,
    },
}

impl std::fmt::Display for OscError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OscError::Device(e) => write!(f, "device error: {e}"),
            OscError::Numerics(e) => write!(f, "numerics error: {e}"),
            OscError::NoOscillation { r_series_ohms } => write!(
                f,
                "bias point with series resistance {r_series_ohms} Ω cannot oscillate"
            ),
            OscError::TooFewCycles { found, required } => {
                write!(f, "waveform has {found} cycles, need {required}")
            }
            OscError::BadIndex { index, len } => {
                write!(f, "oscillator index {index} out of range (len {len})")
            }
        }
    }
}

impl std::error::Error for OscError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OscError::Device(e) => Some(e),
            OscError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<device::DeviceError> for OscError {
    fn from(e: device::DeviceError) -> Self {
        OscError::Device(e)
    }
}

impl From<numerics::NumericsError> for OscError {
    fn from(e: numerics::NumericsError) -> Self {
        OscError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        let errors = [
            OscError::NoOscillation { r_series_ohms: 1e3 },
            OscError::TooFewCycles {
                found: 1,
                required: 4,
            },
            OscError::BadIndex { index: 5, len: 2 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_from_device() {
        let de = device::DeviceError::InvalidParameter {
            name: "x",
            reason: "y",
        };
        let oe: OscError = de.into();
        assert!(matches!(oe, OscError::Device(_)));
        assert!(std::error::Error::source(&oe).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OscError>();
    }
}
