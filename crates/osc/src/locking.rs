//! Frequency-locking analysis (paper Fig. 3).
//!
//! Fig. 3 shows an RC-coupled IMT-oscillator pair pulling into a common
//! frequency. [`LockingSweep`] reproduces the experiment: sweep the detuning
//! `ΔV_gs`, record each oscillator's frequency **uncoupled** (isolated cells)
//! and **coupled**, and detect the locking plateau where the coupled
//! frequencies collapse onto each other.
//!
//! # Example
//!
//! ```no_run
//! use osc::locking::LockingSweep;
//! use osc::pair::PairConfig;
//!
//! let sweep = LockingSweep::new(PairConfig::default());
//! let curve = sweep.run(0.62, 0.03, 13)?;
//! let range = curve.locking_range(0.01);
//! assert!(range.is_some(), "some detunings should lock");
//! # Ok::<(), osc::OscError>(())
//! ```

use crate::pair::{CoupledPair, PairConfig};
use crate::relaxation::SingleOscillator;
use crate::OscError;
use device::units::Volts;

/// One row of a locking sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LockingPoint {
    /// The detuning `ΔV_gs = V_gs1 − V_gs2`.
    pub delta_vgs: f64,
    /// Frequency of oscillator 1 in isolation (Hz).
    pub f1_uncoupled: f64,
    /// Frequency of oscillator 2 in isolation (Hz).
    pub f2_uncoupled: f64,
    /// Frequency of oscillator 1 when coupled (Hz).
    pub f1_coupled: f64,
    /// Frequency of oscillator 2 when coupled (Hz).
    pub f2_coupled: f64,
    /// Phase difference of the coupled pair (radians, `[0, 2π)`), when
    /// estimable.
    pub phase: Option<f64>,
}

impl LockingPoint {
    /// Relative coupled-frequency mismatch `|f₁ − f₂|/f₁`.
    #[must_use]
    pub fn coupled_mismatch(&self) -> f64 {
        ((self.f1_coupled - self.f2_coupled) / self.f1_coupled).abs()
    }

    /// Relative uncoupled-frequency mismatch.
    #[must_use]
    pub fn uncoupled_mismatch(&self) -> f64 {
        ((self.f1_uncoupled - self.f2_uncoupled) / self.f1_uncoupled).abs()
    }

    /// Whether the coupled pair is locked at tolerance `rel_tol`.
    #[must_use]
    pub fn is_locked(&self, rel_tol: f64) -> bool {
        self.coupled_mismatch() <= rel_tol
    }
}

/// The result of a full locking sweep: points ordered by `delta_vgs`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LockingCurve {
    points: Vec<LockingPoint>,
}

impl LockingCurve {
    /// The sweep points.
    #[must_use]
    pub fn points(&self) -> &[LockingPoint] {
        &self.points
    }

    /// The contiguous detuning interval around zero within which the pair
    /// locks, or `None` when even zero detuning fails to lock.
    #[must_use]
    pub fn locking_range(&self, rel_tol: f64) -> Option<(f64, f64)> {
        // Find the point closest to zero detuning.
        let center = self
            .points
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.delta_vgs
                    .abs()
                    .partial_cmp(&b.delta_vgs.abs())
                    .expect("finite detunings")
            })
            .map(|(i, _)| i)?;
        if !self.points[center].is_locked(rel_tol) {
            return None;
        }
        let mut lo = center;
        while lo > 0 && self.points[lo - 1].is_locked(rel_tol) {
            lo -= 1;
        }
        let mut hi = center;
        while hi + 1 < self.points.len() && self.points[hi + 1].is_locked(rel_tol) {
            hi += 1;
        }
        Some((self.points[lo].delta_vgs, self.points[hi].delta_vgs))
    }

    /// Fraction of swept points that locked.
    #[must_use]
    pub fn locked_fraction(&self, rel_tol: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().filter(|p| p.is_locked(rel_tol)).count() as f64
            / self.points.len() as f64
    }
}

impl FromIterator<LockingPoint> for LockingCurve {
    fn from_iter<I: IntoIterator<Item = LockingPoint>>(iter: I) -> Self {
        LockingCurve {
            points: iter.into_iter().collect(),
        }
    }
}

/// Sweep driver for [`LockingCurve`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct LockingSweep {
    config: PairConfig,
}

impl LockingSweep {
    /// Creates a sweep over the given pair configuration.
    #[must_use]
    pub fn new(config: PairConfig) -> Self {
        LockingSweep { config }
    }

    /// The pair configuration being swept.
    #[must_use]
    pub fn config(&self) -> &PairConfig {
        &self.config
    }

    /// Runs the sweep: `n_points` detunings spread symmetrically over
    /// `[−dv_max, +dv_max]` around the centre gate voltage `v_center`.
    ///
    /// # Errors
    ///
    /// * [`OscError::NoOscillation`] when a swept bias point leaves the
    ///   oscillating window (shrink `dv_max`).
    /// * Propagates simulation/estimation errors.
    pub fn run(
        &self,
        v_center: f64,
        dv_max: f64,
        n_points: usize,
    ) -> Result<LockingCurve, OscError> {
        let n = n_points.max(2);
        let mut points = Vec::with_capacity(n);
        for i in 0..n {
            let dv = -dv_max + 2.0 * dv_max * i as f64 / (n - 1) as f64;
            points.push(self.probe(v_center, dv)?);
        }
        Ok(LockingCurve { points })
    }

    /// Measures one detuning point.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LockingSweep::run`].
    pub fn probe(&self, v_center: f64, dv: f64) -> Result<LockingPoint, OscError> {
        let v1 = Volts(v_center + dv / 2.0);
        let v2 = Volts(v_center - dv / 2.0);

        let single1 = SingleOscillator::new(self.config.osc, v1)?;
        let single2 = SingleOscillator::new(self.config.osc, v2)?;
        let f1_unc = single1.simulate(self.config.sim)?.frequency(0)?;
        let f2_unc = single2.simulate(self.config.sim)?.frequency(0)?;

        let pair = CoupledPair::new(self.config, v1, v2)?;
        let run = pair.simulate_default()?;
        let f1_c = run.frequency(0)?;
        let f2_c = run.frequency(1)?;
        let phase = run.phase_difference().ok();

        Ok(LockingPoint {
            delta_vgs: dv,
            f1_uncoupled: f1_unc,
            f2_uncoupled: f2_unc,
            f1_coupled: f1_c,
            f2_coupled: f2_c,
            phase,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> PairConfig {
        // Shorter runs keep the sweep tests fast while leaving tens of
        // cycles for frequency estimation.
        let mut cfg = PairConfig::default();
        cfg.sim.duration = device::units::Seconds(2e-6);
        cfg
    }

    #[test]
    fn zero_detuning_locks() {
        let sweep = LockingSweep::new(quick_config());
        let p = sweep.probe(0.62, 0.0).unwrap();
        assert!(p.is_locked(0.01), "mismatch {}", p.coupled_mismatch());
        assert!(p.uncoupled_mismatch() < 0.01);
    }

    #[test]
    fn coupling_pulls_frequencies_together() {
        let sweep = LockingSweep::new(quick_config());
        let p = sweep.probe(0.62, 0.01).unwrap();
        assert!(
            p.coupled_mismatch() < p.uncoupled_mismatch(),
            "coupled {} vs uncoupled {}",
            p.coupled_mismatch(),
            p.uncoupled_mismatch()
        );
    }

    #[test]
    fn large_detuning_unlocks() {
        let sweep = LockingSweep::new(quick_config());
        let p = sweep.probe(0.64, 0.08).unwrap();
        assert!(!p.is_locked(0.005), "should not lock at huge detuning");
    }

    #[test]
    fn sweep_finds_locking_plateau() {
        let sweep = LockingSweep::new(quick_config());
        let curve = sweep.run(0.62, 0.04, 9).unwrap();
        let range = curve.locking_range(0.01).expect("plateau exists");
        assert!(range.0 <= 0.0 && range.1 >= 0.0, "range {range:?}");
        assert!(range.1 - range.0 < 0.08, "plateau should be bounded");
        let frac = curve.locked_fraction(0.01);
        assert!(frac > 0.0 && frac < 1.0, "fraction {frac}");
    }

    #[test]
    fn curve_from_iterator() {
        let p = LockingPoint {
            delta_vgs: 0.0,
            f1_uncoupled: 1.0,
            f2_uncoupled: 1.0,
            f1_coupled: 1.0,
            f2_coupled: 1.0,
            phase: None,
        };
        let curve: LockingCurve = std::iter::repeat_n(p, 3).collect();
        assert_eq!(curve.points().len(), 3);
        assert_eq!(curve.locked_fraction(0.01), 1.0);
    }

    #[test]
    fn empty_curve_has_no_range() {
        let curve = LockingCurve::default();
        assert!(curve.locking_range(0.01).is_none());
        assert_eq!(curve.locked_fraction(0.01), 0.0);
    }
}
