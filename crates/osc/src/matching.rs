//! Degree-of-match co-processor functions.
//!
//! §III cites "a coupled oscillator-based co-processor … to accelerate
//! computations like sorting, degree of matching, etc. for use in
//! applications such as pattern recognition, clustering, and text
//! recognition" (ref. \[44\], Gala et al., JETC 2018). This module builds
//! those co-processor primitives on the calibrated
//! [`OscillatorDistance`]:
//!
//! * [`MatchProcessor::degree_of_match`] — the aggregate dissimilarity between a template
//!   and a candidate vector (mean element-wise oscillator distance);
//! * [`MatchProcessor::best_match`] / [`MatchProcessor::rank_matches`] — pattern recognition: order a
//!   gallery of candidates by match quality;
//! * [`MatchProcessor::sort_by_key_distance`] — the co-processor sorting primitive: order
//!   items by analog distance from a reference value.
//!
//! # Example
//!
//! ```no_run
//! use osc::matching::MatchProcessor;
//! use osc::norms::{NormRegime, OscillatorDistance};
//!
//! let distance = OscillatorDistance::calibrate(NormRegime::Shallow.config(), 0.62, 0.02, 9)?;
//! let proc = MatchProcessor::new(distance);
//! let template = [0.2, 0.8, 0.5];
//! let gallery = [vec![0.25, 0.75, 0.5], vec![0.9, 0.1, 0.1]];
//! let best = proc.best_match(&template, &gallery)?;
//! assert_eq!(best, 0);
//! # Ok::<(), osc::OscError>(())
//! ```

use crate::norms::OscillatorDistance;
use crate::OscError;

/// A degree-of-match co-processor around a calibrated oscillator distance.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchProcessor {
    distance: OscillatorDistance,
}

impl MatchProcessor {
    /// Creates a processor.
    #[must_use]
    pub fn new(distance: OscillatorDistance) -> Self {
        MatchProcessor { distance }
    }

    /// The underlying distance primitive.
    #[must_use]
    pub fn distance(&self) -> &OscillatorDistance {
        &self.distance
    }

    /// Degree of match between two equal-length vectors of normalized
    /// values: the mean element-wise oscillator distance (0 = identical).
    ///
    /// # Errors
    ///
    /// Returns [`OscError::Numerics`] for mismatched or empty inputs.
    pub fn degree_of_match(&self, template: &[f64], candidate: &[f64]) -> Result<f64, OscError> {
        if template.len() != candidate.len() {
            return Err(OscError::Numerics(
                numerics::NumericsError::DimensionMismatch {
                    expected: template.len(),
                    actual: candidate.len(),
                },
            ));
        }
        if template.is_empty() {
            return Err(OscError::Numerics(
                numerics::NumericsError::InsufficientData {
                    required: 1,
                    provided: 0,
                },
            ));
        }
        let total: f64 = template
            .iter()
            .zip(candidate)
            .map(|(&a, &b)| self.distance.distance(a, b))
            .sum();
        Ok(total / template.len() as f64)
    }

    /// Index of the gallery entry with the smallest degree of match.
    ///
    /// # Errors
    ///
    /// * [`OscError::Numerics`] for an empty gallery or shape mismatches.
    pub fn best_match(&self, template: &[f64], gallery: &[Vec<f64>]) -> Result<usize, OscError> {
        let ranked = self.rank_matches(template, gallery)?;
        Ok(ranked[0].0)
    }

    /// The gallery ranked by ascending degree of match:
    /// `(index, score)` pairs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MatchProcessor::best_match`].
    pub fn rank_matches(
        &self,
        template: &[f64],
        gallery: &[Vec<f64>],
    ) -> Result<Vec<(usize, f64)>, OscError> {
        if gallery.is_empty() {
            return Err(OscError::Numerics(
                numerics::NumericsError::InsufficientData {
                    required: 1,
                    provided: 0,
                },
            ));
        }
        let mut scored: Vec<(usize, f64)> = gallery
            .iter()
            .enumerate()
            .map(|(i, candidate)| Ok((i, self.degree_of_match(template, candidate)?)))
            .collect::<Result<_, OscError>>()?;
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"));
        Ok(scored)
    }

    /// Sorts scalar items by their analog distance from a reference value
    /// (the ref.-\[44\] sorting primitive). Returns indices in ascending
    /// distance order.
    #[must_use]
    pub fn sort_by_key_distance(&self, reference: f64, items: &[f64]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&i, &j| {
            let di = self.distance.distance(reference, items[i]);
            let dj = self.distance.distance(reference, items[j]);
            di.partial_cmp(&dj).expect("finite distances")
        });
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::NormRegime;
    use device::units::Seconds;

    fn processor() -> MatchProcessor {
        let mut cfg = NormRegime::Shallow.config();
        cfg.sim.duration = Seconds(2e-6);
        MatchProcessor::new(OscillatorDistance::calibrate(cfg, 0.62, 0.02, 7).expect("calibrates"))
    }

    #[test]
    fn identical_vectors_score_lowest() {
        let p = processor();
        let template = [0.3, 0.6, 0.9];
        let same = p.degree_of_match(&template, &template).unwrap();
        let different = p.degree_of_match(&template, &[0.9, 0.1, 0.3]).unwrap();
        assert!(same < different, "{same} vs {different}");
    }

    #[test]
    fn best_match_prefers_nearest() {
        let p = processor();
        let template = [0.2, 0.8, 0.5, 0.5];
        let gallery = vec![
            vec![0.9, 0.1, 0.9, 0.1],    // far
            vec![0.22, 0.78, 0.52, 0.5], // near
            vec![0.5, 0.5, 0.5, 0.5],    // middling
        ];
        assert_eq!(p.best_match(&template, &gallery).unwrap(), 1);
    }

    #[test]
    fn rank_is_sorted_ascending() {
        let p = processor();
        let template = [0.4, 0.6];
        let gallery = vec![vec![0.4, 0.6], vec![0.1, 0.9], vec![0.45, 0.62]];
        let ranked = p.rank_matches(&template, &gallery).unwrap();
        assert_eq!(ranked.len(), 3);
        assert!(ranked.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(ranked[0].0, 0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let p = processor();
        assert!(p.degree_of_match(&[0.1, 0.2], &[0.1]).is_err());
        assert!(p.degree_of_match(&[], &[]).is_err());
        assert!(p.rank_matches(&[0.5], &[]).is_err());
    }

    #[test]
    fn sorting_by_key_distance() {
        let p = processor();
        let items = [0.9, 0.35, 0.6, 0.31];
        let order = p.sort_by_key_distance(0.3, &items);
        // 0.31 closest, then 0.35, then 0.6, then 0.9.
        assert_eq!(order, vec![3, 1, 2, 0]);
    }
}
