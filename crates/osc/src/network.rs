//! Oscillator arrays: comparison fabrics and coupled chains.
//!
//! Two fabric shapes back the paper's claims:
//!
//! * [`PairArray`] — a bank of independent coupled pairs, the "16
//!   surrounding pixels" comparison fabric of the FAST dataflow (Fig. 6):
//!   each pair compares the pixel under test against one ring pixel, all
//!   banks operating in parallel.
//! * [`OscillatorChain`] — `N` cells coupled nearest-neighbour in a chain or
//!   ring, reproducing the synchronization behaviour the paper cites from
//!   ref. \[39\]: "an array of weakly coupled oscillators is shown to
//!   synchronize when coupled together with close initial states".
//!
//! # Example
//!
//! ```no_run
//! use osc::network::OscillatorChain;
//! use osc::pair::PairConfig;
//!
//! // Five nearly identical cells in a ring: all lock to a common frequency.
//! let chain = OscillatorChain::ring(PairConfig::default(), &[0.62; 5])?;
//! let run = chain.simulate_default()?;
//! assert!(run.is_synchronized(0.01)?);
//! # Ok::<(), osc::OscError>(())
//! ```

use crate::pair::{CoupledPair, PairConfig};
use crate::readout::XorReadout;
use crate::relaxation::{oscillator_project, oscillator_rhs, OscRun, SimConfig, STATE_VARS};
use crate::OscError;
use device::units::Volts;
use numerics::ode::{integrate_sampled, OdeSystem, Rk4};

/// A bank of independent coupled pairs evaluated with a common readout.
#[derive(Debug, Clone, PartialEq)]
pub struct PairArray {
    config: PairConfig,
    readout: XorReadout,
}

impl PairArray {
    /// Creates an array with the whole-run readout.
    #[must_use]
    pub fn new(config: PairConfig) -> Self {
        PairArray {
            config,
            readout: XorReadout::new(0),
        }
    }

    /// Replaces the readout window.
    #[must_use]
    pub fn with_readout(mut self, readout: XorReadout) -> Self {
        self.readout = readout;
        self
    }

    /// Compares each `(a, b)` gate-voltage pair and returns the XOR
    /// measures, simulating each pair bank independently.
    ///
    /// # Errors
    ///
    /// Propagates bias-validation and simulation errors; fails on the first
    /// offending pair.
    pub fn compare_all(&self, inputs: &[(Volts, Volts)]) -> Result<Vec<f64>, OscError> {
        inputs
            .iter()
            .map(|&(a, b)| {
                let pair = CoupledPair::new(self.config, a, b)?;
                let run = pair.simulate_default()?;
                self.readout.measure(&run)
            })
            .collect()
    }
}

/// Coupling topology of an [`OscillatorChain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Open chain: cell `i` couples to `i+1`.
    Chain,
    /// Closed ring: additionally couples last to first.
    Ring,
}

/// `N` identical oscillator cells coupled through identical RC branches
/// along an arbitrary undirected edge list — the fabric behind the
/// phase-dynamics applications the paper cites (vertex coloring, ref.
/// \[42\]; associative arrays, ref. \[39\]).
///
/// State layout matches [`OscillatorChain`]: `N` cells of `[v, f, m]`
/// followed by one coupling-capacitor voltage per edge.
#[derive(Debug, Clone, PartialEq)]
pub struct OscillatorGraph {
    config: PairConfig,
    edges: Vec<(usize, usize)>,
    r_series: Vec<f64>,
    n: usize,
}

impl OscillatorGraph {
    /// Creates a graph-coupled fabric with per-cell gate voltages and an
    /// undirected edge list.
    ///
    /// # Errors
    ///
    /// * [`OscError::Numerics`] for fewer than 2 cells, self-loops, or
    ///   out-of-range edges.
    /// * Propagates bias validation per cell.
    pub fn new(
        config: PairConfig,
        v_gs: &[f64],
        edges: &[(usize, usize)],
    ) -> Result<Self, OscError> {
        if v_gs.len() < 2 {
            return Err(OscError::Numerics(
                numerics::NumericsError::InsufficientData {
                    required: 2,
                    provided: v_gs.len(),
                },
            ));
        }
        for &(a, b) in edges {
            if a >= v_gs.len() || b >= v_gs.len() || a == b {
                return Err(OscError::Numerics(
                    numerics::NumericsError::InvalidArgument {
                        what: "graph edges must join two distinct existing cells",
                    },
                ));
            }
        }
        let r_series = v_gs
            .iter()
            .map(|&v| config.osc.checked_bias(Volts(v)).map(|r| r.0))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(OscillatorGraph {
            config,
            edges: edges.to_vec(),
            n: v_gs.len(),
            r_series,
        })
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the fabric has no cells (not constructible).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The coupling edges.
    #[must_use]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Simulates the fabric with staggered initial node voltages (cells
    /// start spread across the hysteresis window so phase ordering is a
    /// dynamical outcome).
    ///
    /// # Errors
    ///
    /// Kept fallible for interface parity; currently always succeeds.
    pub fn simulate(&self, sim: SimConfig) -> Result<ChainRun, OscError> {
        let mut y = vec![0.0; self.dim()];
        let window = self.config.osc.vo2.hysteresis_window().0;
        let base = self.config.osc.vo2.v_mit.0;
        for i in 0..self.n {
            y[i * STATE_VARS] = base + window * (i as f64 / self.n as f64);
        }
        let mut stepper = Rk4::new(sim.dt.0);
        let (times, states) = integrate_sampled(self, &mut stepper, 0.0, sim.duration.0, &mut y, 1);
        let run = OscRun::from_states(
            &times,
            &states,
            sim,
            self.n,
            self.config.osc.readout_threshold(),
        );
        Ok(ChainRun { run })
    }

    /// Simulates with the configuration's [`SimConfig`].
    ///
    /// # Errors
    ///
    /// See [`OscillatorGraph::simulate`].
    pub fn simulate_default(&self) -> Result<ChainRun, OscError> {
        self.simulate(self.config.sim)
    }
}

impl OdeSystem for OscillatorGraph {
    fn dim(&self) -> usize {
        self.n * STATE_VARS + self.edges.len()
    }

    fn rhs(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let vc_base = self.n * STATE_VARS;
        let mut i_extra = vec![0.0; self.n];
        for (b, &(i, j)) in self.edges.iter().enumerate() {
            let vi = y[i * STATE_VARS];
            let vj = y[j * STATE_VARS];
            let vc = y[vc_base + b];
            let i_c = (vi - vj - vc) / self.config.coupling.r_c().0;
            i_extra[i] += i_c;
            i_extra[j] -= i_c;
            dy[vc_base + b] = i_c / self.config.coupling.c_c().0;
        }
        for i in 0..self.n {
            let s = i * STATE_VARS;
            oscillator_rhs(
                &self.config.osc,
                self.r_series[i],
                &y[s..s + STATE_VARS],
                &mut dy[s..s + STATE_VARS],
                i_extra[i],
            );
        }
    }

    fn project(&self, y: &mut [f64]) {
        for i in 0..self.n {
            let s = i * STATE_VARS;
            oscillator_project(&self.config.osc, &mut y[s..s + STATE_VARS]);
        }
    }
}

/// `N` oscillator cells coupled nearest-neighbour through identical RC
/// branches.
///
/// State layout: `N` cells of `[v, f, m]` followed by one coupling-capacitor
/// voltage per branch.
#[derive(Debug, Clone, PartialEq)]
pub struct OscillatorChain {
    config: PairConfig,
    topology: Topology,
    r_series: Vec<f64>,
    n: usize,
}

impl OscillatorChain {
    /// Creates an open chain with per-cell input gate voltages.
    ///
    /// # Errors
    ///
    /// * [`OscError::Numerics`] when fewer than 2 cells are requested.
    /// * Propagates bias validation per cell.
    pub fn chain(config: PairConfig, v_gs: &[f64]) -> Result<Self, OscError> {
        Self::with_topology(config, v_gs, Topology::Chain)
    }

    /// Creates a closed ring with per-cell input gate voltages.
    ///
    /// # Errors
    ///
    /// Same conditions as [`OscillatorChain::chain`].
    pub fn ring(config: PairConfig, v_gs: &[f64]) -> Result<Self, OscError> {
        Self::with_topology(config, v_gs, Topology::Ring)
    }

    fn with_topology(
        config: PairConfig,
        v_gs: &[f64],
        topology: Topology,
    ) -> Result<Self, OscError> {
        if v_gs.len() < 2 {
            return Err(OscError::Numerics(
                numerics::NumericsError::InsufficientData {
                    required: 2,
                    provided: v_gs.len(),
                },
            ));
        }
        let r_series = v_gs
            .iter()
            .map(|&v| config.osc.checked_bias(Volts(v)).map(|r| r.0))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(OscillatorChain {
            config,
            topology,
            n: v_gs.len(),
            r_series,
        })
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for an empty chain (never constructible; for API
    /// completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The coupling topology.
    #[must_use]
    pub fn topology(&self) -> Topology {
        self.topology
    }

    fn n_branches(&self) -> usize {
        match self.topology {
            Topology::Chain => self.n - 1,
            Topology::Ring => self.n,
        }
    }

    /// Branch endpoints `(i, j)` for branch index `b`.
    fn branch(&self, b: usize) -> (usize, usize) {
        (b, (b + 1) % self.n)
    }

    /// Simulates the chain.
    ///
    /// Initial node voltages are staggered across the hysteresis window so
    /// the cells start out of phase and synchronization is a dynamical
    /// outcome, not an artefact of identical initial conditions.
    ///
    /// # Errors
    ///
    /// Kept fallible for interface parity; currently always succeeds.
    pub fn simulate(&self, sim: SimConfig) -> Result<ChainRun, OscError> {
        let mut y = vec![0.0; self.dim()];
        let window = self.config.osc.vo2.hysteresis_window().0;
        let base = self.config.osc.vo2.v_mit.0;
        for i in 0..self.n {
            y[i * STATE_VARS] = base + window * (i as f64 / self.n as f64);
        }
        let mut stepper = Rk4::new(sim.dt.0);
        let (times, states) = integrate_sampled(self, &mut stepper, 0.0, sim.duration.0, &mut y, 1);
        let run = OscRun::from_states(
            &times,
            &states,
            sim,
            self.n,
            self.config.osc.readout_threshold(),
        );
        Ok(ChainRun { run })
    }

    /// Simulates with the configuration's [`SimConfig`].
    ///
    /// # Errors
    ///
    /// See [`OscillatorChain::simulate`].
    pub fn simulate_default(&self) -> Result<ChainRun, OscError> {
        self.simulate(self.config.sim)
    }
}

impl OdeSystem for OscillatorChain {
    fn dim(&self) -> usize {
        self.n * STATE_VARS + self.n_branches()
    }

    fn rhs(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let nb = self.n_branches();
        let vc_base = self.n * STATE_VARS;
        // Net extra current leaving each node through coupling branches.
        let mut i_extra = vec![0.0; self.n];
        for b in 0..nb {
            let (i, j) = self.branch(b);
            let vi = y[i * STATE_VARS];
            let vj = y[j * STATE_VARS];
            let vc = y[vc_base + b];
            let i_c = (vi - vj - vc) / self.config.coupling.r_c().0;
            i_extra[i] += i_c;
            i_extra[j] -= i_c;
            dy[vc_base + b] = i_c / self.config.coupling.c_c().0;
        }
        for i in 0..self.n {
            let s = i * STATE_VARS;
            oscillator_rhs(
                &self.config.osc,
                self.r_series[i],
                &y[s..s + STATE_VARS],
                &mut dy[s..s + STATE_VARS],
                i_extra[i],
            );
        }
    }

    fn project(&self, y: &mut [f64]) {
        for i in 0..self.n {
            let s = i * STATE_VARS;
            oscillator_project(&self.config.osc, &mut y[s..s + STATE_VARS]);
        }
    }
}

/// Recorded waveforms of a chain run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainRun {
    run: OscRun,
}

impl ChainRun {
    /// The underlying multichannel [`OscRun`].
    #[must_use]
    pub fn as_run(&self) -> &OscRun {
        &self.run
    }

    /// Per-cell frequencies.
    ///
    /// # Errors
    ///
    /// Propagates frequency-estimation errors per cell.
    pub fn frequencies(&self) -> Result<Vec<f64>, OscError> {
        (0..self.run.n_oscillators())
            .map(|i| self.run.frequency(i))
            .collect()
    }

    /// Whether all cells locked to a common frequency within `rel_tol` of
    /// the mean.
    ///
    /// # Errors
    ///
    /// Propagates frequency-estimation errors.
    pub fn is_synchronized(&self, rel_tol: f64) -> Result<bool, OscError> {
        let freqs = self.frequencies()?;
        let mean = freqs.iter().sum::<f64>() / freqs.len() as f64;
        Ok(freqs.iter().all(|f| ((f - mean) / mean).abs() <= rel_tol))
    }

    /// The spread `max(f) − min(f)` relative to the mean frequency.
    ///
    /// # Errors
    ///
    /// Propagates frequency-estimation errors.
    pub fn frequency_spread(&self) -> Result<f64, OscError> {
        let freqs = self.frequencies()?;
        let mean = freqs.iter().sum::<f64>() / freqs.len() as f64;
        let max = freqs.iter().cloned().fold(f64::MIN, f64::max);
        let min = freqs.iter().cloned().fold(f64::MAX, f64::min);
        Ok((max - min) / mean)
    }

    /// Each cell's mean phase relative to cell `reference`, radians in
    /// `[0, 2π)` — the observable the phase-computing applications read.
    ///
    /// # Errors
    ///
    /// * [`OscError::BadIndex`] for an out-of-range reference.
    /// * Propagates phase-estimation errors (requires locking-grade runs).
    pub fn phases_relative_to(&self, reference: usize) -> Result<Vec<f64>, OscError> {
        let run = &self.run;
        let ref_wf = run.waveform(reference)?;
        let dt = run.dt().0;
        let threshold = run.threshold().0;
        (0..run.n_oscillators())
            .map(|i| {
                if i == reference {
                    return Ok(0.0);
                }
                Ok(numerics::signal::phase_difference(
                    ref_wf,
                    run.waveform(i)?,
                    dt,
                    threshold,
                )?)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use device::units::Seconds;

    fn quick_config() -> PairConfig {
        let mut cfg = PairConfig::default();
        cfg.sim.duration = Seconds(2e-6);
        cfg
    }

    #[test]
    fn pair_array_orders_measures_by_detuning() {
        let array = PairArray::new(quick_config());
        let measures = array
            .compare_all(&[(Volts(0.62), Volts(0.62)), (Volts(0.62), Volts(0.626))])
            .unwrap();
        assert_eq!(measures.len(), 2);
        assert!(
            measures[1] > measures[0],
            "detuned pair should measure larger: {measures:?}"
        );
    }

    #[test]
    fn pair_array_propagates_bad_bias() {
        let array = PairArray::new(quick_config());
        assert!(array.compare_all(&[(Volts(0.62), Volts(9.0))]).is_err());
    }

    #[test]
    fn ring_of_identical_cells_synchronizes() {
        let chain = OscillatorChain::ring(quick_config(), &[0.62; 4]).unwrap();
        let run = chain.simulate_default().unwrap();
        assert!(
            run.is_synchronized(0.01).unwrap(),
            "spread {}",
            run.frequency_spread().unwrap()
        );
    }

    #[test]
    fn chain_with_close_inputs_synchronizes() {
        let chain = OscillatorChain::chain(quick_config(), &[0.620, 0.622, 0.621]).unwrap();
        let run = chain.simulate_default().unwrap();
        assert!(
            run.is_synchronized(0.015).unwrap(),
            "spread {}",
            run.frequency_spread().unwrap()
        );
    }

    #[test]
    fn chain_with_distant_inputs_does_not_synchronize() {
        let chain = OscillatorChain::chain(quick_config(), &[0.55, 0.75]).unwrap();
        let run = chain.simulate_default().unwrap();
        assert!(
            !run.is_synchronized(0.005).unwrap(),
            "spread {}",
            run.frequency_spread().unwrap()
        );
    }

    #[test]
    fn chain_requires_two_cells() {
        assert!(OscillatorChain::chain(quick_config(), &[0.62]).is_err());
    }

    #[test]
    fn topology_reported() {
        let ring = OscillatorChain::ring(quick_config(), &[0.62; 3]).unwrap();
        assert_eq!(ring.topology(), Topology::Ring);
        assert_eq!(ring.len(), 3);
        assert!(!ring.is_empty());
    }

    #[test]
    fn state_dimension_accounts_for_branches() {
        let cfg = quick_config();
        let chain = OscillatorChain::chain(cfg, &[0.62; 4]).unwrap();
        assert_eq!(chain.dim(), 4 * STATE_VARS + 3);
        let ring = OscillatorChain::ring(cfg, &[0.62; 4]).unwrap();
        assert_eq!(ring.dim(), 4 * STATE_VARS + 4);
    }
}
