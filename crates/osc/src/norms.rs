//! Coupled-oscillator `l_k` distance norms (paper Fig. 5).
//!
//! The XOR measure of a locked pair, plotted against the input detuning
//! `ΔV_gs`, has its minimum at `ΔV_gs = 0` and rises as `a·|ΔV_gs|^k + c`
//! near the minimum. The exponent `k` is set by the coupling network — the
//! paper reports `k ≈ 1.6` → `2.0` (parabolic) → `3.4` across coupling
//! strengths, with fractional (`k < 1`) tails further from the minimum.
//!
//! * [`NormSweep`] sweeps `ΔV_gs` and produces a [`NormCurve`];
//! * [`NormCurve::fit_exponent`] extracts `k` by power-law fitting over the
//!   smooth region around the minimum;
//! * [`NormRegime`] names three canonical coupling configurations of this
//!   simulator whose fitted exponents bracket the paper's range;
//! * [`OscillatorDistance`] packages pair + readout into the calibrated
//!   distance primitive consumed by the FAST corner detector: the hardware
//!   is characterized once (a `ΔV_gs → measure` transfer curve, exactly how
//!   a real oscillator block would be calibrated), then evaluated cheaply
//!   per comparison.
//!
//! # Example
//!
//! ```no_run
//! use osc::norms::{NormRegime, NormSweep};
//!
//! let sweep = NormSweep::new(NormRegime::Parabolic.config())?;
//! let curve = sweep.run(0.62, 0.012, 9)?;
//! let fit = curve.fit_exponent(0.3, 6.0)?;
//! assert!(fit.exponent > 0.5 && fit.exponent < 6.0);
//! # Ok::<(), osc::OscError>(())
//! ```

use crate::pair::{CoupledPair, PairConfig};
use crate::readout::XorReadout;
use crate::OscError;
use device::passive::CouplingNetwork;
use device::units::{Farads, Ohms, Volts};
use numerics::fit::{fit_power_law_offset, PowerLawFit};
use numerics::interp::Interpolator;

/// Canonical coupling regimes of this simulator, named by the shape of the
/// measure-vs-detuning curve they produce.
///
/// Fitted exponents (see EXPERIMENTS.md): the paper's devices show `k`
/// increasing with coupling strength (decreasing `R_C`); in this circuit
/// model the exponent instead *grows* with `R_C` inside the anti-phase
/// locking regime. The three regimes below span the same `k ≈ 1 … 3.4`
/// family the paper demonstrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NormRegime {
    /// Near-linear / fractional regime (`k ≈ 1`), strongest coupling.
    Shallow,
    /// Near-quadratic regime (`k ≈ 2`).
    Parabolic,
    /// Strongly nonlinear regime (`k ≳ 3`), weakest still-anti-phase
    /// coupling.
    Steep,
}

impl NormRegime {
    /// All regimes in increasing-exponent order.
    pub const ALL: [NormRegime; 3] = [
        NormRegime::Shallow,
        NormRegime::Parabolic,
        NormRegime::Steep,
    ];

    /// The coupling resistance realizing this regime (with the default cell
    /// parameters and 0.15 pF coupling capacitance).
    #[must_use]
    pub fn coupling_resistance(self) -> Ohms {
        match self {
            NormRegime::Shallow => Ohms(100e3),
            NormRegime::Parabolic => Ohms(220e3),
            NormRegime::Steep => Ohms(300e3),
        }
    }

    /// A ready-made [`PairConfig`] for this regime.
    #[must_use]
    pub fn config(self) -> PairConfig {
        let mut cfg = PairConfig::default();
        cfg.coupling = CouplingNetwork::new(self.coupling_resistance(), Farads(15e-15))
            .expect("regime coupling values are valid");
        cfg
    }
}

impl std::fmt::Display for NormRegime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NormRegime::Shallow => "shallow",
            NormRegime::Parabolic => "parabolic",
            NormRegime::Steep => "steep",
        };
        f.write_str(s)
    }
}

/// One point of a measure-vs-detuning curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormPoint {
    /// Detuning `ΔV_gs`.
    pub delta_vgs: f64,
    /// The `1 − Avg(XOR)` measure.
    pub measure: f64,
    /// Whether the pair frequency-locked at this detuning.
    pub locked: bool,
}

/// A swept measure-vs-detuning curve (Fig. 5 raw data).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NormCurve {
    points: Vec<NormPoint>,
}

impl NormCurve {
    /// The sweep points, ordered by `delta_vgs`.
    #[must_use]
    pub fn points(&self) -> &[NormPoint] {
        &self.points
    }

    /// The measure at the smallest `|ΔV_gs|` (the curve's floor).
    #[must_use]
    pub fn floor(&self) -> Option<f64> {
        self.points
            .iter()
            .min_by(|a, b| {
                a.delta_vgs
                    .abs()
                    .partial_cmp(&b.delta_vgs.abs())
                    .expect("finite detuning")
            })
            .map(|p| p.measure)
    }

    /// Extracts the fit window: locked points forming a tolerantly-monotone
    /// rise away from zero detuning (both signs folded onto `|ΔV_gs|`),
    /// stopping at lock loss, a measure collapse, or a jump past
    /// `measure > 0.55` — unlocked pairs decorrelate to a measure of ~0.5,
    /// so anything above that is a phase-slip discontinuity at the edge of
    /// the locking range rather than part of the smooth norm curve.
    #[must_use]
    pub fn fit_window(&self) -> (Vec<f64>, Vec<f64>) {
        let mut folded: Vec<(f64, f64, bool)> = self
            .points
            .iter()
            .map(|p| (p.delta_vgs.abs(), p.measure, p.locked))
            .collect();
        folded.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite detuning"));
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut last = f64::NEG_INFINITY;
        for (dv, m, locked) in folded {
            if !locked || m > 0.55 {
                break;
            }
            if m < last - 0.05 {
                break;
            }
            xs.push(dv);
            ys.push(m);
            last = last.max(m);
        }
        (xs, ys)
    }

    /// Fits `measure = a·|ΔV_gs|^k + c` over the [`NormCurve::fit_window`].
    ///
    /// # Errors
    ///
    /// Propagates [`fit_power_law_offset`] errors — notably
    /// [`numerics::NumericsError::InsufficientData`] when fewer than three
    /// usable points exist (sweep wider or finer).
    pub fn fit_exponent(&self, k_lo: f64, k_hi: f64) -> Result<PowerLawFit, OscError> {
        let (xs, ys) = self.fit_window();
        Ok(fit_power_law_offset(&xs, &ys, k_lo, k_hi)?)
    }
}

impl FromIterator<NormPoint> for NormCurve {
    fn from_iter<I: IntoIterator<Item = NormPoint>>(iter: I) -> Self {
        let mut points: Vec<NormPoint> = iter.into_iter().collect();
        points.sort_by(|a, b| {
            a.delta_vgs
                .partial_cmp(&b.delta_vgs)
                .expect("finite detuning")
        });
        NormCurve { points }
    }
}

/// Sweep driver producing [`NormCurve`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct NormSweep {
    config: PairConfig,
    readout: XorReadout,
}

impl NormSweep {
    /// Creates a sweep with the whole-run readout window.
    ///
    /// # Errors
    ///
    /// Reserved for configuration validation; currently always succeeds.
    pub fn new(config: PairConfig) -> Result<Self, OscError> {
        Ok(NormSweep {
            config,
            readout: XorReadout::new(0),
        })
    }

    /// Replaces the readout (e.g. a finite averaging window for ablation
    /// A2).
    #[must_use]
    pub fn with_readout(mut self, readout: XorReadout) -> Self {
        self.readout = readout;
        self
    }

    /// Runs a symmetric sweep: `n_points` detunings over `[0, dv_max]`
    /// mirrored to negative detunings (2·n − 1 simulations).
    ///
    /// # Errors
    ///
    /// Propagates bias-validation and simulation errors.
    pub fn run(&self, v_center: f64, dv_max: f64, n_points: usize) -> Result<NormCurve, OscError> {
        let n = n_points.max(2);
        let mut points = Vec::with_capacity(2 * n - 1);
        for i in 0..n {
            let dv = dv_max * i as f64 / (n - 1) as f64;
            let p = self.probe(v_center, dv)?;
            points.push(p);
            if dv > 0.0 {
                // The circuit is symmetric under input swap.
                points.push(NormPoint {
                    delta_vgs: -dv,
                    ..p
                });
            }
        }
        Ok(points.into_iter().collect())
    }

    /// Measures a single detuning point.
    ///
    /// # Errors
    ///
    /// Propagates bias-validation and simulation errors.
    pub fn probe(&self, v_center: f64, dv: f64) -> Result<NormPoint, OscError> {
        let pair = CoupledPair::new(
            self.config,
            Volts(v_center + dv / 2.0),
            Volts(v_center - dv / 2.0),
        )?;
        let run = pair.simulate_default()?;
        let measure = self.readout.measure(&run)?;
        let locked = run.is_locked(0.01).unwrap_or(false);
        Ok(NormPoint {
            delta_vgs: dv,
            measure,
            locked,
        })
    }
}

/// The calibrated oscillator distance primitive used by the vision
/// workload.
///
/// Calibration simulates the pair over a grid of detunings once and stores
/// the monotone envelope of the transfer curve; evaluation then maps a pair
/// of normalized inputs `x, y ∈ [0, 1]` through the input encoding
/// (`V_gs = v_center ± full_scale·(x − y)/2`) and the calibrated curve.
/// This mirrors how a physical oscillator block is used: characterized once,
/// then operated as a transfer function.
#[derive(Debug, Clone, PartialEq)]
pub struct OscillatorDistance {
    config: PairConfig,
    v_center: f64,
    full_scale: f64,
    curve: Interpolator,
    raw: NormCurve,
}

impl OscillatorDistance {
    /// Calibrates a distance primitive.
    ///
    /// * `v_center` — centre gate voltage of the encoding;
    /// * `full_scale` — the `ΔV_gs` corresponding to `|x − y| = 1`;
    /// * `n_cal` — number of calibration detunings in `[0, full_scale]`.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors; requires `n_cal >= 3`.
    pub fn calibrate(
        config: PairConfig,
        v_center: f64,
        full_scale: f64,
        n_cal: usize,
    ) -> Result<Self, OscError> {
        if n_cal < 3 {
            return Err(OscError::Numerics(
                numerics::NumericsError::InsufficientData {
                    required: 3,
                    provided: n_cal,
                },
            ));
        }
        let sweep = NormSweep::new(config)?;
        let mut xs = Vec::with_capacity(n_cal);
        let mut ys = Vec::with_capacity(n_cal);
        let mut points = Vec::with_capacity(n_cal);
        let mut envelope: f64 = 0.0;
        for i in 0..n_cal {
            let dv = full_scale * i as f64 / (n_cal - 1) as f64;
            let p = sweep.probe(v_center, dv)?;
            points.push(p);
            // Monotone envelope: the physical curve saturates near 0.5 once
            // the pair unlocks; enforce non-decreasing calibration so the
            // distance is usable as a metric surrogate.
            envelope = envelope.max(p.measure);
            xs.push(dv);
            ys.push(envelope);
        }
        let curve = Interpolator::pchip(&xs, &ys)?;
        Ok(OscillatorDistance {
            config,
            v_center,
            full_scale,
            curve,
            raw: points.into_iter().collect(),
        })
    }

    /// The raw (non-monotonized) calibration curve.
    #[must_use]
    pub fn calibration(&self) -> &NormCurve {
        &self.raw
    }

    /// The input full-scale `ΔV_gs`.
    #[must_use]
    pub fn full_scale(&self) -> f64 {
        self.full_scale
    }

    /// Distance between two normalized inputs `x, y ∈ [0, 1]` via the
    /// calibrated transfer curve. Symmetric, zero-at-equality (up to the
    /// curve floor), saturating.
    #[must_use]
    pub fn distance(&self, x: f64, y: f64) -> f64 {
        let dv = (x - y).abs() * self.full_scale;
        self.curve.eval(dv)
    }

    /// Full-physics distance: simulates the coupled pair for these inputs
    /// instead of using the calibration curve. Slow; used for spot-checking
    /// the calibration.
    ///
    /// # Errors
    ///
    /// Propagates bias-validation and simulation errors.
    pub fn distance_exact(&self, x: f64, y: f64) -> Result<f64, OscError> {
        let offset = |v: f64| self.v_center + self.full_scale * (v - 0.5);
        let pair = CoupledPair::new(self.config, Volts(offset(x)), Volts(offset(y)))?;
        let run = pair.simulate_default()?;
        run.xor_measure()
    }

    /// The measure floor at zero distance (the curve's `c` offset).
    #[must_use]
    pub fn zero_floor(&self) -> f64 {
        self.curve.eval(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use device::units::Seconds;

    fn quick(regime: NormRegime) -> PairConfig {
        let mut cfg = regime.config();
        cfg.sim.duration = Seconds(2e-6);
        cfg
    }

    #[test]
    fn regimes_have_distinct_increasing_rc() {
        let rs: Vec<f64> = NormRegime::ALL
            .iter()
            .map(|r| r.coupling_resistance().0)
            .collect();
        assert!(rs.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn curve_measure_grows_from_floor() {
        let sweep = NormSweep::new(quick(NormRegime::Shallow)).unwrap();
        let curve = sweep.run(0.62, 0.01, 5).unwrap();
        let floor = curve.floor().unwrap();
        let max = curve
            .points()
            .iter()
            .map(|p| p.measure)
            .fold(f64::MIN, f64::max);
        assert!(floor < 0.25, "floor {floor}");
        assert!(max > floor + 0.05, "no rise: {floor} → {max}");
    }

    #[test]
    fn curve_is_symmetric_by_construction() {
        let sweep = NormSweep::new(quick(NormRegime::Shallow)).unwrap();
        let curve = sweep.run(0.62, 0.008, 3).unwrap();
        let pts = curve.points();
        assert_eq!(pts.len(), 5);
        let at = |dv: f64| {
            pts.iter()
                .find(|p| (p.delta_vgs - dv).abs() < 1e-12)
                .unwrap()
                .measure
        };
        assert_eq!(at(0.008), at(-0.008));
    }

    #[test]
    fn shallow_regime_fits_low_exponent() {
        let sweep = NormSweep::new(quick(NormRegime::Shallow)).unwrap();
        let curve = sweep.run(0.62, 0.014, 8).unwrap();
        let fit = curve.fit_exponent(0.3, 6.0).unwrap();
        assert!(
            fit.exponent < 2.0,
            "shallow regime exponent {}",
            fit.exponent
        );
    }

    #[test]
    fn fit_window_stops_at_lock_loss() {
        let points = vec![
            NormPoint {
                delta_vgs: 0.0,
                measure: 0.05,
                locked: true,
            },
            NormPoint {
                delta_vgs: 0.01,
                measure: 0.2,
                locked: true,
            },
            NormPoint {
                delta_vgs: 0.02,
                measure: 0.5,
                locked: false,
            },
        ];
        let curve: NormCurve = points.into_iter().collect();
        let (xs, _) = curve.fit_window();
        assert_eq!(xs.len(), 2);
    }

    #[test]
    fn fit_window_stops_at_collapse() {
        let mk = |dv: f64, m: f64| NormPoint {
            delta_vgs: dv,
            measure: m,
            locked: true,
        };
        let curve: NormCurve = vec![
            mk(0.0, 0.05),
            mk(0.01, 0.3),
            mk(0.02, 0.1), // collapse > 0.05 below running max
            mk(0.03, 0.4),
        ]
        .into_iter()
        .collect();
        let (xs, _) = curve.fit_window();
        assert_eq!(xs.len(), 2);
    }

    #[test]
    fn distance_primitive_monotone_and_symmetric() {
        let dist =
            OscillatorDistance::calibrate(quick(NormRegime::Shallow), 0.62, 0.015, 5).unwrap();
        assert_eq!(dist.distance(0.2, 0.8), dist.distance(0.8, 0.2));
        let d_small = dist.distance(0.5, 0.55);
        let d_large = dist.distance(0.5, 0.95);
        assert!(d_large >= d_small, "{d_small} vs {d_large}");
        assert!(dist.distance(0.3, 0.3) <= dist.zero_floor() + 1e-12);
    }

    #[test]
    fn calibration_requires_three_points() {
        assert!(OscillatorDistance::calibrate(quick(NormRegime::Shallow), 0.62, 0.01, 2).is_err());
    }

    #[test]
    fn regime_display() {
        assert_eq!(NormRegime::Steep.to_string(), "steep");
    }
}
