//! An RC-coupled pair of VO₂ relaxation oscillators.
//!
//! Two [`crate::relaxation`] cells whose oscillation nodes are joined by a
//! series R–C branch (paper §III-A, Fig. 3). The coupled system's state is
//!
//! ```text
//! [v₁, f₁, m₁,  v₂, f₂, m₂,  v_c]
//! ```
//!
//! with the branch current `i_c = (v₁ − v₂ − v_c)/R_C` leaving node 1,
//! entering node 2, and charging the coupling capacitor
//! (`dv_c/dt = i_c / C_C`).
//!
//! When the two uncoupled frequencies are close enough, the branch enforces
//! *frequency locking*; the residual phase difference between the locked
//! waveforms encodes `ΔV_gs = V_gs1 − V_gs2`, which is what the XOR readout
//! ([`crate::readout`]) converts into a distance measure.
//!
//! # Example
//!
//! ```
//! use osc::pair::{CoupledPair, PairConfig};
//! use device::units::Volts;
//!
//! let pair = CoupledPair::new(PairConfig::default(), Volts(0.60), Volts(0.61))?;
//! let run = pair.simulate_default()?;
//! assert!(run.cycles(0)? > 5);
//! # Ok::<(), osc::OscError>(())
//! ```

use crate::relaxation::{
    oscillator_project, oscillator_rhs, OscRun, OscillatorParams, SimConfig, STATE_VARS,
};
use crate::OscError;
use device::passive::CouplingNetwork;
use device::units::{Farads, Ohms, Volts};
use numerics::ode::{integrate_sampled, OdeSystem, Rk4};
use numerics::signal;

/// Configuration of a coupled pair: shared cell parameters + coupling
/// network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairConfig {
    /// Oscillator cell parameters (shared by both cells).
    pub osc: OscillatorParams,
    /// The series-RC coupling branch.
    pub coupling: CouplingNetwork,
    /// Simulation settings used by [`CoupledPair::simulate_default`].
    pub sim: SimConfig,
}

impl Default for PairConfig {
    fn default() -> Self {
        PairConfig {
            osc: OscillatorParams::default(),
            coupling: CouplingNetwork::new(Ohms(600e3), Farads(15e-15))
                .expect("default coupling is valid"),
            sim: SimConfig::default(),
        }
    }
}

impl PairConfig {
    /// Returns a copy with a different coupling resistance — the Fig. 5
    /// coupling-strength knob ("increasing coupling strengths, that is,
    /// decreasing R_C").
    ///
    /// # Errors
    ///
    /// Returns [`OscError::Device`] for a non-positive resistance.
    pub fn with_coupling_resistance(&self, r_c: Ohms) -> Result<Self, OscError> {
        Ok(PairConfig {
            coupling: self.coupling.with_r_c(r_c)?,
            ..*self
        })
    }
}

/// A ready-to-simulate coupled pair with its two input gate voltages.
#[derive(Debug, Clone, PartialEq)]
pub struct CoupledPair {
    config: PairConfig,
    /// Cell-2 parameters; equal to `config.osc` unless constructed with
    /// [`CoupledPair::with_mismatch`].
    osc2: OscillatorParams,
    r1: f64,
    r2: f64,
    v_gs: (Volts, Volts),
}

impl CoupledPair {
    /// Creates a coupled pair with inputs encoded as gate voltages.
    ///
    /// # Errors
    ///
    /// Propagates bias-point validation: each cell individually must
    /// oscillate ([`OscError::NoOscillation`] otherwise).
    pub fn new(config: PairConfig, v_gs1: Volts, v_gs2: Volts) -> Result<Self, OscError> {
        Self::with_mismatch(config, v_gs1, v_gs2, config.osc)
    }

    /// Creates a pair whose second cell uses different device parameters —
    /// the device-to-device variation any real oscillator fabric suffers.
    ///
    /// # Errors
    ///
    /// Propagates bias-point validation for both cells.
    pub fn with_mismatch(
        config: PairConfig,
        v_gs1: Volts,
        v_gs2: Volts,
        osc2: OscillatorParams,
    ) -> Result<Self, OscError> {
        let r1 = config.osc.checked_bias(v_gs1)?;
        let r2 = osc2.checked_bias(v_gs2)?;
        Ok(CoupledPair {
            config,
            osc2,
            r1: r1.0,
            r2: r2.0,
            v_gs: (v_gs1, v_gs2),
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &PairConfig {
        &self.config
    }

    /// The two input gate voltages.
    #[must_use]
    pub fn inputs(&self) -> (Volts, Volts) {
        self.v_gs
    }

    /// The input detuning `ΔV_gs = V_gs1 − V_gs2`.
    #[must_use]
    pub fn delta_vgs(&self) -> Volts {
        self.v_gs.0 - self.v_gs.1
    }

    /// Simulates the coupled dynamics.
    ///
    /// The two cells start from deliberately *different* initial node
    /// voltages (0 and a mid-window value) so in-phase symmetry is broken
    /// and the pair settles into its natural locked phase relation.
    ///
    /// # Errors
    ///
    /// Kept fallible for interface parity; currently always succeeds.
    pub fn simulate(&self, config: SimConfig) -> Result<PairRun, OscError> {
        let mut y = vec![0.0; self.dim()];
        // Symmetry breaking: start osc 2 mid-window.
        y[STATE_VARS] = self.config.osc.readout_threshold().0;
        let mut stepper = Rk4::new(config.dt.0);
        let (times, states) =
            integrate_sampled(self, &mut stepper, 0.0, config.duration.0, &mut y, 1);
        let run = OscRun::from_states(
            &times,
            &states,
            config,
            2,
            self.config.osc.readout_threshold(),
        );
        Ok(PairRun { run })
    }

    /// Simulates with the configuration's own [`SimConfig`].
    ///
    /// # Errors
    ///
    /// See [`CoupledPair::simulate`].
    pub fn simulate_default(&self) -> Result<PairRun, OscError> {
        self.simulate(self.config.sim)
    }
}

impl OdeSystem for CoupledPair {
    fn dim(&self) -> usize {
        2 * STATE_VARS + 1
    }

    fn rhs(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let v1 = y[0];
        let v2 = y[STATE_VARS];
        let vc = y[2 * STATE_VARS];
        let i_c = (v1 - v2 - vc) / self.config.coupling.r_c().0;
        oscillator_rhs(
            &self.config.osc,
            self.r1,
            &y[..STATE_VARS],
            &mut dy[..STATE_VARS],
            i_c,
        );
        oscillator_rhs(
            &self.osc2,
            self.r2,
            &y[STATE_VARS..2 * STATE_VARS],
            &mut dy[STATE_VARS..2 * STATE_VARS],
            -i_c,
        );
        dy[2 * STATE_VARS] = i_c / self.config.coupling.c_c().0;
    }

    fn project(&self, y: &mut [f64]) {
        oscillator_project(&self.config.osc, &mut y[..STATE_VARS]);
        oscillator_project(&self.osc2, &mut y[STATE_VARS..2 * STATE_VARS]);
    }
}

/// The recorded waveforms of a coupled-pair run.
#[derive(Debug, Clone, PartialEq)]
pub struct PairRun {
    run: OscRun,
}

impl PairRun {
    /// The underlying two-channel [`OscRun`].
    #[must_use]
    pub fn as_run(&self) -> &OscRun {
        &self.run
    }

    /// The waveform of oscillator `index ∈ {0, 1}`.
    ///
    /// # Errors
    ///
    /// Returns [`OscError::BadIndex`] when out of range.
    pub fn waveform(&self, index: usize) -> Result<&[f64], OscError> {
        self.run.waveform(index)
    }

    /// Frequency of oscillator `index`.
    ///
    /// # Errors
    ///
    /// See [`OscRun::frequency`].
    pub fn frequency(&self, index: usize) -> Result<f64, OscError> {
        self.run.frequency(index)
    }

    /// Complete cycles captured for oscillator `index`.
    ///
    /// # Errors
    ///
    /// See [`OscRun::cycles`].
    pub fn cycles(&self, index: usize) -> Result<usize, OscError> {
        self.run.cycles(index)
    }

    /// Relative frequency mismatch `|f₁ − f₂| / f₁` of the recorded run.
    ///
    /// # Errors
    ///
    /// Propagates frequency-estimation errors.
    pub fn frequency_mismatch(&self) -> Result<f64, OscError> {
        let f1 = self.frequency(0)?;
        let f2 = self.frequency(1)?;
        Ok(((f1 - f2) / f1).abs())
    }

    /// Whether the pair is frequency locked to within `rel_tol`.
    ///
    /// # Errors
    ///
    /// Propagates frequency-estimation errors.
    pub fn is_locked(&self, rel_tol: f64) -> Result<bool, OscError> {
        Ok(self.frequency_mismatch()? <= rel_tol)
    }

    /// Mean phase difference of the locked pair, radians in `[0, 2π)`.
    ///
    /// # Errors
    ///
    /// Propagates [`numerics::signal::phase_difference`] errors.
    pub fn phase_difference(&self) -> Result<f64, OscError> {
        let a = self.run.waveform(0)?;
        let b = self.run.waveform(1)?;
        Ok(signal::phase_difference(
            a,
            b,
            self.run.dt().0,
            self.run.threshold().0,
        )?)
    }

    /// The Fig. 4 XOR measure `1 − Avg(XOR)` of the two waveforms.
    ///
    /// # Errors
    ///
    /// Propagates [`numerics::signal::xor_measure`] errors.
    pub fn xor_measure(&self) -> Result<f64, OscError> {
        let a = self.run.waveform(0)?;
        let b = self.run.waveform(1)?;
        Ok(signal::xor_measure(a, b, self.run.threshold().0)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(v1: f64, v2: f64) -> CoupledPair {
        CoupledPair::new(PairConfig::default(), Volts(v1), Volts(v2)).unwrap()
    }

    #[test]
    fn identical_inputs_lock() {
        let run = pair(0.62, 0.62).simulate_default().unwrap();
        assert!(run.is_locked(0.01).unwrap(), "identical pair must lock");
    }

    #[test]
    fn small_detuning_locks() {
        let run = pair(0.62, 0.63).simulate_default().unwrap();
        assert!(
            run.is_locked(0.02).unwrap(),
            "mismatch {}",
            run.frequency_mismatch().unwrap()
        );
    }

    #[test]
    fn both_oscillators_run() {
        let run = pair(0.6, 0.62).simulate_default().unwrap();
        assert!(run.cycles(0).unwrap() >= 5);
        assert!(run.cycles(1).unwrap() >= 5);
    }

    #[test]
    fn xor_measure_in_unit_interval() {
        let run = pair(0.6, 0.64).simulate_default().unwrap();
        let m = run.xor_measure().unwrap();
        assert!((0.0..=1.0).contains(&m), "measure {m}");
    }

    #[test]
    fn xor_measure_grows_with_detuning_near_zero() {
        // The Fig. 5 minimum at ΔV_gs = 0: larger detuning → larger measure.
        let base = pair(0.62, 0.62)
            .simulate_default()
            .unwrap()
            .xor_measure()
            .unwrap();
        let detuned = pair(0.62, 0.65)
            .simulate_default()
            .unwrap()
            .xor_measure()
            .unwrap();
        assert!(
            detuned > base,
            "measure should grow with |ΔV_gs|: {base} vs {detuned}"
        );
    }

    #[test]
    fn delta_vgs_reported() {
        let p = pair(0.65, 0.6);
        assert!((p.delta_vgs().0 - 0.05).abs() < 1e-12);
    }

    #[test]
    fn invalid_bias_rejected() {
        assert!(CoupledPair::new(PairConfig::default(), Volts(0.62), Volts(3.0)).is_err());
    }

    #[test]
    fn with_coupling_resistance_swaps_rc() {
        let cfg = PairConfig::default()
            .with_coupling_resistance(Ohms(10e3))
            .unwrap();
        assert_eq!(cfg.coupling.r_c(), Ohms(10e3));
        assert!(PairConfig::default()
            .with_coupling_resistance(Ohms(-5.0))
            .is_err());
    }

    #[test]
    fn deterministic() {
        let a = pair(0.6, 0.61).simulate_default().unwrap();
        let b = pair(0.6, 0.61).simulate_default().unwrap();
        assert_eq!(a.waveform(0).unwrap(), b.waveform(0).unwrap());
        assert_eq!(a.waveform(1).unwrap(), b.waveform(1).unwrap());
    }

    #[test]
    fn mismatched_devices_still_lock_when_close() {
        use device::units::Ohms;
        let cfg = PairConfig::default();
        let mut osc2 = cfg.osc;
        // 3% spread on the insulating resistance.
        osc2.vo2.r_insulating = Ohms(cfg.osc.vo2.r_insulating.0 * 1.03);
        let run = CoupledPair::with_mismatch(cfg, Volts(0.62), Volts(0.62), osc2)
            .unwrap()
            .simulate_default()
            .unwrap();
        assert!(
            run.is_locked(0.01).unwrap(),
            "mismatch {}",
            run.frequency_mismatch().unwrap()
        );
    }

    #[test]
    fn grossly_mismatched_devices_unlock() {
        use device::units::Ohms;
        let cfg = PairConfig::default();
        let mut osc2 = cfg.osc;
        osc2.vo2.r_insulating = Ohms(cfg.osc.vo2.r_insulating.0 * 2.0);
        osc2.vo2.r_metallic = Ohms(cfg.osc.vo2.r_metallic.0 * 2.0);
        let run = CoupledPair::with_mismatch(cfg, Volts(0.62), Volts(0.62), osc2)
            .unwrap()
            .simulate_default()
            .unwrap();
        assert!(
            !run.is_locked(0.005).unwrap(),
            "mismatch {}",
            run.frequency_mismatch().unwrap()
        );
    }

    #[test]
    fn phase_difference_is_finite_and_wrapped() {
        let run = pair(0.61, 0.62).simulate_default().unwrap();
        let dphi = run.phase_difference().unwrap();
        assert!((0.0..std::f64::consts::TAU).contains(&dphi));
    }
}
