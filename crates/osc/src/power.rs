//! Power accounting of the oscillator computing block.
//!
//! The paper's §III-B headline comparison: "The power consumption of the
//! coupled oscillator-based block designed in this example to identify
//! corners is 0.936 mW (including the XOR readout), whereas the power
//! consumption of the corresponding CMOS implementation at the 32 nm process
//! node is 3 mW."
//!
//! The oscillator side has two components, both computed here:
//!
//! * **analog power** — supply current drawn by the cells, integrated from
//!   the simulated waveforms: `P = V_DD · ⟨Σᵢ (V_DD − vᵢ)/R_sᵢ⟩`;
//! * **readout power** — the small digital XOR-readout circuit, costed with
//!   the [`device::cmos`] energy model at a readout clock derived from the
//!   oscillation frequency.
//!
//! # Example
//!
//! ```
//! use osc::pair::{CoupledPair, PairConfig};
//! use osc::power;
//! use device::cmos::{CmosEnergyModel, ProcessNode};
//! use device::units::Volts;
//!
//! let pair = CoupledPair::new(PairConfig::default(), Volts(0.62), Volts(0.63))?;
//! let run = pair.simulate_default()?;
//! let model = CmosEnergyModel::new(ProcessNode::Nm32);
//! let block = power::block_power(&pair, &run, &model, 8.0)?;
//! assert!(block.total().0 > 0.0);
//! assert!(block.analog.0 > block.readout.0, "analog should dominate");
//! # Ok::<(), osc::OscError>(())
//! ```

use crate::pair::{CoupledPair, PairRun};
use crate::readout::readout_op_counts;
use crate::OscError;
use device::cmos::CmosEnergyModel;
use device::units::{Seconds, Watts};

/// Power breakdown of one coupled-pair comparison block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OscillatorBlockPower {
    /// Supply power of the two analog cells.
    pub analog: Watts,
    /// Power of the digital XOR readout.
    pub readout: Watts,
}

impl OscillatorBlockPower {
    /// Total block power.
    #[must_use]
    pub fn total(&self) -> Watts {
        self.analog + self.readout
    }
}

impl std::fmt::Display for OscillatorBlockPower {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "analog {:.3} mW + readout {:.3} mW = {:.3} mW",
            self.analog.0 * 1e3,
            self.readout.0 * 1e3,
            self.total().0 * 1e3
        )
    }
}

/// Average supply power of the two cells over a recorded run.
///
/// # Errors
///
/// Propagates waveform-access errors.
pub fn analog_power(pair: &CoupledPair, run: &PairRun) -> Result<Watts, OscError> {
    let params = pair.config().osc;
    let (v_gs1, v_gs2) = pair.inputs();
    let r1 = params.series_resistance(v_gs1)?.0;
    let r2 = params.series_resistance(v_gs2)?.0;
    let mut total = 0.0;
    let mut count = 0usize;
    for (idx, r) in [(0usize, r1), (1usize, r2)] {
        let wf = run.waveform(idx)?;
        let mean_i: f64 =
            wf.iter().map(|&v| (params.vdd.0 - v) / r).sum::<f64>() / wf.len().max(1) as f64;
        total += params.vdd.0 * mean_i;
        count += 1;
    }
    debug_assert_eq!(count, 2);
    Ok(Watts(total))
}

/// Power of the XOR readout, clocked at `oversample ×` the oscillation
/// frequency of the recorded pair.
///
/// # Errors
///
/// Propagates frequency-estimation errors (the run must contain ≥ 2 cycles).
pub fn readout_power(
    run: &PairRun,
    model: &CmosEnergyModel,
    oversample: f64,
) -> Result<Watts, OscError> {
    let f_osc = run.frequency(0)?;
    let f_clock = f_osc * oversample.max(1.0);
    // Energy of one second of readout activity.
    let counts = readout_op_counts(f_clock.round() as u64);
    Ok(model.average_power(&counts, Seconds(1.0)))
}

/// Full block power: analog cells + XOR readout.
///
/// # Errors
///
/// Propagates [`analog_power`] and [`readout_power`] errors.
pub fn block_power(
    pair: &CoupledPair,
    run: &PairRun,
    model: &CmosEnergyModel,
    oversample: f64,
) -> Result<OscillatorBlockPower, OscError> {
    Ok(OscillatorBlockPower {
        analog: analog_power(pair, run)?,
        readout: readout_power(run, model, oversample)?,
    })
}

/// Energy of one comparison: block power × the time of one readout window
/// (`window_cycles` oscillation periods).
///
/// # Errors
///
/// Propagates power and frequency-estimation errors.
pub fn comparison_energy(
    pair: &CoupledPair,
    run: &PairRun,
    model: &CmosEnergyModel,
    oversample: f64,
    window_cycles: usize,
) -> Result<device::units::Joules, OscError> {
    let block = block_power(pair, run, model, oversample)?;
    let f_osc = run.frequency(0)?;
    let window = window_cycles.max(1) as f64 / f_osc;
    Ok(block.total() * Seconds(window))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::PairConfig;
    use device::cmos::ProcessNode;
    use device::units::Volts;

    fn setup() -> (CoupledPair, PairRun) {
        let pair = CoupledPair::new(PairConfig::default(), Volts(0.62), Volts(0.63)).unwrap();
        let run = pair.simulate_default().unwrap();
        (pair, run)
    }

    #[test]
    fn analog_power_in_plausible_range() {
        let (pair, run) = setup();
        let p = analog_power(&pair, &run).unwrap();
        // Two cells at ~2.5 V with tens-of-kΩ loads: tens to hundreds of µW.
        assert!(
            (1e-6..10e-3).contains(&p.0),
            "analog power {} W implausible",
            p.0
        );
    }

    #[test]
    fn readout_power_small_but_positive() {
        let (_, run) = setup();
        let model = CmosEnergyModel::new(ProcessNode::Nm32);
        let p = readout_power(&run, &model, 8.0).unwrap();
        assert!(p.0 > 0.0);
        assert!(p.0 < 1e-3, "readout power {} W too large", p.0);
    }

    #[test]
    fn block_total_is_sum() {
        let (pair, run) = setup();
        let model = CmosEnergyModel::new(ProcessNode::Nm32);
        let block = block_power(&pair, &run, &model, 8.0).unwrap();
        assert!((block.total().0 - (block.analog.0 + block.readout.0)).abs() < 1e-18);
    }

    #[test]
    fn higher_oversample_costs_more_readout_power() {
        let (_, run) = setup();
        let model = CmosEnergyModel::new(ProcessNode::Nm32);
        let p8 = readout_power(&run, &model, 8.0).unwrap();
        let p32 = readout_power(&run, &model, 32.0).unwrap();
        assert!(p32.0 > p8.0);
    }

    #[test]
    fn comparison_energy_scales_with_window() {
        let (pair, run) = setup();
        let model = CmosEnergyModel::new(ProcessNode::Nm32);
        let e16 = comparison_energy(&pair, &run, &model, 8.0, 16).unwrap();
        let e64 = comparison_energy(&pair, &run, &model, 8.0, 64).unwrap();
        assert!((e64.0 / e16.0 - 4.0).abs() < 0.01);
    }

    #[test]
    fn display_formats_milliwatts() {
        let block = OscillatorBlockPower {
            analog: Watts(0.5e-3),
            readout: Watts(0.1e-3),
        };
        let s = block.to_string();
        assert!(s.contains("0.500 mW"), "{s}");
        assert!(s.contains("0.600 mW"), "{s}");
    }
}
