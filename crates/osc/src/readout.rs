//! Thresholded, time-averaged XOR readout (paper Fig. 4).
//!
//! The readout circuit takes the two synchronized oscillator waveforms,
//! thresholds each into a logic level, XORs them, and time-averages the XOR
//! output "over a certain number of cycles to provide a stable output
//! value". The reported quantity is `1 − Avg(XOR)`.
//!
//! [`XorReadout`] performs that measurement over a configurable window of
//! cycles (the ablation knob of experiment A2), and
//! [`readout_op_counts`] models the digital cost of the readout for the
//! power comparison (two comparators, one XOR, and an up/down averaging
//! counter clocked every sample).
//!
//! # Example
//!
//! ```
//! use osc::pair::{CoupledPair, PairConfig};
//! use osc::readout::XorReadout;
//! use device::units::Volts;
//!
//! let pair = CoupledPair::new(PairConfig::default(), Volts(0.62), Volts(0.62))?;
//! let run = pair.simulate_default()?;
//! let readout = XorReadout::new(32);
//! let m = readout.measure(&run)?;
//! assert!((0.0..=1.0).contains(&m));
//! # Ok::<(), osc::OscError>(())
//! ```

use crate::pair::PairRun;
use crate::OscError;
use device::cmos::{Op, OpCounts};
use numerics::signal;

/// The Fig. 4 readout: threshold → XOR → average over a window of cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorReadout {
    window_cycles: usize,
}

impl Default for XorReadout {
    fn default() -> Self {
        XorReadout::new(32)
    }
}

impl XorReadout {
    /// Creates a readout averaging over `window_cycles` cycles of
    /// oscillator 0 (0 means "the whole recorded run").
    #[must_use]
    pub fn new(window_cycles: usize) -> Self {
        XorReadout { window_cycles }
    }

    /// The averaging window length in cycles.
    #[must_use]
    pub fn window_cycles(&self) -> usize {
        self.window_cycles
    }

    /// Computes `1 − Avg(XOR)` over the configured window, starting from the
    /// first full cycle of the recorded (post-warm-up) run.
    ///
    /// # Errors
    ///
    /// * [`OscError::TooFewCycles`] when the run holds fewer cycles than the
    ///   window requests.
    /// * Propagates waveform-access errors.
    pub fn measure(&self, run: &PairRun) -> Result<f64, OscError> {
        let a = run.waveform(0)?;
        let b = run.waveform(1)?;
        let threshold = run.as_run().threshold().0;
        if self.window_cycles == 0 {
            return Ok(signal::xor_measure(a, b, threshold)?);
        }
        let crossings = signal::rising_crossings(a, threshold);
        if crossings.len() < self.window_cycles + 1 {
            return Err(OscError::TooFewCycles {
                found: crossings.len().saturating_sub(1),
                required: self.window_cycles,
            });
        }
        let start = crossings[0].ceil() as usize;
        let end = (crossings[self.window_cycles].floor() as usize).min(a.len());
        Ok(signal::xor_measure(
            &a[start..end],
            &b[start..end],
            threshold,
        )?)
    }

    /// Measures over every disjoint window in the run, exposing the
    /// window-to-window spread (used by the A2 ablation to quantify how the
    /// averaging length trades latency for readout stability).
    ///
    /// # Errors
    ///
    /// Same conditions as [`XorReadout::measure`].
    pub fn measure_windows(&self, run: &PairRun) -> Result<Vec<f64>, OscError> {
        if self.window_cycles == 0 {
            return Ok(vec![self.measure(run)?]);
        }
        let a = run.waveform(0)?;
        let b = run.waveform(1)?;
        let threshold = run.as_run().threshold().0;
        let crossings = signal::rising_crossings(a, threshold);
        if crossings.len() < self.window_cycles + 1 {
            return Err(OscError::TooFewCycles {
                found: crossings.len().saturating_sub(1),
                required: self.window_cycles,
            });
        }
        let mut out = Vec::new();
        let mut cycle = 0;
        while cycle + self.window_cycles < crossings.len() {
            let start = crossings[cycle].ceil() as usize;
            let end = (crossings[cycle + self.window_cycles].floor() as usize).min(a.len());
            out.push(signal::xor_measure(
                &a[start..end],
                &b[start..end],
                threshold,
            )?);
            cycle += self.window_cycles;
        }
        Ok(out)
    }
}

impl XorReadout {
    /// Like [`XorReadout::measure_windows`], but with comparator-referred
    /// Gaussian-equivalent noise added to every waveform sample before
    /// thresholding — the disturbance the averaging window exists to
    /// suppress. Used by the window-length ablation (A2) to expose the
    /// stability–latency trade.
    ///
    /// # Errors
    ///
    /// Same conditions as [`XorReadout::measure_windows`].
    pub fn measure_windows_noisy(
        &self,
        run: &PairRun,
        noise: &mut dyn device::noise::NoiseSource,
    ) -> Result<Vec<f64>, OscError> {
        let mut a = run.waveform(0)?.to_vec();
        let mut b = run.waveform(1)?.to_vec();
        for v in a.iter_mut().chain(b.iter_mut()) {
            *v += noise.sample();
        }
        let threshold = run.as_run().threshold().0;
        let window = self.window_cycles.max(1);
        let crossings = signal::rising_crossings(&a, threshold);
        if crossings.len() < window + 1 {
            return Err(OscError::TooFewCycles {
                found: crossings.len().saturating_sub(1),
                required: window,
            });
        }
        let mut out = Vec::new();
        let mut cycle = 0;
        while cycle + window < crossings.len() {
            let start = crossings[cycle].ceil() as usize;
            let end = (crossings[cycle + window].floor() as usize).min(a.len());
            out.push(signal::xor_measure(
                &a[start..end],
                &b[start..end],
                threshold,
            )?);
            cycle += window;
        }
        Ok(out)
    }
}

/// Digital activity of one readout operation (per comparison): two analog
/// comparators (modelled as 8-bit compares), an XOR gate evaluated every
/// sample, and an averaging counter flip-flop clocked every sample.
///
/// `samples` is the number of clocked samples in the averaging window.
#[must_use]
pub fn readout_op_counts(samples: u64) -> OpCounts {
    let mut counts = OpCounts::new();
    counts.add(Op::Compare8, 2 * samples);
    counts.add(Op::LogicGate, samples);
    counts.add(Op::FlipFlop, samples);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::{CoupledPair, PairConfig};
    use device::units::Volts;

    fn run(v1: f64, v2: f64) -> PairRun {
        CoupledPair::new(PairConfig::default(), Volts(v1), Volts(v2))
            .unwrap()
            .simulate_default()
            .unwrap()
    }

    #[test]
    fn windowed_measure_in_unit_interval() {
        let r = run(0.62, 0.63);
        let m = XorReadout::new(16).measure(&r).unwrap();
        assert!((0.0..=1.0).contains(&m));
    }

    #[test]
    fn whole_run_window_matches_pairrun() {
        let r = run(0.62, 0.63);
        let whole = XorReadout::new(0).measure(&r).unwrap();
        let direct = r.xor_measure().unwrap();
        assert_eq!(whole, direct);
    }

    #[test]
    fn too_long_window_rejected() {
        let r = run(0.62, 0.62);
        let res = XorReadout::new(100_000).measure(&r);
        assert!(matches!(res, Err(OscError::TooFewCycles { .. })));
    }

    #[test]
    fn longer_windows_reduce_spread() {
        let r = run(0.62, 0.628);
        let short: Vec<f64> = XorReadout::new(4).measure_windows(&r).unwrap();
        let long: Vec<f64> = XorReadout::new(16).measure_windows(&r).unwrap();
        assert!(short.len() > long.len());
        let spread = |v: &[f64]| {
            let max = v.iter().cloned().fold(f64::MIN, f64::max);
            let min = v.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        // Not strictly guaranteed sample-by-sample, but with these seeds the
        // averaging effect is robust; allow equality for degenerate spreads.
        assert!(
            spread(&long) <= spread(&short) + 1e-9,
            "long spread {} vs short spread {}",
            spread(&long),
            spread(&short)
        );
    }

    #[test]
    fn windows_are_disjoint_and_plural() {
        let r = run(0.62, 0.62);
        let windows = XorReadout::new(8).measure_windows(&r).unwrap();
        assert!(windows.len() >= 2, "got {} windows", windows.len());
    }

    #[test]
    fn noisy_windows_have_spread_that_shrinks_with_length() {
        use device::noise::GaussianNoise;
        let mut cfg = PairConfig::default();
        cfg.sim.duration = device::units::Seconds(8e-6);
        let r = CoupledPair::new(cfg, Volts(0.6225), Volts(0.6175))
            .unwrap()
            .simulate_default()
            .unwrap();
        let spread = |cycles: usize, seed: u64| {
            let mut noise = GaussianNoise::new(0.05, seed);
            let values = XorReadout::new(cycles)
                .measure_windows_noisy(&r, &mut noise)
                .unwrap();
            let max = values.iter().cloned().fold(f64::MIN, f64::max);
            let min = values.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        let short = spread(4, 1);
        let long = spread(32, 1);
        assert!(short > 0.0, "noise must create window-to-window spread");
        assert!(
            long <= short,
            "averaging should not increase spread: {short} vs {long}"
        );
    }

    #[test]
    fn op_counts_scale_with_samples() {
        let c = readout_op_counts(100);
        assert_eq!(c.count(Op::Compare8), 200);
        assert_eq!(c.count(Op::LogicGate), 100);
        assert_eq!(c.count(Op::FlipFlop), 100);
    }

    #[test]
    fn default_window_is_32() {
        assert_eq!(XorReadout::default().window_cycles(), 32);
    }
}
