//! Single 1T1R VO₂ relaxation oscillator.
//!
//! The cell (paper §III-A, Fig. 3 inset): a VO₂ IMT device from the
//! oscillation node to ground, a node capacitance `C`, and a series NMOS
//! from `V_DD` whose channel resistance — set by the gate voltage `V_gs` —
//! controls the charge rate and therefore the oscillation frequency. When
//! the load line crosses the hysteretic window the node voltage relaxes
//! back and forth between the two switching thresholds forever.
//!
//! The dynamics integrated here:
//!
//! ```text
//! C·dv/dt = (V_DD − v)/R_s(V_gs) − v·G_vo2(f)
//! df/dt   = (m − f)/τ_switch          (metallic fraction relaxation)
//! m       ∈ {0, 1}  — hysteresis comparator updated after every step
//! ```
//!
//! # Example
//!
//! ```
//! use osc::relaxation::{OscillatorParams, SingleOscillator};
//! use device::units::Volts;
//!
//! let params = OscillatorParams::default();
//! let osc = SingleOscillator::new(params, Volts(0.62))?;
//! let run = osc.simulate_default()?;
//! let f = run.frequency(0)?;
//! assert!(f > 1e6, "should oscillate in the MHz range, got {f}");
//! # Ok::<(), osc::OscError>(())
//! ```

use crate::OscError;
use device::mosfet::{Mosfet, MosfetParams};
use device::units::{Farads, Ohms, Seconds, Volts};
use device::vo2::{oscillation_condition, Vo2Params};
use numerics::ode::{integrate_sampled, OdeSystem, Rk4};
use numerics::signal;

/// Per-oscillator state layout inside ODE state vectors.
///
/// Each oscillator occupies [`STATE_VARS`] consecutive slots:
/// `[v, f, m]` — node voltage, metallic fraction, discrete phase (0/1).
pub const STATE_VARS: usize = 3;

/// Circuit parameters shared by every oscillator in a fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OscillatorParams {
    /// VO₂ device parameters.
    pub vo2: Vo2Params,
    /// Series-transistor parameters.
    pub mosfet: MosfetParams,
    /// Supply voltage.
    pub vdd: Volts,
    /// Node capacitance.
    pub c_node: Farads,
}

impl Default for OscillatorParams {
    fn default() -> Self {
        let mut vo2 = Vo2Params::default();
        // Faster phase transition than the device-crate default so the IMT
        // lag stays subordinate to the RC time constants (tens of ns).
        vo2.tau_switch = Seconds(2e-9);
        let mut mosfet = MosfetParams::default();
        // k = 10 µA/V² puts the useful V_gs input range at ~0.5–0.9 V for
        // the µA-class supply currents reported for VO₂ oscillators.
        mosfet.k = 10e-6;
        OscillatorParams {
            vo2,
            mosfet,
            vdd: Volts(2.5),
            c_node: Farads(0.1e-12),
        }
    }
}

impl OscillatorParams {
    /// The series resistance produced by a gate voltage.
    ///
    /// # Errors
    ///
    /// Returns [`OscError::Device`] for invalid MOSFET parameters.
    pub fn series_resistance(&self, v_gs: Volts) -> Result<Ohms, OscError> {
        let fet = Mosfet::new(self.mosfet)?;
        Ok(fet.effective_resistance(v_gs))
    }

    /// The `(V_gs_min, V_gs_max)` interval over which the cell oscillates,
    /// probed at `resolution` points.
    ///
    /// # Errors
    ///
    /// Returns [`OscError::NoOscillation`] when no probed bias point
    /// oscillates.
    pub fn oscillating_vgs_range(&self, resolution: usize) -> Result<(Volts, Volts), OscError> {
        let res = resolution.max(2);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..res {
            let v_gs = self.mosfet.v_th.0 + 0.02 + i as f64 * (2.0 / res as f64);
            if let Ok(r) = self.series_resistance(Volts(v_gs)) {
                if r.0.is_finite() && oscillation_condition(&self.vo2, self.vdd, r) {
                    lo = lo.min(v_gs);
                    hi = hi.max(v_gs);
                }
            }
        }
        if lo.is_infinite() {
            return Err(OscError::NoOscillation {
                r_series_ohms: f64::NAN,
            });
        }
        Ok((Volts(lo), Volts(hi)))
    }

    /// The mid-swing threshold used by the XOR readout: halfway between the
    /// two switching voltages.
    #[must_use]
    pub fn readout_threshold(&self) -> Volts {
        Volts(0.5 * (self.vo2.v_imt.0 + self.vo2.v_mit.0))
    }

    /// Validates the bias point and returns the series resistance.
    ///
    /// # Errors
    ///
    /// * [`OscError::Device`] for invalid device parameters.
    /// * [`OscError::NoOscillation`] when the load line misses the
    ///   hysteretic window.
    pub fn checked_bias(&self, v_gs: Volts) -> Result<Ohms, OscError> {
        self.vo2.validate()?;
        self.mosfet.validate()?;
        let r = self.series_resistance(v_gs)?;
        if !r.0.is_finite() || !oscillation_condition(&self.vo2, self.vdd, r) {
            return Err(OscError::NoOscillation { r_series_ohms: r.0 });
        }
        Ok(r)
    }
}

/// Time-stepping configuration for oscillator simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Integration step.
    pub dt: Seconds,
    /// Total simulated time.
    pub duration: Seconds,
    /// Fraction of the run discarded as transient warm-up.
    pub warmup_fraction: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            dt: Seconds(0.1e-9),
            duration: Seconds(3e-6),
            warmup_fraction: 0.25,
        }
    }
}

/// Shared RHS helper: writes the derivatives for one oscillator given its
/// state slice `[v, f, m]` and any extra node current `i_extra` flowing
/// *out* of the node (e.g. into a coupling branch).
pub(crate) fn oscillator_rhs(
    params: &OscillatorParams,
    r_series: f64,
    y: &[f64],
    dy: &mut [f64],
    i_extra: f64,
) {
    let v = y[0];
    let f = y[1];
    let m = y[2];
    let g_ins = 1.0 / params.vo2.r_insulating.0;
    let g_met = 1.0 / params.vo2.r_metallic.0;
    let g = g_ins + (g_met - g_ins) * f.clamp(0.0, 1.0);
    dy[0] = ((params.vdd.0 - v) / r_series - v * g - i_extra) / params.c_node.0;
    let tau = params.vo2.tau_switch.0;
    dy[1] = if tau > 0.0 { (m - f) / tau } else { 0.0 };
    dy[2] = 0.0;
}

/// Shared projection helper: hysteresis comparator + metallic-fraction
/// clamping for one oscillator state slice.
pub(crate) fn oscillator_project(params: &OscillatorParams, y: &mut [f64]) {
    let v = y[0];
    let metallic = y[2] > 0.5;
    let new_metallic = if metallic {
        v >= params.vo2.v_mit.0
    } else {
        v > params.vo2.v_imt.0
    };
    y[2] = if new_metallic { 1.0 } else { 0.0 };
    if params.vo2.tau_switch.0 <= 0.0 {
        y[1] = y[2];
    } else {
        y[1] = y[1].clamp(0.0, 1.0);
    }
}

/// A single relaxation oscillator ready to simulate.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleOscillator {
    params: OscillatorParams,
    r_series: f64,
    v_gs: Volts,
}

impl SingleOscillator {
    /// Creates an oscillator biased at gate voltage `v_gs`.
    ///
    /// # Errors
    ///
    /// Propagates [`OscillatorParams::checked_bias`] errors — in particular
    /// [`OscError::NoOscillation`] for bias points outside the oscillating
    /// window.
    pub fn new(params: OscillatorParams, v_gs: Volts) -> Result<Self, OscError> {
        let r = params.checked_bias(v_gs)?;
        Ok(SingleOscillator {
            params,
            r_series: r.0,
            v_gs,
        })
    }

    /// The circuit parameters.
    #[must_use]
    pub fn params(&self) -> &OscillatorParams {
        &self.params
    }

    /// The gate voltage encoding this oscillator's input.
    #[must_use]
    pub fn v_gs(&self) -> Volts {
        self.v_gs
    }

    /// The series resistance at this bias point.
    #[must_use]
    pub fn r_series(&self) -> Ohms {
        Ohms(self.r_series)
    }

    /// Simulates with the given configuration.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice but kept fallible for parity with
    /// the coupled simulators.
    pub fn simulate(&self, config: SimConfig) -> Result<OscRun, OscError> {
        let mut y = vec![0.0; STATE_VARS];
        let mut stepper = Rk4::new(config.dt.0);
        let (times, states) =
            integrate_sampled(self, &mut stepper, 0.0, config.duration.0, &mut y, 1);
        Ok(OscRun::from_states(
            &times,
            &states,
            config,
            1,
            self.params.readout_threshold(),
        ))
    }

    /// Simulates with [`SimConfig::default`].
    ///
    /// # Errors
    ///
    /// See [`SingleOscillator::simulate`].
    pub fn simulate_default(&self) -> Result<OscRun, OscError> {
        self.simulate(SimConfig::default())
    }
}

impl OdeSystem for SingleOscillator {
    fn dim(&self) -> usize {
        STATE_VARS
    }

    fn rhs(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        oscillator_rhs(&self.params, self.r_series, y, dy, 0.0);
    }

    fn project(&self, y: &mut [f64]) {
        oscillator_project(&self.params, y);
    }
}

/// A recorded oscillator run: node-voltage waveforms after warm-up.
#[derive(Debug, Clone, PartialEq)]
pub struct OscRun {
    dt: f64,
    threshold: f64,
    /// `waveforms[i]` is the node voltage of oscillator `i`.
    waveforms: Vec<Vec<f64>>,
}

impl OscRun {
    /// Builds a run record from sampled ODE states, discarding warm-up and
    /// extracting each oscillator's node voltage (state slot `3·i`).
    pub(crate) fn from_states(
        _times: &[f64],
        states: &[Vec<f64>],
        config: SimConfig,
        n_osc: usize,
        threshold: Volts,
    ) -> Self {
        let skip = (states.len() as f64 * config.warmup_fraction.clamp(0.0, 0.9)) as usize;
        let mut waveforms = vec![Vec::with_capacity(states.len() - skip); n_osc];
        for state in &states[skip..] {
            for (i, wf) in waveforms.iter_mut().enumerate() {
                wf.push(state[i * STATE_VARS]);
            }
        }
        OscRun {
            dt: config.dt.0,
            threshold: threshold.0,
            waveforms,
        }
    }

    /// Number of oscillators recorded.
    #[must_use]
    pub fn n_oscillators(&self) -> usize {
        self.waveforms.len()
    }

    /// Sampling interval of the waveforms.
    #[must_use]
    pub fn dt(&self) -> Seconds {
        Seconds(self.dt)
    }

    /// The readout threshold used for cycle detection.
    #[must_use]
    pub fn threshold(&self) -> Volts {
        Volts(self.threshold)
    }

    /// The recorded node-voltage waveform of oscillator `index`.
    ///
    /// # Errors
    ///
    /// Returns [`OscError::BadIndex`] when out of range.
    pub fn waveform(&self, index: usize) -> Result<&[f64], OscError> {
        self.waveforms
            .get(index)
            .map(Vec::as_slice)
            .ok_or(OscError::BadIndex {
                index,
                len: self.waveforms.len(),
            })
    }

    /// Oscillation frequency (Hz) of oscillator `index` from threshold
    /// crossings.
    ///
    /// # Errors
    ///
    /// * [`OscError::BadIndex`] for an out-of-range index.
    /// * [`OscError::TooFewCycles`] when fewer than 2 cycles were captured.
    pub fn frequency(&self, index: usize) -> Result<f64, OscError> {
        let wf = self.waveform(index)?;
        signal::estimate_frequency(wf, self.dt, self.threshold).map_err(|_| {
            OscError::TooFewCycles {
                found: signal::rising_crossings(wf, self.threshold).len(),
                required: 2,
            }
        })
    }

    /// Number of complete cycles captured for oscillator `index`.
    ///
    /// # Errors
    ///
    /// Returns [`OscError::BadIndex`] when out of range.
    pub fn cycles(&self, index: usize) -> Result<usize, OscError> {
        let wf = self.waveform(index)?;
        Ok(signal::rising_crossings(wf, self.threshold)
            .len()
            .saturating_sub(1))
    }

    /// Peak-to-peak swing of oscillator `index`.
    ///
    /// # Errors
    ///
    /// Returns [`OscError::BadIndex`] when out of range.
    pub fn swing(&self, index: usize) -> Result<f64, OscError> {
        let wf = self.waveform(index)?;
        let max = wf.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = wf.iter().cloned().fold(f64::INFINITY, f64::min);
        Ok(max - min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn osc(v_gs: f64) -> SingleOscillator {
        SingleOscillator::new(OscillatorParams::default(), Volts(v_gs)).unwrap()
    }

    #[test]
    fn default_params_have_oscillating_window() {
        let params = OscillatorParams::default();
        let (lo, hi) = params.oscillating_vgs_range(200).unwrap();
        assert!(hi.0 > lo.0, "window empty: {lo} .. {hi}");
        // The window should comfortably contain ~0.6 V.
        assert!(lo.0 < 0.6 && hi.0 > 0.65, "window {lo} .. {hi}");
    }

    #[test]
    fn oscillates_in_mhz_range() {
        let run = osc(0.62).simulate_default().unwrap();
        let f = run.frequency(0).unwrap();
        assert!(
            (1e6..1e9).contains(&f),
            "frequency {f} Hz outside plausible range"
        );
        assert!(run.cycles(0).unwrap() >= 10);
    }

    #[test]
    fn swing_spans_hysteresis_window() {
        let params = OscillatorParams::default();
        let run = osc(0.62).simulate_default().unwrap();
        let swing = run.swing(0).unwrap();
        assert!(
            swing >= params.vo2.hysteresis_window().0 * 0.9,
            "swing {swing} too small"
        );
    }

    #[test]
    fn frequency_increases_with_vgs() {
        // Higher V_gs → lower series resistance → faster charging.
        let f_slow = osc(0.55).simulate_default().unwrap().frequency(0).unwrap();
        let f_fast = osc(0.75).simulate_default().unwrap().frequency(0).unwrap();
        assert!(
            f_fast > f_slow * 1.05,
            "expected tuning: {f_slow} → {f_fast}"
        );
    }

    #[test]
    fn non_oscillating_bias_rejected() {
        let params = OscillatorParams::default();
        // Very high V_gs → tiny series resistance → metallic latch.
        assert!(matches!(
            SingleOscillator::new(params, Volts(5.0)),
            Err(OscError::NoOscillation { .. })
        ));
        // Below threshold → infinite resistance → no charge path.
        assert!(matches!(
            SingleOscillator::new(params, Volts(0.2)),
            Err(OscError::NoOscillation { .. })
        ));
    }

    #[test]
    fn waveform_index_checked() {
        let run = osc(0.62).simulate_default().unwrap();
        assert!(run.waveform(0).is_ok());
        assert!(matches!(
            run.waveform(1),
            Err(OscError::BadIndex { index: 1, len: 1 })
        ));
    }

    #[test]
    fn readout_threshold_is_mid_window() {
        let p = OscillatorParams::default();
        let th = p.readout_threshold();
        assert!(th.0 > p.vo2.v_mit.0 && th.0 < p.vo2.v_imt.0);
    }

    #[test]
    fn deterministic_simulation() {
        let a = osc(0.6).simulate_default().unwrap();
        let b = osc(0.6).simulate_default().unwrap();
        assert_eq!(a.waveform(0).unwrap(), b.waveform(0).unwrap());
    }

    #[test]
    fn series_resistance_tracks_vgs() {
        let p = OscillatorParams::default();
        let r1 = p.series_resistance(Volts(0.5)).unwrap();
        let r2 = p.series_resistance(Volts(0.9)).unwrap();
        assert!(r2.0 < r1.0);
    }

    #[test]
    fn waveform_stays_bounded_by_supply() {
        let p = OscillatorParams::default();
        let run = osc(0.62).simulate_default().unwrap();
        for &v in run.waveform(0).unwrap() {
            assert!((-0.01..=p.vdd.0 + 0.01).contains(&v), "v = {v}");
        }
    }
}
