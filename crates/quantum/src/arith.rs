//! Modular-arithmetic unitaries for order finding.
//!
//! Shor's algorithm needs controlled `U_a` gates where
//! `U_a |y⟩ = |a·y mod N⟩` on the work register (and identity for
//! `y ≥ N`). These are basis-state permutations, so the simulator applies
//! them directly as permutations instead of decomposing into elementary
//! gates — exactly the freedom a state-vector backend provides.
//!
//! # Example
//!
//! ```
//! use quantum::arith::modmul_permutation;
//!
//! // U_2 on a 4-bit work register mod 15: |1⟩ → |2⟩.
//! let perm = modmul_permutation(2, 15, 4)?;
//! assert_eq!(perm[1], 2);
//! assert_eq!(perm[7], 14);
//! assert_eq!(perm[15], 15); // y >= N untouched
//! # Ok::<(), quantum::QuantumError>(())
//! ```

use crate::numtheory::gcd;
use crate::state::StateVector;
use crate::QuantumError;

/// The permutation of a `work_bits`-wide register implementing
/// `y ↦ a·y mod n` for `y < n` (identity elsewhere).
///
/// # Errors
///
/// Returns [`QuantumError::Algorithm`] when `gcd(a, n) != 1` (the map would
/// not be a bijection) or `n` does not fit in `work_bits`.
pub fn modmul_permutation(a: u64, n: u64, work_bits: usize) -> Result<Vec<usize>, QuantumError> {
    if n == 0 || (n as u128) > (1u128 << work_bits) {
        return Err(QuantumError::Algorithm {
            reason: format!("modulus {n} does not fit in {work_bits} bits"),
        });
    }
    if gcd(a % n, n) != 1 {
        return Err(QuantumError::Algorithm {
            reason: format!("gcd({a}, {n}) != 1: modular multiplication is not invertible"),
        });
    }
    let dim = 1usize << work_bits;
    let mut perm = Vec::with_capacity(dim);
    for y in 0..dim {
        if (y as u64) < n {
            perm.push(((a % n) * (y as u64) % n) as usize);
        } else {
            perm.push(y);
        }
    }
    Ok(perm)
}

/// Applies the controlled modular multiplication
/// `|c⟩|y⟩ → |c⟩|a^c · y mod n⟩` to a combined state whose low
/// `counting_bits` qubits are the counting register and whose next
/// `work_bits` qubits are the work register. `control` indexes into the
/// counting register.
///
/// # Errors
///
/// * Propagates [`modmul_permutation`] errors.
/// * [`QuantumError::QubitOutOfRange`] when the registers exceed the state.
pub fn apply_controlled_modmul(
    state: &mut StateVector,
    control: usize,
    counting_bits: usize,
    work_bits: usize,
    a: u64,
    n: u64,
) -> Result<(), QuantumError> {
    if counting_bits + work_bits > state.n_qubits() || control >= counting_bits {
        return Err(QuantumError::QubitOutOfRange {
            qubit: control.max(counting_bits + work_bits),
            n_qubits: state.n_qubits(),
        });
    }
    let work_perm = modmul_permutation(a, n, work_bits)?;
    let dim = state.dim();
    let work_mask = (1usize << work_bits) - 1;
    let control_mask = 1usize << control;
    let mut perm = Vec::with_capacity(dim);
    for i in 0..dim {
        if i & control_mask == 0 {
            perm.push(i);
        } else {
            let y = (i >> counting_bits) & work_mask;
            let y_new = work_perm[y];
            let cleared = i & !(work_mask << counting_bits);
            perm.push(cleared | (y_new << counting_bits));
        }
    }
    state.apply_permutation(&perm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_bijection() {
        let perm = modmul_permutation(7, 15, 4).unwrap();
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_matches_modular_multiplication() {
        let perm = modmul_permutation(4, 15, 4).unwrap();
        for y in 0..15usize {
            assert_eq!(perm[y], 4 * y % 15);
        }
    }

    #[test]
    fn non_coprime_rejected() {
        assert!(modmul_permutation(3, 15, 4).is_err());
        assert!(modmul_permutation(5, 15, 4).is_err());
    }

    #[test]
    fn modulus_must_fit() {
        assert!(modmul_permutation(2, 17, 4).is_err());
        assert!(modmul_permutation(3, 16, 4).is_ok());
    }

    #[test]
    fn controlled_modmul_acts_only_when_control_set() {
        // 2 counting bits + 4 work bits.
        let counting = 2;
        let work = 4;
        // Work register starts at |3⟩, counting at |01⟩ (control 0 set).
        let idx = (3usize << counting) | 0b01;
        let mut s = StateVector::basis(counting + work, idx).unwrap();
        apply_controlled_modmul(&mut s, 0, counting, work, 7, 15).unwrap();
        let expected = ((7 * 3 % 15) << counting) | 0b01;
        assert_eq!(s.probability(expected).unwrap(), 1.0);

        // Control clear → untouched.
        let idx = (3usize << counting) | 0b10;
        let mut s = StateVector::basis(counting + work, idx).unwrap();
        apply_controlled_modmul(&mut s, 0, counting, work, 7, 15).unwrap();
        assert_eq!(s.probability(idx).unwrap(), 1.0);
    }

    #[test]
    fn repeated_application_cycles_with_order() {
        // Order of 2 mod 15 is 4: applying controlled-U_2 four times with
        // the control set returns the work register to its start.
        let counting = 1;
        let work = 4;
        let start = (1usize << counting) | 1; // work=1, control set
        let mut s = StateVector::basis(counting + work, start).unwrap();
        for _ in 0..4 {
            apply_controlled_modmul(&mut s, 0, counting, work, 2, 15).unwrap();
        }
        assert_eq!(s.probability(start).unwrap(), 1.0);
    }

    #[test]
    fn bad_register_geometry_rejected() {
        let mut s = StateVector::zero(4);
        assert!(apply_controlled_modmul(&mut s, 0, 2, 4, 7, 15).is_err());
        assert!(apply_controlled_modmul(&mut s, 2, 2, 2, 3, 4).is_err());
    }
}
