//! Circuit IR and builder.
//!
//! [`Circuit`] is an ordered gate list over a fixed-width register, with a
//! fluent builder API, depth/width statistics, inversion, and composition.
//! It is the unit the compiler passes ([`crate::mapping`]) and the
//! micro-architecture ([`crate::microarch`]) operate on.
//!
//! # Example
//!
//! ```
//! use quantum::circuit::Circuit;
//!
//! let mut c = Circuit::new(3)?;
//! c.h(0)?.cx(0, 1)?.cx(1, 2)?;
//! assert_eq!(c.len(), 3);
//! assert_eq!(c.depth(), 3);
//! # Ok::<(), quantum::QuantumError>(())
//! ```

use crate::gate::Gate;
use crate::state::StateVector;
use crate::{QuantumError, MAX_QUBITS};

/// An ordered list of gates over an `n`-qubit register.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::BadRegisterWidth`] outside `1..=MAX_QUBITS`.
    pub fn new(n_qubits: usize) -> Result<Self, QuantumError> {
        if n_qubits == 0 || n_qubits > MAX_QUBITS {
            return Err(QuantumError::BadRegisterWidth { n_qubits });
        }
        Ok(Circuit {
            n_qubits,
            gates: Vec::new(),
        })
    }

    /// Register width.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Gate count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no gates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate list.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends a validated gate.
    ///
    /// # Errors
    ///
    /// * [`QuantumError::QubitOutOfRange`] for an operand beyond the width.
    /// * [`QuantumError::DuplicateQubits`] when operands coincide.
    pub fn push(&mut self, gate: Gate) -> Result<&mut Self, QuantumError> {
        let qubits = gate.qubits();
        for &q in &qubits {
            if q >= self.n_qubits {
                return Err(QuantumError::QubitOutOfRange {
                    qubit: q,
                    n_qubits: self.n_qubits,
                });
            }
        }
        for i in 0..qubits.len() {
            for j in i + 1..qubits.len() {
                if qubits[i] == qubits[j] {
                    return Err(QuantumError::DuplicateQubits);
                }
            }
        }
        self.gates.push(gate);
        Ok(self)
    }

    /// Appends Hadamard. See [`Circuit::push`] for errors.
    ///
    /// # Errors
    ///
    /// See [`Circuit::push`].
    pub fn h(&mut self, q: usize) -> Result<&mut Self, QuantumError> {
        self.push(Gate::H(q))
    }

    /// Appends Pauli X.
    ///
    /// # Errors
    ///
    /// See [`Circuit::push`].
    pub fn x(&mut self, q: usize) -> Result<&mut Self, QuantumError> {
        self.push(Gate::X(q))
    }

    /// Appends Pauli Z.
    ///
    /// # Errors
    ///
    /// See [`Circuit::push`].
    pub fn z(&mut self, q: usize) -> Result<&mut Self, QuantumError> {
        self.push(Gate::Z(q))
    }

    /// Appends a phase gate.
    ///
    /// # Errors
    ///
    /// See [`Circuit::push`].
    pub fn phase(&mut self, q: usize, theta: f64) -> Result<&mut Self, QuantumError> {
        self.push(Gate::Phase(q, theta))
    }

    /// Appends CNOT.
    ///
    /// # Errors
    ///
    /// See [`Circuit::push`].
    pub fn cx(&mut self, control: usize, target: usize) -> Result<&mut Self, QuantumError> {
        self.push(Gate::CX(control, target))
    }

    /// Appends controlled phase.
    ///
    /// # Errors
    ///
    /// See [`Circuit::push`].
    pub fn cphase(
        &mut self,
        control: usize,
        target: usize,
        theta: f64,
    ) -> Result<&mut Self, QuantumError> {
        self.push(Gate::CPhase(control, target, theta))
    }

    /// Appends SWAP.
    ///
    /// # Errors
    ///
    /// See [`Circuit::push`].
    pub fn swap(&mut self, a: usize, b: usize) -> Result<&mut Self, QuantumError> {
        self.push(Gate::Swap(a, b))
    }

    /// Appends another circuit's gates (widths must match).
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::BadRegisterWidth`] on width mismatch.
    pub fn extend(&mut self, other: &Circuit) -> Result<&mut Self, QuantumError> {
        if other.n_qubits != self.n_qubits {
            return Err(QuantumError::BadRegisterWidth {
                n_qubits: other.n_qubits,
            });
        }
        self.gates.extend_from_slice(&other.gates);
        Ok(self)
    }

    /// The inverse circuit (reversed order, inverted gates).
    #[must_use]
    pub fn inverse(&self) -> Circuit {
        Circuit {
            n_qubits: self.n_qubits,
            gates: self.gates.iter().rev().map(Gate::inverse).collect(),
        }
    }

    /// Circuit depth under greedy ASAP layering (gates on disjoint qubits
    /// share a layer).
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut ready_at = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for gate in &self.gates {
            let start = gate
                .qubits()
                .iter()
                .map(|&q| ready_at[q])
                .max()
                .unwrap_or(0);
            let finish = start + 1;
            for q in gate.qubits() {
                ready_at[q] = finish;
            }
            depth = depth.max(finish);
        }
        depth
    }

    /// Counts gates by arity: `(single, double, triple)`.
    #[must_use]
    pub fn arity_histogram(&self) -> (usize, usize, usize) {
        let mut h = (0, 0, 0);
        for g in &self.gates {
            match g.arity() {
                1 => h.0 += 1,
                2 => h.1 += 1,
                _ => h.2 += 1,
            }
        }
        h
    }

    /// Runs the circuit on an input state, returning the output state.
    ///
    /// # Errors
    ///
    /// * [`QuantumError::BadRegisterWidth`] when the state width mismatches.
    /// * Propagates gate-application errors.
    pub fn run(&self, mut state: StateVector) -> Result<StateVector, QuantumError> {
        if state.n_qubits() != self.n_qubits {
            return Err(QuantumError::BadRegisterWidth {
                n_qubits: state.n_qubits(),
            });
        }
        for gate in &self.gates {
            gate.apply(&mut state)?;
        }
        Ok(state)
    }
}

impl std::fmt::Display for Circuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "qubits {}", self.n_qubits)?;
        for g in &self.gates {
            writeln!(f, "{g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates() {
        let mut c = Circuit::new(2).unwrap();
        assert!(c.h(0).is_ok());
        assert!(matches!(
            c.h(5),
            Err(QuantumError::QubitOutOfRange { qubit: 5, .. })
        ));
        assert!(matches!(c.cx(1, 1), Err(QuantumError::DuplicateQubits)));
    }

    #[test]
    fn width_zero_rejected() {
        assert!(Circuit::new(0).is_err());
    }

    #[test]
    fn ghz_state() {
        let mut c = Circuit::new(3).unwrap();
        c.h(0).unwrap().cx(0, 1).unwrap().cx(1, 2).unwrap();
        let out = c.run(StateVector::zero(3)).unwrap();
        assert!((out.probability(0b000).unwrap() - 0.5).abs() < 1e-12);
        assert!((out.probability(0b111).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn run_rejects_wrong_width() {
        let c = Circuit::new(2).unwrap();
        assert!(c.run(StateVector::zero(3)).is_err());
    }

    #[test]
    fn inverse_undoes() {
        let mut c = Circuit::new(3).unwrap();
        c.h(0)
            .unwrap()
            .cphase(0, 1, 0.7)
            .unwrap()
            .cx(1, 2)
            .unwrap()
            .phase(2, -0.3)
            .unwrap();
        let forward = c.run(StateVector::zero(3)).unwrap();
        let back = c.inverse().run(forward).unwrap();
        assert!((back.probability(0).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn depth_layers_disjoint_gates() {
        let mut c = Circuit::new(4).unwrap();
        // h q0 and h q1 share a layer; cx(0,1) must follow both.
        c.h(0).unwrap().h(1).unwrap().cx(0, 1).unwrap();
        assert_eq!(c.depth(), 2);
        // Independent pair adds no depth.
        c.h(2).unwrap().h(3).unwrap();
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn arity_histogram_counts() {
        let mut c = Circuit::new(3).unwrap();
        c.h(0)
            .unwrap()
            .x(1)
            .unwrap()
            .cx(0, 1)
            .unwrap()
            .push(Gate::Toffoli(0, 1, 2))
            .unwrap();
        assert_eq!(c.arity_histogram(), (2, 1, 1));
    }

    #[test]
    fn extend_requires_same_width() {
        let mut a = Circuit::new(2).unwrap();
        let b = Circuit::new(3).unwrap();
        assert!(a.extend(&b).is_err());
        let mut c = Circuit::new(2).unwrap();
        c.h(0).unwrap();
        a.extend(&c).unwrap();
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn display_lists_gates() {
        let mut c = Circuit::new(2).unwrap();
        c.h(0).unwrap().cx(0, 1).unwrap();
        let s = c.to_string();
        assert!(s.contains("qubits 2"));
        assert!(s.contains("h q0"));
        assert!(s.contains("cnot q0, q1"));
    }

    #[test]
    fn empty_circuit_properties() {
        let c = Circuit::new(2).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.depth(), 0);
        let out = c.run(StateVector::zero(2)).unwrap();
        assert_eq!(out.probability(0).unwrap(), 1.0);
    }
}
