//! Gate decomposition into the `{1-qubit, CX}` basis.
//!
//! Physical chips execute a small native set; the compiler layer of the
//! Fig. 2 stack must lower everything else. This pass rewrites SWAP,
//! CZ, controlled-phase, and Toffoli gates into single-qubit gates plus
//! CNOTs (textbook constructions), which also makes circuits routable by
//! [`crate::mapping`] (whose router accepts only 1- and 2-qubit gates).
//!
//! # Example
//!
//! ```
//! use quantum::circuit::Circuit;
//! use quantum::decompose::decompose_circuit;
//! use quantum::gate::Gate;
//!
//! let mut c = Circuit::new(3)?;
//! c.push(Gate::Toffoli(0, 1, 2))?;
//! let lowered = decompose_circuit(&c)?;
//! assert!(lowered.gates().iter().all(|g| g.arity() <= 2));
//! # Ok::<(), quantum::QuantumError>(())
//! ```

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::QuantumError;
use std::f64::consts::FRAC_PI_2;

/// Lowers one gate into the `{1q, CX}` basis (native gates pass through).
#[must_use]
pub fn decompose_gate(gate: Gate) -> Vec<Gate> {
    match gate {
        // SWAP = 3 CNOTs.
        Gate::Swap(a, b) => vec![Gate::CX(a, b), Gate::CX(b, a), Gate::CX(a, b)],
        // CZ = H(t) · CX · H(t).
        Gate::CZ(c, t) => vec![Gate::H(t), Gate::CX(c, t), Gate::H(t)],
        // Controlled phase via two CNOTs and three half-angle phases.
        Gate::CPhase(c, t, theta) => vec![
            Gate::Phase(c, theta / 2.0),
            Gate::CX(c, t),
            Gate::Phase(t, -theta / 2.0),
            Gate::CX(c, t),
            Gate::Phase(t, theta / 2.0),
        ],
        // Standard 6-CNOT Toffoli (Nielsen & Chuang Fig. 4.9).
        Gate::Toffoli(a, b, t) => vec![
            Gate::H(t),
            Gate::CX(b, t),
            Gate::Tdg(t),
            Gate::CX(a, t),
            Gate::T(t),
            Gate::CX(b, t),
            Gate::Tdg(t),
            Gate::CX(a, t),
            Gate::T(b),
            Gate::T(t),
            Gate::H(t),
            Gate::CX(a, b),
            Gate::T(a),
            Gate::Tdg(b),
            Gate::CX(a, b),
        ],
        // Native single-qubit gates and CX pass through.
        g => vec![g],
    }
}

/// Lowers a whole circuit into the `{1q, CX}` basis.
///
/// # Errors
///
/// Propagates circuit-construction errors (cannot occur for valid inputs).
pub fn decompose_circuit(circuit: &Circuit) -> Result<Circuit, QuantumError> {
    let mut out = Circuit::new(circuit.n_qubits())?;
    for &gate in circuit.gates() {
        for lowered in decompose_gate(gate) {
            out.push(lowered)?;
        }
    }
    Ok(out)
}

/// Lowers S/T phase gates to `Phase` rotations (useful before hardware
/// models that only support continuous rotations).
#[must_use]
pub fn canonicalize_phases(gate: Gate) -> Gate {
    match gate {
        Gate::S(q) => Gate::Phase(q, FRAC_PI_2),
        Gate::Sdg(q) => Gate::Phase(q, -FRAC_PI_2),
        Gate::T(q) => Gate::Phase(q, FRAC_PI_2 / 2.0),
        Gate::Tdg(q) => Gate::Phase(q, -FRAC_PI_2 / 2.0),
        g => g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;

    /// Fidelity between a circuit and its lowering over every basis state.
    fn equivalent(original: &Circuit, lowered: &Circuit) -> bool {
        let dim = 1usize << original.n_qubits();
        for basis in 0..dim {
            let a = original
                .run(StateVector::basis(original.n_qubits(), basis).unwrap())
                .unwrap();
            let b = lowered
                .run(StateVector::basis(lowered.n_qubits(), basis).unwrap())
                .unwrap();
            let fidelity = a.overlap(&b).unwrap().norm();
            if (fidelity - 1.0).abs() > 1e-9 {
                return false;
            }
        }
        true
    }

    #[test]
    fn swap_decomposition_exact() {
        let mut c = Circuit::new(2).unwrap();
        c.push(Gate::Swap(0, 1)).unwrap();
        let d = decompose_circuit(&c).unwrap();
        assert_eq!(d.len(), 3);
        assert!(equivalent(&c, &d));
    }

    #[test]
    fn cz_decomposition_exact() {
        let mut c = Circuit::new(2).unwrap();
        c.h(0).unwrap().push(Gate::CZ(0, 1)).unwrap().h(1).unwrap();
        let d = decompose_circuit(&c).unwrap();
        assert!(equivalent(&c, &d));
    }

    #[test]
    fn cphase_decomposition_exact() {
        for theta in [0.3, 1.0, -2.2] {
            let mut c = Circuit::new(2).unwrap();
            c.h(0).unwrap().h(1).unwrap();
            c.push(Gate::CPhase(0, 1, theta)).unwrap();
            let d = decompose_circuit(&c).unwrap();
            assert!(equivalent(&c, &d), "theta {theta}");
        }
    }

    #[test]
    fn toffoli_decomposition_exact_on_all_basis_states() {
        let mut c = Circuit::new(3).unwrap();
        c.push(Gate::Toffoli(0, 1, 2)).unwrap();
        let d = decompose_circuit(&c).unwrap();
        assert!(d.gates().iter().all(|g| g.arity() <= 2));
        assert!(equivalent(&c, &d));
    }

    #[test]
    fn decomposed_toffoli_routes_on_a_line() {
        use crate::mapping::{check_routed, route, CouplingGraph, RoutingStrategy};
        let mut c = Circuit::new(3).unwrap();
        c.push(Gate::Toffoli(0, 1, 2)).unwrap();
        let lowered = decompose_circuit(&c).unwrap();
        let graph = CouplingGraph::line(3);
        let routed = route(&lowered, &graph, RoutingStrategy::Greedy).unwrap();
        check_routed(&routed.circuit, &graph).unwrap();
    }

    #[test]
    fn native_gates_pass_through() {
        assert_eq!(decompose_gate(Gate::H(1)), vec![Gate::H(1)]);
        assert_eq!(decompose_gate(Gate::CX(0, 2)), vec![Gate::CX(0, 2)]);
    }

    #[test]
    fn phase_canonicalization_preserves_action() {
        let mut original = Circuit::new(1).unwrap();
        original.h(0).unwrap();
        original.push(Gate::T(0)).unwrap();
        original.push(Gate::S(0)).unwrap();
        let mut canonical = Circuit::new(1).unwrap();
        canonical.h(0).unwrap();
        canonical.push(canonicalize_phases(Gate::T(0))).unwrap();
        canonical.push(canonicalize_phases(Gate::S(0))).unwrap();
        assert!(equivalent(&original, &canonical));
    }
}
