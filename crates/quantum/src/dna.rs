//! Quantum DNA-sequence similarity.
//!
//! §II-C: "With enough qubit capacity, the entire inputted data-set can be
//! encoded simultaneously as a superposition of a single wave function …
//! Regarding genome sequencing, we have to investigate whether the quantum
//! approach can be used to calculate the similarity between two different
//! DNA sequences."
//!
//! This module makes that concrete with the standard amplitude-encoding
//! recipe: a sequence's `k`-mer frequency profile (a 4ᵏ-dimensional vector)
//! is normalized into the amplitudes of a `2k`-qubit state — the whole
//! profile in one wave function — and the similarity of two sequences is the
//! squared state overlap, estimated physically by the swap test
//! ([`crate::swap_test`]). The classical references (cosine similarity of
//! profiles, edit distance) validate the ranking.
//!
//! # Example
//!
//! ```
//! use quantum::dna::{kmer_state, quantum_similarity};
//! use numerics::rng::rng_from_seed;
//!
//! let mut rng = rng_from_seed(1);
//! let s = quantum_similarity("ACGTACGT", "ACGTACGT", 2, 200, &mut rng)?;
//! assert!(s > 0.9, "identical sequences: {s}");
//! # Ok::<(), quantum::QuantumError>(())
//! ```

use crate::state::StateVector;
use crate::swap_test::{estimate_overlap_sq, exact_overlap_sq};
use crate::QuantumError;
use numerics::rng::Rng;
use numerics::Complex;

/// Maps a nucleotide to its 2-bit code.
///
/// # Errors
///
/// Returns [`QuantumError::Algorithm`] for a non-ACGT character.
pub fn base_code(c: char) -> Result<usize, QuantumError> {
    match c.to_ascii_uppercase() {
        'A' => Ok(0),
        'C' => Ok(1),
        'G' => Ok(2),
        'T' => Ok(3),
        other => Err(QuantumError::Algorithm {
            reason: format!("invalid nucleotide `{other}`"),
        }),
    }
}

/// The `k`-mer frequency profile of a sequence: a `4^k`-length count
/// vector.
///
/// # Errors
///
/// * [`QuantumError::Algorithm`] for invalid characters, `k == 0`, or a
///   sequence shorter than `k`.
pub fn kmer_profile(sequence: &str, k: usize) -> Result<Vec<f64>, QuantumError> {
    if k == 0 || k > 8 {
        return Err(QuantumError::Algorithm {
            reason: format!("k = {k} unsupported (1..=8)"),
        });
    }
    let chars: Vec<char> = sequence.chars().collect();
    if chars.len() < k {
        return Err(QuantumError::Algorithm {
            reason: format!("sequence of length {} shorter than k = {k}", chars.len()),
        });
    }
    let mut profile = vec![0.0; 1 << (2 * k)];
    for window in chars.windows(k) {
        let mut idx = 0usize;
        for &c in window {
            idx = (idx << 2) | base_code(c)?;
        }
        profile[idx] += 1.0;
    }
    Ok(profile)
}

/// Amplitude-encodes a sequence's `k`-mer profile into a `2k`-qubit state —
/// "the entire data-set … as a superposition of a single wave function".
///
/// # Errors
///
/// Propagates [`kmer_profile`] errors and amplitude validation.
pub fn kmer_state(sequence: &str, k: usize) -> Result<StateVector, QuantumError> {
    let profile = kmer_profile(sequence, k)?;
    StateVector::from_amplitudes(profile.into_iter().map(|x| Complex::new(x, 0.0)).collect())
}

/// Quantum similarity: swap-test estimate of the squared overlap of the two
/// `k`-mer states.
///
/// # Errors
///
/// Propagates encoding and swap-test errors.
pub fn quantum_similarity<R: Rng>(
    a: &str,
    b: &str,
    k: usize,
    shots: usize,
    rng: &mut R,
) -> Result<f64, QuantumError> {
    let sa = kmer_state(a, k)?;
    let sb = kmer_state(b, k)?;
    estimate_overlap_sq(&sa, &sb, shots, rng)
}

/// Exact (noise-free) quantum similarity: `|⟨a|b⟩|²` of the `k`-mer states,
/// which equals the squared cosine similarity of the profiles.
///
/// # Errors
///
/// Propagates encoding errors.
pub fn exact_similarity(a: &str, b: &str, k: usize) -> Result<f64, QuantumError> {
    let sa = kmer_state(a, k)?;
    let sb = kmer_state(b, k)?;
    exact_overlap_sq(&sa, &sb)
}

/// Classical cosine similarity of the raw `k`-mer profiles.
///
/// # Errors
///
/// Propagates [`kmer_profile`] errors.
pub fn cosine_similarity(a: &str, b: &str, k: usize) -> Result<f64, QuantumError> {
    let pa = kmer_profile(a, k)?;
    let pb = kmer_profile(b, k)?;
    let dot: f64 = pa.iter().zip(&pb).map(|(x, y)| x * y).sum();
    let na: f64 = pa.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = pb.iter().map(|x| x * x).sum::<f64>().sqrt();
    Ok(dot / (na * nb))
}

/// Levenshtein edit distance — the classical sequence-comparison baseline.
#[must_use]
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Generates a random DNA sequence of the given length.
pub fn random_sequence<R: Rng>(rng: &mut R, len: usize) -> String {
    const BASES: [char; 4] = ['A', 'C', 'G', 'T'];
    (0..len)
        .map(|_| BASES[rng.gen_range(0..BASES.len())])
        .collect()
}

/// Mutates a sequence with independent per-base substitution probability
/// `rate`.
pub fn mutate_sequence<R: Rng>(rng: &mut R, sequence: &str, rate: f64) -> String {
    const BASES: [char; 4] = ['A', 'C', 'G', 'T'];
    sequence
        .chars()
        .map(|c| {
            if rng.gen::<f64>() < rate {
                BASES[rng.gen_range(0..BASES.len())]
            } else {
                c
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use numerics::rng::rng_from_seed;

    #[test]
    fn profile_counts_kmers() {
        let p = kmer_profile("AACG", 2).unwrap();
        // AA = 0b0000, AC = 0b0001, CG = 0b0110.
        assert_eq!(p[0b0000], 1.0);
        assert_eq!(p[0b0001], 1.0);
        assert_eq!(p[0b0110], 1.0);
        assert_eq!(p.iter().sum::<f64>(), 3.0);
    }

    #[test]
    fn profile_rejects_bad_input() {
        assert!(kmer_profile("ACGX", 2).is_err());
        assert!(kmer_profile("A", 2).is_err());
        assert!(kmer_profile("ACGT", 0).is_err());
    }

    #[test]
    fn kmer_state_width() {
        let s = kmer_state("ACGTACGT", 2).unwrap();
        assert_eq!(s.n_qubits(), 4);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_similarity_is_cosine_squared() {
        let a = "ACGTACGTAC";
        let b = "ACGTTTGTAC";
        let cos = cosine_similarity(a, b, 2).unwrap();
        let q = exact_similarity(a, b, 2).unwrap();
        assert!((q - cos * cos).abs() < 1e-12);
    }

    #[test]
    fn identical_sequences_similarity_one() {
        let s = exact_similarity("ACGTACGT", "ACGTACGT", 3).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mutation_reduces_similarity_monotonically() {
        let mut rng = rng_from_seed(10);
        let base = random_sequence(&mut rng, 120);
        let slight = mutate_sequence(&mut rng, &base, 0.05);
        let heavy = mutate_sequence(&mut rng, &base, 0.5);
        let s_slight = exact_similarity(&base, &slight, 2).unwrap();
        let s_heavy = exact_similarity(&base, &heavy, 2).unwrap();
        assert!(
            s_slight > s_heavy,
            "slight {s_slight} should exceed heavy {s_heavy}"
        );
    }

    #[test]
    fn sampled_similarity_tracks_exact() {
        let mut rng = rng_from_seed(11);
        let a = "ACGTACGTACGTACG";
        let b = "ACGAACGTACCTACG";
        let exact = exact_similarity(a, b, 2).unwrap();
        let sampled = quantum_similarity(a, b, 2, 2000, &mut rng).unwrap();
        assert!(
            (sampled - exact).abs() < 0.08,
            "sampled {sampled} vs exact {exact}"
        );
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("ACGT", "ACGT"), 0);
        assert_eq!(edit_distance("ACGT", "AGGT"), 1);
        assert_eq!(edit_distance("ACGT", ""), 4);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn quantum_ranking_agrees_with_edit_distance() {
        let mut rng = rng_from_seed(12);
        let reference = random_sequence(&mut rng, 100);
        let near = mutate_sequence(&mut rng, &reference, 0.03);
        let far = mutate_sequence(&mut rng, &reference, 0.4);
        // Edit distance ranks near < far; quantum similarity must rank
        // near > far.
        assert!(edit_distance(&reference, &near) < edit_distance(&reference, &far));
        let s_near = exact_similarity(&reference, &near, 3).unwrap();
        let s_far = exact_similarity(&reference, &far, 3).unwrap();
        assert!(s_near > s_far);
    }

    #[test]
    fn random_sequence_alphabet() {
        let mut rng = rng_from_seed(13);
        let s = random_sequence(&mut rng, 200);
        assert_eq!(s.len(), 200);
        assert!(s.chars().all(|c| "ACGT".contains(c)));
    }
}
