//! The gate set.
//!
//! [`Gate`] is the circuit IR: the standard single-qubit gates, their
//! parameterized rotations, and the common two-/three-qubit gates. Every
//! gate knows its operand qubits, its inverse, and how to apply itself to a
//! [`StateVector`]. The raw 2×2 matrices live in [`matrices`].
//!
//! # Example
//!
//! ```
//! use quantum::gate::Gate;
//! use quantum::state::StateVector;
//!
//! let mut state = StateVector::zero(2);
//! Gate::H(0).apply(&mut state)?;
//! Gate::CX(0, 1).apply(&mut state)?;
//! assert!((state.probability(0b11)? - 0.5).abs() < 1e-12);
//! # Ok::<(), quantum::QuantumError>(())
//! ```

use crate::state::{Matrix2, StateVector};
use crate::QuantumError;
use numerics::Complex;

/// Raw gate matrices.
pub mod matrices {
    use super::Matrix2;
    use numerics::Complex;

    const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

    /// Hadamard.
    pub const HADAMARD: Matrix2 = [
        [
            Complex::new(FRAC_1_SQRT_2, 0.0),
            Complex::new(FRAC_1_SQRT_2, 0.0),
        ],
        [
            Complex::new(FRAC_1_SQRT_2, 0.0),
            Complex::new(-FRAC_1_SQRT_2, 0.0),
        ],
    ];
    /// Pauli X.
    pub const PAULI_X: Matrix2 = [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]];
    /// Pauli Y.
    pub const PAULI_Y: Matrix2 = [
        [Complex::ZERO, Complex::new(0.0, -1.0)],
        [Complex::I, Complex::ZERO],
    ];
    /// Pauli Z.
    pub const PAULI_Z: Matrix2 = [
        [Complex::ONE, Complex::ZERO],
        [Complex::ZERO, Complex::new(-1.0, 0.0)],
    ];

    /// Phase gate `diag(1, e^{iθ})`.
    #[must_use]
    pub fn phase(theta: f64) -> Matrix2 {
        [
            [Complex::ONE, Complex::ZERO],
            [Complex::ZERO, Complex::cis(theta)],
        ]
    }

    /// X-rotation `RX(θ)`.
    #[must_use]
    pub fn rx(theta: f64) -> Matrix2 {
        let c = (theta / 2.0).cos();
        let s = (theta / 2.0).sin();
        [
            [Complex::new(c, 0.0), Complex::new(0.0, -s)],
            [Complex::new(0.0, -s), Complex::new(c, 0.0)],
        ]
    }

    /// Y-rotation `RY(θ)`.
    #[must_use]
    pub fn ry(theta: f64) -> Matrix2 {
        let c = (theta / 2.0).cos();
        let s = (theta / 2.0).sin();
        [
            [Complex::new(c, 0.0), Complex::new(-s, 0.0)],
            [Complex::new(s, 0.0), Complex::new(c, 0.0)],
        ]
    }

    /// Z-rotation `RZ(θ)` (global-phase-symmetric form).
    #[must_use]
    pub fn rz(theta: f64) -> Matrix2 {
        [
            [Complex::cis(-theta / 2.0), Complex::ZERO],
            [Complex::ZERO, Complex::cis(theta / 2.0)],
        ]
    }
}

/// A quantum gate with bound operand qubits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Hadamard on a qubit.
    H(usize),
    /// Pauli X.
    X(usize),
    /// Pauli Y.
    Y(usize),
    /// Pauli Z.
    Z(usize),
    /// S = √Z.
    S(usize),
    /// S†.
    Sdg(usize),
    /// T = ⁴√Z.
    T(usize),
    /// T†.
    Tdg(usize),
    /// X rotation by an angle.
    Rx(usize, f64),
    /// Y rotation by an angle.
    Ry(usize, f64),
    /// Z rotation by an angle.
    Rz(usize, f64),
    /// Phase gate `diag(1, e^{iθ})`.
    Phase(usize, f64),
    /// Controlled-X `(control, target)`.
    CX(usize, usize),
    /// Controlled-Z `(control, target)`.
    CZ(usize, usize),
    /// Controlled phase `(control, target, θ)`.
    CPhase(usize, usize, f64),
    /// Swap two qubits.
    Swap(usize, usize),
    /// Toffoli `(control1, control2, target)`.
    Toffoli(usize, usize, usize),
}

impl Gate {
    /// The operand qubits, in declaration order.
    #[must_use]
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::H(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::Rz(q, _)
            | Gate::Phase(q, _) => vec![q],
            Gate::CX(a, b) | Gate::CZ(a, b) | Gate::CPhase(a, b, _) | Gate::Swap(a, b) => {
                vec![a, b]
            }
            Gate::Toffoli(a, b, c) => vec![a, b, c],
        }
    }

    /// Number of operand qubits (1, 2, or 3).
    #[must_use]
    pub fn arity(&self) -> usize {
        self.qubits().len()
    }

    /// The inverse gate.
    #[must_use]
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S(q) => Gate::Sdg(q),
            Gate::Sdg(q) => Gate::S(q),
            Gate::T(q) => Gate::Tdg(q),
            Gate::Tdg(q) => Gate::T(q),
            Gate::Rx(q, t) => Gate::Rx(q, -t),
            Gate::Ry(q, t) => Gate::Ry(q, -t),
            Gate::Rz(q, t) => Gate::Rz(q, -t),
            Gate::Phase(q, t) => Gate::Phase(q, -t),
            Gate::CPhase(c, t, theta) => Gate::CPhase(c, t, -theta),
            // Self-inverse gates.
            g => g,
        }
    }

    /// A short mnemonic (matches the [`crate::isa`] assembly syntax).
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Gate::H(_) => "h",
            Gate::X(_) => "x",
            Gate::Y(_) => "y",
            Gate::Z(_) => "z",
            Gate::S(_) => "s",
            Gate::Sdg(_) => "sdg",
            Gate::T(_) => "t",
            Gate::Tdg(_) => "tdg",
            Gate::Rx(..) => "rx",
            Gate::Ry(..) => "ry",
            Gate::Rz(..) => "rz",
            Gate::Phase(..) => "p",
            Gate::CX(..) => "cnot",
            Gate::CZ(..) => "cz",
            Gate::CPhase(..) => "cp",
            Gate::Swap(..) => "swap",
            Gate::Toffoli(..) => "toffoli",
        }
    }

    /// Applies the gate to a state.
    ///
    /// # Errors
    ///
    /// Propagates [`StateVector`] index/duplicate errors.
    pub fn apply(&self, state: &mut StateVector) -> Result<(), QuantumError> {
        use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};
        match *self {
            Gate::H(q) => state.apply_single(q, &matrices::HADAMARD),
            Gate::X(q) => state.apply_single(q, &matrices::PAULI_X),
            Gate::Y(q) => state.apply_single(q, &matrices::PAULI_Y),
            Gate::Z(q) => state.apply_single(q, &matrices::PAULI_Z),
            Gate::S(q) => state.apply_single(q, &matrices::phase(FRAC_PI_2)),
            Gate::Sdg(q) => state.apply_single(q, &matrices::phase(-FRAC_PI_2)),
            Gate::T(q) => state.apply_single(q, &matrices::phase(FRAC_PI_4)),
            Gate::Tdg(q) => state.apply_single(q, &matrices::phase(-FRAC_PI_4)),
            Gate::Rx(q, t) => state.apply_single(q, &matrices::rx(t)),
            Gate::Ry(q, t) => state.apply_single(q, &matrices::ry(t)),
            Gate::Rz(q, t) => state.apply_single(q, &matrices::rz(t)),
            Gate::Phase(q, t) => state.apply_single(q, &matrices::phase(t)),
            Gate::CX(c, t) => state.apply_controlled(c, t, &matrices::PAULI_X),
            Gate::CZ(c, t) => state.apply_controlled(c, t, &matrices::PAULI_Z),
            Gate::CPhase(c, t, theta) => state.apply_controlled(c, t, &matrices::phase(theta)),
            Gate::Swap(a, b) => state.apply_swap(a, b),
            Gate::Toffoli(a, b, t) => state.apply_controlled2(a, b, t, &matrices::PAULI_X),
        }
    }

    /// Remaps operand qubits through `f` (used by the mapping pass).
    #[must_use]
    pub fn map_qubits<F: Fn(usize) -> usize>(&self, f: F) -> Gate {
        match *self {
            Gate::H(q) => Gate::H(f(q)),
            Gate::X(q) => Gate::X(f(q)),
            Gate::Y(q) => Gate::Y(f(q)),
            Gate::Z(q) => Gate::Z(f(q)),
            Gate::S(q) => Gate::S(f(q)),
            Gate::Sdg(q) => Gate::Sdg(f(q)),
            Gate::T(q) => Gate::T(f(q)),
            Gate::Tdg(q) => Gate::Tdg(f(q)),
            Gate::Rx(q, t) => Gate::Rx(f(q), t),
            Gate::Ry(q, t) => Gate::Ry(f(q), t),
            Gate::Rz(q, t) => Gate::Rz(f(q), t),
            Gate::Phase(q, t) => Gate::Phase(f(q), t),
            Gate::CX(c, t) => Gate::CX(f(c), f(t)),
            Gate::CZ(c, t) => Gate::CZ(f(c), f(t)),
            Gate::CPhase(c, t, theta) => Gate::CPhase(f(c), f(t), theta),
            Gate::Swap(a, b) => Gate::Swap(f(a), f(b)),
            Gate::Toffoli(a, b, t) => Gate::Toffoli(f(a), f(b), f(t)),
        }
    }
}

impl std::fmt::Display for Gate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Gate::Rx(q, t) | Gate::Ry(q, t) | Gate::Rz(q, t) | Gate::Phase(q, t) => {
                write!(f, "{} q{q}, {t}", self.mnemonic())
            }
            Gate::CPhase(c, t, theta) => write!(f, "cp q{c}, q{t}, {theta}"),
            Gate::CX(a, b) | Gate::CZ(a, b) | Gate::Swap(a, b) => {
                write!(f, "{} q{a}, q{b}", self.mnemonic())
            }
            Gate::Toffoli(a, b, t) => write!(f, "toffoli q{a}, q{b}, q{t}"),
            _ => write!(f, "{} q{}", self.mnemonic(), self.qubits()[0]),
        }
    }
}

/// Complex-valued 2×2 identity check helper used in tests.
#[doc(hidden)]
#[must_use]
pub fn matrix_product(a: &Matrix2, b: &Matrix2) -> Matrix2 {
    let mut out = [[Complex::ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_identity(m: &Matrix2, tol: f64) -> bool {
        (m[0][0] - Complex::ONE).norm() < tol
            && (m[1][1] - Complex::ONE).norm() < tol
            && m[0][1].norm() < tol
            && m[1][0].norm() < tol
    }

    #[test]
    fn pauli_matrices_square_to_identity() {
        for m in [&matrices::PAULI_X, &matrices::PAULI_Y, &matrices::PAULI_Z] {
            assert!(is_identity(&matrix_product(m, m), 1e-12));
        }
        assert!(is_identity(
            &matrix_product(&matrices::HADAMARD, &matrices::HADAMARD),
            1e-12
        ));
    }

    #[test]
    fn rotations_invert() {
        let m = matrix_product(&matrices::rx(0.7), &matrices::rx(-0.7));
        assert!(is_identity(&m, 1e-12));
        let m = matrix_product(&matrices::ry(1.1), &matrices::ry(-1.1));
        assert!(is_identity(&m, 1e-12));
    }

    #[test]
    fn s_is_sqrt_z() {
        use std::f64::consts::FRAC_PI_2;
        let s2 = matrix_product(&matrices::phase(FRAC_PI_2), &matrices::phase(FRAC_PI_2));
        for i in 0..2 {
            for j in 0..2 {
                assert!((s2[i][j] - matrices::PAULI_Z[i][j]).norm() < 1e-12);
            }
        }
    }

    #[test]
    fn gate_inverse_roundtrip_on_state() {
        use crate::state::StateVector;
        let gates = [
            Gate::H(0),
            Gate::T(1),
            Gate::Rx(2, 0.4),
            Gate::Ry(0, -1.2),
            Gate::Rz(1, 2.2),
            Gate::Phase(2, 0.9),
            Gate::CX(0, 1),
            Gate::CZ(1, 2),
            Gate::CPhase(0, 2, 0.8),
            Gate::Swap(0, 2),
            Gate::Toffoli(0, 1, 2),
        ];
        // Prepare a nontrivial state.
        let mut s = StateVector::zero(3);
        Gate::H(0).apply(&mut s).unwrap();
        Gate::H(1).apply(&mut s).unwrap();
        Gate::T(0).apply(&mut s).unwrap();
        Gate::CX(0, 2).apply(&mut s).unwrap();
        let reference = s.clone();
        for g in gates {
            g.apply(&mut s).unwrap();
            g.inverse().apply(&mut s).unwrap();
        }
        let fidelity = reference.overlap(&s).unwrap().norm();
        assert!((fidelity - 1.0).abs() < 1e-10, "fidelity {fidelity}");
    }

    #[test]
    fn qubits_and_arity() {
        assert_eq!(Gate::H(3).qubits(), vec![3]);
        assert_eq!(Gate::CX(1, 4).qubits(), vec![1, 4]);
        assert_eq!(Gate::Toffoli(0, 1, 2).arity(), 3);
    }

    #[test]
    fn map_qubits_translates() {
        let g = Gate::CX(0, 1).map_qubits(|q| q + 5);
        assert_eq!(g, Gate::CX(5, 6));
    }

    #[test]
    fn display_format() {
        assert_eq!(Gate::H(2).to_string(), "h q2");
        assert_eq!(Gate::CX(0, 1).to_string(), "cnot q0, q1");
        assert_eq!(Gate::Rz(1, 0.5).to_string(), "rz q1, 0.5");
        assert_eq!(Gate::Toffoli(0, 1, 2).to_string(), "toffoli q0, q1, q2");
    }

    #[test]
    fn cz_is_symmetric() {
        use crate::state::StateVector;
        let mut a = StateVector::zero(2);
        Gate::H(0).apply(&mut a).unwrap();
        Gate::H(1).apply(&mut a).unwrap();
        let mut b = a.clone();
        Gate::CZ(0, 1).apply(&mut a).unwrap();
        Gate::CZ(1, 0).apply(&mut b).unwrap();
        assert!((a.overlap(&b).unwrap().norm() - 1.0).abs() < 1e-12);
    }
}
