//! Grover search.
//!
//! The quadratic-speedup workhorse for unstructured search: `~π/4·√(N/M)`
//! oracle calls to find one of `M` marked items among `N`, versus `N/M`
//! expected classical probes. Used in the benches as the "large data set"
//! demonstration of §II-C.
//!
//! The oracle is a basis-state phase flip applied directly by the
//! simulator; the diffusion operator is built from elementary gates.
//!
//! # Example
//!
//! ```
//! use quantum::grover;
//! use numerics::rng::rng_from_seed;
//!
//! let mut rng = rng_from_seed(1);
//! let run = grover::search(6, &[37], &mut rng)?;
//! assert_eq!(run.found, 37);
//! assert!(run.success_probability > 0.9);
//! # Ok::<(), quantum::QuantumError>(())
//! ```

use crate::gate::Gate;
use crate::state::StateVector;
use crate::QuantumError;
use numerics::rng::Rng;
use numerics::Complex;

/// Result of a Grover run.
#[derive(Debug, Clone, PartialEq)]
pub struct GroverRun {
    /// The measured item.
    pub found: usize,
    /// Whether the measured item was marked.
    pub hit: bool,
    /// Number of Grover iterations (oracle calls) applied.
    pub iterations: usize,
    /// Probability mass on marked states just before measurement.
    pub success_probability: f64,
}

/// The optimal iteration count `⌊π/4·√(N/M)⌋` (at least 1).
#[must_use]
pub fn optimal_iterations(n_qubits: usize, n_marked: usize) -> usize {
    let n = (1usize << n_qubits) as f64;
    let m = n_marked.max(1) as f64;
    let iters = (std::f64::consts::FRAC_PI_4 * (n / m).sqrt()).floor() as usize;
    iters.max(1)
}

/// Applies the phase oracle: flips the sign of every marked basis state.
fn apply_oracle(state: &mut StateVector, marked: &[usize]) -> Result<(), QuantumError> {
    let dim = state.dim();
    for &m in marked {
        if m >= dim {
            return Err(QuantumError::BasisOutOfRange { basis: m, dim });
        }
    }
    // Build as a (diagonal) permutation-free update: use from_amplitudes to
    // stay within the public API.
    let mut amps = state.amplitudes().to_vec();
    for &m in marked {
        amps[m] = -amps[m];
    }
    *state = StateVector::from_amplitudes(amps)?;
    Ok(())
}

/// Applies the diffusion operator `2|s⟩⟨s| − I` via H⊗ⁿ · (phase flip on
/// |0…0⟩) · H⊗ⁿ.
fn apply_diffusion(state: &mut StateVector) -> Result<(), QuantumError> {
    let n = state.n_qubits();
    for q in 0..n {
        Gate::H(q).apply(state)?;
    }
    let mut amps = state.amplitudes().to_vec();
    for (i, a) in amps.iter_mut().enumerate() {
        if i != 0 {
            *a = -*a;
        }
    }
    *state = StateVector::from_amplitudes(amps)?;
    for q in 0..n {
        Gate::H(q).apply(state)?;
    }
    Ok(())
}

/// Runs Grover search with the optimal iteration count and measures.
///
/// # Errors
///
/// * [`QuantumError::Algorithm`] when `marked` is empty.
/// * [`QuantumError::BasisOutOfRange`] for marked items beyond `2^n`.
pub fn search<R: Rng>(
    n_qubits: usize,
    marked: &[usize],
    rng: &mut R,
) -> Result<GroverRun, QuantumError> {
    search_with_iterations(
        n_qubits,
        marked,
        optimal_iterations(n_qubits, marked.len()),
        rng,
    )
}

/// Runs Grover search with an explicit iteration count.
///
/// # Errors
///
/// Same conditions as [`search`].
pub fn search_with_iterations<R: Rng>(
    n_qubits: usize,
    marked: &[usize],
    iterations: usize,
    rng: &mut R,
) -> Result<GroverRun, QuantumError> {
    if marked.is_empty() {
        return Err(QuantumError::Algorithm {
            reason: "grover search needs at least one marked item".into(),
        });
    }
    let mut state = StateVector::try_zero(n_qubits)?;
    for q in 0..n_qubits {
        Gate::H(q).apply(&mut state)?;
    }
    for _ in 0..iterations {
        apply_oracle(&mut state, marked)?;
        apply_diffusion(&mut state)?;
    }
    let success_probability: f64 = marked
        .iter()
        .map(|&m| state.probability(m).unwrap_or(0.0))
        .sum();
    let found = state.measure_all(rng);
    Ok(GroverRun {
        found,
        hit: marked.contains(&found),
        iterations,
        success_probability,
    })
}

/// Expected classical probe count to find one of `n_marked` items in a
/// space of `2^n_qubits` by uniform random probing without replacement.
#[must_use]
pub fn classical_expected_probes(n_qubits: usize, n_marked: usize) -> f64 {
    let n = (1usize << n_qubits) as f64;
    let m = n_marked.max(1) as f64;
    (n + 1.0) / (m + 1.0)
}

/// Builds the uniform superposition amplitude for reference in tests.
#[doc(hidden)]
#[must_use]
pub fn uniform_amplitude(n_qubits: usize) -> Complex {
    Complex::new(1.0 / ((1usize << n_qubits) as f64).sqrt(), 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numerics::rng::rng_from_seed;

    #[test]
    fn finds_single_marked_item() {
        let mut rng = rng_from_seed(1);
        let run = search(7, &[100], &mut rng).unwrap();
        assert!(run.success_probability > 0.9, "{run:?}");
        assert!(run.hit);
    }

    #[test]
    fn finds_one_of_many() {
        let mut rng = rng_from_seed(2);
        let marked = [3usize, 17, 42, 63];
        let run = search(6, &marked, &mut rng).unwrap();
        assert!(run.success_probability > 0.85, "{run:?}");
    }

    #[test]
    fn iteration_count_scales_as_sqrt() {
        let i6 = optimal_iterations(6, 1);
        let i10 = optimal_iterations(10, 1);
        // √(2^10 / 2^6) = 4 → roughly 4× as many iterations.
        let ratio = i10 as f64 / i6 as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn too_many_iterations_overshoot() {
        let mut rng = rng_from_seed(3);
        let optimal = optimal_iterations(6, 1);
        let good = search_with_iterations(6, &[5], optimal, &mut rng).unwrap();
        let over = search_with_iterations(6, &[5], optimal * 2, &mut rng).unwrap();
        assert!(
            over.success_probability < good.success_probability,
            "overshoot not visible: {} vs {}",
            over.success_probability,
            good.success_probability
        );
    }

    #[test]
    fn empty_marked_rejected() {
        let mut rng = rng_from_seed(4);
        assert!(search(4, &[], &mut rng).is_err());
    }

    #[test]
    fn marked_out_of_range_rejected() {
        let mut rng = rng_from_seed(4);
        assert!(search(3, &[8], &mut rng).is_err());
    }

    #[test]
    fn beats_classical_probe_count() {
        let n_qubits = 8;
        let quantum = optimal_iterations(n_qubits, 1) as f64;
        let classical = classical_expected_probes(n_qubits, 1);
        assert!(
            quantum < classical / 4.0,
            "quantum {quantum} vs classical {classical}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = search(6, &[9], &mut rng_from_seed(8)).unwrap();
        let b = search(6, &[9], &mut rng_from_seed(8)).unwrap();
        assert_eq!(a, b);
    }
}
