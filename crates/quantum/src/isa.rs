//! A textual quantum instruction-set architecture (QISA).
//!
//! Fig. 2 places "a well-defined set of quantum instructions" at the heart
//! of the accelerator stack. This module defines a small cQASM-flavoured
//! assembly:
//!
//! ```text
//! # comments with '#'
//! qubits 3
//! prep_z q0
//! h q0
//! cnot q0, q1
//! rz q2, 1.5707963
//! toffoli q0, q1, q2
//! measure q0
//! measure_all
//! ```
//!
//! [`assemble`] parses text into a [`Program`]; [`Program::disassemble`]
//! round-trips it. The micro-architecture ([`crate::microarch`]) executes
//! programs.
//!
//! # Example
//!
//! ```
//! use quantum::isa::assemble;
//!
//! let program = assemble("qubits 2\nh q0\ncnot q0, q1\nmeasure_all\n")?;
//! assert_eq!(program.n_qubits(), 2);
//! assert_eq!(program.instructions().len(), 3);
//! # Ok::<(), quantum::QuantumError>(())
//! ```

use crate::gate::Gate;
use crate::QuantumError;

/// One QISA instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instruction {
    /// A unitary gate.
    Gate(Gate),
    /// Reset a qubit to `|0⟩` in the Z basis.
    PrepZ(usize),
    /// Measure one qubit in the Z basis.
    Measure(usize),
    /// Measure the whole register.
    MeasureAll,
}

impl std::fmt::Display for Instruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Instruction::Gate(g) => write!(f, "{g}"),
            Instruction::PrepZ(q) => write!(f, "prep_z q{q}"),
            Instruction::Measure(q) => write!(f, "measure q{q}"),
            Instruction::MeasureAll => write!(f, "measure_all"),
        }
    }
}

/// An assembled QISA program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    n_qubits: usize,
    instructions: Vec<Instruction>,
}

impl Program {
    /// Builds a program from parts, validating qubit indices.
    ///
    /// # Errors
    ///
    /// * [`QuantumError::BadRegisterWidth`] for a zero width.
    /// * [`QuantumError::QubitOutOfRange`] for any out-of-range operand.
    pub fn new(n_qubits: usize, instructions: Vec<Instruction>) -> Result<Self, QuantumError> {
        if n_qubits == 0 {
            return Err(QuantumError::BadRegisterWidth { n_qubits });
        }
        for instr in &instructions {
            let qubits = match instr {
                Instruction::Gate(g) => g.qubits(),
                Instruction::PrepZ(q) | Instruction::Measure(q) => vec![*q],
                Instruction::MeasureAll => vec![],
            };
            for q in qubits {
                if q >= n_qubits {
                    return Err(QuantumError::QubitOutOfRange { qubit: q, n_qubits });
                }
            }
        }
        Ok(Program {
            n_qubits,
            instructions,
        })
    }

    /// Register width.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The instruction list.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Emits assembly text that [`assemble`] re-parses to an equal program.
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut out = format!("qubits {}\n", self.n_qubits);
        for instr in &self.instructions {
            out.push_str(&instr.to_string());
            out.push('\n');
        }
        out
    }

    /// Converts a [`crate::circuit::Circuit`] into a program (gates +
    /// optional trailing `measure_all`).
    #[must_use]
    pub fn from_circuit(circuit: &crate::circuit::Circuit, measure_all: bool) -> Program {
        let mut instructions: Vec<Instruction> = circuit
            .gates()
            .iter()
            .copied()
            .map(Instruction::Gate)
            .collect();
        if measure_all {
            instructions.push(Instruction::MeasureAll);
        }
        Program {
            n_qubits: circuit.n_qubits(),
            instructions,
        }
    }
}

fn parse_qubit(token: &str, line: usize) -> Result<usize, QuantumError> {
    let t = token.trim();
    let body = t.strip_prefix('q').ok_or_else(|| QuantumError::Assembly {
        line,
        reason: format!("expected qubit operand like `q0`, got `{t}`"),
    })?;
    body.parse().map_err(|_| QuantumError::Assembly {
        line,
        reason: format!("bad qubit index `{t}`"),
    })
}

fn parse_angle(token: &str, line: usize) -> Result<f64, QuantumError> {
    token.trim().parse().map_err(|_| QuantumError::Assembly {
        line,
        reason: format!("bad angle `{}`", token.trim()),
    })
}

/// Assembles QISA text into a [`Program`].
///
/// # Errors
///
/// Returns [`QuantumError::Assembly`] with the offending line number for any
/// syntax problem, and propagates [`Program::new`] validation.
pub fn assemble(source: &str) -> Result<Program, QuantumError> {
    let mut n_qubits: Option<usize> = None;
    let mut instructions = Vec::new();
    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
            Some((m, r)) => (m.to_ascii_lowercase(), r.trim()),
            None => (line.to_ascii_lowercase(), ""),
        };
        let operands: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let expect = |n: usize| -> Result<(), QuantumError> {
            if operands.len() != n {
                return Err(QuantumError::Assembly {
                    line: line_no,
                    reason: format!(
                        "`{mnemonic}` expects {n} operand(s), got {}",
                        operands.len()
                    ),
                });
            }
            Ok(())
        };
        match mnemonic.as_str() {
            "qubits" => {
                expect(1)?;
                let n = operands[0].parse().map_err(|_| QuantumError::Assembly {
                    line: line_no,
                    reason: format!("bad register width `{}`", operands[0]),
                })?;
                if n_qubits.replace(n).is_some() {
                    return Err(QuantumError::Assembly {
                        line: line_no,
                        reason: "duplicate `qubits` declaration".into(),
                    });
                }
            }
            "h" | "x" | "y" | "z" | "s" | "sdg" | "t" | "tdg" => {
                expect(1)?;
                let q = parse_qubit(operands[0], line_no)?;
                let gate = match mnemonic.as_str() {
                    "h" => Gate::H(q),
                    "x" => Gate::X(q),
                    "y" => Gate::Y(q),
                    "z" => Gate::Z(q),
                    "s" => Gate::S(q),
                    "sdg" => Gate::Sdg(q),
                    "t" => Gate::T(q),
                    _ => Gate::Tdg(q),
                };
                instructions.push(Instruction::Gate(gate));
            }
            "rx" | "ry" | "rz" | "p" => {
                expect(2)?;
                let q = parse_qubit(operands[0], line_no)?;
                let theta = parse_angle(operands[1], line_no)?;
                let gate = match mnemonic.as_str() {
                    "rx" => Gate::Rx(q, theta),
                    "ry" => Gate::Ry(q, theta),
                    "rz" => Gate::Rz(q, theta),
                    _ => Gate::Phase(q, theta),
                };
                instructions.push(Instruction::Gate(gate));
            }
            "cnot" | "cx" | "cz" | "swap" => {
                expect(2)?;
                let a = parse_qubit(operands[0], line_no)?;
                let b = parse_qubit(operands[1], line_no)?;
                let gate = match mnemonic.as_str() {
                    "cnot" | "cx" => Gate::CX(a, b),
                    "cz" => Gate::CZ(a, b),
                    _ => Gate::Swap(a, b),
                };
                instructions.push(Instruction::Gate(gate));
            }
            "cp" => {
                expect(3)?;
                let a = parse_qubit(operands[0], line_no)?;
                let b = parse_qubit(operands[1], line_no)?;
                let theta = parse_angle(operands[2], line_no)?;
                instructions.push(Instruction::Gate(Gate::CPhase(a, b, theta)));
            }
            "toffoli" | "ccx" => {
                expect(3)?;
                let a = parse_qubit(operands[0], line_no)?;
                let b = parse_qubit(operands[1], line_no)?;
                let c = parse_qubit(operands[2], line_no)?;
                instructions.push(Instruction::Gate(Gate::Toffoli(a, b, c)));
            }
            "prep_z" => {
                expect(1)?;
                instructions.push(Instruction::PrepZ(parse_qubit(operands[0], line_no)?));
            }
            "measure" => {
                expect(1)?;
                instructions.push(Instruction::Measure(parse_qubit(operands[0], line_no)?));
            }
            "measure_all" => {
                expect(0)?;
                instructions.push(Instruction::MeasureAll);
            }
            other => {
                return Err(QuantumError::Assembly {
                    line: line_no,
                    reason: format!("unknown mnemonic `{other}`"),
                });
            }
        }
    }
    let n = n_qubits.ok_or(QuantumError::Assembly {
        line: 0,
        reason: "missing `qubits N` declaration".into(),
    })?;
    Program::new(n, instructions)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BELL: &str = "\
# Bell pair
qubits 2
h q0
cnot q0, q1
measure_all
";

    #[test]
    fn assembles_bell() {
        let p = assemble(BELL).unwrap();
        assert_eq!(p.n_qubits(), 2);
        assert_eq!(
            p.instructions(),
            &[
                Instruction::Gate(Gate::H(0)),
                Instruction::Gate(Gate::CX(0, 1)),
                Instruction::MeasureAll,
            ]
        );
    }

    #[test]
    fn roundtrip_disassemble() {
        let src = "\
qubits 3
prep_z q0
h q0
rz q1, 0.5
cp q0, q2, 0.25
toffoli q0, q1, q2
swap q1, q2
measure q2
measure_all
";
        let p = assemble(src).unwrap();
        let text = p.disassemble();
        let p2 = assemble(&text).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("qubits 1\n\n# nothing\nh q0 # trailing\n").unwrap();
        assert_eq!(p.instructions().len(), 1);
    }

    #[test]
    fn missing_qubits_rejected() {
        let err = assemble("h q0\n");
        assert!(matches!(err, Err(QuantumError::Assembly { .. })));
    }

    #[test]
    fn duplicate_qubits_rejected() {
        assert!(assemble("qubits 2\nqubits 3\n").is_err());
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let err = assemble("qubits 1\nfoo q0\n").unwrap_err();
        match err {
            QuantumError::Assembly { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn operand_count_checked() {
        assert!(assemble("qubits 2\ncnot q0\n").is_err());
        assert!(assemble("qubits 2\nh q0, q1\n").is_err());
        assert!(assemble("qubits 2\nrz q0\n").is_err());
    }

    #[test]
    fn qubit_range_checked() {
        assert!(matches!(
            assemble("qubits 2\nh q5\n"),
            Err(QuantumError::QubitOutOfRange { qubit: 5, .. })
        ));
    }

    #[test]
    fn bad_operand_syntax() {
        assert!(assemble("qubits 2\nh 0\n").is_err());
        assert!(assemble("qubits 2\nrz q0, abc\n").is_err());
    }

    #[test]
    fn from_circuit_roundtrip() {
        let mut c = crate::circuit::Circuit::new(2).unwrap();
        c.h(0).unwrap().cx(0, 1).unwrap();
        let p = Program::from_circuit(&c, true);
        assert_eq!(p.instructions().len(), 3);
        let text = p.disassemble();
        assert_eq!(assemble(&text).unwrap(), p);
    }
}
