//! The quantum-accelerator stack (paper §II).
//!
//! The paper frames the quantum computer as one more accelerator in a
//! heterogeneous system (Fig. 1) and enumerates the layers any quantum
//! accelerator must provide (Fig. 2): application → algorithm → compiler /
//! runtime → QISA → micro-architecture → chip. This crate implements that
//! stack on a classical substrate — a full state-vector simulator in place
//! of the cryogenic chip — so every layer is executable:
//!
//! * [`state`] / [`gate`] / [`circuit`] — the "chip": exact state-vector
//!   simulation of the standard gate set.
//! * [`qft`], [`numtheory`], [`arith`], [`shor`], [`grover`],
//!   [`swap_test`], [`dna`] — the algorithm layer, including both killer
//!   apps the paper names: Shor factorization (cryptography) and DNA
//!   similarity on superposed data (genomics).
//! * [`isa`] — a textual quantum ISA with assembler/disassembler.
//! * [`mapping`] — the compiler's qubit-placement and SWAP-routing pass for
//!   restricted coupling topologies.
//! * [`microarch`] — the micro-architecture: decode, ASAP gate scheduling
//!   with realistic per-gate latencies, and execution on the simulator.
//! * [`noise`] — depolarizing / damping / readout error channels, for the
//!   paper's "qubits with sufficiently long coherence times" discussion.
//!
//! # Example
//!
//! ```
//! use quantum::circuit::Circuit;
//! use quantum::state::StateVector;
//!
//! // A Bell pair.
//! let mut circuit = Circuit::new(2)?;
//! circuit.h(0)?.cx(0, 1)?;
//! let state = circuit.run(StateVector::zero(2))?;
//! let p00 = state.probability(0b00)?;
//! let p11 = state.probability(0b11)?;
//! assert!((p00 - 0.5).abs() < 1e-12);
//! assert!((p11 - 0.5).abs() < 1e-12);
//! # Ok::<(), quantum::QuantumError>(())
//! ```

// Deliberate style choices for numerical simulation code: `!(x > 0.0)`
// rejects NaN alongside non-positive values, and indexed loops mirror the
// mathematics they implement (state-vector strides, lattice walks).
#![allow(
    clippy::neg_cmp_op_on_partial_ord,
    clippy::needless_range_loop,
    clippy::manual_is_multiple_of,
    clippy::field_reassign_with_default
)]
pub mod arith;
pub mod circuit;
pub mod decompose;
pub mod dna;
pub mod gate;
pub mod grover;
pub mod isa;
pub mod mapping;
pub mod microarch;
pub mod noise;
pub mod numtheory;
pub mod qft;
pub mod shor;
pub mod state;
pub mod swap_test;

/// Crate-wide error type.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantumError {
    /// A qubit index exceeded the register width.
    QubitOutOfRange {
        /// Offending index.
        qubit: usize,
        /// Register width.
        n_qubits: usize,
    },
    /// A basis-state index exceeded the state dimension.
    BasisOutOfRange {
        /// Offending basis index.
        basis: usize,
        /// State dimension.
        dim: usize,
    },
    /// Two operands of a multi-qubit gate coincided.
    DuplicateQubits,
    /// A register width was invalid (0 or too large to simulate).
    BadRegisterWidth {
        /// Requested width.
        n_qubits: usize,
    },
    /// An amplitude vector was not normalizable or had a non-power-of-two
    /// length.
    BadAmplitudes {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// QISA assembly failed.
    Assembly {
        /// Line number (1-based).
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// An algorithm-level precondition failed (e.g. Shor on even N).
    Algorithm {
        /// Human-readable reason.
        reason: String,
    },
    /// A circuit uses a two-qubit gate on an uncoupled qubit pair.
    Uncoupled {
        /// First physical qubit.
        a: usize,
        /// Second physical qubit.
        b: usize,
    },
}

impl std::fmt::Display for QuantumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantumError::QubitOutOfRange { qubit, n_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {n_qubits}-qubit register"
                )
            }
            QuantumError::BasisOutOfRange { basis, dim } => {
                write!(f, "basis index {basis} out of range for dimension {dim}")
            }
            QuantumError::DuplicateQubits => write!(f, "gate operands must be distinct"),
            QuantumError::BadRegisterWidth { n_qubits } => {
                write!(f, "register width {n_qubits} unsupported (1..=24)")
            }
            QuantumError::BadAmplitudes { reason } => {
                write!(f, "bad amplitude vector: {reason}")
            }
            QuantumError::Assembly { line, reason } => {
                write!(f, "assembly error at line {line}: {reason}")
            }
            QuantumError::Algorithm { reason } => write!(f, "algorithm error: {reason}"),
            QuantumError::Uncoupled { a, b } => {
                write!(f, "qubits {a} and {b} are not coupled on this topology")
            }
        }
    }
}

impl std::error::Error for QuantumError {}

/// Maximum register width the simulator accepts (2²⁴ amplitudes ≈ 256 MiB).
pub const MAX_QUBITS: usize = 24;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let errors = [
            QuantumError::QubitOutOfRange {
                qubit: 5,
                n_qubits: 3,
            },
            QuantumError::DuplicateQubits,
            QuantumError::BadRegisterWidth { n_qubits: 0 },
            QuantumError::Algorithm {
                reason: "even modulus".into(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuantumError>();
    }
}
