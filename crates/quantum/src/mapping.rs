//! Qubit mapping and SWAP routing.
//!
//! Physical quantum chips restrict two-qubit gates to coupled neighbour
//! pairs; the compiler layer of the Fig. 2 stack must place logical qubits
//! onto physical ones and insert SWAPs when a gate's operands are apart.
//! This module provides:
//!
//! * [`CouplingGraph`] — line, grid, and all-to-all topologies with BFS
//!   distances;
//! * [`route`] — SWAP insertion along shortest paths, with a
//!   [`RoutingStrategy`] choice between a greedy pass and a lookahead that
//!   scores candidate directions against upcoming gates (ablation A3).
//!
//! # Example
//!
//! ```
//! use quantum::circuit::Circuit;
//! use quantum::mapping::{route, CouplingGraph, RoutingStrategy};
//!
//! let mut c = Circuit::new(4)?;
//! c.cx(0, 3)?; // distant on a line
//! let line = CouplingGraph::line(4);
//! let routed = route(&c, &line, RoutingStrategy::Greedy)?;
//! assert!(routed.swap_count > 0);
//! # Ok::<(), quantum::QuantumError>(())
//! ```

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::QuantumError;
use std::collections::VecDeque;

/// An undirected coupling topology over physical qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingGraph {
    n: usize,
    adjacency: Vec<Vec<usize>>,
}

impl CouplingGraph {
    /// Builds a graph from an edge list.
    ///
    /// # Errors
    ///
    /// * [`QuantumError::BadRegisterWidth`] for `n == 0`.
    /// * [`QuantumError::QubitOutOfRange`] for edges beyond `n`.
    /// * [`QuantumError::DuplicateQubits`] for self-loops.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, QuantumError> {
        if n == 0 {
            return Err(QuantumError::BadRegisterWidth { n_qubits: 0 });
        }
        let mut adjacency = vec![Vec::new(); n];
        for &(a, b) in edges {
            if a >= n || b >= n {
                return Err(QuantumError::QubitOutOfRange {
                    qubit: a.max(b),
                    n_qubits: n,
                });
            }
            if a == b {
                return Err(QuantumError::DuplicateQubits);
            }
            if !adjacency[a].contains(&b) {
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
        Ok(CouplingGraph { n, adjacency })
    }

    /// A 1-D chain `0 — 1 — … — n−1`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    #[must_use]
    pub fn line(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        Self::from_edges(n, &edges).expect("line edges are valid")
    }

    /// A `rows × cols` 2-D grid (row-major physical indices).
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    #[must_use]
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be nonzero");
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let idx = r * cols + c;
                if c + 1 < cols {
                    edges.push((idx, idx + 1));
                }
                if r + 1 < rows {
                    edges.push((idx, idx + cols));
                }
            }
        }
        Self::from_edges(rows * cols, &edges).expect("grid edges are valid")
    }

    /// The fully connected topology (no routing ever needed).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    #[must_use]
    pub fn all_to_all(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                edges.push((a, b));
            }
        }
        Self::from_edges(n, &edges).expect("complete-graph edges are valid")
    }

    /// Number of physical qubits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the graph has no qubits (unreachable via constructors).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether `a` and `b` are directly coupled.
    #[must_use]
    pub fn coupled(&self, a: usize, b: usize) -> bool {
        a < self.n && self.adjacency[a].contains(&b)
    }

    /// Neighbours of a physical qubit.
    #[must_use]
    pub fn neighbours(&self, q: usize) -> &[usize] {
        &self.adjacency[q]
    }

    /// BFS distances from `start` to every qubit (`usize::MAX` when
    /// unreachable).
    #[must_use]
    pub fn distances_from(&self, start: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n];
        if start >= self.n {
            return dist;
        }
        dist[start] = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Shortest-path distance between two qubits.
    #[must_use]
    pub fn distance(&self, a: usize, b: usize) -> usize {
        self.distances_from(a).get(b).copied().unwrap_or(usize::MAX)
    }
}

/// Routing strategy (ablation A3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingStrategy {
    /// Move one operand toward the other along a shortest path.
    Greedy,
    /// Like greedy, but among distance-reducing SWAP candidates pick the one
    /// minimizing the summed distances of the next few two-qubit gates.
    Lookahead {
        /// How many upcoming two-qubit gates to score.
        window: usize,
    },
}

/// The result of routing a circuit onto a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedCircuit {
    /// The physical circuit (every 2-qubit gate on a coupled pair).
    pub circuit: Circuit,
    /// Number of SWAP gates inserted.
    pub swap_count: usize,
    /// The final logical→physical map.
    pub final_layout: Vec<usize>,
}

/// Routes `circuit` onto `graph` starting from the identity layout.
///
/// Three-qubit gates are first decomposed? No — Toffoli gates are rejected;
/// decompose before routing.
///
/// # Errors
///
/// * [`QuantumError::BadRegisterWidth`] when the graph is smaller than the
///   circuit.
/// * [`QuantumError::Algorithm`] for 3-qubit gates or disconnected targets.
pub fn route(
    circuit: &Circuit,
    graph: &CouplingGraph,
    strategy: RoutingStrategy,
) -> Result<RoutedCircuit, QuantumError> {
    let n = circuit.n_qubits();
    if graph.len() < n {
        return Err(QuantumError::BadRegisterWidth {
            n_qubits: graph.len(),
        });
    }
    // layout[logical] = physical; inverse[physical] = logical.
    let mut layout: Vec<usize> = (0..graph.len()).collect();
    let mut inverse: Vec<usize> = (0..graph.len()).collect();
    let mut out = Circuit::new(graph.len())?;
    let mut swap_count = 0usize;

    let gates = circuit.gates();
    for (gi, gate) in gates.iter().enumerate() {
        match gate.arity() {
            1 => {
                out.push(gate.map_qubits(|q| layout[q]))?;
            }
            2 => {
                let qs = gate.qubits();
                let (la, lb) = (qs[0], qs[1]);
                // Bring the operands adjacent.
                loop {
                    let (pa, pb) = (layout[la], layout[lb]);
                    if graph.coupled(pa, pb) {
                        break;
                    }
                    let dist_b = graph.distances_from(pb);
                    if dist_b[pa] == usize::MAX {
                        return Err(QuantumError::Algorithm {
                            reason: format!("qubits {pa} and {pb} are disconnected"),
                        });
                    }
                    // Candidate swaps: neighbours of pa that reduce the
                    // distance to pb.
                    let candidates: Vec<usize> = graph
                        .neighbours(pa)
                        .iter()
                        .copied()
                        .filter(|&nb| dist_b[nb] < dist_b[pa])
                        .collect();
                    let chosen = match strategy {
                        RoutingStrategy::Greedy => candidates[0],
                        RoutingStrategy::Lookahead { window } => {
                            let mut best = candidates[0];
                            let mut best_score = usize::MAX;
                            for &cand in &candidates {
                                // Hypothetical layout after swapping pa↔cand.
                                let score = lookahead_score(
                                    graph, &layout, &inverse, pa, cand, gates, gi, window,
                                );
                                if score < best_score {
                                    best_score = score;
                                    best = cand;
                                }
                            }
                            best
                        }
                    };
                    out.push(Gate::Swap(pa, chosen))?;
                    swap_count += 1;
                    // Update layout: physical pa now holds the logical qubit
                    // that was at `chosen`, and vice versa.
                    let l_other = inverse[chosen];
                    layout[la] = chosen;
                    layout[l_other] = pa;
                    inverse[pa] = l_other;
                    inverse[chosen] = la;
                }
                out.push(gate.map_qubits(|q| layout[q]))?;
            }
            _ => {
                return Err(QuantumError::Algorithm {
                    reason: "decompose 3-qubit gates before routing".into(),
                });
            }
        }
    }
    Ok(RoutedCircuit {
        circuit: out,
        swap_count,
        final_layout: layout,
    })
}

#[allow(clippy::too_many_arguments)]
fn lookahead_score(
    graph: &CouplingGraph,
    layout: &[usize],
    inverse: &[usize],
    pa: usize,
    cand: usize,
    gates: &[Gate],
    current: usize,
    window: usize,
) -> usize {
    // Simulate the swap on a scratch layout.
    let mut lay = layout.to_vec();
    let la = inverse[pa];
    let l_other = inverse[cand];
    lay[la] = cand;
    lay[l_other] = pa;
    // Sum distances of the next `window` two-qubit gates (including the
    // current one).
    let mut score = 0usize;
    let mut seen = 0usize;
    for gate in gates.iter().skip(current) {
        if gate.arity() != 2 {
            continue;
        }
        let qs = gate.qubits();
        score += graph.distance(lay[qs[0]], lay[qs[1]]);
        seen += 1;
        if seen >= window.max(1) {
            break;
        }
    }
    score
}

/// Verifies that every 2-qubit gate of a circuit touches a coupled pair.
///
/// # Errors
///
/// Returns [`QuantumError::Uncoupled`] naming the first offending pair.
pub fn check_routed(circuit: &Circuit, graph: &CouplingGraph) -> Result<(), QuantumError> {
    for gate in circuit.gates() {
        if gate.arity() == 2 {
            let qs = gate.qubits();
            if !graph.coupled(qs[0], qs[1]) {
                return Err(QuantumError::Uncoupled { a: qs[0], b: qs[1] });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;

    #[test]
    fn line_distances() {
        let g = CouplingGraph::line(5);
        assert_eq!(g.distance(0, 4), 4);
        assert_eq!(g.distance(2, 2), 0);
        assert!(g.coupled(1, 2));
        assert!(!g.coupled(0, 2));
    }

    #[test]
    fn grid_distances() {
        let g = CouplingGraph::grid(3, 3);
        assert_eq!(g.len(), 9);
        // Manhattan distance on the grid.
        assert_eq!(g.distance(0, 8), 4);
        assert!(g.coupled(4, 1));
        assert!(!g.coupled(0, 4));
    }

    #[test]
    fn all_to_all_never_needs_swaps() {
        let mut c = Circuit::new(4).unwrap();
        c.cx(0, 3).unwrap().cx(1, 2).unwrap();
        let g = CouplingGraph::all_to_all(4);
        let routed = route(&c, &g, RoutingStrategy::Greedy).unwrap();
        assert_eq!(routed.swap_count, 0);
        check_routed(&routed.circuit, &g).unwrap();
    }

    #[test]
    fn line_routing_inserts_swaps() {
        let mut c = Circuit::new(4).unwrap();
        c.cx(0, 3).unwrap();
        let g = CouplingGraph::line(4);
        let routed = route(&c, &g, RoutingStrategy::Greedy).unwrap();
        assert!(routed.swap_count >= 2, "swaps {}", routed.swap_count);
        check_routed(&routed.circuit, &g).unwrap();
    }

    #[test]
    fn routed_circuit_preserves_semantics() {
        // GHZ on a line topology: routed circuit must produce a state whose
        // measurement statistics match, up to the final layout permutation.
        let mut c = Circuit::new(3).unwrap();
        c.h(0).unwrap().cx(0, 2).unwrap().cx(0, 1).unwrap();
        let g = CouplingGraph::line(3);
        let routed = route(&c, &g, RoutingStrategy::Greedy).unwrap();
        check_routed(&routed.circuit, &g).unwrap();

        let direct = c.run(StateVector::zero(3)).unwrap();
        let phys = routed.circuit.run(StateVector::zero(3)).unwrap();
        // Compare probabilities after un-permuting physical → logical.
        for basis in 0..8usize {
            let mut phys_basis = 0usize;
            for (logical, &physical) in routed.final_layout.iter().take(3).enumerate() {
                if basis >> logical & 1 == 1 {
                    phys_basis |= 1 << physical;
                }
            }
            let pd = direct.probability(basis).unwrap();
            let pp = phys.probability(phys_basis).unwrap();
            assert!(
                (pd - pp).abs() < 1e-10,
                "basis {basis}: {pd} vs {pp} (layout {:?})",
                routed.final_layout
            );
        }
    }

    #[test]
    fn lookahead_not_worse_than_greedy_here() {
        // A circuit whose later gates reward routing direction choices.
        let mut c = Circuit::new(6).unwrap();
        c.cx(0, 5).unwrap().cx(0, 4).unwrap().cx(1, 5).unwrap();
        let g = CouplingGraph::line(6);
        let greedy = route(&c, &g, RoutingStrategy::Greedy).unwrap();
        let look = route(&c, &g, RoutingStrategy::Lookahead { window: 3 }).unwrap();
        check_routed(&look.circuit, &g).unwrap();
        assert!(look.swap_count <= greedy.swap_count + 1);
    }

    #[test]
    fn toffoli_rejected() {
        let mut c = Circuit::new(3).unwrap();
        c.push(Gate::Toffoli(0, 1, 2)).unwrap();
        let g = CouplingGraph::line(3);
        assert!(route(&c, &g, RoutingStrategy::Greedy).is_err());
    }

    #[test]
    fn graph_too_small_rejected() {
        let c = Circuit::new(5).unwrap();
        let g = CouplingGraph::line(3);
        assert!(route(&c, &g, RoutingStrategy::Greedy).is_err());
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = CouplingGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut c = Circuit::new(4).unwrap();
        c.cx(0, 2).unwrap();
        assert!(route(&c, &g, RoutingStrategy::Greedy).is_err());
    }

    #[test]
    fn from_edges_validation() {
        assert!(CouplingGraph::from_edges(0, &[]).is_err());
        assert!(CouplingGraph::from_edges(2, &[(0, 2)]).is_err());
        assert!(CouplingGraph::from_edges(2, &[(1, 1)]).is_err());
    }
}
