//! The quantum micro-architecture.
//!
//! Fig. 2's micro-architecture layer "executes a well-defined set of
//! quantum instructions". [`Microarchitecture`] decodes a QISA
//! [`Program`], schedules its gates ASAP (gates on disjoint qubits run in
//! parallel, as on a real control stack), applies them to the state-vector
//! "chip", and accounts wall-clock time with realistic per-operation
//! latencies (superconducting-transmon-scale defaults).
//!
//! # Example
//!
//! ```
//! use quantum::isa::assemble;
//! use quantum::microarch::{Microarchitecture, TimingModel};
//! use numerics::rng::rng_from_seed;
//!
//! let program = assemble("qubits 2\nh q0\ncnot q0, q1\nmeasure_all\n")?;
//! let arch = Microarchitecture::new(TimingModel::default());
//! let mut rng = rng_from_seed(1);
//! let report = arch.execute(&program, &mut rng)?;
//! assert!(report.duration_ns > 0.0);
//! assert!(report.measured.is_some());
//! # Ok::<(), quantum::QuantumError>(())
//! ```

use crate::isa::{Instruction, Program};
use crate::state::StateVector;
use crate::QuantumError;
use numerics::rng::Rng;

/// Per-operation latencies in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Single-qubit gate latency.
    pub single_qubit_ns: f64,
    /// Two-qubit gate latency.
    pub two_qubit_ns: f64,
    /// Three-qubit gate latency (if executed natively).
    pub three_qubit_ns: f64,
    /// Measurement latency.
    pub measure_ns: f64,
    /// Reset/preparation latency.
    pub prep_ns: f64,
    /// Classical decode/issue overhead per instruction.
    pub decode_ns: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        // Transmon-scale numbers: 20 ns 1q, 40 ns 2q, 300 ns readout.
        TimingModel {
            single_qubit_ns: 20.0,
            two_qubit_ns: 40.0,
            three_qubit_ns: 120.0,
            measure_ns: 300.0,
            prep_ns: 200.0,
            decode_ns: 2.0,
        }
    }
}

impl TimingModel {
    fn latency(&self, instr: &Instruction) -> f64 {
        match instr {
            Instruction::Gate(g) => match g.arity() {
                1 => self.single_qubit_ns,
                2 => self.two_qubit_ns,
                _ => self.three_qubit_ns,
            },
            Instruction::PrepZ(_) => self.prep_ns,
            Instruction::Measure(_) | Instruction::MeasureAll => self.measure_ns,
        }
    }
}

/// Execution report of one program run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Total scheduled duration (critical path + decode), nanoseconds.
    pub duration_ns: f64,
    /// Sum of all instruction latencies if run fully serially — the
    /// parallelism headroom is `serial_ns / duration_ns`.
    pub serial_ns: f64,
    /// Number of instructions decoded.
    pub instructions: usize,
    /// Counts by class: `(single, double, triple, prep, measure)`.
    pub class_counts: (usize, usize, usize, usize, usize),
    /// Final register measurement, when the program ended with
    /// `measure_all` (basis index).
    pub measured: Option<usize>,
    /// Individual qubit measurement outcomes, in program order.
    pub qubit_measurements: Vec<(usize, bool)>,
    /// The final quantum state (post-measurement collapse included).
    pub final_state: StateVector,
}

/// The micro-architecture executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Microarchitecture {
    timing: TimingModel,
}

impl Microarchitecture {
    /// Creates an executor with the given timing model.
    #[must_use]
    pub fn new(timing: TimingModel) -> Self {
        Microarchitecture { timing }
    }

    /// The timing model.
    #[must_use]
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Decodes, schedules, and executes a program.
    ///
    /// Scheduling is ASAP: an instruction starts when all its operand
    /// qubits are free; `measure_all` and `prep_z` act as full or single
    /// qubit barriers respectively.
    ///
    /// # Errors
    ///
    /// Propagates gate-application errors from the state-vector backend.
    pub fn execute<R: Rng>(
        &self,
        program: &Program,
        rng: &mut R,
    ) -> Result<ExecutionReport, QuantumError> {
        let n = program.n_qubits();
        let mut state = StateVector::try_zero(n)?;
        let mut qubit_free_at = vec![0.0f64; n];
        let mut serial_ns = 0.0;
        let mut class_counts = (0, 0, 0, 0, 0);
        let mut measured = None;
        let mut qubit_measurements = Vec::new();
        let mut critical_path: f64 = 0.0;

        for instr in program.instructions() {
            let latency = self.timing.latency(instr);
            serial_ns += latency + self.timing.decode_ns;
            let touched: Vec<usize> = match instr {
                Instruction::Gate(g) => {
                    match g.arity() {
                        1 => class_counts.0 += 1,
                        2 => class_counts.1 += 1,
                        _ => class_counts.2 += 1,
                    }
                    g.apply(&mut state)?;
                    g.qubits()
                }
                Instruction::PrepZ(q) => {
                    class_counts.3 += 1;
                    // Measure and conditionally flip — the standard active
                    // reset.
                    if state.measure_qubit(*q, rng)? {
                        crate::gate::Gate::X(*q).apply(&mut state)?;
                    }
                    vec![*q]
                }
                Instruction::Measure(q) => {
                    class_counts.4 += 1;
                    let outcome = state.measure_qubit(*q, rng)?;
                    qubit_measurements.push((*q, outcome));
                    vec![*q]
                }
                Instruction::MeasureAll => {
                    class_counts.4 += 1;
                    measured = Some(state.measure_all(rng));
                    (0..n).collect()
                }
            };
            let start = touched
                .iter()
                .map(|&q| qubit_free_at[q])
                .fold(0.0f64, f64::max);
            let finish = start + latency;
            for &q in &touched {
                qubit_free_at[q] = finish;
            }
            critical_path = critical_path.max(finish);
        }
        let decode_total = program.instructions().len() as f64 * self.timing.decode_ns;
        Ok(ExecutionReport {
            duration_ns: critical_path + decode_total,
            serial_ns,
            instructions: program.instructions().len(),
            class_counts,
            measured,
            qubit_measurements,
            final_state: state,
        })
    }

    /// Runs a program `shots` times and histograms the `measure_all`
    /// outcomes.
    ///
    /// # Errors
    ///
    /// * [`QuantumError::Algorithm`] when the program has no `measure_all`.
    /// * Propagates execution errors.
    pub fn sample<R: Rng>(
        &self,
        program: &Program,
        shots: usize,
        rng: &mut R,
    ) -> Result<Vec<(usize, usize)>, QuantumError> {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for _ in 0..shots {
            let report = self.execute(program, rng)?;
            let outcome = report.measured.ok_or_else(|| QuantumError::Algorithm {
                reason: "program has no measure_all".into(),
            })?;
            *counts.entry(outcome).or_insert(0) += 1;
        }
        Ok(counts.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::assemble;
    use numerics::rng::rng_from_seed;

    fn arch() -> Microarchitecture {
        Microarchitecture::new(TimingModel::default())
    }

    #[test]
    fn bell_pair_statistics() {
        let program = assemble("qubits 2\nh q0\ncnot q0, q1\nmeasure_all\n").unwrap();
        let mut rng = rng_from_seed(1);
        let counts = arch().sample(&program, 400, &mut rng).unwrap();
        let total: usize = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 400);
        for (outcome, count) in counts {
            assert!(outcome == 0 || outcome == 3, "impossible outcome {outcome}");
            assert!(count > 120, "lopsided Bell statistics: {count}");
        }
    }

    #[test]
    fn parallel_gates_share_time() {
        // Two independent Hadamards: critical path one gate, serial two.
        let program = assemble("qubits 2\nh q0\nh q1\n").unwrap();
        let mut rng = rng_from_seed(2);
        let report = arch().execute(&program, &mut rng).unwrap();
        let t = TimingModel::default();
        let expected = t.single_qubit_ns + 2.0 * t.decode_ns;
        assert!((report.duration_ns - expected).abs() < 1e-9);
        assert!(report.serial_ns > report.duration_ns);
    }

    #[test]
    fn dependent_gates_serialize() {
        let program = assemble("qubits 2\nh q0\ncnot q0, q1\n").unwrap();
        let mut rng = rng_from_seed(3);
        let report = arch().execute(&program, &mut rng).unwrap();
        let t = TimingModel::default();
        let expected = t.single_qubit_ns + t.two_qubit_ns + 2.0 * t.decode_ns;
        assert!((report.duration_ns - expected).abs() < 1e-9);
    }

    #[test]
    fn measure_dominates_latency() {
        let program = assemble("qubits 1\nh q0\nmeasure q0\n").unwrap();
        let mut rng = rng_from_seed(4);
        let report = arch().execute(&program, &mut rng).unwrap();
        assert!(report.duration_ns > TimingModel::default().measure_ns);
        assert_eq!(report.qubit_measurements.len(), 1);
    }

    #[test]
    fn prep_z_resets() {
        let program = assemble("qubits 1\nx q0\nprep_z q0\nmeasure q0\n").unwrap();
        let mut rng = rng_from_seed(5);
        let report = arch().execute(&program, &mut rng).unwrap();
        assert_eq!(report.qubit_measurements, vec![(0, false)]);
    }

    #[test]
    fn class_counts_tallied() {
        let program =
            assemble("qubits 3\nh q0\nx q1\ncnot q0, q1\ntoffoli q0, q1, q2\nmeasure_all\n")
                .unwrap();
        let mut rng = rng_from_seed(6);
        let report = arch().execute(&program, &mut rng).unwrap();
        assert_eq!(report.class_counts, (2, 1, 1, 0, 1));
        assert_eq!(report.instructions, 5);
    }

    #[test]
    fn sample_requires_measure_all() {
        let program = assemble("qubits 1\nh q0\n").unwrap();
        let mut rng = rng_from_seed(7);
        assert!(arch().sample(&program, 3, &mut rng).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let program = assemble("qubits 2\nh q0\ncnot q0, q1\nmeasure_all\n").unwrap();
        let a = arch()
            .execute(&program, &mut rng_from_seed(9))
            .unwrap()
            .measured;
        let b = arch()
            .execute(&program, &mut rng_from_seed(9))
            .unwrap()
            .measured;
        assert_eq!(a, b);
    }
}
