//! Noise channels and noisy circuit execution.
//!
//! §II-B: "Qubits with sufficiently long coherence times … are crucial
//! requirements that have not yet been met." This module quantifies that
//! requirement on the simulator with Monte-Carlo (quantum-trajectory)
//! noise: after every gate, each touched qubit suffers a depolarizing Pauli
//! error with some probability and amplitude damping toward `|0⟩`;
//! measurements flip with a readout-error probability.
//!
//! Running an algorithm under increasing noise exposes the fidelity cliff
//! that motivates the paper's coherence-time discussion.
//!
//! # Example
//!
//! ```
//! use quantum::circuit::Circuit;
//! use quantum::noise::{NoiseModel, run_noisy};
//! use numerics::rng::rng_from_seed;
//!
//! let mut c = Circuit::new(2)?;
//! c.h(0)?.cx(0, 1)?;
//! let mut rng = rng_from_seed(1);
//! let ideal = run_noisy(&c, &NoiseModel::noiseless(), &mut rng)?;
//! assert!((ideal.probability(0b00)? - 0.5).abs() < 1e-12);
//! # Ok::<(), quantum::QuantumError>(())
//! ```

use crate::circuit::Circuit;
use crate::gate::matrices;
use crate::state::StateVector;
use crate::QuantumError;
use numerics::rng::Rng;

/// Stochastic error rates per operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing probability per qubit after a single-qubit gate.
    pub p1: f64,
    /// Depolarizing probability per qubit after a two-/three-qubit gate.
    pub p2: f64,
    /// Amplitude-damping probability per qubit per gate.
    pub gamma: f64,
    /// Readout bit-flip probability.
    pub p_readout: f64,
}

impl NoiseModel {
    /// The noiseless model.
    #[must_use]
    pub fn noiseless() -> Self {
        NoiseModel {
            p1: 0.0,
            p2: 0.0,
            gamma: 0.0,
            p_readout: 0.0,
        }
    }

    /// A uniform depolarizing model with 10× stronger two-qubit errors (a
    /// typical hardware ratio), no damping, 1 % readout error.
    #[must_use]
    pub fn depolarizing(p: f64) -> Self {
        NoiseModel {
            p1: p,
            p2: 10.0 * p,
            gamma: 0.0,
            p_readout: 0.01,
        }
    }

    /// Whether every rate is zero.
    #[must_use]
    pub fn is_noiseless(&self) -> bool {
        self.p1 == 0.0 && self.p2 == 0.0 && self.gamma == 0.0 && self.p_readout == 0.0
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::noiseless()
    }
}

fn apply_depolarizing<R: Rng>(
    state: &mut StateVector,
    q: usize,
    p: f64,
    rng: &mut R,
) -> Result<(), QuantumError> {
    if p <= 0.0 || rng.gen::<f64>() >= p {
        return Ok(());
    }
    match rng.gen_range(0..3) {
        0 => state.apply_single(q, &matrices::PAULI_X),
        1 => state.apply_single(q, &matrices::PAULI_Y),
        _ => state.apply_single(q, &matrices::PAULI_Z),
    }
}

fn apply_damping<R: Rng>(
    state: &mut StateVector,
    q: usize,
    gamma: f64,
    rng: &mut R,
) -> Result<(), QuantumError> {
    if gamma <= 0.0 {
        return Ok(());
    }
    // Quantum-trajectory amplitude damping: with probability γ·P(|1⟩) the
    // qubit decays (projective jump to |0⟩); otherwise the no-jump Kraus
    // operator diag(1, √(1−γ)) is applied and the state renormalized.
    let p1 = state.prob_one(q)?;
    if rng.gen::<f64>() < gamma * p1 {
        // Jump: project onto |1⟩ then flip — equivalent to σ⁻.
        let dim = state.dim();
        let mask = 1usize << q;
        let mut amps = state.amplitudes().to_vec();
        for (i, a) in amps.iter_mut().enumerate().take(dim) {
            if i & mask == 0 {
                *a = numerics::Complex::ZERO;
            }
        }
        *state = StateVector::from_amplitudes(amps)?;
        state.apply_single(q, &matrices::PAULI_X)?;
    } else {
        let no_jump = [
            [numerics::Complex::ONE, numerics::Complex::ZERO],
            [
                numerics::Complex::ZERO,
                numerics::Complex::new((1.0 - gamma).sqrt(), 0.0),
            ],
        ];
        state.apply_single(q, &no_jump)?;
        state.normalize();
    }
    Ok(())
}

/// Runs one noisy trajectory of a circuit, returning the (normalized) final
/// state.
///
/// # Errors
///
/// Propagates gate-application errors.
pub fn run_noisy<R: Rng>(
    circuit: &Circuit,
    model: &NoiseModel,
    rng: &mut R,
) -> Result<StateVector, QuantumError> {
    let mut state = StateVector::try_zero(circuit.n_qubits())?;
    for gate in circuit.gates() {
        gate.apply(&mut state)?;
        let p = if gate.arity() == 1 {
            model.p1
        } else {
            model.p2
        };
        for q in gate.qubits() {
            apply_depolarizing(&mut state, q, p, rng)?;
            apply_damping(&mut state, q, model.gamma, rng)?;
        }
    }
    Ok(state)
}

/// Samples `shots` noisy trajectories, measuring all qubits at the end
/// (with readout error), and returns `(basis index, count)` pairs.
///
/// # Errors
///
/// Propagates trajectory errors.
pub fn sample_noisy<R: Rng>(
    circuit: &Circuit,
    model: &NoiseModel,
    shots: usize,
    rng: &mut R,
) -> Result<Vec<(usize, usize)>, QuantumError> {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
    for _ in 0..shots {
        let mut state = run_noisy(circuit, model, rng)?;
        let mut outcome = state.measure_all(rng);
        if model.p_readout > 0.0 {
            for q in 0..circuit.n_qubits() {
                if rng.gen::<f64>() < model.p_readout {
                    outcome ^= 1 << q;
                }
            }
        }
        *counts.entry(outcome).or_insert(0) += 1;
    }
    Ok(counts.into_iter().collect())
}

/// Average fidelity `|⟨ψ_ideal|ψ_noisy⟩|²` over `trials` trajectories.
///
/// # Errors
///
/// Propagates trajectory errors.
pub fn average_fidelity<R: Rng>(
    circuit: &Circuit,
    model: &NoiseModel,
    trials: usize,
    rng: &mut R,
) -> Result<f64, QuantumError> {
    let ideal = circuit.run(StateVector::try_zero(circuit.n_qubits())?)?;
    let mut total = 0.0;
    for _ in 0..trials.max(1) {
        let noisy = run_noisy(circuit, model, rng)?;
        total += ideal.overlap(&noisy)?.norm_sqr();
    }
    Ok(total / trials.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numerics::rng::rng_from_seed;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n).unwrap();
        c.h(0).unwrap();
        for q in 1..n {
            c.cx(q - 1, q).unwrap();
        }
        c
    }

    #[test]
    fn noiseless_matches_ideal() {
        let c = ghz(3);
        let mut rng = rng_from_seed(1);
        let out = run_noisy(&c, &NoiseModel::noiseless(), &mut rng).unwrap();
        let ideal = c.run(StateVector::zero(3)).unwrap();
        assert!((out.overlap(&ideal).unwrap().norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_decreases_with_noise() {
        let c = ghz(4);
        let mut rng = rng_from_seed(2);
        let f_low = average_fidelity(&c, &NoiseModel::depolarizing(0.001), 100, &mut rng).unwrap();
        let f_high = average_fidelity(&c, &NoiseModel::depolarizing(0.05), 100, &mut rng).unwrap();
        assert!(
            f_low > f_high,
            "fidelity should fall with noise: {f_low} vs {f_high}"
        );
        assert!(f_low > 0.8, "light noise fidelity {f_low}");
    }

    #[test]
    fn damping_drives_toward_ground() {
        // Repeated identity-ish gates with heavy damping decay |1⟩ → |0⟩.
        let mut c = Circuit::new(1).unwrap();
        c.x(0).unwrap();
        for _ in 0..30 {
            c.z(0).unwrap(); // Z leaves |1⟩ invariant; damping acts each gate
        }
        let model = NoiseModel {
            gamma: 0.2,
            ..NoiseModel::noiseless()
        };
        let mut rng = rng_from_seed(3);
        let mut ground = 0;
        for _ in 0..50 {
            let out = run_noisy(&c, &model, &mut rng).unwrap();
            if out.probability(0).unwrap() > 0.99 {
                ground += 1;
            }
        }
        assert!(ground > 40, "decayed {ground}/50");
    }

    #[test]
    fn readout_error_pollutes_histogram() {
        let c = ghz(2);
        let model = NoiseModel {
            p_readout: 0.2,
            ..NoiseModel::noiseless()
        };
        let mut rng = rng_from_seed(4);
        let counts = sample_noisy(&c, &model, 500, &mut rng).unwrap();
        // Ideal GHZ only yields 00/11; readout error must produce others.
        let polluted: usize = counts
            .iter()
            .filter(|(o, _)| *o == 1 || *o == 2)
            .map(|(_, c)| *c)
            .sum();
        assert!(polluted > 20, "expected readout pollution, got {polluted}");
    }

    #[test]
    fn noiseless_sampling_pure() {
        let c = ghz(2);
        let mut rng = rng_from_seed(5);
        let counts = sample_noisy(&c, &NoiseModel::noiseless(), 300, &mut rng).unwrap();
        for (outcome, _) in counts {
            assert!(outcome == 0 || outcome == 3);
        }
    }

    #[test]
    fn norm_preserved_under_noise() {
        let c = ghz(3);
        let model = NoiseModel {
            p1: 0.05,
            p2: 0.1,
            gamma: 0.05,
            p_readout: 0.0,
        };
        let mut rng = rng_from_seed(6);
        for _ in 0..20 {
            let out = run_noisy(&c, &model, &mut rng).unwrap();
            assert!((out.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn is_noiseless_flag() {
        assert!(NoiseModel::noiseless().is_noiseless());
        assert!(!NoiseModel::depolarizing(0.01).is_noiseless());
    }
}
