//! Classical number theory supporting Shor's algorithm.
//!
//! Order finding needs modular exponentiation and continued-fraction
//! rationalization; the end-to-end factoring comparison needs a classical
//! baseline (trial division) with a cost count.
//!
//! # Example
//!
//! ```
//! use quantum::numtheory;
//!
//! assert_eq!(numtheory::gcd(48, 18), 6);
//! assert_eq!(numtheory::mod_pow(7, 4, 15), 1); // order of 7 mod 15 is 4
//! assert_eq!(numtheory::multiplicative_order(7, 15), Some(4));
//! ```

/// Greatest common divisor (Euclid).
#[must_use]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = b;
        b = a % b;
        a = t;
    }
    a
}

/// Modular exponentiation `base^exp mod modulus` (square-and-multiply).
///
/// # Panics
///
/// Panics when `modulus == 0`.
#[must_use]
pub fn mod_pow(mut base: u64, mut exp: u64, modulus: u64) -> u64 {
    assert!(modulus != 0, "modulus must be nonzero");
    if modulus == 1 {
        return 0;
    }
    let mut result: u64 = 1;
    base %= modulus;
    while exp > 0 {
        if exp & 1 == 1 {
            result = result * base % modulus;
        }
        base = base * base % modulus;
        exp >>= 1;
    }
    result
}

/// The multiplicative order of `a` modulo `n`, or `None` when
/// `gcd(a, n) != 1`.
#[must_use]
pub fn multiplicative_order(a: u64, n: u64) -> Option<u64> {
    if n < 2 || gcd(a, n) != 1 {
        return None;
    }
    let mut x = a % n;
    let mut r = 1u64;
    while x != 1 {
        x = x * (a % n) % n;
        r += 1;
        if r > n {
            return None; // unreachable for valid inputs; guards overflow
        }
    }
    Some(r)
}

/// Deterministic primality by trial division (fine for the ≤ 2⁶⁴ range we
/// factor here is overkill — inputs are ≤ a few thousand).
#[must_use]
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n % 2 == 0 {
        return n == 2;
    }
    let mut d = 3u64;
    while d * d <= n {
        if n % d == 0 {
            return false;
        }
        d += 2;
    }
    true
}

/// Whether `n = b^k` for some integers `b ≥ 2, k ≥ 2` (Shor's classical
/// pre-check).
#[must_use]
pub fn is_perfect_power(n: u64) -> bool {
    if n < 4 {
        return false;
    }
    for k in 2..=n.ilog2() {
        let b = (n as f64).powf(1.0 / k as f64).round() as u64;
        for cand in b.saturating_sub(1)..=b + 1 {
            if cand >= 2 && cand.checked_pow(k) == Some(n) {
                return true;
            }
        }
    }
    false
}

/// Trial-division factorization baseline. Returns a nontrivial factor and
/// the number of division operations performed (the classical cost measure
/// for the Shor comparison).
#[must_use]
pub fn trial_division(n: u64) -> (Option<u64>, u64) {
    let mut ops = 0u64;
    if n < 4 {
        return (None, ops);
    }
    ops += 1;
    if n % 2 == 0 {
        return (Some(2), ops);
    }
    let mut d = 3u64;
    while d * d <= n {
        ops += 1;
        if n % d == 0 {
            return (Some(d), ops);
        }
        d += 2;
    }
    (None, ops)
}

/// One step of a continued-fraction expansion of `num/den`; the convergents
/// `p/q` are the rational approximations Shor uses to recover the order
/// from a measured phase.
///
/// Returns the convergents `(p, q)` of `num/den` with `q <= q_max`.
#[must_use]
pub fn convergents(mut num: u64, mut den: u64, q_max: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    // p_{-1} = 1, p_0 = a0; standard recurrence.
    let (mut p_prev, mut q_prev) = (1u64, 0u64);
    let (mut p_curr, mut q_curr);
    if den == 0 {
        return out;
    }
    let a0 = num / den;
    p_curr = a0;
    q_curr = 1;
    out.push((p_curr, q_curr));
    let mut rem = num % den;
    num = den;
    den = rem;
    while den != 0 {
        let a = num / den;
        rem = num % den;
        let p_next = a * p_curr + p_prev;
        let q_next = a * q_curr + q_prev;
        if q_next > q_max {
            break;
        }
        out.push((p_next, q_next));
        p_prev = p_curr;
        q_prev = q_curr;
        p_curr = p_next;
        q_curr = q_next;
        num = den;
        den = rem;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_cases() {
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 13), 1);
    }

    #[test]
    fn mod_pow_matches_naive() {
        for base in 1..10u64 {
            for exp in 0..8u64 {
                let naive = (0..exp).fold(1u64, |acc, _| acc * base % 1009);
                assert_eq!(mod_pow(base, exp, 1009), naive);
            }
        }
        assert_eq!(mod_pow(5, 100, 1), 0);
    }

    #[test]
    fn orders() {
        assert_eq!(multiplicative_order(2, 15), Some(4));
        assert_eq!(multiplicative_order(7, 15), Some(4));
        assert_eq!(multiplicative_order(4, 15), Some(2));
        assert_eq!(multiplicative_order(3, 15), None); // gcd = 3
        assert_eq!(multiplicative_order(2, 21), Some(6));
    }

    #[test]
    fn primality() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 101];
        for p in primes {
            assert!(is_prime(p), "{p}");
        }
        for c in [0u64, 1, 4, 9, 15, 21, 91, 1001] {
            assert!(!is_prime(c), "{c}");
        }
    }

    #[test]
    fn perfect_powers() {
        for p in [4u64, 8, 9, 16, 27, 32, 121, 125] {
            assert!(is_perfect_power(p), "{p}");
        }
        for n in [2u64, 3, 6, 15, 21, 35, 143] {
            assert!(!is_perfect_power(n), "{n}");
        }
    }

    #[test]
    fn trial_division_finds_factor_and_counts() {
        let (f, ops) = trial_division(15);
        assert_eq!(f, Some(3));
        assert!(ops >= 1);
        let (f, _) = trial_division(143);
        assert_eq!(f, Some(11));
        let (f, _) = trial_division(13);
        assert_eq!(f, None);
    }

    #[test]
    fn trial_division_cost_grows_for_semiprimes() {
        let (_, small) = trial_division(15);
        let (_, big) = trial_division(101 * 103);
        assert!(big > small);
    }

    #[test]
    fn convergents_of_phase() {
        // 85/256 ≈ 1/3 → the convergent (1, 3) must appear.
        let cs = convergents(85, 256, 20);
        assert!(cs.contains(&(1, 3)), "{cs:?}");
        // 192/256 = 3/4.
        let cs = convergents(192, 256, 20);
        assert!(cs.contains(&(3, 4)), "{cs:?}");
    }

    #[test]
    fn convergents_respect_q_max() {
        let cs = convergents(355, 113, 1);
        // Only the integer part convergent (q = 1) fits.
        assert!(cs.iter().all(|&(_, q)| q <= 1));
        assert!(!cs.is_empty());
    }

    #[test]
    fn convergents_zero_denominator() {
        assert!(convergents(5, 0, 10).is_empty());
    }
}
