//! Quantum Fourier transform.
//!
//! The standard QFT circuit: Hadamard + controlled-phase ladder + final
//! qubit reversal. Convention: the QFT maps `|x⟩ → (1/√N) Σ_y e^{2πi·xy/N}
//! |y⟩` with qubit 0 as the least-significant bit.
//!
//! # Example
//!
//! ```
//! use quantum::qft;
//! use quantum::state::StateVector;
//!
//! // QFT of |0⟩ is the uniform superposition.
//! let circuit = qft::qft_circuit(3)?;
//! let out = circuit.run(StateVector::zero(3))?;
//! for idx in 0..8 {
//!     assert!((out.probability(idx)? - 0.125).abs() < 1e-12);
//! }
//! # Ok::<(), quantum::QuantumError>(())
//! ```

use crate::circuit::Circuit;
use crate::QuantumError;
use std::f64::consts::PI;

/// Builds the `n`-qubit QFT circuit.
///
/// # Errors
///
/// Returns [`QuantumError::BadRegisterWidth`] for an invalid width.
pub fn qft_circuit(n: usize) -> Result<Circuit, QuantumError> {
    let mut c = Circuit::new(n)?;
    // Process from the most-significant qubit down.
    for i in (0..n).rev() {
        c.h(i)?;
        for j in (0..i).rev() {
            // Controlled phase of angle π / 2^(i-j) from qubit j onto i.
            let theta = PI / f64::from(1u32 << (i - j));
            c.cphase(j, i, theta)?;
        }
    }
    // Reverse qubit order.
    for q in 0..n / 2 {
        c.swap(q, n - 1 - q)?;
    }
    Ok(c)
}

/// Builds the inverse QFT circuit.
///
/// # Errors
///
/// Returns [`QuantumError::BadRegisterWidth`] for an invalid width.
pub fn inverse_qft_circuit(n: usize) -> Result<Circuit, QuantumError> {
    Ok(qft_circuit(n)?.inverse())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;
    use numerics::Complex;

    #[test]
    fn qft_matches_dft_on_basis_states() {
        let n = 4;
        let dim = 1usize << n;
        for x in 0..dim {
            let circuit = qft_circuit(n).unwrap();
            let out = circuit.run(StateVector::basis(n, x).unwrap()).unwrap();
            for y in 0..dim {
                let expected =
                    Complex::cis(2.0 * std::f64::consts::PI * (x * y) as f64 / dim as f64)
                        .scale(1.0 / (dim as f64).sqrt());
                let actual = out.amplitude(y).unwrap();
                assert!(
                    (actual - expected).norm() < 1e-10,
                    "x={x} y={y}: {actual} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn qft_roundtrip() {
        let n = 5;
        let mut prep = Circuit::new(n).unwrap();
        prep.h(0).unwrap().cx(0, 2).unwrap().phase(1, 0.4).unwrap();
        let state = prep.run(StateVector::zero(n)).unwrap();
        let fwd = qft_circuit(n).unwrap();
        let inv = inverse_qft_circuit(n).unwrap();
        let through = inv.run(fwd.run(state.clone()).unwrap()).unwrap();
        let fidelity = state.overlap(&through).unwrap().norm();
        assert!((fidelity - 1.0).abs() < 1e-10);
    }

    #[test]
    fn qft_preserves_norm() {
        let circuit = qft_circuit(6).unwrap();
        let out = circuit.run(StateVector::basis(6, 13).unwrap()).unwrap();
        assert!((out.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn qft_gate_count_quadratic() {
        let c = qft_circuit(6).unwrap();
        // n Hadamards + n(n-1)/2 controlled phases + n/2 swaps.
        assert_eq!(c.len(), 6 + 15 + 3);
    }

    #[test]
    fn single_qubit_qft_is_hadamard() {
        let c = qft_circuit(1).unwrap();
        let out = c.run(StateVector::zero(1)).unwrap();
        assert!((out.probability(0).unwrap() - 0.5).abs() < 1e-12);
        assert!((out.probability(1).unwrap() - 0.5).abs() < 1e-12);
    }
}
