//! Shor's factoring algorithm.
//!
//! The paper names cryptography as the clearest quantum killer app: "a
//! quantum computer has the potential to break any RSA-based encryption by
//! finding the prime factors of the public key" (§II-C). This module runs
//! the full pipeline on the simulator:
//!
//! 1. classical pre-checks (even, perfect power, lucky gcd);
//! 2. quantum order finding: phase estimation over the controlled modular
//!    multiplication unitaries of [`crate::arith`], with an inverse QFT on
//!    the counting register;
//! 3. continued-fraction post-processing of the measured phase;
//! 4. factor extraction from an even order `r` with
//!    `a^{r/2} ≢ −1 (mod N)`.
//!
//! # Example
//!
//! ```
//! use quantum::shor;
//! use numerics::rng::rng_from_seed;
//!
//! let mut rng = rng_from_seed(7);
//! let outcome = shor::factor(15, &mut rng, 20)?;
//! let (p, q) = outcome.factors;
//! assert_eq!(p * q, 15);
//! # Ok::<(), quantum::QuantumError>(())
//! ```

use crate::arith::apply_controlled_modmul;
use crate::gate::Gate;
use crate::numtheory::{convergents, gcd, is_perfect_power, is_prime, mod_pow};
use crate::qft::inverse_qft_circuit;
use crate::state::StateVector;
use crate::{QuantumError, MAX_QUBITS};
use numerics::rng::Rng;

/// Result of one quantum order-finding run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderFinding {
    /// The base whose order was sought.
    pub a: u64,
    /// The modulus.
    pub n: u64,
    /// The measured counting-register value.
    pub measurement: u64,
    /// Counting-register width.
    pub counting_bits: usize,
    /// The recovered order, when continued fractions succeeded and the
    /// candidate verified (`a^r ≡ 1 mod n`).
    pub order: Option<u64>,
}

/// Statistics of a full factoring run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactorOutcome {
    /// The recovered nontrivial factors `(p, q)` with `p·q = n`.
    pub factors: (u64, u64),
    /// Number of quantum order-finding invocations used.
    pub quantum_calls: u64,
    /// Total simulated quantum gates/permutations applied.
    pub quantum_ops: u64,
    /// Whether a classical shortcut (gcd/parity/perfect power) short-
    /// circuited the quantum part.
    pub classical_shortcut: bool,
}

fn bits_for(n: u64) -> usize {
    (64 - n.leading_zeros()) as usize
}

/// One quantum order-finding attempt for `a` modulo `n`.
///
/// Uses `2·m` counting qubits (where `m = ⌈log₂ n⌉`), capped so the total
/// register stays within [`MAX_QUBITS`].
///
/// # Errors
///
/// * [`QuantumError::Algorithm`] when `gcd(a, n) != 1` or the problem needs
///   more than [`MAX_QUBITS`] qubits.
pub fn order_finding<R: Rng>(a: u64, n: u64, rng: &mut R) -> Result<OrderFinding, QuantumError> {
    if gcd(a, n) != 1 {
        return Err(QuantumError::Algorithm {
            reason: format!("gcd({a}, {n}) != 1"),
        });
    }
    let work_bits = bits_for(n);
    let counting_bits = (2 * work_bits).min(MAX_QUBITS.saturating_sub(work_bits));
    if counting_bits < work_bits {
        return Err(QuantumError::Algorithm {
            reason: format!("{n} too large to simulate"),
        });
    }
    let total = counting_bits + work_bits;

    let mut state = StateVector::try_zero(total)?;
    // Counting register into uniform superposition.
    for q in 0..counting_bits {
        Gate::H(q).apply(&mut state)?;
    }
    // Work register to |1⟩.
    Gate::X(counting_bits).apply(&mut state)?;

    // Controlled U^(2^j) for each counting qubit.
    for j in 0..counting_bits {
        let a_pow = mod_pow(a, 1u64 << j, n);
        apply_controlled_modmul(&mut state, j, counting_bits, work_bits, a_pow, n)?;
    }

    // Inverse QFT on the counting register (it occupies the low qubits, so
    // the circuit applies directly).
    let mut iqft_state = state;
    let iqft = inverse_qft_circuit(counting_bits)?;
    for gate in iqft.gates() {
        gate.apply(&mut iqft_state)?;
    }

    // Measure the counting register.
    let mut measurement = 0u64;
    for q in 0..counting_bits {
        if iqft_state.measure_qubit(q, rng)? {
            measurement |= 1 << q;
        }
    }

    // Continued fractions: measurement / 2^counting ≈ s / r.
    let denom = 1u64 << counting_bits;
    let mut order = None;
    for (_, q) in convergents(measurement, denom, n) {
        if q > 1 && mod_pow(a, q, n) == 1 {
            order = Some(q);
            break;
        }
    }
    Ok(OrderFinding {
        a,
        n,
        measurement,
        counting_bits,
        order,
    })
}

/// Factors `n` with Shor's algorithm, retrying order finding up to
/// `max_attempts` times. Classical shortcuts (parity, perfect powers,
/// lucky gcd draws) are taken when available.
///
/// # Errors
///
/// * [`QuantumError::Algorithm`] when `n` is prime, smaller than 4, or no
///   factor was found within the attempt budget.
pub fn factor<R: Rng>(
    n: u64,
    rng: &mut R,
    max_attempts: u64,
) -> Result<FactorOutcome, QuantumError> {
    factor_with_options(n, rng, max_attempts, true)
}

/// Like [`factor`], but with classical shortcuts optionally disabled so the
/// run exercises the quantum order-finding path even when a lucky `gcd`
/// draw would have produced a factor for free (used by the benches to
/// measure the quantum pipeline itself). The parity and primality
/// pre-checks still apply — they are prerequisites of the algorithm, not
/// shortcuts.
///
/// # Errors
///
/// Same conditions as [`factor`].
pub fn factor_with_options<R: Rng>(
    n: u64,
    rng: &mut R,
    max_attempts: u64,
    classical_shortcuts: bool,
) -> Result<FactorOutcome, QuantumError> {
    if n < 4 {
        return Err(QuantumError::Algorithm {
            reason: format!("{n} has no nontrivial factorization"),
        });
    }
    if is_prime(n) {
        return Err(QuantumError::Algorithm {
            reason: format!("{n} is prime"),
        });
    }
    if n % 2 == 0 {
        return Ok(FactorOutcome {
            factors: (2, n / 2),
            quantum_calls: 0,
            quantum_ops: 0,
            classical_shortcut: true,
        });
    }
    if is_perfect_power(n) {
        // Find the base by root extraction.
        for k in 2..=n.ilog2() {
            let b = (n as f64).powf(1.0 / k as f64).round() as u64;
            if b >= 2 && b.checked_pow(k) == Some(n) {
                return Ok(FactorOutcome {
                    factors: (b, n / b),
                    quantum_calls: 0,
                    quantum_ops: 0,
                    classical_shortcut: true,
                });
            }
        }
    }

    let mut quantum_calls = 0u64;
    let mut quantum_ops = 0u64;
    for _ in 0..max_attempts {
        let a = rng.gen_range(2..n);
        let g = gcd(a, n);
        if g != 1 {
            if classical_shortcuts {
                // Lucky classical factor.
                return Ok(FactorOutcome {
                    factors: (g, n / g),
                    quantum_calls,
                    quantum_ops,
                    classical_shortcut: true,
                });
            }
            continue; // redraw a coprime base
        }
        quantum_calls += 1;
        let run = order_finding(a, n, rng)?;
        // Cost model: counting_bits controlled-modmuls + iQFT gates.
        quantum_ops +=
            run.counting_bits as u64 + (run.counting_bits * (run.counting_bits + 3) / 2) as u64;
        let Some(r) = run.order else { continue };
        if r % 2 != 0 {
            continue;
        }
        let half = mod_pow(a, r / 2, n);
        if half == n - 1 {
            continue; // a^{r/2} ≡ −1: useless
        }
        let p = gcd(half + 1, n);
        let q = gcd(half + n - 1, n);
        for f in [p, q] {
            if f > 1 && f < n {
                return Ok(FactorOutcome {
                    factors: (f, n / f),
                    quantum_calls,
                    quantum_ops,
                    classical_shortcut: false,
                });
            }
        }
    }
    Err(QuantumError::Algorithm {
        reason: format!("no factor of {n} found in {max_attempts} attempts"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use numerics::rng::rng_from_seed;

    #[test]
    fn order_finding_recovers_known_order() {
        let mut rng = rng_from_seed(11);
        // Order of 7 mod 15 is 4; phase estimation succeeds with high
        // probability — try a few runs.
        let mut found = false;
        for _ in 0..6 {
            let run = order_finding(7, 15, &mut rng).unwrap();
            if run.order == Some(4) {
                found = true;
                break;
            }
        }
        assert!(found, "order of 7 mod 15 never recovered");
    }

    #[test]
    fn order_finding_rejects_common_factor() {
        let mut rng = rng_from_seed(1);
        assert!(order_finding(5, 15, &mut rng).is_err());
    }

    #[test]
    fn factors_15() {
        let mut rng = rng_from_seed(3);
        let out = factor(15, &mut rng, 30).unwrap();
        let (p, q) = out.factors;
        assert_eq!(p * q, 15);
        assert!(p > 1 && q > 1);
    }

    #[test]
    fn factors_21() {
        let mut rng = rng_from_seed(5);
        let out = factor(21, &mut rng, 30).unwrap();
        let (p, q) = out.factors;
        assert_eq!(p * q, 21);
        assert!(p > 1 && q > 1);
    }

    #[test]
    fn even_numbers_shortcut() {
        let mut rng = rng_from_seed(2);
        let out = factor(22, &mut rng, 5).unwrap();
        assert!(out.classical_shortcut);
        assert_eq!(out.factors.0 * out.factors.1, 22);
        assert_eq!(out.quantum_calls, 0);
    }

    #[test]
    fn perfect_power_shortcut() {
        let mut rng = rng_from_seed(2);
        let out = factor(27, &mut rng, 5).unwrap();
        assert!(out.classical_shortcut);
        assert_eq!(out.factors.0 * out.factors.1, 27);
    }

    #[test]
    fn primes_rejected() {
        let mut rng = rng_from_seed(4);
        assert!(factor(13, &mut rng, 5).is_err());
        assert!(factor(3, &mut rng, 5).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = factor(15, &mut rng_from_seed(9), 30).unwrap();
        let b = factor(15, &mut rng_from_seed(9), 30).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn quantum_only_path_factors_without_shortcuts() {
        let mut rng = rng_from_seed(6);
        let out = factor_with_options(15, &mut rng, 40, false).unwrap();
        assert_eq!(out.factors.0 * out.factors.1, 15);
        assert!(!out.classical_shortcut);
        assert!(out.quantum_calls >= 1, "must use order finding");
    }
}
