//! Exact state-vector simulation.
//!
//! [`StateVector`] holds the `2^n` complex amplitudes of an `n`-qubit
//! register. Qubit 0 is the least-significant bit of the basis index.
//! Single-qubit and controlled gates are applied in place with the standard
//! stride walk; measurement collapses the state.
//!
//! # Example
//!
//! ```
//! use quantum::state::StateVector;
//! use quantum::gate::matrices;
//!
//! let mut state = StateVector::zero(1);
//! state.apply_single(0, &matrices::HADAMARD)?;
//! assert!((state.probability(0)? - 0.5).abs() < 1e-12);
//! # Ok::<(), quantum::QuantumError>(())
//! ```

use crate::{QuantumError, MAX_QUBITS};
use numerics::rng::Rng;
use numerics::Complex;

/// A 2×2 complex matrix in row-major order.
pub type Matrix2 = [[Complex; 2]; 2];

/// The quantum state of an `n`-qubit register.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics when `n_qubits` is 0 or exceeds [`MAX_QUBITS`]; use
    /// [`StateVector::try_zero`] for a fallible constructor.
    #[must_use]
    pub fn zero(n_qubits: usize) -> Self {
        Self::try_zero(n_qubits).expect("invalid register width")
    }

    /// Fallible form of [`StateVector::zero`].
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::BadRegisterWidth`] outside `1..=MAX_QUBITS`.
    pub fn try_zero(n_qubits: usize) -> Result<Self, QuantumError> {
        if n_qubits == 0 || n_qubits > MAX_QUBITS {
            return Err(QuantumError::BadRegisterWidth { n_qubits });
        }
        let mut amps = vec![Complex::ZERO; 1 << n_qubits];
        amps[0] = Complex::ONE;
        Ok(StateVector { n_qubits, amps })
    }

    /// A computational basis state `|index⟩`.
    ///
    /// # Errors
    ///
    /// * [`QuantumError::BadRegisterWidth`] for an invalid width.
    /// * [`QuantumError::BasisOutOfRange`] when `index >= 2^n`.
    pub fn basis(n_qubits: usize, index: usize) -> Result<Self, QuantumError> {
        let mut s = Self::try_zero(n_qubits)?;
        if index >= s.amps.len() {
            return Err(QuantumError::BasisOutOfRange {
                basis: index,
                dim: s.amps.len(),
            });
        }
        s.amps[0] = Complex::ZERO;
        s.amps[index] = Complex::ONE;
        Ok(s)
    }

    /// Builds a state from raw amplitudes, normalizing them.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::BadAmplitudes`] when the length is not a
    /// power of two ≥ 2, or the vector has zero norm or non-finite entries.
    pub fn from_amplitudes(amps: Vec<Complex>) -> Result<Self, QuantumError> {
        let len = amps.len();
        if len < 2 || !len.is_power_of_two() {
            return Err(QuantumError::BadAmplitudes {
                reason: "length must be a power of two >= 2",
            });
        }
        if amps.iter().any(|a| !a.is_finite()) {
            return Err(QuantumError::BadAmplitudes {
                reason: "non-finite amplitude",
            });
        }
        let norm_sqr: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        if norm_sqr <= 0.0 {
            return Err(QuantumError::BadAmplitudes {
                reason: "zero norm",
            });
        }
        let scale = 1.0 / norm_sqr.sqrt();
        let n_qubits = len.trailing_zeros() as usize;
        if n_qubits > MAX_QUBITS {
            return Err(QuantumError::BadRegisterWidth { n_qubits });
        }
        Ok(StateVector {
            n_qubits,
            amps: amps.into_iter().map(|a| a.scale(scale)).collect(),
        })
    }

    /// Register width.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// State dimension `2^n`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// The raw amplitudes, basis-ordered.
    #[must_use]
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// The amplitude of basis state `index`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::BasisOutOfRange`] when out of range.
    pub fn amplitude(&self, index: usize) -> Result<Complex, QuantumError> {
        self.amps
            .get(index)
            .copied()
            .ok_or(QuantumError::BasisOutOfRange {
                basis: index,
                dim: self.amps.len(),
            })
    }

    /// The probability of measuring basis state `index`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::BasisOutOfRange`] when out of range.
    pub fn probability(&self, index: usize) -> Result<f64, QuantumError> {
        Ok(self.amplitude(index)?.norm_sqr())
    }

    /// Total norm (should stay 1 under unitary evolution).
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Renormalizes in place (used after non-unitary noise branches).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            let s = 1.0 / n;
            for a in &mut self.amps {
                *a = a.scale(s);
            }
        }
    }

    fn check_qubit(&self, q: usize) -> Result<(), QuantumError> {
        if q >= self.n_qubits {
            return Err(QuantumError::QubitOutOfRange {
                qubit: q,
                n_qubits: self.n_qubits,
            });
        }
        Ok(())
    }

    /// Applies a single-qubit unitary to qubit `q`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::QubitOutOfRange`] for a bad index.
    pub fn apply_single(&mut self, q: usize, m: &Matrix2) -> Result<(), QuantumError> {
        self.check_qubit(q)?;
        let stride = 1usize << q;
        let dim = self.amps.len();
        let mut base = 0usize;
        while base < dim {
            for offset in base..base + stride {
                let i0 = offset;
                let i1 = offset + stride;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[i1] = m[1][0] * a0 + m[1][1] * a1;
            }
            base += stride << 1;
        }
        Ok(())
    }

    /// Applies a single-qubit unitary to qubit `target`, controlled on
    /// `control` being `|1⟩`.
    ///
    /// # Errors
    ///
    /// * [`QuantumError::QubitOutOfRange`] for bad indices.
    /// * [`QuantumError::DuplicateQubits`] when `control == target`.
    pub fn apply_controlled(
        &mut self,
        control: usize,
        target: usize,
        m: &Matrix2,
    ) -> Result<(), QuantumError> {
        self.check_qubit(control)?;
        self.check_qubit(target)?;
        if control == target {
            return Err(QuantumError::DuplicateQubits);
        }
        let t_stride = 1usize << target;
        let c_mask = 1usize << control;
        let dim = self.amps.len();
        let mut base = 0usize;
        while base < dim {
            for offset in base..base + t_stride {
                if offset & c_mask == 0 {
                    continue;
                }
                let i0 = offset;
                let i1 = offset + t_stride;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[i1] = m[1][0] * a0 + m[1][1] * a1;
            }
            base += t_stride << 1;
        }
        Ok(())
    }

    /// Applies a doubly-controlled single-qubit unitary (for Toffoli).
    ///
    /// # Errors
    ///
    /// Same conditions as [`StateVector::apply_controlled`].
    pub fn apply_controlled2(
        &mut self,
        c1: usize,
        c2: usize,
        target: usize,
        m: &Matrix2,
    ) -> Result<(), QuantumError> {
        self.check_qubit(c1)?;
        self.check_qubit(c2)?;
        self.check_qubit(target)?;
        if c1 == c2 || c1 == target || c2 == target {
            return Err(QuantumError::DuplicateQubits);
        }
        let t_stride = 1usize << target;
        let mask = (1usize << c1) | (1usize << c2);
        let dim = self.amps.len();
        let mut base = 0usize;
        while base < dim {
            for offset in base..base + t_stride {
                if offset & mask != mask {
                    continue;
                }
                let i0 = offset;
                let i1 = offset + t_stride;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[i1] = m[1][0] * a0 + m[1][1] * a1;
            }
            base += t_stride << 1;
        }
        Ok(())
    }

    /// Swaps qubits `a` and `b`.
    ///
    /// # Errors
    ///
    /// * [`QuantumError::QubitOutOfRange`] for bad indices.
    /// * [`QuantumError::DuplicateQubits`] when `a == b`.
    pub fn apply_swap(&mut self, a: usize, b: usize) -> Result<(), QuantumError> {
        self.check_qubit(a)?;
        self.check_qubit(b)?;
        if a == b {
            return Err(QuantumError::DuplicateQubits);
        }
        let ma = 1usize << a;
        let mb = 1usize << b;
        for i in 0..self.amps.len() {
            let bit_a = (i & ma) != 0;
            let bit_b = (i & mb) != 0;
            if bit_a && !bit_b {
                let j = (i & !ma) | mb;
                self.amps.swap(i, j);
            }
        }
        Ok(())
    }

    /// Applies an arbitrary basis-state permutation `π`: the amplitude of
    /// `|i⟩` moves to `|π(i)⟩`. The caller must supply a bijection; this is
    /// how the modular-arithmetic "oracle" unitaries of Shor's algorithm are
    /// executed.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::BadAmplitudes`] when `perm` is not a
    /// permutation of `0..2^n`.
    pub fn apply_permutation(&mut self, perm: &[usize]) -> Result<(), QuantumError> {
        if perm.len() != self.amps.len() {
            return Err(QuantumError::BadAmplitudes {
                reason: "permutation length must equal state dimension",
            });
        }
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            if p >= perm.len() || seen[p] {
                return Err(QuantumError::BadAmplitudes {
                    reason: "not a permutation",
                });
            }
            seen[p] = true;
        }
        let mut new_amps = vec![Complex::ZERO; self.amps.len()];
        for (i, &p) in perm.iter().enumerate() {
            new_amps[p] = self.amps[i];
        }
        self.amps = new_amps;
        Ok(())
    }

    /// Probability that qubit `q` measures as `|1⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::QubitOutOfRange`] for a bad index.
    pub fn prob_one(&self, q: usize) -> Result<f64, QuantumError> {
        self.check_qubit(q)?;
        let mask = 1usize << q;
        Ok(self
            .amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum())
    }

    /// Measures qubit `q`, collapsing the state. Returns the outcome.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::QubitOutOfRange`] for a bad index.
    pub fn measure_qubit<R: Rng>(&mut self, q: usize, rng: &mut R) -> Result<bool, QuantumError> {
        let p1 = self.prob_one(q)?;
        let outcome = rng.gen::<f64>() < p1;
        let mask = 1usize << q;
        for (i, a) in self.amps.iter_mut().enumerate() {
            let bit = (i & mask) != 0;
            if bit != outcome {
                *a = Complex::ZERO;
            }
        }
        self.normalize();
        Ok(outcome)
    }

    /// Measures the full register, collapsing to a basis state. Returns the
    /// basis index.
    pub fn measure_all<R: Rng>(&mut self, rng: &mut R) -> usize {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        let mut outcome = self.amps.len() - 1;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if r < acc {
                outcome = i;
                break;
            }
        }
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a = if i == outcome {
                Complex::ONE
            } else {
                Complex::ZERO
            };
        }
        outcome
    }

    /// Samples `shots` measurement outcomes *without* collapsing the state.
    pub fn sample_counts<R: Rng>(&self, shots: usize, rng: &mut R) -> Vec<(usize, usize)> {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        // Cumulative distribution for inversion sampling.
        let mut cdf = Vec::with_capacity(self.amps.len());
        let mut acc = 0.0;
        for a in &self.amps {
            acc += a.norm_sqr();
            cdf.push(acc);
        }
        for _ in 0..shots {
            let r: f64 = rng.gen::<f64>() * acc;
            let idx = match cdf.binary_search_by(|p| p.partial_cmp(&r).expect("finite")) {
                Ok(i) | Err(i) => i.min(self.amps.len() - 1),
            };
            *counts.entry(idx).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// The inner product `⟨self|other⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::BadRegisterWidth`] on width mismatch.
    pub fn overlap(&self, other: &StateVector) -> Result<Complex, QuantumError> {
        if self.n_qubits != other.n_qubits {
            return Err(QuantumError::BadRegisterWidth {
                n_qubits: other.n_qubits,
            });
        }
        Ok(self
            .amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum())
    }

    /// The tensor product `self ⊗ other` (`other`'s qubits become the
    /// low-order qubits of the result).
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::BadRegisterWidth`] when the combined width
    /// exceeds [`MAX_QUBITS`].
    pub fn tensor(&self, other: &StateVector) -> Result<StateVector, QuantumError> {
        let n = self.n_qubits + other.n_qubits;
        if n > MAX_QUBITS {
            return Err(QuantumError::BadRegisterWidth { n_qubits: n });
        }
        let mut amps = vec![Complex::ZERO; 1 << n];
        for (i, a) in self.amps.iter().enumerate() {
            for (j, b) in other.amps.iter().enumerate() {
                amps[(i << other.n_qubits) | j] = *a * *b;
            }
        }
        Ok(StateVector { n_qubits: n, amps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::matrices;
    use numerics::rng::rng_from_seed;

    #[test]
    fn zero_state() {
        let s = StateVector::zero(3);
        assert_eq!(s.dim(), 8);
        assert_eq!(s.probability(0).unwrap(), 1.0);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn width_limits() {
        assert!(StateVector::try_zero(0).is_err());
        assert!(StateVector::try_zero(MAX_QUBITS + 1).is_err());
    }

    #[test]
    fn basis_state() {
        let s = StateVector::basis(2, 3).unwrap();
        assert_eq!(s.probability(3).unwrap(), 1.0);
        assert!(StateVector::basis(2, 4).is_err());
    }

    #[test]
    fn from_amplitudes_normalizes() {
        let s = StateVector::from_amplitudes(vec![Complex::new(3.0, 0.0), Complex::new(4.0, 0.0)])
            .unwrap();
        assert!((s.probability(0).unwrap() - 0.36).abs() < 1e-12);
        assert!((s.probability(1).unwrap() - 0.64).abs() < 1e-12);
    }

    #[test]
    fn from_amplitudes_rejects_bad() {
        assert!(StateVector::from_amplitudes(vec![Complex::ONE; 3]).is_err());
        assert!(StateVector::from_amplitudes(vec![Complex::ZERO; 4]).is_err());
        assert!(
            StateVector::from_amplitudes(vec![Complex::new(f64::NAN, 0.0), Complex::ONE]).is_err()
        );
    }

    #[test]
    fn hadamard_and_x() {
        let mut s = StateVector::zero(2);
        s.apply_single(0, &matrices::HADAMARD).unwrap();
        assert!((s.probability(0b00).unwrap() - 0.5).abs() < 1e-12);
        assert!((s.probability(0b01).unwrap() - 0.5).abs() < 1e-12);
        s.apply_single(1, &matrices::PAULI_X).unwrap();
        assert!((s.probability(0b10).unwrap() - 0.5).abs() < 1e-12);
        assert!((s.probability(0b11).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn controlled_x_makes_bell() {
        let mut s = StateVector::zero(2);
        s.apply_single(0, &matrices::HADAMARD).unwrap();
        s.apply_controlled(0, 1, &matrices::PAULI_X).unwrap();
        assert!((s.probability(0b00).unwrap() - 0.5).abs() < 1e-12);
        assert!((s.probability(0b11).unwrap() - 0.5).abs() < 1e-12);
        assert!(s.probability(0b01).unwrap() < 1e-12);
    }

    #[test]
    fn controlled_requires_distinct() {
        let mut s = StateVector::zero(2);
        assert_eq!(
            s.apply_controlled(1, 1, &matrices::PAULI_X),
            Err(QuantumError::DuplicateQubits)
        );
    }

    #[test]
    fn toffoli_truth_table() {
        for input in 0..8usize {
            let mut s = StateVector::basis(3, input).unwrap();
            s.apply_controlled2(0, 1, 2, &matrices::PAULI_X).unwrap();
            let expected = if input & 0b11 == 0b11 {
                input ^ 0b100
            } else {
                input
            };
            assert_eq!(s.probability(expected).unwrap(), 1.0, "input {input}");
        }
    }

    #[test]
    fn swap_exchanges_bits() {
        for input in 0..4usize {
            let mut s = StateVector::basis(2, input).unwrap();
            s.apply_swap(0, 1).unwrap();
            let expected = ((input & 1) << 1) | ((input >> 1) & 1);
            assert_eq!(s.probability(expected).unwrap(), 1.0);
        }
    }

    #[test]
    fn permutation_applies() {
        let mut s = StateVector::basis(2, 1).unwrap();
        // Cyclic shift i -> i+1 mod 4.
        s.apply_permutation(&[1, 2, 3, 0]).unwrap();
        assert_eq!(s.probability(2).unwrap(), 1.0);
        assert!(s.apply_permutation(&[0, 0, 1, 2]).is_err());
        assert!(s.apply_permutation(&[0, 1]).is_err());
    }

    #[test]
    fn norm_preserved_by_gates() {
        let mut s = StateVector::zero(4);
        let mut rng = rng_from_seed(3);
        for i in 0..50 {
            let q = i % 4;
            s.apply_single(q, &matrices::HADAMARD).unwrap();
            s.apply_single((q + 1) % 4, &matrices::phase(0.3)).unwrap();
            s.apply_controlled(q, (q + 2) % 4, &matrices::PAULI_X)
                .unwrap();
            let _ = rng.gen::<f64>();
        }
        assert!((s.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn measurement_collapses() {
        let mut rng = rng_from_seed(1);
        let mut s = StateVector::zero(1);
        s.apply_single(0, &matrices::HADAMARD).unwrap();
        let outcome = s.measure_qubit(0, &mut rng).unwrap();
        let idx = usize::from(outcome);
        assert!((s.probability(idx).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_statistics() {
        let mut rng = rng_from_seed(7);
        let mut ones = 0;
        for _ in 0..2000 {
            let mut s = StateVector::zero(1);
            s.apply_single(0, &matrices::HADAMARD).unwrap();
            if s.measure_qubit(0, &mut rng).unwrap() {
                ones += 1;
            }
        }
        assert!((900..1100).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn sample_counts_total_and_support() {
        let mut rng = rng_from_seed(5);
        let mut s = StateVector::zero(2);
        s.apply_single(0, &matrices::HADAMARD).unwrap();
        let counts = s.sample_counts(1000, &mut rng);
        let total: usize = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 1000);
        for (idx, _) in counts {
            assert!(idx == 0 || idx == 1, "impossible outcome {idx}");
        }
    }

    #[test]
    fn overlap_and_tensor() {
        let zero = StateVector::zero(1);
        let one = StateVector::basis(1, 1).unwrap();
        assert!((zero.overlap(&zero).unwrap().re - 1.0).abs() < 1e-12);
        assert!(zero.overlap(&one).unwrap().norm() < 1e-12);

        let prod = one.tensor(&zero).unwrap();
        assert_eq!(prod.n_qubits(), 2);
        // `one` occupies the high qubit: |1⟩⊗|0⟩ = |10⟩ = index 2.
        assert_eq!(prod.probability(2).unwrap(), 1.0);
    }

    #[test]
    fn measure_all_deterministic_on_basis() {
        let mut rng = rng_from_seed(2);
        let mut s = StateVector::basis(3, 5).unwrap();
        assert_eq!(s.measure_all(&mut rng), 5);
        assert_eq!(s.probability(5).unwrap(), 1.0);
    }
}
