//! The swap test: quantum state-overlap estimation.
//!
//! Given registers prepared in `|a⟩` and `|b⟩` plus one ancilla, the swap
//! test measures the ancilla as `|0⟩` with probability
//! `(1 + |⟨a|b⟩|²)/2`. Repeating the test estimates the squared overlap —
//! the similarity primitive behind the paper's DNA-comparison discussion
//! ([`crate::dna`]).
//!
//! # Example
//!
//! ```
//! use quantum::state::StateVector;
//! use quantum::swap_test;
//! use numerics::rng::rng_from_seed;
//!
//! let a = StateVector::basis(2, 1)?;
//! let b = StateVector::basis(2, 1)?;
//! let mut rng = rng_from_seed(5);
//! let est = swap_test::estimate_overlap_sq(&a, &b, 500, &mut rng)?;
//! assert!(est > 0.9, "identical states: {est}");
//! # Ok::<(), quantum::QuantumError>(())
//! ```

use crate::gate::{matrices, Gate};
use crate::state::StateVector;
use crate::QuantumError;
use numerics::rng::Rng;

/// Runs one swap test and returns the ancilla measurement (`false` = `|0⟩`).
///
/// Register layout: ancilla is the highest qubit; `a` occupies the low
/// qubits, `b` the middle qubits.
///
/// # Errors
///
/// * [`QuantumError::BadRegisterWidth`] when the registers differ in width
///   or the combined register exceeds the simulator limit.
pub fn swap_test_once<R: Rng>(
    a: &StateVector,
    b: &StateVector,
    rng: &mut R,
) -> Result<bool, QuantumError> {
    if a.n_qubits() != b.n_qubits() {
        return Err(QuantumError::BadRegisterWidth {
            n_qubits: b.n_qubits(),
        });
    }
    let m = a.n_qubits();
    // ancilla ⊗ b ⊗ a : a on qubits 0..m, b on m..2m, ancilla at 2m.
    let ancilla = StateVector::try_zero(1)?;
    let combined = ancilla.tensor(b)?.tensor(a)?;
    let mut state = combined;
    let anc = 2 * m;
    Gate::H(anc).apply(&mut state)?;
    // Controlled swap of register pairs, qubit by qubit (Fredkin gates built
    // from the doubly-controlled X identity: CSWAP = CX(b,a)·CCX(anc,a,b)·CX(b,a)).
    for q in 0..m {
        let qa = q;
        let qb = m + q;
        state.apply_controlled(qb, qa, &matrices::PAULI_X)?;
        state.apply_controlled2(anc, qa, qb, &matrices::PAULI_X)?;
        state.apply_controlled(qb, qa, &matrices::PAULI_X)?;
    }
    Gate::H(anc).apply(&mut state)?;
    state.measure_qubit(anc, rng)
}

/// Estimates `|⟨a|b⟩|²` from `shots` swap tests:
/// `est = max(0, 2·P(ancilla = 0) − 1)`.
///
/// # Errors
///
/// * Propagates [`swap_test_once`] errors.
/// * [`QuantumError::Algorithm`] when `shots == 0`.
pub fn estimate_overlap_sq<R: Rng>(
    a: &StateVector,
    b: &StateVector,
    shots: usize,
    rng: &mut R,
) -> Result<f64, QuantumError> {
    if shots == 0 {
        return Err(QuantumError::Algorithm {
            reason: "swap test needs at least one shot".into(),
        });
    }
    let mut zeros = 0usize;
    for _ in 0..shots {
        if !swap_test_once(a, b, rng)? {
            zeros += 1;
        }
    }
    let p0 = zeros as f64 / shots as f64;
    Ok((2.0 * p0 - 1.0).max(0.0))
}

/// The exact squared overlap `|⟨a|b⟩|²` (the simulator has the amplitudes,
/// so the sampled estimate can be validated against truth).
///
/// # Errors
///
/// Returns [`QuantumError::BadRegisterWidth`] on width mismatch.
pub fn exact_overlap_sq(a: &StateVector, b: &StateVector) -> Result<f64, QuantumError> {
    Ok(a.overlap(b)?.norm_sqr())
}

#[cfg(test)]
mod tests {
    use super::*;
    use numerics::rng::rng_from_seed;
    use numerics::Complex;

    #[test]
    fn identical_states_full_overlap() {
        let mut rng = rng_from_seed(1);
        let a = StateVector::basis(2, 2).unwrap();
        let est = estimate_overlap_sq(&a, &a.clone(), 400, &mut rng).unwrap();
        assert!(est > 0.9, "est {est}");
        assert!((exact_overlap_sq(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_states_zero_overlap() {
        let mut rng = rng_from_seed(2);
        let a = StateVector::basis(2, 0).unwrap();
        let b = StateVector::basis(2, 3).unwrap();
        let est = estimate_overlap_sq(&a, &b, 400, &mut rng).unwrap();
        assert!(est < 0.15, "est {est}");
        assert!(exact_overlap_sq(&a, &b).unwrap() < 1e-12);
    }

    #[test]
    fn partial_overlap_tracks_truth() {
        let mut rng = rng_from_seed(3);
        // |a⟩ = |0⟩, |b⟩ = cos θ |0⟩ + sin θ |1⟩ with overlap² = cos²θ.
        let theta: f64 = 0.7;
        let a = StateVector::basis(1, 0).unwrap();
        let b = StateVector::from_amplitudes(vec![
            Complex::new(theta.cos(), 0.0),
            Complex::new(theta.sin(), 0.0),
        ])
        .unwrap();
        let truth = exact_overlap_sq(&a, &b).unwrap();
        let est = estimate_overlap_sq(&a, &b, 3000, &mut rng).unwrap();
        assert!((est - truth).abs() < 0.06, "est {est} vs truth {truth}");
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut rng = rng_from_seed(4);
        let a = StateVector::zero(1);
        let b = StateVector::zero(2);
        assert!(swap_test_once(&a, &b, &mut rng).is_err());
    }

    #[test]
    fn zero_shots_rejected() {
        let mut rng = rng_from_seed(4);
        let a = StateVector::zero(1);
        assert!(estimate_overlap_sq(&a, &a.clone(), 0, &mut rng).is_err());
    }

    #[test]
    fn estimate_clamped_nonnegative() {
        // Orthogonal states can yield p0 slightly below 1/2 by sampling
        // noise; the estimator must clamp at zero.
        let mut rng = rng_from_seed(6);
        let a = StateVector::basis(1, 0).unwrap();
        let b = StateVector::basis(1, 1).unwrap();
        for _ in 0..5 {
            let est = estimate_overlap_sq(&a, &b, 21, &mut rng).unwrap();
            assert!(est >= 0.0);
        }
    }
}
