//! Randomized tests of the quantum crate's invariants.
//!
//! Formerly written with `proptest`; rewritten on the in-repo
//! `numerics::rng` so the suite builds offline. Each test draws many
//! random cases from a fixed seed, so failures reproduce deterministically.

use numerics::rng::{rng_from_seed, Rng, StdRng};
use quantum::circuit::Circuit;
use quantum::decompose::decompose_circuit;
use quantum::gate::Gate;
use quantum::isa::{assemble, Program};
use quantum::numtheory;
use quantum::state::StateVector;

const CASES: usize = 64;

fn random_gate(rng: &mut StdRng, n: usize) -> Gate {
    fn q2(rng: &mut StdRng, n: usize) -> (usize, usize) {
        let a = rng.gen_range(0..n);
        loop {
            let b = rng.gen_range(0..n);
            if b != a {
                return (a, b);
            }
        }
    }
    let kind = rng.gen_range(0..11);
    let q = rng.gen_range(0..n);
    match kind {
        0 => Gate::H(q),
        1 => Gate::X(q),
        2 => Gate::Y(q),
        3 => Gate::Z(q),
        4 => Gate::S(q),
        5 => Gate::Tdg(q),
        6 => Gate::Rz(q, rng.gen_range(-3.0..3.0)),
        7 => {
            let (a, b) = q2(rng, n);
            Gate::CX(a, b)
        }
        8 => {
            let (a, b) = q2(rng, n);
            Gate::CZ(a, b)
        }
        9 => {
            let (a, b) = q2(rng, n);
            Gate::Swap(a, b)
        }
        _ => {
            let (a, b) = q2(rng, n);
            Gate::CPhase(a, b, 0.7)
        }
    }
}

/// Decomposition to {1q, CX} preserves circuit semantics exactly.
#[test]
fn decomposition_preserves_semantics() {
    let mut rng = rng_from_seed(0xDEC);
    for _ in 0..CASES {
        let n_gates = rng.gen_range(1..15);
        let mut c = Circuit::new(3).unwrap();
        for _ in 0..n_gates {
            c.push(random_gate(&mut rng, 3)).unwrap();
        }
        let lowered = decompose_circuit(&c).unwrap();
        assert!(lowered.gates().iter().all(|g| g.arity() <= 2));
        for basis in 0..8usize {
            let a = c.run(StateVector::basis(3, basis).unwrap()).unwrap();
            let b = lowered.run(StateVector::basis(3, basis).unwrap()).unwrap();
            let fidelity = a.overlap(&b).unwrap().norm();
            assert!(
                (fidelity - 1.0).abs() < 1e-8,
                "basis {basis}: fidelity {fidelity}"
            );
        }
    }
}

/// Assembly round-trips programs built from circuits.
#[test]
fn isa_roundtrip() {
    let mut rng = rng_from_seed(0x15A);
    for _ in 0..CASES {
        let n_gates = rng.gen_range(0..20);
        let mut c = Circuit::new(4).unwrap();
        for _ in 0..n_gates {
            c.push(random_gate(&mut rng, 4)).unwrap();
        }
        let program = Program::from_circuit(&c, true);
        let text = program.disassemble();
        let reparsed = assemble(&text).unwrap();
        assert_eq!(reparsed, program);
    }
}

/// Probabilities of a state always sum to 1 after arbitrary circuits.
#[test]
fn probabilities_normalized() {
    let mut rng = rng_from_seed(0x9A0B);
    for _ in 0..CASES {
        let n_gates = rng.gen_range(1..30);
        let mut state = StateVector::zero(4);
        for _ in 0..n_gates {
            random_gate(&mut rng, 4).apply(&mut state).unwrap();
        }
        let total: f64 = (0..state.dim())
            .map(|i| state.probability(i).unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}

/// mod_pow agrees with the naive product for small exponents.
#[test]
fn mod_pow_agrees_with_naive() {
    let mut rng = rng_from_seed(0x90D);
    for _ in 0..CASES {
        let base = rng.gen_range(1u64..50);
        let exp = rng.gen_range(0u64..12);
        let modulus = rng.gen_range(2u64..1000);
        let naive = (0..exp).fold(1u64, |acc, _| acc * (base % modulus) % modulus);
        assert_eq!(numtheory::mod_pow(base, exp, modulus), naive);
    }
}

/// gcd divides both arguments and any common divisor divides it.
#[test]
fn gcd_is_greatest() {
    let mut rng = rng_from_seed(0x6CD);
    for _ in 0..CASES {
        let a = rng.gen_range(1u64..10_000);
        let b = rng.gen_range(1u64..10_000);
        let g = numtheory::gcd(a, b);
        assert_eq!(a % g, 0);
        assert_eq!(b % g, 0);
        for d in (g + 1)..=(a.min(b)).min(g + 50) {
            assert!(!(a % d == 0 && b % d == 0), "common divisor {d} > gcd {g}");
        }
    }
}

/// Convergents of p/q include the exact fraction when q is small.
#[test]
fn convergents_reach_exact_fraction() {
    let mut rng = rng_from_seed(0xC0F);
    for _ in 0..CASES {
        let p = rng.gen_range(1u64..50);
        let q = rng.gen_range(1u64..50);
        let g = numtheory::gcd(p, q);
        let (pr, qr) = (p / g, q / g);
        let convergents = numtheory::convergents(p, q, qr);
        assert!(
            convergents.contains(&(pr, qr)),
            "{pr}/{qr} not among {convergents:?}"
        );
    }
}

/// Multiplicative order divides Euler's totient (Lagrange, spot form):
/// a^order = 1 and no smaller positive power is 1.
#[test]
fn multiplicative_order_minimal() {
    let mut rng = rng_from_seed(0x03D);
    let mut checked = 0;
    while checked < CASES {
        let a = rng.gen_range(2u64..40);
        let n = rng.gen_range(3u64..60);
        if numtheory::gcd(a, n) != 1 {
            continue;
        }
        checked += 1;
        let order = numtheory::multiplicative_order(a, n).unwrap();
        assert_eq!(numtheory::mod_pow(a, order, n), 1);
        for r in 1..order {
            assert_ne!(numtheory::mod_pow(a, r, n), 1, "smaller order {r} exists");
        }
    }
}
