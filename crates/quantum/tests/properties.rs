//! Property-based tests of the quantum crate's invariants.

use proptest::prelude::*;
use quantum::circuit::Circuit;
use quantum::decompose::decompose_circuit;
use quantum::gate::Gate;
use quantum::isa::{assemble, Program};
use quantum::numtheory;
use quantum::state::StateVector;

fn gate_strategy(n: usize) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let q2 = move || {
        (0..n, 0..n)
            .prop_filter_map("distinct", |(a, b)| if a == b { None } else { Some((a, b)) })
    };
    prop_oneof![
        q.clone().prop_map(Gate::H),
        q.clone().prop_map(Gate::X),
        q.clone().prop_map(Gate::Y),
        q.clone().prop_map(Gate::Z),
        q.clone().prop_map(Gate::S),
        q.clone().prop_map(Gate::Tdg),
        (q, -3.0f64..3.0).prop_map(|(q, t)| Gate::Rz(q, t)),
        q2().prop_map(|(a, b)| Gate::CX(a, b)),
        q2().prop_map(|(a, b)| Gate::CZ(a, b)),
        q2().prop_map(|(a, b)| Gate::Swap(a, b)),
        q2().prop_map(|(a, b)| Gate::CPhase(a, b, 0.7)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decomposition to {1q, CX} preserves circuit semantics exactly.
    #[test]
    fn decomposition_preserves_semantics(gates in prop::collection::vec(gate_strategy(3), 1..15)) {
        let mut c = Circuit::new(3).unwrap();
        for g in &gates {
            c.push(*g).unwrap();
        }
        let lowered = decompose_circuit(&c).unwrap();
        prop_assert!(lowered.gates().iter().all(|g| g.arity() <= 2));
        for basis in 0..8usize {
            let a = c.run(StateVector::basis(3, basis).unwrap()).unwrap();
            let b = lowered.run(StateVector::basis(3, basis).unwrap()).unwrap();
            let fidelity = a.overlap(&b).unwrap().norm();
            prop_assert!((fidelity - 1.0).abs() < 1e-8, "basis {}: fidelity {}", basis, fidelity);
        }
    }

    /// Assembly round-trips programs built from circuits.
    #[test]
    fn isa_roundtrip(gates in prop::collection::vec(gate_strategy(4), 0..20)) {
        let mut c = Circuit::new(4).unwrap();
        for g in &gates {
            c.push(*g).unwrap();
        }
        let program = Program::from_circuit(&c, true);
        let text = program.disassemble();
        let reparsed = assemble(&text).unwrap();
        prop_assert_eq!(reparsed, program);
    }

    /// Probabilities of a state always sum to 1 after arbitrary circuits.
    #[test]
    fn probabilities_normalized(gates in prop::collection::vec(gate_strategy(4), 1..30)) {
        let mut state = StateVector::zero(4);
        for g in &gates {
            g.apply(&mut state).unwrap();
        }
        let total: f64 = (0..state.dim())
            .map(|i| state.probability(i).unwrap())
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// mod_pow agrees with the naive product for small exponents.
    #[test]
    fn mod_pow_agrees_with_naive(base in 1u64..50, exp in 0u64..12, modulus in 2u64..1000) {
        let naive = (0..exp).fold(1u64, |acc, _| acc * (base % modulus) % modulus);
        prop_assert_eq!(numtheory::mod_pow(base, exp, modulus), naive);
    }

    /// gcd divides both arguments and any common divisor divides it.
    #[test]
    fn gcd_is_greatest(a in 1u64..10_000, b in 1u64..10_000) {
        let g = numtheory::gcd(a, b);
        prop_assert_eq!(a % g, 0);
        prop_assert_eq!(b % g, 0);
        for d in (g + 1)..=(a.min(b)).min(g + 50) {
            prop_assert!(!(a % d == 0 && b % d == 0), "common divisor {} > gcd {}", d, g);
        }
    }

    /// Convergents of p/q include the exact fraction when q is small.
    #[test]
    fn convergents_reach_exact_fraction(p in 1u64..50, q in 1u64..50) {
        let g = numtheory::gcd(p, q);
        let (pr, qr) = (p / g, q / g);
        let convergents = numtheory::convergents(p, q, qr);
        prop_assert!(
            convergents.contains(&(pr, qr)),
            "{}/{} not among {:?}",
            pr,
            qr,
            convergents
        );
    }

    /// Multiplicative order divides Euler's totient (Lagrange, spot form):
    /// a^order = 1 and no smaller positive power is 1.
    #[test]
    fn multiplicative_order_minimal(a in 2u64..40, n in 3u64..60) {
        prop_assume!(numtheory::gcd(a, n) == 1);
        let order = numtheory::multiplicative_order(a, n).unwrap();
        prop_assert_eq!(numtheory::mod_pow(a, order, n), 1);
        for r in 1..order {
            prop_assert_ne!(numtheory::mod_pow(a, r, n), 1, "smaller order {} exists", r);
        }
    }
}
