//! The serving engine: worker pool, submission paths, shutdown.
//!
//! [`Runtime::start`] builds one full heterogeneous backend pool *per
//! worker thread* (backends are `Send`, not `Sync`, so each worker owns its
//! own [`HostRuntime`]) and spawns the workers over a shared bounded
//! [`JobQueue`]. Affinity routing reuses the host's
//! [`DispatchPolicy`] — a SAT job lands on that worker's memcomputing
//! backend, a comparison on its oscillator, and so on.
//!
//! # Determinism under concurrency
//!
//! Every job gets a seed derived from the runtime's master seed and the
//! job id, and the selected backend is reseeded with it immediately before
//! execution. A job's result is therefore a pure function of
//! `(kernel, master seed, job id)` — independent of which worker ran it,
//! in what order, or how many workers exist. A 6-worker runtime and a
//! 1-worker runtime given the same submission sequence produce identical
//! results (see `examples/serving.rs`).

use crate::job::{JobHandle, JobOptions, JobOutcome, JobState};
use crate::queue::{JobQueue, PushError};
use crate::stats::{RuntimeStats, StatsCollector};
use crate::RuntimeError;
use accel::accelerator::Accelerator;
use accel::fault::FaultPlan;
use accel::host::{
    CorrectionTable, DispatchPolicy, DispatchRequest, HostRuntime, QuarantinePolicy, RetryPolicy,
};
use accel::kernel::{InvalidKernel, Kernel};
use accel::AccelError;
use numerics::rng::SeedStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// Non-blocking submission found the queue at capacity.
    QueueFull,
    /// The runtime is shutting down.
    ShutDown,
    /// The kernel failed submission-time validation and never entered the
    /// queue (counted in [`RuntimeStats::invalid`]).
    Invalid(InvalidKernel),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "job queue is full"),
            SubmitError::ShutDown => write!(f, "runtime is shut down"),
            SubmitError::Invalid(e) => write!(f, "invalid kernel: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SubmitError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

/// Serving-engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Worker threads, each owning a full backend pool. Must be ≥ 1.
    pub workers: usize,
    /// Bounded queue capacity (backpressure threshold). Must be ≥ 1.
    pub queue_capacity: usize,
    /// How each worker routes kernels to its backends.
    pub policy: DispatchPolicy,
    /// Master seed; every job's execution seed derives from it.
    pub seed: u64,
    /// Queue timeout applied when a job's [`JobOptions::timeout`] is unset.
    pub default_timeout: Option<Duration>,
    /// Cost-model correction factors every worker's planner is *frozen*
    /// with. Workers never adapt corrections mid-run — routing must stay a
    /// pure function of the submission for reproducibility — but observed
    /// ratios accumulate in [`RuntimeStats`], and
    /// [`RuntimeStats::calibrated`] folds them into the table for the next
    /// runtime.
    pub corrections: CorrectionTable,
    /// Optional deterministic fault-injection plan. When set, every
    /// worker's backends are wrapped in [`accel::fault::FaultyBackend`]
    /// (per the plan's per-backend specs) and workers stall per the plan's
    /// worker-stall schedule. Fault decisions are pure functions of
    /// `(plan seed, backend name, job seed)`, so chaos runs reproduce
    /// byte-for-byte across worker counts.
    pub faults: Option<FaultPlan>,
    /// Retry/backoff schedule each worker's dispatcher applies to
    /// transient device faults before failing over.
    pub retry: RetryPolicy,
    /// When repeated fault-exhausted dispatches quarantine a backend, and
    /// how often quarantined backends are probed for recovery. Quarantine
    /// is history-dependent: runs that must reproduce byte-for-byte across
    /// worker counts should use [`QuarantinePolicy::disabled`].
    pub quarantine: QuarantinePolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 2,
            queue_capacity: 64,
            policy: DispatchPolicy::PreferSpecialized,
            seed: 0,
            default_timeout: None,
            corrections: CorrectionTable::new(),
            faults: None,
            retry: RetryPolicy::default(),
            quarantine: QuarantinePolicy::default(),
        }
    }
}

/// One queued job envelope.
struct QueuedJob {
    kernel: Kernel,
    seed: u64,
    policy: Option<DispatchPolicy>,
    /// The job's timeout budget, doubling as the `DeadlineAware` planner's
    /// device-time budget (see [`JobOptions::timeout`]).
    budget: Option<Duration>,
    state: Arc<JobState>,
    enqueued: Instant,
    deadline: Option<Instant>,
}

/// State shared between the submission side and the workers.
struct Shared {
    queue: JobQueue<QueuedJob>,
    stats: StatsCollector,
    workers: usize,
    /// The fault plan, if chaos is on — consulted per job for worker
    /// stalls (backend faults live inside the wrapped backends).
    faults: Option<FaultPlan>,
}

/// The concurrent job-serving engine. See the [module docs](self).
pub struct Runtime {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    seed: u64,
    default_timeout: Option<Duration>,
}

impl Runtime {
    /// Starts a runtime whose workers each own the standard heterogeneous
    /// pool (quantum, oscillator, memcomputing, CPU fallback).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Config`] for a zero worker count or queue capacity;
    /// [`RuntimeError::Backend`] if building a backend pool fails.
    pub fn start(config: RuntimeConfig) -> Result<Self, RuntimeError> {
        Self::with_backend_factory(config, accel::backends::standard_pool)
    }

    /// Starts a runtime whose workers build their backend pools through
    /// `factory`, called once per worker with that worker's pool seed.
    /// This is the hook tests use to inject slow or failing backends.
    ///
    /// # Errors
    ///
    /// Same contract as [`Runtime::start`].
    pub fn with_backend_factory<F>(config: RuntimeConfig, factory: F) -> Result<Self, RuntimeError>
    where
        F: Fn(u64) -> Result<Vec<Box<dyn Accelerator>>, AccelError>,
    {
        if config.workers == 0 {
            return Err(RuntimeError::Config(
                "worker count must be at least 1".into(),
            ));
        }
        if config.queue_capacity == 0 {
            return Err(RuntimeError::Config(
                "queue capacity must be at least 1".into(),
            ));
        }
        // Build every pool up front so factory errors surface here, in the
        // caller, rather than dying silently inside a worker thread.
        let mut pool_seeds = SeedStream::new(config.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut hosts = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let mut host = HostRuntime::with_corrections(config.policy, config.corrections.clone());
            host.set_retry_policy(config.retry);
            host.set_quarantine_policy(config.quarantine);
            for backend in factory(pool_seeds.next_seed()).map_err(RuntimeError::Backend)? {
                let backend = match &config.faults {
                    Some(plan) => plan.wrap(backend),
                    None => backend,
                };
                host.register(backend);
            }
            hosts.push(host);
        }
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_capacity),
            stats: StatsCollector::new(),
            workers: config.workers,
            faults: config.faults,
        });
        let handles = hosts
            .into_iter()
            .enumerate()
            .map(|(i, host)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("runtime-worker-{i}"))
                    .spawn(move || worker_loop(&shared, host))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Ok(Runtime {
            shared,
            handles,
            next_id: AtomicU64::new(0),
            seed: config.seed,
            default_timeout: config.default_timeout,
        })
    }

    /// Submits a job with default options, blocking while the queue is
    /// full (backpressure).
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShutDown`] if the runtime stopped accepting work.
    pub fn submit(&self, kernel: Kernel) -> Result<JobHandle, SubmitError> {
        self.submit_with(kernel, JobOptions::default())
    }

    /// Submits a job, blocking while the queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] for a kernel that fails submission-time
    /// validation; [`SubmitError::ShutDown`] if the runtime stopped
    /// accepting work.
    pub fn submit_with(
        &self,
        kernel: Kernel,
        options: JobOptions,
    ) -> Result<JobHandle, SubmitError> {
        self.validate(&kernel)?;
        let (job, handle) = self.prepare(kernel, options);
        match self.shared.queue.push(job) {
            Ok(()) => {
                self.shared.stats.record_submitted();
                Ok(handle)
            }
            Err(PushError::Closed(_) | PushError::Full(_)) => Err(SubmitError::ShutDown),
        }
    }

    /// Submits a job without blocking: a full queue rejects immediately.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] (counted in
    /// [`RuntimeStats::rejected`]) or [`SubmitError::ShutDown`].
    pub fn try_submit(&self, kernel: Kernel) -> Result<JobHandle, SubmitError> {
        self.try_submit_with(kernel, JobOptions::default())
    }

    /// Non-blocking submission with explicit options.
    ///
    /// # Errors
    ///
    /// Same contract as [`Runtime::try_submit`].
    pub fn try_submit_with(
        &self,
        kernel: Kernel,
        options: JobOptions,
    ) -> Result<JobHandle, SubmitError> {
        self.validate(&kernel)?;
        let (job, handle) = self.prepare(kernel, options);
        match self.shared.queue.try_push(job) {
            Ok(()) => {
                self.shared.stats.record_submitted();
                Ok(handle)
            }
            Err(PushError::Full(_)) => {
                self.shared.stats.record_rejected();
                Err(SubmitError::QueueFull)
            }
            Err(PushError::Closed(_)) => Err(SubmitError::ShutDown),
        }
    }

    /// Rejects malformed kernels before they consume a queue slot or a
    /// job id (see [`Kernel::validate`]).
    fn validate(&self, kernel: &Kernel) -> Result<(), SubmitError> {
        kernel.validate().map_err(|e| {
            self.shared.stats.record_invalid();
            SubmitError::Invalid(e)
        })
    }

    fn prepare(&self, kernel: Kernel, options: JobOptions) -> (QueuedJob, JobHandle) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(JobState::new());
        let handle = JobHandle::new(id, Arc::clone(&state));
        // lint:allow(determinism::wall-clock, reason = "queue-time/deadline stamping only; job seeds and payloads never derive from it")
        let now = Instant::now();
        let timeout = options.timeout.or(self.default_timeout);
        let job = QueuedJob {
            kernel,
            seed: options.seed.unwrap_or_else(|| job_seed(self.seed, id)),
            policy: options.policy,
            budget: timeout,
            state,
            enqueued: now,
            deadline: timeout.map(|t| now + t),
        };
        (job, handle)
    }

    /// A point-in-time statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        self.shared
            .stats
            .snapshot(self.shared.queue.len(), self.shared.workers)
    }

    /// Items currently waiting in the queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Stops accepting work, drains the queue, joins every worker, and
    /// returns the final statistics. Queued jobs still execute; only new
    /// submissions are refused.
    #[must_use]
    pub fn shutdown(mut self) -> RuntimeStats {
        self.stop_and_join();
        self.shared.stats.snapshot(0, self.shared.workers)
    }

    fn stop_and_join(&mut self) {
        self.shared.queue.close();
        for handle in self.handles.drain(..) {
            // A worker that panicked already poisoned nothing shared
            // beyond its own jobs; surface the panic here.
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Mixes the master seed and job id into the job's execution seed.
fn job_seed(master: u64, id: u64) -> u64 {
    SeedStream::new(master ^ id.wrapping_mul(0xd134_2543_de82_ef95)).next_seed()
}

/// One worker: drain the queue until it is closed and empty.
fn worker_loop(shared: &Shared, mut host: HostRuntime) {
    while let Some(job) = shared.queue.pop() {
        serve_one(shared, &mut host, &job);
    }
}

/// Resolves one popped job and records exactly one terminal statistic,
/// chosen by whichever outcome actually won the installation race.
fn serve_one(shared: &Shared, host: &mut HostRuntime, job: &QueuedJob) {
    // lint:allow(determinism::wall-clock, reason = "deadline check and latency accounting; results are pure functions of the job seed")
    let picked_up = Instant::now();
    let mut predicted_estimate = None;
    let outcome = if job.deadline.is_some_and(|d| picked_up >= d) {
        JobOutcome::TimedOut
    } else if job.state.cancel_requested() || job.state.outcome().is_some() {
        JobOutcome::Cancelled
    } else {
        // An injected worker stall delays the job but never changes its
        // outcome: it runs after the deadline/cancel checks, and results
        // are pure functions of the job seed regardless of timing.
        if let Some(stall) = shared
            .faults
            .as_ref()
            .and_then(|p| p.worker_stall(job.seed))
        {
            std::thread::sleep(stall);
        }
        let request = DispatchRequest {
            reseed: Some(job.seed),
            policy: job.policy,
            deadline_seconds: job.budget.map(|t| t.as_secs_f64()),
        };
        let dispatched = host.dispatch_planned(&job.kernel, &request);
        // Failed dispatches return no report, so fault accounting drains
        // from the host's ledger on both paths.
        shared.stats.record_faults(&host.drain_faults());
        match dispatched {
            Ok(report) => {
                predicted_estimate = report.estimate;
                JobOutcome::Completed {
                    backend: report.backend,
                    execution: report.execution,
                    wall: picked_up.elapsed(),
                }
            }
            Err(err) => JobOutcome::Failed(err.to_string()),
        }
    };
    // Account the outcome *before* it becomes visible (under the state
    // lock): a caller that has observed its result is guaranteed to find
    // the job already counted in the statistics.
    let installed = job.state.finish_then(outcome, |visible| match visible {
        JobOutcome::Completed {
            execution,
            wall,
            backend,
        } => shared.stats.record_completed(
            backend,
            execution.cost.device_seconds,
            execution.cost.operations,
            predicted_estimate,
            *wall,
            job.enqueued.elapsed(),
        ),
        JobOutcome::Failed(_) => shared.stats.record_failed(),
        JobOutcome::TimedOut => shared.stats.record_timed_out(),
        JobOutcome::Cancelled => shared.stats.record_cancelled(),
    });
    if !installed {
        // A late-arriving cancel won the publish race; it is the only
        // external installer, and cancellers never touch the stats.
        shared.stats.record_cancelled();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel::accelerator::CpuBackend;
    use accel::kernel::KernelResult;

    fn cpu_pool(seed: u64) -> Result<Vec<Box<dyn Accelerator>>, AccelError> {
        Ok(vec![Box::new(CpuBackend::new(seed))])
    }

    fn small() -> RuntimeConfig {
        RuntimeConfig {
            workers: 2,
            queue_capacity: 8,
            policy: DispatchPolicy::CpuOnly,
            seed: 42,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn rejects_degenerate_configs() {
        let mut c = small();
        c.workers = 0;
        assert!(matches!(
            Runtime::with_backend_factory(c, cpu_pool),
            Err(RuntimeError::Config(_))
        ));
        let mut c = small();
        c.queue_capacity = 0;
        assert!(matches!(
            Runtime::with_backend_factory(c, cpu_pool),
            Err(RuntimeError::Config(_))
        ));
    }

    #[test]
    fn serves_jobs_to_completion() {
        let rt = Runtime::with_backend_factory(small(), cpu_pool).unwrap();
        let handles: Vec<_> = (0..20)
            .map(|i| {
                rt.submit(Kernel::Compare {
                    x: i as f64 / 20.0,
                    y: 0.5,
                })
                .unwrap()
            })
            .collect();
        for (i, h) in handles.iter().enumerate() {
            match h.wait() {
                JobOutcome::Completed {
                    execution, backend, ..
                } => {
                    assert_eq!(backend, "cpu");
                    let expected = (i as f64 / 20.0 - 0.5).abs();
                    match execution.result {
                        KernelResult::Distance(d) => {
                            assert!((d - expected).abs() < 1e-12);
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let stats = rt.shutdown();
        assert_eq!(stats.submitted, 20);
        assert_eq!(stats.completed, 20);
        assert_eq!(stats.settled(), 20);
        assert_eq!(stats.per_backend["cpu"].jobs, 20);
        assert_eq!(stats.latency.total(), 20);
    }

    #[test]
    fn backend_errors_become_failed_outcomes() {
        let rt = Runtime::with_backend_factory(small(), cpu_pool).unwrap();
        // 13 is prime: the CPU factoring kernel errors.
        let h = rt.submit(Kernel::Factor { n: 13 }).unwrap();
        match h.wait() {
            JobOutcome::Failed(msg) => assert!(msg.contains("13")),
            other => panic!("unexpected {other:?}"),
        }
        let stats = rt.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn zero_timeout_always_expires() {
        let rt = Runtime::with_backend_factory(small(), cpu_pool).unwrap();
        let h = rt
            .submit_with(
                Kernel::Compare { x: 0.0, y: 1.0 },
                JobOptions::with_timeout(Duration::ZERO),
            )
            .unwrap();
        assert_eq!(h.wait(), JobOutcome::TimedOut);
        assert_eq!(rt.shutdown().timed_out, 1);
    }

    #[test]
    fn default_timeout_applies_when_options_unset() {
        let mut config = small();
        config.default_timeout = Some(Duration::ZERO);
        let rt = Runtime::with_backend_factory(config, cpu_pool).unwrap();
        let h = rt.submit(Kernel::Compare { x: 0.0, y: 1.0 }).unwrap();
        assert_eq!(h.wait(), JobOutcome::TimedOut);
        // An explicit generous timeout overrides the default.
        let h = rt
            .submit_with(
                Kernel::Compare { x: 0.0, y: 1.0 },
                JobOptions::with_timeout(Duration::from_secs(60)),
            )
            .unwrap();
        assert!(h.wait().is_completed());
        drop(rt);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let mut config = small();
        config.workers = 1;
        let rt = Runtime::with_backend_factory(config, cpu_pool).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| rt.submit(Kernel::Factor { n: 1_000_003 * 997 }).unwrap())
            .collect();
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 8);
        assert!(handles.iter().all(|h| h.wait().is_completed()));
    }

    #[test]
    fn submit_after_shutdown_refused() {
        let rt = Runtime::with_backend_factory(small(), cpu_pool).unwrap();
        let shared = Arc::clone(&rt.shared);
        let _ = rt.shutdown();
        // The runtime value is consumed; exercise the closed-queue path
        // through the surviving shared state the way a racing submitter
        // would observe it.
        assert!(shared.queue.is_closed());
    }

    #[test]
    fn results_independent_of_worker_count() {
        let run = |workers: usize| -> Vec<JobOutcome> {
            let config = RuntimeConfig {
                workers,
                queue_capacity: 32,
                policy: DispatchPolicy::CpuOnly,
                seed: 7,
                ..RuntimeConfig::default()
            };
            let rt = Runtime::with_backend_factory(config, cpu_pool).unwrap();
            let handles: Vec<_> = (0..24)
                .map(|i| {
                    rt.submit(Kernel::Compare {
                        x: (i % 7) as f64 / 7.0,
                        y: (i % 5) as f64 / 5.0,
                    })
                    .unwrap()
                })
                .collect();
            let outcomes = handles.iter().map(JobHandle::wait).collect();
            drop(rt);
            outcomes
        };
        let solo = run(1);
        let pooled = run(4);
        for (a, b) in solo.iter().zip(&pooled) {
            let (ra, rb) = match (a, b) {
                (
                    JobOutcome::Completed { execution: ea, .. },
                    JobOutcome::Completed { execution: eb, .. },
                ) => (&ea.result, &eb.result),
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn invalid_kernels_rejected_at_submission() {
        let rt = Runtime::with_backend_factory(small(), cpu_pool).unwrap();
        let cases = vec![
            Kernel::Factor { n: 3 },
            Kernel::Search {
                n_qubits: 0,
                marked: vec![],
            },
            Kernel::Search {
                n_qubits: 2,
                marked: vec![4],
            },
            Kernel::DnaSimilarity {
                a: "ACGT".into(),
                b: "ACGT".into(),
                k: 0,
            },
            Kernel::DnaSimilarity {
                a: "AC".into(),
                b: "ACGT".into(),
                k: 3,
            },
            Kernel::Compare {
                x: f64::NAN,
                y: 0.5,
            },
            Kernel::Compare { x: 0.5, y: 2.0 },
        ];
        let n = cases.len() as u64;
        for kernel in cases {
            let desc = kernel.describe();
            assert!(
                matches!(rt.submit(kernel.clone()), Err(SubmitError::Invalid(_))),
                "blocking submit accepted {desc}"
            );
            assert!(
                matches!(rt.try_submit(kernel), Err(SubmitError::Invalid(_))),
                "non-blocking submit accepted {desc}"
            );
        }
        let stats = rt.shutdown();
        assert_eq!(stats.invalid, 2 * n);
        assert_eq!(stats.submitted, 0);
    }

    #[test]
    fn explicit_seed_overrides_derived_seed() {
        // The same kernel submitted under different job ids but the same
        // explicit seed must produce identical results, and the explicit
        // seed must reproduce a derived-seed run that used the same value.
        let rt = Runtime::with_backend_factory(small(), cpu_pool).unwrap();
        let kernel = Kernel::DnaSimilarity {
            a: "ACGTACGTACGT".into(),
            b: "ACGTTCGTACGA".into(),
            k: 2,
        };
        let opts = JobOptions::with_seed(12345);
        let first = rt.submit_with(kernel.clone(), opts).unwrap().wait();
        // Burn job ids so the derived seed would differ.
        for _ in 0..5 {
            let _ = rt.submit(Kernel::Compare { x: 0.1, y: 0.9 }).unwrap();
        }
        let again = rt.submit_with(kernel, opts).unwrap().wait();
        match (&first, &again) {
            (
                JobOutcome::Completed { execution: a, .. },
                JobOutcome::Completed { execution: b, .. },
            ) => assert_eq!(a.result, b.result),
            other => panic!("unexpected {other:?}"),
        }
        drop(rt);
    }

    #[test]
    fn job_seeds_differ_across_ids() {
        let a = job_seed(1, 0);
        let b = job_seed(1, 1);
        let c = job_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And are stable.
        assert_eq!(a, job_seed(1, 0));
    }

    #[test]
    fn per_job_policy_override_reroutes() {
        let config = RuntimeConfig {
            workers: 1,
            queue_capacity: 8,
            policy: DispatchPolicy::PreferSpecialized,
            seed: 3,
            ..RuntimeConfig::default()
        };
        let rt = Runtime::start(config).unwrap();
        let kernel = Kernel::Compare { x: 0.25, y: 0.5 };
        let default_run = rt.submit(kernel.clone()).unwrap().wait();
        let overridden = rt
            .submit_with(
                kernel,
                JobOptions::with_policy(DispatchPolicy::MinPredictedLatency),
            )
            .unwrap()
            .wait();
        match (&default_run, &overridden) {
            (
                JobOutcome::Completed { backend: a, .. },
                JobOutcome::Completed { backend: b, .. },
            ) => {
                assert_eq!(a, "oscillator");
                assert_eq!(b, "cpu", "min-latency must reroute Compare to the CPU");
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = rt.shutdown();
        assert!(
            stats.total_predicted_device_seconds() > 0.0,
            "completions must carry planner predictions into the stats"
        );
    }

    #[test]
    fn transient_chaos_retries_and_still_completes_everything() {
        use accel::fault::{FaultPlan, FaultSpec};
        let config = RuntimeConfig {
            workers: 2,
            queue_capacity: 32,
            policy: DispatchPolicy::CpuOnly,
            seed: 9,
            faults: Some(FaultPlan::new(17).with_backend("cpu", FaultSpec::transient(1.0, 2))),
            retry: accel::host::RetryPolicy::no_backoff(2),
            quarantine: accel::host::QuarantinePolicy::disabled(),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::with_backend_factory(config, cpu_pool).unwrap();
        let handles: Vec<_> = (0..16)
            .map(|i| {
                rt.submit(Kernel::Compare {
                    x: i as f64 / 16.0,
                    y: 0.25,
                })
                .unwrap()
            })
            .collect();
        for h in &handles {
            assert!(h.wait().is_completed());
        }
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 16);
        assert!(
            stats.backend_faults >= 16,
            "every job faulted at least once"
        );
        assert_eq!(stats.retries, stats.backend_faults);
        assert_eq!(stats.reroutes, 0, "single-backend pool cannot reroute");
        assert_eq!(stats.per_backend["cpu"].faults, stats.backend_faults);
    }

    #[test]
    fn permanent_chaos_reroutes_to_healthy_backend() {
        use accel::fault::{FaultPlan, FaultSpec};
        let config = RuntimeConfig {
            workers: 1,
            queue_capacity: 16,
            policy: DispatchPolicy::PreferSpecialized,
            seed: 5,
            faults: Some(FaultPlan::new(3).with_backend("quantum", FaultSpec::permanent(1.0))),
            quarantine: accel::host::QuarantinePolicy::disabled(),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::start(config).unwrap();
        let handles: Vec<_> = (0..6)
            .map(|_| rt.submit(Kernel::Factor { n: 15 }).unwrap())
            .collect();
        for h in &handles {
            match h.wait() {
                JobOutcome::Completed { backend, .. } => {
                    assert_eq!(backend, "cpu", "quantum is dead; cpu must absorb the work");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let stats = rt.shutdown();
        assert_eq!(stats.reroutes, 6);
        assert_eq!(stats.per_backend["quantum"].faults, 6);
        assert_eq!(stats.quarantine_events, 0);
    }

    #[test]
    fn chaos_results_match_clean_baseline() {
        use accel::fault::{FaultPlan, FaultSpec};
        // Transient faults + worker stalls delay jobs but never perturb
        // results: the faulty wrapper re-reseeds the inner backend before
        // the delegated attempt.
        let run = |faults: Option<FaultPlan>, workers: usize| -> Vec<JobOutcome> {
            let config = RuntimeConfig {
                workers,
                queue_capacity: 32,
                policy: DispatchPolicy::CpuOnly,
                seed: 11,
                faults,
                retry: accel::host::RetryPolicy::no_backoff(3),
                quarantine: accel::host::QuarantinePolicy::disabled(),
                ..RuntimeConfig::default()
            };
            let rt = Runtime::with_backend_factory(config, cpu_pool).unwrap();
            let handles: Vec<_> = (0..12)
                .map(|i| {
                    rt.submit(Kernel::DnaSimilarity {
                        a: "ACGTACGTACGTACGT".into(),
                        b: "ACGTTCGTACGAACGT".into(),
                        k: 2 + (i % 3),
                    })
                    .unwrap()
                })
                .collect();
            handles.iter().map(JobHandle::wait).collect()
        };
        let plan = FaultPlan::new(23)
            .with_backend("cpu", FaultSpec::transient(0.8, 3))
            .with_worker_stall(0.5, Duration::from_micros(200));
        let clean = run(None, 1);
        let chaotic = run(Some(plan), 4);
        for (a, b) in clean.iter().zip(&chaotic) {
            match (a, b) {
                (
                    JobOutcome::Completed { execution: ea, .. },
                    JobOutcome::Completed { execution: eb, .. },
                ) => assert_eq!(ea.result, eb.result),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn factory_error_surfaces_at_start() {
        let failing = |_seed: u64| -> Result<Vec<Box<dyn Accelerator>>, AccelError> {
            Err(AccelError::NoBackend {
                kernel: "pool construction".into(),
                tried: vec![],
            })
        };
        assert!(matches!(
            Runtime::with_backend_factory(small(), failing),
            Err(RuntimeError::Backend(_))
        ));
    }
}
