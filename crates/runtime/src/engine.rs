//! The serving engine: worker pool, submission paths, shutdown.
//!
//! [`Runtime::start`] builds one full heterogeneous backend pool *per
//! worker thread* (backends are `Send`, not `Sync`, so each worker owns its
//! own [`HostRuntime`]) and spawns the workers over a shared bounded
//! [`JobQueue`]. Affinity routing reuses the host's
//! [`DispatchPolicy`] — a SAT job lands on that worker's memcomputing
//! backend, a comparison on its oscillator, and so on.
//!
//! # Determinism under concurrency
//!
//! Every job gets a seed derived from the runtime's master seed and the
//! job id, and the selected backend is reseeded with it immediately before
//! execution. A job's result is therefore a pure function of
//! `(kernel, master seed, job id)` — independent of which worker ran it,
//! in what order, or how many workers exist. A 6-worker runtime and a
//! 1-worker runtime given the same submission sequence produce identical
//! results (see `examples/serving.rs`).

use crate::job::{JobHandle, JobOptions, JobOutcome, JobState};
use crate::queue::{JobQueue, PushError};
use crate::stats::{RuntimeStats, StatsCollector};
use crate::RuntimeError;
use accel::accelerator::Accelerator;
use accel::fault::FaultPlan;
use accel::host::{
    CorrectionTable, DispatchPolicy, DispatchRequest, HostRuntime, QuarantinePolicy, RetryPolicy,
};
use accel::kernel::{InvalidKernel, Kernel, KernelExecution};
use accel::AccelError;
use admission::{AdmissionConfig, CanonicalKey, ResultCache, SingleFlight};
use numerics::rng::SeedStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// Non-blocking submission found the queue at capacity.
    QueueFull,
    /// The runtime is shutting down.
    ShutDown,
    /// The kernel failed submission-time validation and never entered the
    /// queue (counted in [`RuntimeStats::invalid`]).
    Invalid(InvalidKernel),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "job queue is full"),
            SubmitError::ShutDown => write!(f, "runtime is shut down"),
            SubmitError::Invalid(e) => write!(f, "invalid kernel: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SubmitError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

/// Serving-engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Worker threads, each owning a full backend pool. Must be ≥ 1.
    pub workers: usize,
    /// Bounded queue capacity (backpressure threshold). Must be ≥ 1.
    pub queue_capacity: usize,
    /// How each worker routes kernels to its backends.
    pub policy: DispatchPolicy,
    /// Master seed; every job's execution seed derives from it.
    pub seed: u64,
    /// Queue timeout applied when a job's [`JobOptions::timeout`] is unset.
    pub default_timeout: Option<Duration>,
    /// Cost-model correction factors every worker's planner is *frozen*
    /// with. Workers never adapt corrections mid-run — routing must stay a
    /// pure function of the submission for reproducibility — but observed
    /// ratios accumulate in [`RuntimeStats`], and
    /// [`RuntimeStats::calibrated`] folds them into the table for the next
    /// runtime.
    pub corrections: CorrectionTable,
    /// Optional deterministic fault-injection plan. When set, every
    /// worker's backends are wrapped in [`accel::fault::FaultyBackend`]
    /// (per the plan's per-backend specs) and workers stall per the plan's
    /// worker-stall schedule. Fault decisions are pure functions of
    /// `(plan seed, backend name, job seed)`, so chaos runs reproduce
    /// byte-for-byte across worker counts.
    pub faults: Option<FaultPlan>,
    /// Retry/backoff schedule each worker's dispatcher applies to
    /// transient device faults before failing over.
    pub retry: RetryPolicy,
    /// When repeated fault-exhausted dispatches quarantine a backend, and
    /// how often quarantined backends are probed for recovery. Quarantine
    /// is history-dependent: runs that must reproduce byte-for-byte across
    /// worker counts should use [`QuarantinePolicy::disabled`].
    pub quarantine: QuarantinePolicy,
    /// The admission tier: kernel canonicalization plus a seeded result
    /// cache, single-flight coalescing of identical in-flight submissions,
    /// and hedged portfolio dispatch for SAT kernels. Because every result
    /// is a pure function of `(canonical kernel, seed, policy)`, the
    /// default (cache + coalescing on) serves duplicates byte-identically
    /// to recomputation; [`AdmissionConfig::disabled`] recomputes
    /// everything. `DeadlineAware` jobs bypass the cache and coalescing —
    /// their routing depends on the deadline budget, which is not part of
    /// the admission identity.
    pub admission: AdmissionConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 2,
            queue_capacity: 64,
            policy: DispatchPolicy::PreferSpecialized,
            seed: 0,
            default_timeout: None,
            corrections: CorrectionTable::new(),
            faults: None,
            retry: RetryPolicy::default(),
            quarantine: QuarantinePolicy::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

/// The admission identity of a job: canonical kernel key, execution seed,
/// and routing-policy discriminant. Two submissions with the same identity
/// are guaranteed byte-identical results.
type AdmissionKey = (CanonicalKey, u64, u8);

/// A stable discriminant for [`DispatchPolicy`], part of the admission
/// identity (the same kernel and seed route — and may therefore resolve —
/// differently under different policies).
fn policy_code(policy: DispatchPolicy) -> u8 {
    match policy {
        DispatchPolicy::PreferSpecialized => 0,
        DispatchPolicy::CpuOnly => 1,
        DispatchPolicy::MinPredictedLatency => 2,
        DispatchPolicy::MinPredictedEnergy => 3,
        DispatchPolicy::DeadlineAware => 4,
    }
}

/// The outcome payload the admission cache stores: enough to replay a
/// `JobOutcome::Completed` without re-executing.
#[derive(Debug, Clone)]
struct CachedOutcome {
    backend: String,
    execution: KernelExecution,
}

/// A submission coalesced behind an identical in-flight job. The lead's
/// worker publishes the shared outcome to every waiter when the flight
/// completes; a waiter that cancels first simply wins its own
/// write-once publish race and is skipped.
struct Waiter {
    state: Arc<JobState>,
    enqueued: Instant,
    deadline: Option<Instant>,
}

/// The mutexed admission state shared by submitters and workers.
struct AdmissionTier {
    cache: ResultCache<AdmissionKey, CachedOutcome>,
    inflight: SingleFlight<AdmissionKey, Waiter>,
    coalesce: bool,
}

fn lock_tier(tier: &Mutex<AdmissionTier>) -> MutexGuard<'_, AdmissionTier> {
    tier.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One queued job envelope.
struct QueuedJob {
    kernel: Kernel,
    seed: u64,
    policy: Option<DispatchPolicy>,
    /// The job's timeout budget, doubling as the `DeadlineAware` planner's
    /// device-time budget (see [`JobOptions::timeout`]).
    budget: Option<Duration>,
    state: Arc<JobState>,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// The job's admission identity, when the admission tier applies to
    /// it (tier enabled, policy not `DeadlineAware`). Keyed jobs carry
    /// the *canonical* kernel in `kernel`.
    admission_key: Option<AdmissionKey>,
}

/// State shared between the submission side and the workers.
struct Shared {
    queue: JobQueue<QueuedJob>,
    stats: StatsCollector,
    workers: usize,
    /// The fault plan, if chaos is on — consulted per job for worker
    /// stalls (backend faults live inside the wrapped backends).
    faults: Option<FaultPlan>,
    /// The admission tier: result cache + single-flight registry.
    admission: Mutex<AdmissionTier>,
    /// Hedged portfolio dispatch for SAT kernels, when configured.
    hedge: Option<admission::HedgeConfig>,
}

/// The concurrent job-serving engine. See the [module docs](self).
pub struct Runtime {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    seed: u64,
    default_timeout: Option<Duration>,
    policy: DispatchPolicy,
    admission_keyed: bool,
}

impl Runtime {
    /// Starts a runtime whose workers each own the standard heterogeneous
    /// pool (quantum, oscillator, memcomputing, CPU fallback) — extended
    /// with the WalkSAT engine ([`accel::backends::portfolio_pool`]) when
    /// hedged dispatch is configured, so SAT races have a portfolio to
    /// draw from.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Config`] for a zero worker count or queue capacity;
    /// [`RuntimeError::Backend`] if building a backend pool fails.
    pub fn start(config: RuntimeConfig) -> Result<Self, RuntimeError> {
        if config.admission.hedge.is_some() {
            Self::with_backend_factory(config, accel::backends::portfolio_pool)
        } else {
            Self::with_backend_factory(config, accel::backends::standard_pool)
        }
    }

    /// Starts a runtime whose workers build their backend pools through
    /// `factory`, called once per worker with that worker's pool seed.
    /// This is the hook tests use to inject slow or failing backends.
    ///
    /// # Errors
    ///
    /// Same contract as [`Runtime::start`].
    pub fn with_backend_factory<F>(config: RuntimeConfig, factory: F) -> Result<Self, RuntimeError>
    where
        F: Fn(u64) -> Result<Vec<Box<dyn Accelerator>>, AccelError>,
    {
        if config.workers == 0 {
            return Err(RuntimeError::Config(
                "worker count must be at least 1".into(),
            ));
        }
        if config.queue_capacity == 0 {
            return Err(RuntimeError::Config(
                "queue capacity must be at least 1".into(),
            ));
        }
        // Build every pool up front so factory errors surface here, in the
        // caller, rather than dying silently inside a worker thread.
        let mut pool_seeds = SeedStream::new(config.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut hosts = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let mut host = HostRuntime::with_corrections(config.policy, config.corrections.clone());
            host.set_retry_policy(config.retry);
            host.set_quarantine_policy(config.quarantine);
            for backend in factory(pool_seeds.next_seed()).map_err(RuntimeError::Backend)? {
                let backend = match &config.faults {
                    Some(plan) => plan.wrap(backend),
                    None => backend,
                };
                host.register(backend);
            }
            hosts.push(host);
        }
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_capacity),
            stats: StatsCollector::new(),
            workers: config.workers,
            faults: config.faults,
            admission: Mutex::new(AdmissionTier {
                cache: ResultCache::new(config.admission.cache_capacity),
                inflight: SingleFlight::new(),
                coalesce: config.admission.coalesce,
            }),
            hedge: config.admission.hedge,
        });
        let handles = hosts
            .into_iter()
            .enumerate()
            .map(|(i, host)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("runtime-worker-{i}"))
                    .spawn(move || worker_loop(&shared, host))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Ok(Runtime {
            shared,
            handles,
            next_id: AtomicU64::new(0),
            seed: config.seed,
            default_timeout: config.default_timeout,
            policy: config.policy,
            admission_keyed: config.admission.cache_capacity > 0 || config.admission.coalesce,
        })
    }

    /// Submits a job with default options, blocking while the queue is
    /// full (backpressure).
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShutDown`] if the runtime stopped accepting work.
    pub fn submit(&self, kernel: Kernel) -> Result<JobHandle, SubmitError> {
        self.submit_with(kernel, JobOptions::default())
    }

    /// Submits a job, blocking while the queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] for a kernel that fails submission-time
    /// validation; [`SubmitError::ShutDown`] if the runtime stopped
    /// accepting work.
    pub fn submit_with(
        &self,
        kernel: Kernel,
        options: JobOptions,
    ) -> Result<JobHandle, SubmitError> {
        self.validate(&kernel)?;
        let (job, handle) = self.prepare(kernel, options);
        let Some(job) = self.admission_intercept(job) else {
            return Ok(handle);
        };
        let key = job.admission_key;
        match self.shared.queue.push(job) {
            Ok(()) => {
                self.shared.stats.record_submitted();
                Ok(handle)
            }
            Err(PushError::Closed(_) | PushError::Full(_)) => {
                self.abort_lead(key.as_ref());
                Err(SubmitError::ShutDown)
            }
        }
    }

    /// Submits a job without blocking: a full queue rejects immediately.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] (counted in
    /// [`RuntimeStats::rejected`]) or [`SubmitError::ShutDown`].
    pub fn try_submit(&self, kernel: Kernel) -> Result<JobHandle, SubmitError> {
        self.try_submit_with(kernel, JobOptions::default())
    }

    /// Non-blocking submission with explicit options.
    ///
    /// # Errors
    ///
    /// Same contract as [`Runtime::try_submit`].
    pub fn try_submit_with(
        &self,
        kernel: Kernel,
        options: JobOptions,
    ) -> Result<JobHandle, SubmitError> {
        self.validate(&kernel)?;
        let (job, handle) = self.prepare(kernel, options);
        let Some(job) = self.admission_intercept(job) else {
            return Ok(handle);
        };
        let key = job.admission_key;
        match self.shared.queue.try_push(job) {
            Ok(()) => {
                self.shared.stats.record_submitted();
                Ok(handle)
            }
            Err(PushError::Full(_)) => {
                self.abort_lead(key.as_ref());
                self.shared.stats.record_rejected();
                Err(SubmitError::QueueFull)
            }
            Err(PushError::Closed(_)) => {
                self.abort_lead(key.as_ref());
                Err(SubmitError::ShutDown)
            }
        }
    }

    /// Rejects malformed kernels before they consume a queue slot or a
    /// job id (see [`Kernel::validate`]).
    fn validate(&self, kernel: &Kernel) -> Result<(), SubmitError> {
        kernel.validate().map_err(|e| {
            self.shared.stats.record_invalid();
            SubmitError::Invalid(e)
        })
    }

    fn prepare(&self, kernel: Kernel, options: JobOptions) -> (QueuedJob, JobHandle) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(JobState::new());
        let handle = JobHandle::new(id, Arc::clone(&state));
        // lint:allow(determinism::wall-clock, reason = "queue-time/deadline stamping only; job seeds and payloads never derive from it")
        let now = Instant::now();
        let timeout = options.timeout.or(self.default_timeout);
        let seed = options.seed.unwrap_or_else(|| job_seed(self.seed, id));
        // Admission-keyed jobs are canonicalized at the door and execute
        // the canonical form, so cold runs, cache hits, and coalesced
        // serves all resolve the identical kernel. `DeadlineAware` routing
        // depends on the deadline budget, which the admission identity
        // does not capture, so such jobs stay raw and uncached.
        let effective_policy = options.policy.unwrap_or(self.policy);
        let (kernel, admission_key) =
            if self.admission_keyed && effective_policy != DispatchPolicy::DeadlineAware {
                let (canonical, key) = admission::admit(&kernel);
                (canonical, Some((key, seed, policy_code(effective_policy))))
            } else {
                (kernel, None)
            };
        let job = QueuedJob {
            kernel,
            seed,
            policy: options.policy,
            budget: timeout,
            state,
            enqueued: now,
            deadline: timeout.map(|t| now + t),
            admission_key,
        };
        (job, handle)
    }

    /// Tries to settle a keyed job at admission: a cache hit publishes the
    /// stored outcome immediately, and a duplicate of an in-flight job
    /// attaches as a waiter behind the lead execution. Returns the job
    /// back when it must actually queue (it missed, and now leads any
    /// duplicates that arrive while it runs).
    fn admission_intercept(&self, job: QueuedJob) -> Option<QueuedJob> {
        let Some(key) = job.admission_key else {
            return Some(job);
        };
        let mut tier = lock_tier(&self.shared.admission);
        if let Some(cached) = tier.cache.get(&key) {
            drop(tier);
            self.shared.stats.record_submitted();
            self.shared.stats.record_cache_hit();
            publish_cached(&self.shared, &job.state, cached);
            return None;
        }
        if tier.coalesce && !tier.inflight.lead(key) {
            let waiter = Waiter {
                state: Arc::clone(&job.state),
                enqueued: job.enqueued,
                deadline: job.deadline,
            };
            if tier.inflight.attach(&key, waiter).is_ok() {
                drop(tier);
                self.shared.stats.record_submitted();
                self.shared.stats.record_coalesced();
                return None;
            }
        }
        drop(tier);
        // Only leads count as misses, so every keyed submission lands in
        // exactly one of cache_hits / coalesced / cache_misses.
        self.shared.stats.record_cache_miss();
        Some(job)
    }

    /// Unwinds a lead registration whose queue push was refused. Any
    /// waiters that raced in behind the doomed lead are failed rather than
    /// left dangling (their submissions were already acknowledged).
    fn abort_lead(&self, key: Option<&AdmissionKey>) {
        let Some(key) = key else { return };
        let waiters = lock_tier(&self.shared.admission).inflight.complete(key);
        for waiter in waiters {
            let installed = waiter.state.finish_then(
                JobOutcome::Failed("coalesced lead was refused by the queue".into()),
                |_| self.shared.stats.record_failed(),
            );
            if !installed {
                self.shared.stats.record_cancelled();
            }
        }
    }

    /// A point-in-time statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        self.shared
            .stats
            .snapshot(self.shared.queue.len(), self.shared.workers)
    }

    /// Items currently waiting in the queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Stops accepting work, drains the queue, joins every worker, and
    /// returns the final statistics. Queued jobs still execute; only new
    /// submissions are refused.
    #[must_use]
    pub fn shutdown(mut self) -> RuntimeStats {
        self.stop_and_join();
        self.shared.stats.snapshot(0, self.shared.workers)
    }

    fn stop_and_join(&mut self) {
        self.shared.queue.close();
        for handle in self.handles.drain(..) {
            // A worker that panicked already poisoned nothing shared
            // beyond its own jobs; surface the panic here.
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Mixes the master seed and job id into the job's execution seed.
fn job_seed(master: u64, id: u64) -> u64 {
    SeedStream::new(master ^ id.wrapping_mul(0xd134_2543_de82_ef95)).next_seed()
}

/// One worker: drain the queue until it is closed and empty.
fn worker_loop(shared: &Shared, mut host: HostRuntime) {
    while let Some(job) = shared.queue.pop() {
        serve_one(shared, &mut host, &job);
    }
}

/// Publishes a cache hit straight from the submission path: the job never
/// queues, its result is the stored execution, byte-identical to what
/// recomputation under the same `(canonical kernel, seed, policy)` would
/// produce.
fn publish_cached(shared: &Shared, state: &Arc<JobState>, cached: CachedOutcome) {
    let outcome = JobOutcome::Completed {
        backend: cached.backend,
        execution: cached.execution,
        wall: Duration::ZERO,
    };
    let installed = state.finish_then(outcome, |_| {
        shared.stats.record_served_derived(Duration::ZERO);
    });
    if !installed {
        shared.stats.record_cancelled();
    }
}

/// Publishes the flight's shared outcome to one coalesced waiter. A waiter
/// that already cancelled wins its own write-once publish race and is only
/// counted, never overwritten — cancelling one waiter never affects its
/// peers or the lead.
fn publish_to_waiter(shared: &Shared, waiter: &Waiter, outcome: &JobOutcome) {
    // lint:allow(determinism::wall-clock, reason = "waiter deadline check and latency accounting; the shared result is already computed")
    let now = Instant::now();
    let resolved = match outcome {
        JobOutcome::Completed {
            backend,
            execution,
            wall,
        } => {
            if waiter.deadline.is_some_and(|d| now >= d) {
                JobOutcome::TimedOut
            } else {
                JobOutcome::Completed {
                    backend: backend.clone(),
                    execution: execution.clone(),
                    wall: *wall,
                }
            }
        }
        JobOutcome::Failed(msg) => JobOutcome::Failed(msg.clone()),
        // The flight resolved without executing (lead blocked, no live
        // waiters) — anything drained here is itself already settled.
        JobOutcome::TimedOut | JobOutcome::Cancelled => JobOutcome::Cancelled,
    };
    let latency = now.duration_since(waiter.enqueued);
    let installed = waiter.state.finish_then(resolved, |visible| match visible {
        JobOutcome::Completed { .. } => shared.stats.record_served_derived(latency),
        JobOutcome::Failed(_) => shared.stats.record_failed(),
        JobOutcome::TimedOut => shared.stats.record_timed_out(),
        JobOutcome::Cancelled => shared.stats.record_cancelled(),
    });
    if !installed {
        shared.stats.record_cancelled();
    }
}

/// Resolves one popped job and records exactly one terminal statistic,
/// chosen by whichever outcome actually won the installation race. When
/// the job is a coalesced-flight lead, its execution is also stored in the
/// admission cache and published to every waiter.
fn serve_one(shared: &Shared, host: &mut HostRuntime, job: &QueuedJob) {
    // lint:allow(determinism::wall-clock, reason = "deadline check and latency accounting; results are pure functions of the job seed")
    let picked_up = Instant::now();
    let mut predicted_estimate = None;
    // The lead's own pre-dispatch verdict.
    let blocked = if job.deadline.is_some_and(|d| picked_up >= d) {
        Some(JobOutcome::TimedOut)
    } else if job.state.cancel_requested() || job.state.outcome().is_some() {
        Some(JobOutcome::Cancelled)
    } else {
        None
    };
    // A blocked lead with live coalesced waiters still executes: a
    // waiter's result must not depend on the lead's deadline expiring or
    // on a peer cancelling first.
    let waiters_pending = blocked.is_some()
        && job.admission_key.as_ref().is_some_and(|key| {
            lock_tier(&shared.admission)
                .inflight
                .waiters(key)
                .iter()
                .any(|w| w.state.outcome().is_none() && !w.state.cancel_requested())
        });
    let executed = if blocked.is_none() || waiters_pending {
        // An injected worker stall delays the job but never changes its
        // outcome: it runs after the deadline/cancel checks, and results
        // are pure functions of the job seed regardless of timing.
        if let Some(stall) = shared
            .faults
            .as_ref()
            .and_then(|p| p.worker_stall(job.seed))
        {
            std::thread::sleep(stall);
        }
        let request = DispatchRequest {
            reseed: Some(job.seed),
            policy: job.policy,
            deadline_seconds: job.budget.map(|t| t.as_secs_f64()),
        };
        // Hedgeable families (per their registry entry — SAT today) race a
        // portfolio when hedging is configured; the hedge keeps the
        // highest-ranked success, so the winning result is exactly what
        // the sequential walk would have produced.
        let hedge = shared
            .hedge
            .filter(|_| accel::family::registry().family_of(&job.kernel).hedgeable());
        let dispatched = match hedge {
            Some(cfg) => {
                host.dispatch_hedged(&job.kernel, &request, cfg.top_k)
                    .map(|(report, race)| {
                        shared.stats.record_hedge(&race);
                        report
                    })
            }
            None => host.dispatch_planned(&job.kernel, &request),
        };
        // Failed dispatches return no report, so fault accounting drains
        // from the host's ledger on both paths.
        shared.stats.record_faults(&host.drain_faults());
        Some(match dispatched {
            Ok(report) => {
                predicted_estimate = report.estimate;
                JobOutcome::Completed {
                    backend: report.backend,
                    execution: report.execution,
                    wall: picked_up.elapsed(),
                }
            }
            Err(err) => JobOutcome::Failed(err.to_string()),
        })
    } else {
        None
    };
    // Resolve the admission flight: store a completed execution in the
    // cache, then publish the shared outcome to every coalesced waiter.
    if let Some(key) = &job.admission_key {
        let waiters = {
            let mut tier = lock_tier(&shared.admission);
            if let Some(JobOutcome::Completed {
                backend, execution, ..
            }) = &executed
            {
                let evicted = tier.cache.insert(
                    *key,
                    CachedOutcome {
                        backend: backend.clone(),
                        execution: execution.clone(),
                    },
                );
                shared.stats.record_cache_evictions(evicted);
            }
            tier.inflight.complete(key)
        };
        if let Some(outcome) = executed.as_ref().or(blocked.as_ref()) {
            for waiter in &waiters {
                publish_to_waiter(shared, waiter, outcome);
            }
        }
    }
    let outcome = match (blocked, executed) {
        (Some(verdict), _) => verdict,
        (None, Some(served)) => served,
        // Unreachable: one of the two is always Some.
        (None, None) => JobOutcome::Cancelled,
    };
    // Account the outcome *before* it becomes visible (under the state
    // lock): a caller that has observed its result is guaranteed to find
    // the job already counted in the statistics.
    let installed = job.state.finish_then(outcome, |visible| match visible {
        JobOutcome::Completed {
            execution,
            wall,
            backend,
        } => shared.stats.record_completed(
            backend,
            execution.cost.device_seconds,
            execution.cost.operations,
            predicted_estimate,
            *wall,
            job.enqueued.elapsed(),
        ),
        JobOutcome::Failed(_) => shared.stats.record_failed(),
        JobOutcome::TimedOut => shared.stats.record_timed_out(),
        JobOutcome::Cancelled => shared.stats.record_cancelled(),
    });
    if !installed {
        // A late-arriving cancel won the publish race; it is the only
        // external installer, and cancellers never touch the stats.
        shared.stats.record_cancelled();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel::accelerator::CpuBackend;
    use accel::kernel::KernelResult;

    fn cpu_pool(seed: u64) -> Result<Vec<Box<dyn Accelerator>>, AccelError> {
        Ok(vec![Box::new(CpuBackend::new(seed))])
    }

    fn small() -> RuntimeConfig {
        RuntimeConfig {
            workers: 2,
            queue_capacity: 8,
            policy: DispatchPolicy::CpuOnly,
            seed: 42,
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn rejects_degenerate_configs() {
        let mut c = small();
        c.workers = 0;
        assert!(matches!(
            Runtime::with_backend_factory(c, cpu_pool),
            Err(RuntimeError::Config(_))
        ));
        let mut c = small();
        c.queue_capacity = 0;
        assert!(matches!(
            Runtime::with_backend_factory(c, cpu_pool),
            Err(RuntimeError::Config(_))
        ));
    }

    #[test]
    fn serves_jobs_to_completion() {
        let rt = Runtime::with_backend_factory(small(), cpu_pool).unwrap();
        let handles: Vec<_> = (0..20)
            .map(|i| {
                rt.submit(Kernel::Compare {
                    x: i as f64 / 20.0,
                    y: 0.5,
                })
                .unwrap()
            })
            .collect();
        for (i, h) in handles.iter().enumerate() {
            match h.wait() {
                JobOutcome::Completed {
                    execution, backend, ..
                } => {
                    assert_eq!(backend, "cpu");
                    let expected = (i as f64 / 20.0 - 0.5).abs();
                    match execution.result {
                        KernelResult::Distance(d) => {
                            assert!((d - expected).abs() < 1e-12);
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let stats = rt.shutdown();
        assert_eq!(stats.submitted, 20);
        assert_eq!(stats.completed, 20);
        assert_eq!(stats.settled(), 20);
        assert_eq!(stats.per_backend["cpu"].jobs, 20);
        assert_eq!(stats.latency.total(), 20);
    }

    #[test]
    fn backend_errors_become_failed_outcomes() {
        let rt = Runtime::with_backend_factory(small(), cpu_pool).unwrap();
        // 13 is prime: the CPU factoring kernel errors.
        let h = rt.submit(Kernel::Factor { n: 13 }).unwrap();
        match h.wait() {
            JobOutcome::Failed(msg) => assert!(msg.contains("13")),
            other => panic!("unexpected {other:?}"),
        }
        let stats = rt.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn zero_timeout_always_expires() {
        let rt = Runtime::with_backend_factory(small(), cpu_pool).unwrap();
        let h = rt
            .submit_with(
                Kernel::Compare { x: 0.0, y: 1.0 },
                JobOptions::with_timeout(Duration::ZERO),
            )
            .unwrap();
        assert_eq!(h.wait(), JobOutcome::TimedOut);
        assert_eq!(rt.shutdown().timed_out, 1);
    }

    #[test]
    fn default_timeout_applies_when_options_unset() {
        let mut config = small();
        config.default_timeout = Some(Duration::ZERO);
        let rt = Runtime::with_backend_factory(config, cpu_pool).unwrap();
        let h = rt.submit(Kernel::Compare { x: 0.0, y: 1.0 }).unwrap();
        assert_eq!(h.wait(), JobOutcome::TimedOut);
        // An explicit generous timeout overrides the default.
        let h = rt
            .submit_with(
                Kernel::Compare { x: 0.0, y: 1.0 },
                JobOptions::with_timeout(Duration::from_secs(60)),
            )
            .unwrap();
        assert!(h.wait().is_completed());
        drop(rt);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let mut config = small();
        config.workers = 1;
        let rt = Runtime::with_backend_factory(config, cpu_pool).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| rt.submit(Kernel::Factor { n: 1_000_003 * 997 }).unwrap())
            .collect();
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 8);
        assert!(handles.iter().all(|h| h.wait().is_completed()));
    }

    #[test]
    fn submit_after_shutdown_refused() {
        let rt = Runtime::with_backend_factory(small(), cpu_pool).unwrap();
        let shared = Arc::clone(&rt.shared);
        let _ = rt.shutdown();
        // The runtime value is consumed; exercise the closed-queue path
        // through the surviving shared state the way a racing submitter
        // would observe it.
        assert!(shared.queue.is_closed());
    }

    #[test]
    fn results_independent_of_worker_count() {
        let run = |workers: usize| -> Vec<JobOutcome> {
            let config = RuntimeConfig {
                workers,
                queue_capacity: 32,
                policy: DispatchPolicy::CpuOnly,
                seed: 7,
                ..RuntimeConfig::default()
            };
            let rt = Runtime::with_backend_factory(config, cpu_pool).unwrap();
            let handles: Vec<_> = (0..24)
                .map(|i| {
                    rt.submit(Kernel::Compare {
                        x: (i % 7) as f64 / 7.0,
                        y: (i % 5) as f64 / 5.0,
                    })
                    .unwrap()
                })
                .collect();
            let outcomes = handles.iter().map(JobHandle::wait).collect();
            drop(rt);
            outcomes
        };
        let solo = run(1);
        let pooled = run(4);
        for (a, b) in solo.iter().zip(&pooled) {
            let (ra, rb) = match (a, b) {
                (
                    JobOutcome::Completed { execution: ea, .. },
                    JobOutcome::Completed { execution: eb, .. },
                ) => (&ea.result, &eb.result),
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn invalid_kernels_rejected_at_submission() {
        let rt = Runtime::with_backend_factory(small(), cpu_pool).unwrap();
        let cases = vec![
            Kernel::Factor { n: 3 },
            Kernel::Search {
                n_qubits: 0,
                marked: vec![],
            },
            Kernel::Search {
                n_qubits: 2,
                marked: vec![4],
            },
            Kernel::DnaSimilarity {
                a: "ACGT".into(),
                b: "ACGT".into(),
                k: 0,
            },
            Kernel::DnaSimilarity {
                a: "AC".into(),
                b: "ACGT".into(),
                k: 3,
            },
            Kernel::Compare {
                x: f64::NAN,
                y: 0.5,
            },
            Kernel::Compare { x: 0.5, y: 2.0 },
        ];
        let n = cases.len() as u64;
        for kernel in cases {
            let desc = kernel.describe();
            assert!(
                matches!(rt.submit(kernel.clone()), Err(SubmitError::Invalid(_))),
                "blocking submit accepted {desc}"
            );
            assert!(
                matches!(rt.try_submit(kernel), Err(SubmitError::Invalid(_))),
                "non-blocking submit accepted {desc}"
            );
        }
        let stats = rt.shutdown();
        assert_eq!(stats.invalid, 2 * n);
        assert_eq!(stats.submitted, 0);
    }

    #[test]
    fn explicit_seed_overrides_derived_seed() {
        // The same kernel submitted under different job ids but the same
        // explicit seed must produce identical results, and the explicit
        // seed must reproduce a derived-seed run that used the same value.
        let rt = Runtime::with_backend_factory(small(), cpu_pool).unwrap();
        let kernel = Kernel::DnaSimilarity {
            a: "ACGTACGTACGT".into(),
            b: "ACGTTCGTACGA".into(),
            k: 2,
        };
        let opts = JobOptions::with_seed(12345);
        let first = rt.submit_with(kernel.clone(), opts).unwrap().wait();
        // Burn job ids so the derived seed would differ.
        for _ in 0..5 {
            let _ = rt.submit(Kernel::Compare { x: 0.1, y: 0.9 }).unwrap();
        }
        let again = rt.submit_with(kernel, opts).unwrap().wait();
        match (&first, &again) {
            (
                JobOutcome::Completed { execution: a, .. },
                JobOutcome::Completed { execution: b, .. },
            ) => assert_eq!(a.result, b.result),
            other => panic!("unexpected {other:?}"),
        }
        drop(rt);
    }

    #[test]
    fn job_seeds_differ_across_ids() {
        let a = job_seed(1, 0);
        let b = job_seed(1, 1);
        let c = job_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And are stable.
        assert_eq!(a, job_seed(1, 0));
    }

    #[test]
    fn per_job_policy_override_reroutes() {
        let config = RuntimeConfig {
            workers: 1,
            queue_capacity: 8,
            policy: DispatchPolicy::PreferSpecialized,
            seed: 3,
            ..RuntimeConfig::default()
        };
        let rt = Runtime::start(config).unwrap();
        let kernel = Kernel::Compare { x: 0.25, y: 0.5 };
        let default_run = rt.submit(kernel.clone()).unwrap().wait();
        let overridden = rt
            .submit_with(
                kernel,
                JobOptions::with_policy(DispatchPolicy::MinPredictedLatency),
            )
            .unwrap()
            .wait();
        match (&default_run, &overridden) {
            (
                JobOutcome::Completed { backend: a, .. },
                JobOutcome::Completed { backend: b, .. },
            ) => {
                assert_eq!(a, "oscillator");
                assert_eq!(b, "cpu", "min-latency must reroute Compare to the CPU");
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = rt.shutdown();
        assert!(
            stats.total_predicted_device_seconds() > 0.0,
            "completions must carry planner predictions into the stats"
        );
    }

    #[test]
    fn transient_chaos_retries_and_still_completes_everything() {
        use accel::fault::{FaultPlan, FaultSpec};
        let config = RuntimeConfig {
            workers: 2,
            queue_capacity: 32,
            policy: DispatchPolicy::CpuOnly,
            seed: 9,
            faults: Some(FaultPlan::new(17).with_backend("cpu", FaultSpec::transient(1.0, 2))),
            retry: accel::host::RetryPolicy::no_backoff(2),
            quarantine: accel::host::QuarantinePolicy::disabled(),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::with_backend_factory(config, cpu_pool).unwrap();
        let handles: Vec<_> = (0..16)
            .map(|i| {
                rt.submit(Kernel::Compare {
                    x: i as f64 / 16.0,
                    y: 0.25,
                })
                .unwrap()
            })
            .collect();
        for h in &handles {
            assert!(h.wait().is_completed());
        }
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 16);
        assert!(
            stats.backend_faults >= 16,
            "every job faulted at least once"
        );
        assert_eq!(stats.retries, stats.backend_faults);
        assert_eq!(stats.reroutes, 0, "single-backend pool cannot reroute");
        assert_eq!(stats.per_backend["cpu"].faults, stats.backend_faults);
    }

    #[test]
    fn permanent_chaos_reroutes_to_healthy_backend() {
        use accel::fault::{FaultPlan, FaultSpec};
        let config = RuntimeConfig {
            workers: 1,
            queue_capacity: 16,
            policy: DispatchPolicy::PreferSpecialized,
            seed: 5,
            faults: Some(FaultPlan::new(3).with_backend("quantum", FaultSpec::permanent(1.0))),
            quarantine: accel::host::QuarantinePolicy::disabled(),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::start(config).unwrap();
        let handles: Vec<_> = (0..6)
            .map(|_| rt.submit(Kernel::Factor { n: 15 }).unwrap())
            .collect();
        for h in &handles {
            match h.wait() {
                JobOutcome::Completed { backend, .. } => {
                    assert_eq!(backend, "cpu", "quantum is dead; cpu must absorb the work");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let stats = rt.shutdown();
        assert_eq!(stats.reroutes, 6);
        assert_eq!(stats.per_backend["quantum"].faults, 6);
        assert_eq!(stats.quarantine_events, 0);
    }

    #[test]
    fn chaos_results_match_clean_baseline() {
        use accel::fault::{FaultPlan, FaultSpec};
        // Transient faults + worker stalls delay jobs but never perturb
        // results: the faulty wrapper re-reseeds the inner backend before
        // the delegated attempt.
        let run = |faults: Option<FaultPlan>, workers: usize| -> Vec<JobOutcome> {
            let config = RuntimeConfig {
                workers,
                queue_capacity: 32,
                policy: DispatchPolicy::CpuOnly,
                seed: 11,
                faults,
                retry: accel::host::RetryPolicy::no_backoff(3),
                quarantine: accel::host::QuarantinePolicy::disabled(),
                ..RuntimeConfig::default()
            };
            let rt = Runtime::with_backend_factory(config, cpu_pool).unwrap();
            let handles: Vec<_> = (0..12)
                .map(|i| {
                    rt.submit(Kernel::DnaSimilarity {
                        a: "ACGTACGTACGTACGT".into(),
                        b: "ACGTTCGTACGAACGT".into(),
                        k: 2 + (i % 3),
                    })
                    .unwrap()
                })
                .collect();
            handles.iter().map(JobHandle::wait).collect()
        };
        let plan = FaultPlan::new(23)
            .with_backend("cpu", FaultSpec::transient(0.8, 3))
            .with_worker_stall(0.5, Duration::from_micros(200));
        let clean = run(None, 1);
        let chaotic = run(Some(plan), 4);
        for (a, b) in clean.iter().zip(&chaotic) {
            match (a, b) {
                (
                    JobOutcome::Completed { execution: ea, .. },
                    JobOutcome::Completed { execution: eb, .. },
                ) => assert_eq!(ea.result, eb.result),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_submissions_hit_the_cache() {
        let rt = Runtime::with_backend_factory(small(), cpu_pool).unwrap();
        let kernel = Kernel::DnaSimilarity {
            a: "ACGTACGTACGTACGT".into(),
            b: "ACGTTCGTACGAACGT".into(),
            k: 3,
        };
        let opts = JobOptions::with_seed(77);
        let cold = rt.submit_with(kernel.clone(), opts).unwrap().wait();
        let warm = rt.submit_with(kernel, opts).unwrap().wait();
        match (&cold, &warm) {
            (
                JobOutcome::Completed {
                    execution: a,
                    backend: ba,
                    ..
                },
                JobOutcome::Completed {
                    execution: b,
                    backend: bb,
                    ..
                },
            ) => {
                assert_eq!(a, b, "cached result must be byte-identical");
                assert_eq!(ba, bb);
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = rt.shutdown();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.completed, 2);
        assert_eq!(
            stats.per_backend["cpu"].jobs, 1,
            "the hit must not re-execute"
        );
    }

    #[test]
    fn disabled_admission_recomputes_duplicates() {
        let mut config = small();
        config.admission = admission::AdmissionConfig::disabled();
        let rt = Runtime::with_backend_factory(config, cpu_pool).unwrap();
        let kernel = Kernel::Compare { x: 0.125, y: 0.625 };
        let opts = JobOptions::with_seed(5);
        let first = rt.submit_with(kernel.clone(), opts).unwrap().wait();
        let second = rt.submit_with(kernel, opts).unwrap().wait();
        match (&first, &second) {
            (
                JobOutcome::Completed { execution: a, .. },
                JobOutcome::Completed { execution: b, .. },
            ) => assert_eq!(a.result, b.result),
            other => panic!("unexpected {other:?}"),
        }
        let stats = rt.shutdown();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(stats.coalesced, 0);
        assert_eq!(stats.per_backend["cpu"].jobs, 2);
    }

    #[test]
    fn clause_permuted_sat_duplicates_share_one_entry() {
        use mem::cnf::Formula;
        use mem::generators::planted_3sat;
        let base = planted_3sat(10, 3.8, 41).unwrap().formula;
        let mut reversed_clauses: Vec<_> = base.clauses().to_vec();
        reversed_clauses.reverse();
        let reversed = Formula::new(base.n_vars(), reversed_clauses).unwrap();
        let rt = Runtime::with_backend_factory(small(), cpu_pool).unwrap();
        let opts = JobOptions::with_seed(13);
        let a = rt
            .submit_with(Kernel::SolveSat { formula: base }, opts)
            .unwrap()
            .wait();
        let b = rt
            .submit_with(Kernel::SolveSat { formula: reversed }, opts)
            .unwrap()
            .wait();
        match (&a, &b) {
            (
                JobOutcome::Completed { execution: ea, .. },
                JobOutcome::Completed { execution: eb, .. },
            ) => assert_eq!(ea, eb, "clause order is not part of the identity"),
            other => panic!("unexpected {other:?}"),
        }
        let stats = rt.shutdown();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.per_backend["cpu"].jobs, 1);
    }

    /// A CPU backend whose executions block until the test releases it —
    /// the deterministic way to hold a flight open while duplicates and
    /// cancellations arrive.
    struct GatedCpu {
        gate: Arc<std::sync::atomic::AtomicBool>,
        inner: CpuBackend,
    }

    impl Accelerator for GatedCpu {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn supports(&self, kernel: &Kernel) -> bool {
            self.inner.supports(kernel)
        }
        fn reseed(&mut self, seed: u64) {
            self.inner.reseed(seed);
        }
        fn estimate(&self, kernel: &Kernel) -> Option<accel::kernel::CostEstimate> {
            self.inner.estimate(kernel)
        }
        fn execute(
            &mut self,
            kernel: &Kernel,
        ) -> Result<accel::kernel::KernelExecution, AccelError> {
            while !self.gate.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            self.inner.execute(kernel)
        }
    }

    #[test]
    fn in_flight_duplicates_coalesce_and_cancel_independently() {
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let factory_gate = Arc::clone(&gate);
        let config = RuntimeConfig {
            workers: 1,
            queue_capacity: 16,
            policy: DispatchPolicy::CpuOnly,
            seed: 2,
            ..RuntimeConfig::default()
        };
        let rt = Runtime::with_backend_factory(config, move |seed| {
            Ok(vec![Box::new(GatedCpu {
                gate: Arc::clone(&factory_gate),
                inner: CpuBackend::new(seed),
            })])
        })
        .unwrap();
        let kernel = Kernel::DnaSimilarity {
            a: "ACGTACGTACGT".into(),
            b: "TTGTACGAACGA".into(),
            k: 2,
        };
        let opts = JobOptions::with_seed(99);
        // The lead blocks inside the gated backend; the duplicates attach
        // to its flight instead of queueing executions of their own.
        let lead = rt.submit_with(kernel.clone(), opts).unwrap();
        let kept = rt.submit_with(kernel.clone(), opts).unwrap();
        let dropped = rt.submit_with(kernel, opts).unwrap();
        // Cancelling one waiter must not leak to the lead or its peer.
        assert!(dropped.cancel());
        gate.store(true, Ordering::SeqCst);
        let lead_outcome = lead.wait();
        let kept_outcome = kept.wait();
        assert_eq!(dropped.wait(), JobOutcome::Cancelled);
        match (&lead_outcome, &kept_outcome) {
            (
                JobOutcome::Completed { execution: a, .. },
                JobOutcome::Completed { execution: b, .. },
            ) => assert_eq!(a, b, "waiter must receive the lead's exact result"),
            other => panic!("unexpected {other:?}"),
        }
        let stats = rt.shutdown();
        assert_eq!(stats.coalesced, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.settled(), 3);
        assert_eq!(
            stats.per_backend["cpu"].jobs, 1,
            "one execution served the whole flight"
        );
    }

    #[test]
    fn hedged_serving_matches_unhedged_results() {
        use mem::generators::planted_3sat;
        let run = |hedge: Option<admission::HedgeConfig>| {
            let config = RuntimeConfig {
                workers: 2,
                queue_capacity: 32,
                policy: DispatchPolicy::PreferSpecialized,
                seed: 19,
                admission: admission::AdmissionConfig {
                    hedge,
                    ..admission::AdmissionConfig::default()
                },
                ..RuntimeConfig::default()
            };
            let rt = Runtime::start(config).unwrap();
            let handles: Vec<_> = (0..6)
                .map(|i| {
                    let formula = planted_3sat(10, 3.8, 100 + i).unwrap().formula;
                    rt.submit(Kernel::SolveSat { formula }).unwrap()
                })
                .collect();
            let outcomes: Vec<_> = handles.iter().map(JobHandle::wait).collect();
            (outcomes, rt.shutdown())
        };
        let (plain, plain_stats) = run(None);
        let (hedged, hedged_stats) = run(Some(admission::HedgeConfig { top_k: 2 }));
        for (a, b) in plain.iter().zip(&hedged) {
            match (a, b) {
                (
                    JobOutcome::Completed { execution: ea, .. },
                    JobOutcome::Completed { execution: eb, .. },
                ) => assert_eq!(ea.result, eb.result, "hedging must never change results"),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(plain_stats.hedged, 0);
        assert_eq!(hedged_stats.hedged, 6);
        assert!(
            hedged_stats.per_backend.contains_key("walksat"),
            "the portfolio's WalkSAT engine must have raced"
        );
    }

    #[test]
    fn factory_error_surfaces_at_start() {
        let failing = |_seed: u64| -> Result<Vec<Box<dyn Accelerator>>, AccelError> {
            Err(AccelError::NoBackend {
                kernel: "pool construction".into(),
                tried: vec![],
            })
        };
        assert!(matches!(
            Runtime::with_backend_factory(small(), failing),
            Err(RuntimeError::Backend(_))
        ));
    }
}
