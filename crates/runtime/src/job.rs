//! Job lifecycle: submission options, outcomes, and the caller-side handle.
//!
//! A submitted job is shared between the submitting thread and the worker
//! that eventually executes it through an [`JobState`] cell: a
//! `Mutex<Option<JobOutcome>>` plus a `Condvar` for waiters and an atomic
//! cancellation flag. Exactly one party installs the outcome — whoever wins
//! the race between completion, timeout, and cancellation — and the cell is
//! write-once thereafter.

use accel::host::DispatchPolicy;
use accel::kernel::KernelExecution;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Per-job submission options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobOptions {
    /// Maximum time the job may spend *queued*. A job still waiting when
    /// its deadline passes resolves to [`JobOutcome::TimedOut`] instead of
    /// executing. `None` falls back to the runtime's default timeout.
    ///
    /// The timeout doubles as the job's device-time budget under
    /// [`DispatchPolicy::DeadlineAware`]: the planner refuses backends
    /// whose corrected estimate exceeds it. Using the *budget* (not
    /// remaining wall time) keeps routing a pure function of the
    /// submission, independent of queueing delays.
    pub timeout: Option<Duration>,
    /// Explicit execution seed. When set, the backend is reseeded with
    /// exactly this value instead of one derived from
    /// `(master seed, job id)`, making the result a pure function of
    /// `(kernel, seed)` regardless of submission order — which is what
    /// remote callers racing each other over the network need for
    /// reproducible runs.
    pub seed: Option<u64>,
    /// Per-job dispatch policy override. `None` uses the runtime's
    /// configured policy; `Some` reroutes just this job — e.g. a
    /// latency-critical request on a throughput-tuned runtime.
    pub policy: Option<DispatchPolicy>,
}

impl JobOptions {
    /// Options with an explicit queue timeout.
    #[must_use]
    pub fn with_timeout(timeout: Duration) -> Self {
        JobOptions {
            timeout: Some(timeout),
            ..Self::default()
        }
    }

    /// Options with an explicit execution seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        JobOptions {
            seed: Some(seed),
            ..Self::default()
        }
    }

    /// Options with a per-job dispatch policy override.
    #[must_use]
    pub fn with_policy(policy: DispatchPolicy) -> Self {
        JobOptions {
            policy: Some(policy),
            ..Self::default()
        }
    }
}

/// The terminal state of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The kernel executed.
    Completed {
        /// Name of the backend that ran the kernel.
        backend: String,
        /// The kernel result and modelled device cost.
        execution: KernelExecution,
        /// Host wall-clock time spent executing (not queueing).
        wall: Duration,
    },
    /// The backend returned an error (rendered, since backend errors are
    /// not `Clone` and an outcome may be read by several waiters).
    Failed(String),
    /// The job's queue deadline passed before a worker picked it up.
    TimedOut,
    /// The job was cancelled before it completed.
    Cancelled,
}

impl JobOutcome {
    /// Whether the job produced a kernel execution.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed { .. })
    }
}

/// The shared completion cell. Crate-internal; callers interact through
/// [`JobHandle`].
pub(crate) struct JobState {
    cancel_requested: AtomicBool,
    outcome: Mutex<Option<JobOutcome>>,
    done: Condvar,
    /// Completion callbacks registered through [`JobHandle::on_finish`],
    /// run exactly once by whichever party installs the outcome.
    watchers: Mutex<Vec<Watcher>>,
}

type Watcher = Box<dyn FnOnce(&JobOutcome) + Send>;

impl std::fmt::Debug for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobState")
            .field("cancel_requested", &self.cancel_requested)
            .field("outcome", &self.outcome)
            .finish_non_exhaustive()
    }
}

impl JobState {
    pub(crate) fn new() -> Self {
        JobState {
            cancel_requested: AtomicBool::new(false),
            outcome: Mutex::new(None),
            done: Condvar::new(),
            watchers: Mutex::new(Vec::new()),
        }
    }

    /// Installs `outcome` if no outcome is set yet, waking all waiters.
    /// Returns whether this call won the installation race.
    pub(crate) fn finish(&self, outcome: JobOutcome) -> bool {
        self.finish_then(outcome, |_| {})
    }

    /// Like [`JobState::finish`], but runs `before_publish` on the
    /// outcome while still holding the state lock — i.e. strictly before
    /// any waiter can observe it. Workers use this to account a job in
    /// the runtime statistics so a caller that has seen the result is
    /// guaranteed to see it counted.
    pub(crate) fn finish_then(
        &self,
        outcome: JobOutcome,
        before_publish: impl FnOnce(&JobOutcome),
    ) -> bool {
        let mut slot = self.outcome.lock().unwrap();
        if slot.is_some() {
            return false;
        }
        before_publish(&outcome);
        *slot = Some(outcome.clone());
        drop(slot);
        self.done.notify_all();
        // Run completion callbacks outside both locks. Registration holds
        // the watcher lock while it checks the outcome, so no callback can
        // slip in between this drain and the install above.
        let watchers: Vec<Watcher> = std::mem::take(&mut *self.watchers.lock().unwrap());
        for watcher in watchers {
            watcher(&outcome);
        }
        true
    }

    pub(crate) fn cancel_requested(&self) -> bool {
        self.cancel_requested.load(Ordering::Acquire)
    }

    pub(crate) fn outcome(&self) -> Option<JobOutcome> {
        self.outcome.lock().unwrap().clone()
    }
}

/// The caller's view of a submitted job.
///
/// Cloneable so several threads can await the same job; all clones observe
/// the same outcome.
#[derive(Debug, Clone)]
pub struct JobHandle {
    id: u64,
    pub(crate) state: Arc<JobState>,
}

impl JobHandle {
    pub(crate) fn new(id: u64, state: Arc<JobState>) -> Self {
        JobHandle { id, state }
    }

    /// The runtime-assigned job id (dense, in submission order).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the job has reached a terminal state.
    ///
    /// # Panics
    ///
    /// Panics if the job's state mutex was poisoned.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.state.outcome.lock().unwrap().is_some()
    }

    /// The outcome, if the job has finished; `None` while pending.
    ///
    /// # Panics
    ///
    /// Panics if the job's state mutex was poisoned.
    #[must_use]
    pub fn try_result(&self) -> Option<JobOutcome> {
        self.state.outcome()
    }

    /// Blocks until the job finishes and returns its outcome.
    ///
    /// # Panics
    ///
    /// Panics if the job's state mutex was poisoned.
    #[must_use]
    pub fn wait(&self) -> JobOutcome {
        let mut slot = self.state.outcome.lock().unwrap();
        while slot.is_none() {
            slot = self.state.done.wait(slot).unwrap();
        }
        slot.clone().unwrap()
    }

    /// Blocks up to `timeout` for the job to finish; `None` if it is still
    /// pending when the wait expires.
    ///
    /// # Panics
    ///
    /// Panics if the job's state mutex was poisoned.
    #[must_use]
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobOutcome> {
        // lint:allow(determinism::wall-clock, reason = "caller-side wait deadline; never enters the job result")
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.state.outcome.lock().unwrap();
        loop {
            if slot.is_some() {
                return slot.clone();
            }
            // lint:allow(determinism::wall-clock, reason = "caller-side wait deadline; never enters the job result")
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timed_out) = self.state.done.wait_timeout(slot, deadline - now).unwrap();
            slot = guard;
        }
    }

    /// Registers a completion callback, run exactly once with the job's
    /// outcome: immediately on this thread if the job already finished,
    /// otherwise on whichever thread later installs the outcome (worker,
    /// canceller, or timeout path). Event-driven callers — the cluster
    /// tier's event-loop server — use this instead of parking a waiter
    /// thread per job; callbacks must therefore be short and non-blocking.
    ///
    /// # Panics
    ///
    /// Panics if the job's state mutex was poisoned.
    pub fn on_finish(&self, callback: impl FnOnce(&JobOutcome) + Send + 'static) {
        let mut watchers = self.state.watchers.lock().unwrap();
        let settled = self.state.outcome.lock().unwrap().clone();
        match settled {
            Some(outcome) => {
                drop(watchers);
                callback(&outcome);
            }
            None => watchers.push(Box::new(callback)),
        }
    }

    /// Requests cooperative cancellation.
    ///
    /// Returns `true` iff this call settled the job as
    /// [`JobOutcome::Cancelled`] — i.e. cancellation won the race against
    /// completion. A `false` return means the job had already finished (or
    /// another canceller won), and [`JobHandle::try_result`] shows the
    /// actual outcome. A job already picked up by a worker is not
    /// preempted: if its execution finishes after this call, the worker's
    /// result loses the race and is discarded.
    pub fn cancel(&self) -> bool {
        self.state.cancel_requested.store(true, Ordering::Release);
        self.state.finish(JobOutcome::Cancelled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn handle() -> JobHandle {
        JobHandle::new(7, Arc::new(JobState::new()))
    }

    #[test]
    fn outcome_installs_once() {
        let h = handle();
        assert!(h.state.finish(JobOutcome::TimedOut));
        assert!(!h.state.finish(JobOutcome::Cancelled));
        assert_eq!(h.try_result(), Some(JobOutcome::TimedOut));
    }

    #[test]
    fn pending_job_reports_none() {
        let h = handle();
        assert!(!h.is_finished());
        assert_eq!(h.try_result(), None);
        assert_eq!(h.wait_timeout(Duration::from_millis(10)), None);
    }

    #[test]
    fn wait_unblocks_on_finish() {
        let h = handle();
        let waiter = {
            let h = h.clone();
            thread::spawn(move || h.wait())
        };
        thread::sleep(Duration::from_millis(20));
        assert!(h.state.finish(JobOutcome::Failed("boom".into())));
        assert_eq!(waiter.join().unwrap(), JobOutcome::Failed("boom".into()));
    }

    #[test]
    fn cancel_before_finish_wins() {
        let h = handle();
        assert!(h.cancel());
        assert!(h.state.cancel_requested());
        // A worker finishing late loses the race.
        assert!(!h.state.finish(JobOutcome::TimedOut));
        assert_eq!(h.try_result(), Some(JobOutcome::Cancelled));
    }

    #[test]
    fn cancel_after_finish_loses() {
        let h = handle();
        assert!(h.state.finish(JobOutcome::TimedOut));
        assert!(!h.cancel());
        assert_eq!(h.try_result(), Some(JobOutcome::TimedOut));
    }

    #[test]
    fn on_finish_fires_when_outcome_installs() {
        use std::sync::mpsc;
        let h = handle();
        let (tx, rx) = mpsc::channel();
        h.on_finish(move |o| tx.send(o.clone()).unwrap());
        assert!(rx.try_recv().is_err(), "must not fire before completion");
        assert!(h.state.finish(JobOutcome::TimedOut));
        assert_eq!(rx.recv().unwrap(), JobOutcome::TimedOut);
    }

    #[test]
    fn on_finish_after_completion_fires_immediately() {
        use std::sync::mpsc;
        let h = handle();
        assert!(h.cancel());
        let (tx, rx) = mpsc::channel();
        h.on_finish(move |o| tx.send(o.clone()).unwrap());
        assert_eq!(rx.try_recv().unwrap(), JobOutcome::Cancelled);
    }

    #[test]
    fn on_finish_races_with_finish_never_lose_a_callback() {
        use std::sync::atomic::AtomicUsize;
        for _ in 0..64 {
            let h = handle();
            let fired = Arc::new(AtomicUsize::new(0));
            let finisher = {
                let h = h.clone();
                thread::spawn(move || h.state.finish(JobOutcome::TimedOut))
            };
            let registrar = {
                let h = h.clone();
                let fired = Arc::clone(&fired);
                thread::spawn(move || {
                    h.on_finish(move |_| {
                        fired.fetch_add(1, Ordering::SeqCst);
                    });
                })
            };
            finisher.join().unwrap();
            registrar.join().unwrap();
            assert_eq!(fired.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn clones_observe_same_outcome() {
        let h = handle();
        let h2 = h.clone();
        assert!(h.state.finish(JobOutcome::TimedOut));
        assert_eq!(h2.wait(), JobOutcome::TimedOut);
        assert_eq!(h2.id(), 7);
    }
}
