//! A concurrent job-serving engine over the heterogeneous accelerator pool.
//!
//! The paper's system view (Fig. 1) puts quantum, analog-oscillator and
//! memcomputing accelerators alongside the CPU in one machine. The `accel`
//! crate makes a *single-threaded* host that dispatches kernels across such
//! a pool; this crate turns that host into a serving engine — the shape a
//! heterogeneous machine actually runs under load:
//!
//! * [`queue`] — a bounded MPMC [`queue::JobQueue`] providing backpressure:
//!   blocking `push` for producers that should slow down, `try_push` for
//!   producers that should shed load;
//! * [`job`] — the job lifecycle: [`job::JobHandle`] with `wait` /
//!   `wait_timeout` / `try_result`, queue deadlines, and cooperative
//!   cancellation that races completion;
//! * [`engine`] — [`Runtime`]: N worker threads, each owning a full
//!   backend pool (backends are `Send`, not `Sync`), draining the shared
//!   queue and routing each kernel by the host's
//!   [`accel::host::DispatchPolicy`];
//! * [`stats`] — [`stats::RuntimeStats`]: queue depth, per-backend
//!   throughput, a fixed-bucket latency histogram, and rejected /
//!   timed-out / cancelled counters.
//!
//! Everything is std-only: `std::thread`, `Mutex`, `Condvar`, atomics.
//!
//! Results are deterministic despite concurrency: each job's backend is
//! reseeded from `(master seed, job id)` right before execution, so an
//! N-worker runtime reproduces a 1-worker runtime's results exactly.
//!
//! # Example
//!
//! ```
//! use accel::kernel::{Kernel, KernelResult};
//! use runtime::{JobOutcome, Runtime, RuntimeConfig};
//!
//! let rt = Runtime::start(RuntimeConfig::default())?;
//! let job = rt.submit(Kernel::Factor { n: 21 })?;
//! match job.wait() {
//!     JobOutcome::Completed { execution, .. } => match execution.result {
//!         KernelResult::Factors(p, q) => assert_eq!(p * q, 21),
//!         other => panic!("unexpected {other:?}"),
//!     },
//!     other => panic!("unexpected {other:?}"),
//! }
//! let stats = rt.shutdown();
//! assert_eq!(stats.completed, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod engine;
pub mod job;
pub mod queue;
pub mod stats;

pub use engine::{Runtime, RuntimeConfig, SubmitError};
pub use job::{JobHandle, JobOptions, JobOutcome};
pub use queue::{JobQueue, PushError};
pub use stats::{BackendThroughput, LatencyHistogram, RuntimeStats};

// Re-exported so serving callers can pick a routing policy, seed the
// planner's cost corrections, configure fault injection and failover,
// tune the admission tier, and match on submission-validation failures
// without depending on `accel` or `admission` directly.
pub use accel::fault::{FaultPlan, FaultSpec};
pub use accel::host::{CorrectionTable, DispatchPolicy, QuarantinePolicy, RetryPolicy};
pub use accel::kernel::{CostEstimate, InvalidKernel};
pub use admission::{AdmissionConfig, HedgeConfig};

/// Crate-wide error type.
#[derive(Debug)]
pub enum RuntimeError {
    /// The configuration is unusable (zero workers or queue capacity).
    Config(String),
    /// Building a worker's backend pool failed.
    Backend(accel::AccelError),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Config(msg) => write!(f, "invalid runtime config: {msg}"),
            RuntimeError::Backend(e) => write!(f, "backend pool construction failed: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Backend(e) => Some(e),
            RuntimeError::Config(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = RuntimeError::Config("worker count must be at least 1".into());
        assert!(e.to_string().contains("worker count"));
        let e = RuntimeError::Backend(accel::AccelError::NoBackend {
            kernel: "factor(15)".into(),
            tried: vec![],
        });
        assert!(e.to_string().contains("factor(15)"));
    }

    #[test]
    fn public_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Runtime>();
        assert_send::<JobHandle>();
        assert_send::<RuntimeStats>();
        assert_send::<SubmitError>();
        assert_send::<RuntimeError>();
    }
}
