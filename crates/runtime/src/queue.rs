//! A bounded multi-producer multi-consumer queue with backpressure.
//!
//! Built on `Mutex` + two `Condvar`s (std-only; no async runtime in this
//! workspace). Producers either block until space frees up ([`JobQueue::push`])
//! or get the item handed back immediately ([`JobQueue::try_push`]) so the
//! caller can count a rejection. Consumers block until an item arrives or the
//! queue is closed and drained.
//!
//! The queue is generic so it can be exercised in isolation; the serving
//! engine instantiates it with its internal job envelope type.
//!
//! # Example
//!
//! ```
//! use runtime::queue::{JobQueue, PushError};
//!
//! let q = JobQueue::new(2);
//! q.push(1).unwrap();
//! q.push(2).unwrap();
//! assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
//! assert_eq!(q.pop(), Some(1));
//! q.close();
//! assert_eq!(q.pop(), Some(2));
//! assert_eq!(q.pop(), None);
//! ```

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push did not enqueue; carries the item back to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was at capacity (only returned by [`JobQueue::try_push`]).
    Full(T),
    /// The queue has been closed and accepts no new items.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue. See the [module docs](self).
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    /// Signalled when an item is pushed or the queue closes.
    not_empty: Condvar,
    /// Signalled when an item is popped or the queue closes.
    not_full: Condvar,
}

impl<T> JobQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity queue could never
    /// transfer an item under this (non-rendezvous) design.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// The maximum number of queued items.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current number of queued items.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking thread.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues an item, blocking while the queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] with the item if the queue was closed
    /// before space became available.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking thread.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.closed {
                return Err(PushError::Closed(item));
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).unwrap();
        }
    }

    /// Enqueues an item without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Full`] or [`PushError::Closed`] with the item.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking thread.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    ///
    /// Returns `None` once the queue is closed *and* drained, so consumers
    /// can use `while let Some(item) = q.pop()` as their run loop.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking thread.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Dequeues without blocking; `None` if empty (closed or not).
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking thread.
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        let item = inner.items.pop_front();
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: pending and future pushes fail, pops drain what
    /// remains and then return `None`. Wakes every blocked thread.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking thread.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`JobQueue::close`] has been called.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex was poisoned by a panicking thread.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order() {
        let q = JobQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn try_push_full_returns_item() {
        let q = JobQueue::new(1);
        q.push("a").unwrap();
        assert_eq!(q.try_push("b"), Err(PushError::Full("b")));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn push_after_close_returns_item() {
        let q = JobQueue::new(1);
        q.close();
        assert_eq!(q.push(9), Err(PushError::Closed(9)));
        assert_eq!(q.try_push(9), Err(PushError::Closed(9)));
    }

    #[test]
    fn pop_drains_then_none_after_close() {
        let q = JobQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_push_unblocks_on_pop() {
        let q = Arc::new(JobQueue::new(1));
        q.push(0).unwrap();
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || q2.push(1));
        // Give the producer time to block on the full queue.
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn blocked_pop_unblocks_on_close() {
        let q = Arc::new(JobQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let consumer = thread::spawn(move || q2.pop());
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_transfer_everything() {
        let q = Arc::new(JobQueue::new(4));
        let total: usize = 200;
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..total / 2 {
                        q.push(p * total + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut seen = Vec::new();
                    while let Some(v) = q.pop() {
                        seen.push(v);
                    }
                    seen
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = JobQueue::<u8>::new(0);
    }
}
