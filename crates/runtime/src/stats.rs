//! Serving statistics: counters, per-backend throughput, latency histogram.
//!
//! Workers record into a shared [`StatsCollector`] (a mutexed accumulator);
//! [`crate::Runtime::stats`] snapshots it into an owned [`RuntimeStats`]
//! that renders as a small serving report.

use accel::host::{CorrectionTable, FaultLedger, HedgeReport, CORRECTION_ALPHA};
use accel::kernel::CostEstimate;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;
use std::time::Duration;

/// Upper bounds (inclusive, microseconds) of the latency histogram buckets;
/// one extra unbounded bucket catches everything slower.
pub const LATENCY_BOUNDS_US: [u64; 7] = [10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Number of histogram buckets ([`LATENCY_BOUNDS_US`] plus the overflow).
pub const LATENCY_BUCKETS: usize = LATENCY_BOUNDS_US.len() + 1;

/// A fixed-bucket latency histogram over power-of-ten microsecond bounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A histogram with the given per-bucket counts (lowest bucket
    /// first) — the constructor wire decoders use to rebuild a snapshot.
    #[must_use]
    pub fn from_counts(counts: [u64; LATENCY_BUCKETS]) -> Self {
        LatencyHistogram { counts }
    }

    /// Adds every observation of `other` into this histogram, bucket by
    /// bucket (used to aggregate per-client histograms).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = LATENCY_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.counts[idx] += 1;
    }

    /// Per-bucket observation counts, lowest bucket first.
    #[must_use]
    pub fn counts(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.counts
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Human label for bucket `idx`, e.g. `"≤1ms"` or `">10s"`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= LATENCY_BUCKETS`.
    #[must_use]
    pub fn bucket_label(idx: usize) -> String {
        fn us_label(us: u64) -> String {
            match us {
                us if us >= 1_000_000 => format!("{}s", us / 1_000_000),
                us if us >= 1_000 => format!("{}ms", us / 1_000),
                us => format!("{us}\u{00b5}s"),
            }
        }
        assert!(idx < LATENCY_BUCKETS, "bucket index out of range");
        if idx < LATENCY_BOUNDS_US.len() {
            format!("\u{2264}{}", us_label(LATENCY_BOUNDS_US[idx]))
        } else {
            format!(
                ">{}",
                us_label(LATENCY_BOUNDS_US[LATENCY_BOUNDS_US.len() - 1])
            )
        }
    }
}

/// Aggregate work routed to one backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendThroughput {
    /// Jobs completed on this backend.
    pub jobs: u64,
    /// Total modelled device time (seconds).
    pub device_seconds: f64,
    /// Total backend operations.
    pub operations: u64,
    /// Host wall-clock seconds the backend spent executing.
    pub busy_seconds: f64,
    /// Total device time the planner *predicted* for the jobs it routed
    /// here (corrected estimates, as used for ranking). Comparing this
    /// against [`BackendThroughput::device_seconds`] is the
    /// predicted-vs-actual ledger of the cost model.
    pub predicted_device_seconds: f64,
    /// EWMA of the per-job actual/predicted device-time ratio: the
    /// correction factor a follow-up run should fold into its planner
    /// (1.0 means the model has been spot-on as corrected).
    pub ewma_correction: f64,
    /// EWMA of the per-job relative prediction error
    /// `|predicted − actual| / actual`; shrinks as calibration converges.
    pub ewma_error: f64,
    /// Device faults this backend raised during dispatch (transient and
    /// permanent alike, including faults on attempts that were later
    /// retried or failed over). A backend can accumulate faults without
    /// completing any jobs.
    pub faults: u64,
}

impl Default for BackendThroughput {
    fn default() -> Self {
        BackendThroughput {
            jobs: 0,
            device_seconds: 0.0,
            operations: 0,
            busy_seconds: 0.0,
            predicted_device_seconds: 0.0,
            ewma_correction: 1.0,
            ewma_error: 0.0,
            faults: 0,
        }
    }
}

impl BackendThroughput {
    /// Completed jobs per host wall-clock second spent on this backend
    /// (0 when the backend never ran).
    #[must_use]
    pub fn jobs_per_second(&self) -> f64 {
        if self.busy_seconds > 0.0 {
            self.jobs as f64 / self.busy_seconds
        } else {
            0.0
        }
    }

    /// Aggregate relative prediction error over the whole snapshot:
    /// `|predicted − actual| / actual` (0 when nothing ran).
    #[must_use]
    pub fn prediction_error(&self) -> f64 {
        if self.device_seconds > 0.0 {
            (self.predicted_device_seconds - self.device_seconds).abs() / self.device_seconds
        } else {
            0.0
        }
    }

    /// Folds another shard's row for the same backend into this one.
    /// Counters add; the EWMA calibration pair becomes the jobs-weighted
    /// mean (each shard's EWMA summarises its own job stream, so weighting
    /// by jobs keeps the merged value an honest average observation).
    pub fn absorb(&mut self, other: &BackendThroughput) {
        let total_jobs = self.jobs + other.jobs;
        if total_jobs > 0 {
            let mine = self.jobs as f64 / total_jobs as f64;
            let theirs = other.jobs as f64 / total_jobs as f64;
            self.ewma_correction = mine * self.ewma_correction + theirs * other.ewma_correction;
            self.ewma_error = mine * self.ewma_error + theirs * other.ewma_error;
        }
        self.jobs = total_jobs;
        self.device_seconds += other.device_seconds;
        self.operations += other.operations;
        self.busy_seconds += other.busy_seconds;
        self.predicted_device_seconds += other.predicted_device_seconds;
        self.faults += other.faults;
    }

    fn observe_prediction(&mut self, predicted: CostEstimate, actual_seconds: f64) {
        self.predicted_device_seconds += predicted.device_seconds;
        if predicted.device_seconds > 0.0 && actual_seconds.is_finite() && actual_seconds >= 0.0 {
            let ratio = (actual_seconds / predicted.device_seconds).clamp(1e-3, 1e3);
            self.ewma_correction =
                (1.0 - CORRECTION_ALPHA) * self.ewma_correction + CORRECTION_ALPHA * ratio;
            let rel_err = (predicted.device_seconds - actual_seconds).abs()
                / actual_seconds.max(f64::MIN_POSITIVE);
            self.ewma_error =
                (1.0 - CORRECTION_ALPHA) * self.ewma_error + CORRECTION_ALPHA * rel_err.min(1e3);
        }
    }
}

/// A point-in-time snapshot of the serving engine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeStats {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs that executed and returned a result.
    pub completed: u64,
    /// Jobs whose backend returned an error.
    pub failed: u64,
    /// Non-blocking submissions rejected because the queue was full.
    pub rejected: u64,
    /// Submissions rejected by kernel validation before queueing.
    pub invalid: u64,
    /// Jobs whose queue deadline expired before execution.
    pub timed_out: u64,
    /// Jobs cancelled before completion.
    pub cancelled: u64,
    /// Items waiting in the queue at snapshot time.
    pub queue_depth: usize,
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Completed-job accounting per backend name.
    pub per_backend: BTreeMap<String, BackendThroughput>,
    /// Queue-to-completion latency of completed jobs.
    pub latency: LatencyHistogram,
    /// Device faults raised by backends during dispatch (sum of the
    /// per-backend [`BackendThroughput::faults`] counters).
    pub backend_faults: u64,
    /// Same-backend retries after transient faults.
    pub retries: u64,
    /// Jobs that completed on a different backend than first tried
    /// because an earlier candidate faulted or was quarantined.
    pub reroutes: u64,
    /// Backends placed under quarantine after repeated fault-exhausted
    /// dispatches.
    pub quarantine_events: u64,
    /// Recovery probes sent to quarantined backends.
    pub recovery_probes: u64,
    /// Submissions served straight from the admission tier's result cache
    /// (counted in [`RuntimeStats::completed`] but never in
    /// [`RuntimeStats::per_backend`]: no backend executed).
    pub cache_hits: u64,
    /// Cacheable submissions that found nothing stored and queued as the
    /// lead execution for their key. Every keyed submission lands in
    /// exactly one of [`RuntimeStats::cache_hits`],
    /// [`RuntimeStats::coalesced`], or this counter.
    pub cache_misses: u64,
    /// Cache entries displaced by capacity pressure.
    pub cache_evictions: u64,
    /// Submissions that attached as waiters to an identical in-flight
    /// job instead of queueing their own execution.
    pub coalesced: u64,
    /// Jobs dispatched as a hedged portfolio race instead of a sequential
    /// planned walk.
    pub hedged: u64,
    /// Hedge losers that conceded mid-retry once a higher-ranked rival
    /// had already won.
    pub hedge_cancelled: u64,
}

impl RuntimeStats {
    /// Jobs that reached a terminal state (any kind).
    #[must_use]
    pub fn settled(&self) -> u64 {
        self.completed + self.failed + self.timed_out + self.cancelled
    }

    /// Total predicted device time across backends (corrected estimates).
    #[must_use]
    pub fn total_predicted_device_seconds(&self) -> f64 {
        self.per_backend
            .values()
            .map(|t| t.predicted_device_seconds)
            .sum()
    }

    /// Total actual device time across backends.
    #[must_use]
    pub fn total_device_seconds(&self) -> f64 {
        self.per_backend.values().map(|t| t.device_seconds).sum()
    }

    /// Folds another runtime's snapshot into this one — the cluster-level
    /// aggregation a router uses to present N shards as one logical
    /// runtime. Counters and queue depths add, worker counts add, latency
    /// histograms merge bucket-wise via [`LatencyHistogram::merge`], and
    /// per-backend rows with the same name are combined with
    /// [`BackendThroughput::absorb`].
    pub fn absorb(&mut self, other: &RuntimeStats) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.failed += other.failed;
        self.rejected += other.rejected;
        self.invalid += other.invalid;
        self.timed_out += other.timed_out;
        self.cancelled += other.cancelled;
        self.queue_depth += other.queue_depth;
        self.workers += other.workers;
        for (name, theirs) in &other.per_backend {
            self.per_backend
                .entry(name.clone())
                .or_default()
                .absorb(theirs);
        }
        self.latency.merge(&other.latency);
        self.backend_faults += other.backend_faults;
        self.retries += other.retries;
        self.reroutes += other.reroutes;
        self.quarantine_events += other.quarantine_events;
        self.recovery_probes += other.recovery_probes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.coalesced += other.coalesced;
        self.hedged += other.hedged;
        self.hedge_cancelled += other.hedge_cancelled;
    }

    /// Folds the observed per-backend correction ratios into `base`,
    /// producing the correction table a follow-up run should plan with.
    ///
    /// The workers route with *frozen* corrections (so routing stays
    /// reproducible), which makes this the calibration loop's hand-off
    /// point: run with `base`, snapshot, and start the next run with
    /// `snapshot.calibrated(&base)`. Since predictions were already
    /// scaled by `base`, the observed ratio composes multiplicatively.
    #[must_use]
    pub fn calibrated(&self, base: &CorrectionTable) -> CorrectionTable {
        let mut table = base.clone();
        for (name, t) in &self.per_backend {
            if t.jobs > 0 {
                table.set(name, base.factor(name) * t.ewma_correction);
            }
        }
        table
    }
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "runtime: {} workers, queue depth {}",
            self.workers, self.queue_depth
        )?;
        writeln!(
            f,
            "jobs: {} submitted | {} completed | {} failed | {} timed out | {} cancelled | {} rejected | {} invalid",
            self.submitted,
            self.completed,
            self.failed,
            self.timed_out,
            self.cancelled,
            self.rejected,
            self.invalid
        )?;
        if self.backend_faults > 0 || self.reroutes > 0 || self.quarantine_events > 0 {
            writeln!(
                f,
                "faults: {} device faults | {} retries | {} reroutes | {} quarantines | {} probes",
                self.backend_faults,
                self.retries,
                self.reroutes,
                self.quarantine_events,
                self.recovery_probes
            )?;
        }
        if self.cache_hits + self.cache_misses + self.coalesced + self.hedged > 0 {
            writeln!(
                f,
                "admission: {} cache hits | {} misses | {} evictions | {} coalesced | {} hedged | {} hedge-cancelled",
                self.cache_hits,
                self.cache_misses,
                self.cache_evictions,
                self.coalesced,
                self.hedged,
                self.hedge_cancelled
            )?;
        }
        writeln!(f, "per-backend throughput:")?;
        for (name, t) in &self.per_backend {
            writeln!(
                f,
                "  {:<14} {:>6} jobs  {:>10.1} jobs/s  {:>12.6} device-s  {:>12.6} predicted-s  {:>10} ops  ewma-corr {:>6.3}",
                name,
                t.jobs,
                t.jobs_per_second(),
                t.device_seconds,
                t.predicted_device_seconds,
                t.operations,
                t.ewma_correction
            )?;
        }
        writeln!(f, "completion latency:")?;
        for (idx, &count) in self.latency.counts().iter().enumerate() {
            if count > 0 {
                writeln!(f, "  {:<8} {count}", LatencyHistogram::bucket_label(idx))?;
            }
        }
        Ok(())
    }
}

/// The workers' shared accumulator behind a mutex.
#[derive(Debug, Default)]
pub(crate) struct StatsCollector {
    inner: Mutex<Collected>,
}

#[derive(Debug, Default, Clone)]
struct Collected {
    submitted: u64,
    completed: u64,
    failed: u64,
    rejected: u64,
    invalid: u64,
    timed_out: u64,
    cancelled: u64,
    per_backend: BTreeMap<String, BackendThroughput>,
    latency: LatencyHistogram,
    backend_faults: u64,
    retries: u64,
    reroutes: u64,
    quarantine_events: u64,
    recovery_probes: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    coalesced: u64,
    hedged: u64,
    hedge_cancelled: u64,
}

impl StatsCollector {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_submitted(&self) {
        self.inner.lock().unwrap().submitted += 1;
    }

    pub(crate) fn record_rejected(&self) {
        self.inner.lock().unwrap().rejected += 1;
    }

    pub(crate) fn record_invalid(&self) {
        self.inner.lock().unwrap().invalid += 1;
    }

    pub(crate) fn record_failed(&self) {
        self.inner.lock().unwrap().failed += 1;
    }

    pub(crate) fn record_timed_out(&self) {
        self.inner.lock().unwrap().timed_out += 1;
    }

    pub(crate) fn record_cancelled(&self) {
        self.inner.lock().unwrap().cancelled += 1;
    }

    pub(crate) fn record_completed(
        &self,
        backend: &str,
        device_seconds: f64,
        operations: u64,
        predicted: Option<CostEstimate>,
        busy: Duration,
        latency: Duration,
    ) {
        let mut inner = self.inner.lock().unwrap();
        inner.completed += 1;
        let entry = inner.per_backend.entry(backend.to_string()).or_default();
        entry.jobs += 1;
        entry.device_seconds += device_seconds;
        entry.operations += operations;
        entry.busy_seconds += busy.as_secs_f64();
        if let Some(predicted) = predicted {
            entry.observe_prediction(predicted, device_seconds);
        }
        inner.latency.record(latency);
    }

    /// A job settled without its own backend execution — served from the
    /// result cache or published by the lead of its coalesced flight. It
    /// counts as completed with a queue-to-result latency, but touches no
    /// per-backend row: those account actual executions only.
    pub(crate) fn record_served_derived(&self, latency: Duration) {
        let mut inner = self.inner.lock().unwrap();
        inner.completed += 1;
        inner.latency.record(latency);
    }

    pub(crate) fn record_cache_hit(&self) {
        self.inner.lock().unwrap().cache_hits += 1;
    }

    pub(crate) fn record_cache_miss(&self) {
        self.inner.lock().unwrap().cache_misses += 1;
    }

    pub(crate) fn record_cache_evictions(&self, evicted: u64) {
        if evicted > 0 {
            self.inner.lock().unwrap().cache_evictions += evicted;
        }
    }

    pub(crate) fn record_coalesced(&self) {
        self.inner.lock().unwrap().coalesced += 1;
    }

    /// Folds one hedged race into the counters. The winner is accounted
    /// separately through [`StatsCollector::record_completed`]; here the
    /// *losers'* completed executions land in the per-backend rows (their
    /// device time was really spent, and their predicted-vs-actual pairs
    /// feed calibration) without counting a job.
    pub(crate) fn record_hedge(&self, report: &HedgeReport) {
        let mut inner = self.inner.lock().unwrap();
        inner.hedged += 1;
        inner.hedge_cancelled += u64::from(report.losers_cancelled);
        for outcome in report.outcomes.iter().filter(|o| !o.won) {
            let entry = inner
                .per_backend
                .entry(outcome.backend.clone())
                .or_default();
            entry.device_seconds += outcome.actual_device_seconds;
            if let Some(predicted) = outcome.predicted {
                entry.observe_prediction(predicted, outcome.actual_device_seconds);
            }
        }
    }

    /// Folds one dispatch's drained [`FaultLedger`] into the counters.
    pub(crate) fn record_faults(&self, ledger: &FaultLedger) {
        if ledger.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        for (backend, &count) in &ledger.faults_by_backend {
            inner.backend_faults += count;
            inner.per_backend.entry(backend.clone()).or_default().faults += count;
        }
        inner.retries += ledger.retries;
        inner.reroutes += ledger.reroutes;
        inner.quarantine_events += ledger.quarantine_events;
        inner.recovery_probes += ledger.recovery_probes;
    }

    pub(crate) fn snapshot(&self, queue_depth: usize, workers: usize) -> RuntimeStats {
        let inner = self.inner.lock().unwrap().clone();
        RuntimeStats {
            submitted: inner.submitted,
            completed: inner.completed,
            failed: inner.failed,
            rejected: inner.rejected,
            invalid: inner.invalid,
            timed_out: inner.timed_out,
            cancelled: inner.cancelled,
            queue_depth,
            workers,
            per_backend: inner.per_backend,
            latency: inner.latency,
            backend_faults: inner.backend_faults,
            retries: inner.retries,
            reroutes: inner.reroutes,
            quarantine_events: inner.quarantine_events,
            recovery_probes: inner.recovery_probes,
            cache_hits: inner.cache_hits,
            cache_misses: inner.cache_misses,
            cache_evictions: inner.cache_evictions,
            coalesced: inner.coalesced,
            hedged: inner.hedged,
            hedge_cancelled: inner.hedge_cancelled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_magnitude() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(3)); // ≤10µs
        h.record(Duration::from_micros(10)); // ≤10µs (inclusive)
        h.record(Duration::from_micros(11)); // ≤100µs
        h.record(Duration::from_millis(5)); // ≤10ms
        h.record(Duration::from_secs(100)); // >10s overflow
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.counts()[LATENCY_BUCKETS - 1], 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn bucket_labels_scale_units() {
        assert_eq!(LatencyHistogram::bucket_label(0), "\u{2264}10\u{00b5}s");
        assert_eq!(LatencyHistogram::bucket_label(2), "\u{2264}1ms");
        assert_eq!(LatencyHistogram::bucket_label(6), "\u{2264}10s");
        assert_eq!(LatencyHistogram::bucket_label(LATENCY_BUCKETS - 1), ">10s");
    }

    #[test]
    fn histogram_from_counts_and_merge() {
        let mut counts = [0u64; LATENCY_BUCKETS];
        counts[0] = 3;
        counts[LATENCY_BUCKETS - 1] = 1;
        let mut h = LatencyHistogram::from_counts(counts);
        assert_eq!(h.total(), 4);
        let mut other = LatencyHistogram::new();
        other.record(Duration::from_micros(5)); // bucket 0
        other.record(Duration::from_millis(5)); // bucket 3
        h.merge(&other);
        assert_eq!(h.counts()[0], 4);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn throughput_rate() {
        let t = BackendThroughput {
            jobs: 10,
            busy_seconds: 2.0,
            ..Default::default()
        };
        assert!((t.jobs_per_second() - 5.0).abs() < 1e-12);
        assert_eq!(BackendThroughput::default().jobs_per_second(), 0.0);
    }

    #[test]
    fn collector_snapshot_roundtrip() {
        let c = StatsCollector::new();
        c.record_submitted();
        c.record_submitted();
        c.record_rejected();
        c.record_completed(
            "quantum",
            1e-6,
            40,
            Some(CostEstimate {
                device_seconds: 2e-6,
                energy_joules: 5e-5,
            }),
            Duration::from_millis(2),
            Duration::from_millis(3),
        );
        c.record_timed_out();
        let s = c.snapshot(5, 3);
        assert_eq!(s.submitted, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.timed_out, 1);
        assert_eq!(s.settled(), 2);
        assert_eq!(s.queue_depth, 5);
        assert_eq!(s.workers, 3);
        assert_eq!(s.per_backend["quantum"].jobs, 1);
        assert!(s.per_backend["quantum"].jobs_per_second() > 0.0);
        assert_eq!(s.latency.total(), 1);
    }

    #[test]
    fn prediction_tracking_converges_and_calibrates() {
        let c = StatsCollector::new();
        // The model consistently predicts half the actual device time.
        for _ in 0..64 {
            c.record_completed(
                "quantum",
                2e-6,
                10,
                Some(CostEstimate {
                    device_seconds: 1e-6,
                    energy_joules: 1e-5,
                }),
                Duration::from_micros(10),
                Duration::from_micros(20),
            );
        }
        let s = c.snapshot(0, 1);
        let t = s.per_backend["quantum"];
        assert!((t.predicted_device_seconds - 64e-6).abs() < 1e-12);
        assert!(
            (t.ewma_correction - 2.0).abs() < 1e-3,
            "{}",
            t.ewma_correction
        );
        assert!((t.ewma_error - 0.5).abs() < 1e-3, "{}", t.ewma_error);
        assert!((t.prediction_error() - 0.5).abs() < 1e-9);
        assert!(s.total_predicted_device_seconds() > 0.0);
        assert!(s.total_device_seconds() > s.total_predicted_device_seconds());

        // Harvesting folds the observed ratio into the base table.
        let mut base = CorrectionTable::new();
        base.set("quantum", 3.0);
        let next = s.calibrated(&base);
        assert!((next.factor("quantum") - 6.0).abs() < 1e-2);
        // Backends with no completed jobs keep their base factor.
        assert!((next.factor("cpu") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fault_ledgers_accumulate_into_counters() {
        let c = StatsCollector::new();
        let mut ledger = FaultLedger::default();
        ledger.faults_by_backend.insert("quantum".into(), 3);
        ledger.faults_by_backend.insert("cpu".into(), 1);
        ledger.retries = 2;
        ledger.reroutes = 1;
        c.record_faults(&ledger);
        let mut second = FaultLedger::default();
        second.faults_by_backend.insert("quantum".into(), 1);
        second.quarantine_events = 1;
        second.recovery_probes = 2;
        c.record_faults(&second);
        c.record_faults(&FaultLedger::default()); // no-op
        let s = c.snapshot(0, 1);
        assert_eq!(s.backend_faults, 5);
        assert_eq!(s.retries, 2);
        assert_eq!(s.reroutes, 1);
        assert_eq!(s.quarantine_events, 1);
        assert_eq!(s.recovery_probes, 2);
        assert_eq!(s.per_backend["quantum"].faults, 4);
        assert_eq!(s.per_backend["cpu"].faults, 1);
        // Faulted-only backends appear with zero completed jobs.
        assert_eq!(s.per_backend["quantum"].jobs, 0);
        let text = s.to_string();
        assert!(text.contains("5 device faults"), "{text}");
        assert!(text.contains("1 reroutes"), "{text}");
    }

    #[test]
    fn admission_counters_accumulate_and_display() {
        use accel::host::HedgeOutcome;
        let c = StatsCollector::new();
        c.record_cache_miss();
        c.record_cache_hit();
        c.record_served_derived(Duration::from_micros(2));
        c.record_coalesced();
        c.record_served_derived(Duration::from_micros(4));
        c.record_cache_evictions(3);
        c.record_cache_evictions(0); // no-op
        c.record_hedge(&HedgeReport {
            candidates: 2,
            winner_rank: 0,
            losers_cancelled: 1,
            outcomes: vec![
                HedgeOutcome {
                    backend: "memcomputing".into(),
                    rank: 0,
                    predicted: None,
                    actual_device_seconds: 1e-6,
                    won: true,
                },
                HedgeOutcome {
                    backend: "walksat".into(),
                    rank: 1,
                    predicted: Some(CostEstimate {
                        device_seconds: 2e-6,
                        energy_joules: 1e-7,
                    }),
                    actual_device_seconds: 3e-6,
                    won: false,
                },
            ],
        });
        let s = c.snapshot(0, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_evictions, 3);
        assert_eq!(s.coalesced, 1);
        assert_eq!(s.hedged, 1);
        assert_eq!(s.hedge_cancelled, 1);
        assert_eq!(s.completed, 2, "cached + coalesced serves both complete");
        assert_eq!(s.latency.total(), 2);
        // Only the hedge loser lands in per-backend rows here; the winner
        // arrives via record_completed.
        assert!(!s.per_backend.contains_key("memcomputing"));
        let loser = s.per_backend["walksat"];
        assert_eq!(loser.jobs, 0, "a lost race is not a completed job");
        assert!(loser.device_seconds > 0.0);
        assert!(loser.predicted_device_seconds > 0.0);
        let text = s.to_string();
        assert!(text.contains("1 cache hits"), "{text}");
        assert!(text.contains("1 hedged"), "{text}");
    }

    #[test]
    fn absorb_merges_shard_snapshots() {
        let a_coll = StatsCollector::new();
        a_coll.record_submitted();
        a_coll.record_completed(
            "quantum",
            1e-6,
            10,
            None,
            Duration::from_micros(10),
            Duration::from_micros(20),
        );
        a_coll.record_cache_hit();
        let b_coll = StatsCollector::new();
        b_coll.record_submitted();
        b_coll.record_submitted();
        b_coll.record_completed(
            "quantum",
            3e-6,
            30,
            None,
            Duration::from_micros(10),
            Duration::from_millis(2),
        );
        b_coll.record_completed(
            "cpu",
            2e-6,
            5,
            None,
            Duration::from_micros(10),
            Duration::from_micros(20),
        );
        b_coll.record_timed_out();
        let mut merged = a_coll.snapshot(1, 2);
        let b = b_coll.snapshot(3, 4);
        merged.absorb(&b);
        assert_eq!(merged.submitted, 3);
        assert_eq!(merged.completed, 3);
        assert_eq!(merged.timed_out, 1);
        assert_eq!(merged.cache_hits, 1);
        assert_eq!(merged.queue_depth, 4);
        assert_eq!(merged.workers, 6);
        assert_eq!(merged.per_backend["quantum"].jobs, 2);
        assert!((merged.per_backend["quantum"].device_seconds - 4e-6).abs() < 1e-15);
        assert_eq!(merged.per_backend["cpu"].jobs, 1);
        assert_eq!(merged.latency.total(), 3);
        // Jobs-weighted EWMA: both shards default to 1.0 → stays 1.0.
        assert!((merged.per_backend["quantum"].ewma_correction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_weighs_ewma_by_jobs() {
        let mut a = BackendThroughput {
            jobs: 3,
            ewma_correction: 2.0,
            ewma_error: 0.3,
            ..Default::default()
        };
        let b = BackendThroughput {
            jobs: 1,
            ewma_correction: 6.0,
            ewma_error: 0.7,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.jobs, 4);
        assert!((a.ewma_correction - 3.0).abs() < 1e-12);
        assert!((a.ewma_error - 0.4).abs() < 1e-12);
        // Absorbing an empty row is a no-op on the EWMA pair.
        let before = a;
        a.absorb(&BackendThroughput::default());
        assert_eq!(a, before);
    }

    #[test]
    fn display_mentions_backends_and_counters() {
        let c = StatsCollector::new();
        c.record_submitted();
        c.record_completed(
            "oscillator",
            1e-6,
            1,
            None,
            Duration::from_micros(50),
            Duration::from_micros(80),
        );
        c.record_invalid();
        let text = c.snapshot(0, 2).to_string();
        assert!(text.contains("oscillator"));
        assert!(text.contains("1 submitted"));
        assert!(text.contains("1 invalid"));
        assert!(text.contains("jobs/s"));
    }
}
