//! A blocking client with ticket-based pipelining.
//!
//! [`Client::submit`] writes the request and returns a ticket without
//! waiting; [`Client::wait`] reads frames until that ticket's result
//! arrives, stashing any other responses it sees along the way. Many
//! submissions can therefore be in flight on one connection, and results
//! may arrive in any order.

use accel::host::{DispatchPolicy, RetryPolicy};
use accel::kernel::Kernel;
use numerics::rng::{Rng, StdRng};
use runtime::RuntimeStats;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use wire::{
    decode_response_v, encode_request_v, read_frame, write_frame, ErrorCode, Request, Response,
    WireError, WireOutcome, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};

/// Reconnect schedule: capped exponential backoff between attempts.
/// Combined with per-client jitter, a fleet of routers reconnecting to a
/// recovered shard spreads out instead of arriving as a thundering herd.
const RECONNECT_POLICY: RetryPolicy = RetryPolicy {
    max_retries: 4,
    base_backoff: Duration::from_millis(10),
    max_backoff: Duration::from_millis(320),
};

/// Per-submission knobs, mirroring [`runtime::JobOptions`] across the
/// wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Queue deadline in milliseconds; `None` uses the server default.
    pub timeout_ms: Option<u64>,
    /// Explicit backend seed; `None` derives one from the job id.
    pub seed: Option<u64>,
    /// Per-job dispatch-policy override; needs a protocol-v2 connection.
    pub policy: Option<DispatchPolicy>,
}

impl SubmitOptions {
    /// Options carrying an explicit backend seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        SubmitOptions {
            seed: Some(seed),
            ..SubmitOptions::default()
        }
    }

    /// Options carrying a per-job dispatch-policy override.
    #[must_use]
    pub fn with_policy(policy: DispatchPolicy) -> Self {
        SubmitOptions {
            policy: Some(policy),
            ..SubmitOptions::default()
        }
    }

    /// Returns a copy with the policy override set.
    #[must_use]
    pub fn policy(mut self, policy: DispatchPolicy) -> Self {
        self.policy = Some(policy);
        self
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// A transport or codec failure.
    Wire(WireError),
    /// The server turned the connection away at its connection limit.
    Busy(String),
    /// No protocol version in common.
    VersionRejected(String),
    /// The server rejected one specific request.
    Rejected {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server reported a connection-level error; the connection is
    /// unusable.
    Connection {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server said something the protocol state machine does not
    /// allow here.
    UnexpectedResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Busy(msg) => write!(f, "server busy: {msg}"),
            ClientError::VersionRejected(msg) => write!(f, "version rejected: {msg}"),
            ClientError::Rejected { code, message } => {
                write!(f, "request rejected ({code}): {message}")
            }
            ClientError::Connection { code, message } => {
                write!(f, "connection error ({code}): {message}")
            }
            ClientError::UnexpectedResponse(msg) => write!(f, "unexpected response: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

impl ClientError {
    /// Whether this error means the connection itself died (EOF, reset,
    /// broken pipe) — the signal that [`Client::reconnect`] is worth
    /// trying, as opposed to a protocol-level rejection that a fresh
    /// connection would only repeat.
    #[must_use]
    pub fn is_disconnect(&self) -> bool {
        matches!(self, ClientError::Wire(e) if e.is_disconnect())
    }
}

/// A blocking connection to a [`crate::Server`]. See the [module
/// docs](self) for the pipelining model.
pub struct Client {
    stream: TcpStream,
    version: u16,
    /// The peer address and version range from connect time, kept so
    /// [`Client::reconnect`] can redo the handshake after a mid-stream
    /// disconnect.
    peer: SocketAddr,
    version_range: (u16, u16),
    next_id: u64,
    /// Seeded jitter source for reconnect backoff: derived from the
    /// connection's port pair, so delays are reproducible for a given
    /// socket assignment yet distinct across concurrent clients.
    jitter: StdRng,
    results: HashMap<u64, WireOutcome>,
    cancels: HashMap<u64, bool>,
    stats: HashMap<u64, RuntimeStats>,
    errors: HashMap<u64, (ErrorCode, String)>,
    pongs: HashMap<u64, ()>,
}

impl Client {
    /// Connects and performs the version handshake.
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`] when turned away at the connection limit,
    /// [`ClientError::VersionRejected`] with no common version, or a
    /// transport error.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        Self::connect_with_range(addr, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION)
    }

    /// Connects advertising an explicit protocol-version range — the
    /// hook for impersonating an older client (e.g. a v1-only peer
    /// against a v2 server) in compatibility tests.
    ///
    /// # Errors
    ///
    /// Same as [`Client::connect`].
    pub fn connect_with_range<A: ToSocketAddrs>(
        addr: A,
        min_version: u16,
        max_version: u16,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
        let peer = stream.peer_addr().map_err(WireError::Io)?;
        let _ = stream.set_nodelay(true);
        let jitter = StdRng::seed_from_u64(jitter_seed(&stream, peer));
        let mut client = Client {
            stream,
            // Hello encodes identically under every version; the real
            // version is installed from the ack below.
            version: max_version,
            peer,
            version_range: (min_version, max_version),
            next_id: 1, // id 0 is reserved for connection-level errors
            jitter,
            results: HashMap::new(),
            cancels: HashMap::new(),
            stats: HashMap::new(),
            errors: HashMap::new(),
            pongs: HashMap::new(),
        };
        client.handshake()?;
        Ok(client)
    }

    /// Drops the current connection and performs a fresh connect plus
    /// handshake against the same peer with the same version range,
    /// retrying with capped exponential backoff and seeded jitter when
    /// the peer is not (yet) reachable.
    ///
    /// In-flight tickets do not survive: the server binds jobs to their
    /// connection, so every stash is cleared and unredeemed tickets are
    /// gone. Ticket numbering continues from where it was, keeping old
    /// and new tickets distinguishable.
    ///
    /// # Errors
    ///
    /// Same as [`Client::connect`], after the retry budget is spent. A
    /// version rejection returns immediately — a fresh connection would
    /// only repeat it.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.reconnect_once() {
                Ok(()) => return Ok(()),
                Err(e @ ClientError::VersionRejected(_)) => return Err(e),
                Err(e) => {
                    if attempt >= RECONNECT_POLICY.max_retries {
                        return Err(e);
                    }
                    attempt += 1;
                    let base = RECONNECT_POLICY.backoff(attempt);
                    std::thread::sleep(jittered(base, &mut self.jitter));
                }
            }
        }
    }

    /// One reconnect attempt: fresh connect, cleared stashes, handshake.
    fn reconnect_once(&mut self) -> Result<(), ClientError> {
        let stream = TcpStream::connect(self.peer).map_err(WireError::Io)?;
        let _ = stream.set_nodelay(true);
        self.stream = stream;
        self.version = self.version_range.1;
        self.results.clear();
        self.cancels.clear();
        self.stats.clear();
        self.errors.clear();
        self.pongs.clear();
        self.handshake()
    }

    fn handshake(&mut self) -> Result<(), ClientError> {
        let (min_version, max_version) = self.version_range;
        self.write_request(&Request::Hello {
            min_version,
            max_version,
        })?;
        match self.read_response()? {
            Response::HelloAck { version } => {
                self.version = version;
                Ok(())
            }
            Response::Error { code, message, .. } => match code {
                ErrorCode::Busy => Err(ClientError::Busy(message)),
                ErrorCode::UnsupportedVersion => Err(ClientError::VersionRejected(message)),
                _ => Err(ClientError::Connection { code, message }),
            },
            other => Err(ClientError::UnexpectedResponse(format!(
                "handshake answered with {other:?}"
            ))),
        }
    }

    /// The protocol version negotiated at connect time.
    #[must_use]
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Submits a kernel and returns its ticket immediately (pipelined);
    /// redeem it with [`Client::wait`].
    ///
    /// # Errors
    ///
    /// Transport errors — server-side rejection surfaces at `wait` — or
    /// [`ClientError::Wire`] with [`WireError::Invalid`] when a policy
    /// override is requested on a connection negotiated below v2.
    pub fn submit(&mut self, kernel: Kernel, options: SubmitOptions) -> Result<u64, ClientError> {
        let ticket = self.next_id;
        self.next_id += 1;
        self.write_request(&Request::Submit {
            request_id: ticket,
            timeout_ms: options.timeout_ms,
            seed: options.seed,
            policy: options.policy,
            kernel,
        })?;
        Ok(ticket)
    }

    /// Blocks until the given ticket's job reaches a terminal outcome.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] if the server refused this submission,
    /// [`ClientError::Connection`] for connection-level failures, or a
    /// transport error.
    pub fn wait(&mut self, ticket: u64) -> Result<WireOutcome, ClientError> {
        loop {
            if let Some(outcome) = self.results.remove(&ticket) {
                return Ok(outcome);
            }
            if let Some((code, message)) = self.errors.remove(&ticket) {
                return Err(ClientError::Rejected { code, message });
            }
            self.pump()?;
        }
    }

    /// Submit-and-wait convenience for unpipelined callers.
    ///
    /// # Errors
    ///
    /// Union of [`Client::submit`] and [`Client::wait`].
    pub fn run(
        &mut self,
        kernel: Kernel,
        options: SubmitOptions,
    ) -> Result<WireOutcome, ClientError> {
        let ticket = self.submit(kernel, options)?;
        self.wait(ticket)
    }

    /// Asks the server to cancel an in-flight ticket; `true` means the
    /// cancellation landed before the job finished.
    ///
    /// # Errors
    ///
    /// Transport or connection-level errors.
    pub fn cancel(&mut self, ticket: u64) -> Result<bool, ClientError> {
        self.write_request(&Request::Cancel { request_id: ticket })?;
        loop {
            if let Some(cancelled) = self.cancels.remove(&ticket) {
                return Ok(cancelled);
            }
            self.pump()?;
        }
    }

    /// Round-trips a liveness probe.
    ///
    /// # Errors
    ///
    /// Transport or connection-level errors.
    pub fn ping(&mut self, token: u64) -> Result<(), ClientError> {
        self.write_request(&Request::Ping { token })?;
        loop {
            if self.pongs.remove(&token).is_some() {
                return Ok(());
            }
            self.pump()?;
        }
    }

    /// Fetches a [`RuntimeStats`] snapshot from the server.
    ///
    /// # Errors
    ///
    /// Transport or connection-level errors.
    pub fn stats(&mut self) -> Result<RuntimeStats, ClientError> {
        let ticket = self.next_id;
        self.next_id += 1;
        self.write_request(&Request::GetStats { request_id: ticket })?;
        loop {
            if let Some(stats) = self.stats.remove(&ticket) {
                return Ok(stats);
            }
            if let Some((code, message)) = self.errors.remove(&ticket) {
                return Err(ClientError::Rejected { code, message });
            }
            self.pump()?;
        }
    }

    /// Reads one response and routes it into the right stash.
    fn pump(&mut self) -> Result<(), ClientError> {
        match self.read_response()? {
            Response::JobResult {
                request_id,
                outcome,
            } => {
                self.results.insert(request_id, outcome);
            }
            Response::CancelResult {
                request_id,
                cancelled,
            } => {
                self.cancels.insert(request_id, cancelled);
            }
            Response::Stats { request_id, stats } => {
                self.stats.insert(request_id, stats);
            }
            Response::Pong { token } => {
                self.pongs.insert(token, ());
            }
            Response::Error {
                request_id: 0,
                code,
                message,
            } => return Err(ClientError::Connection { code, message }),
            Response::Error {
                request_id,
                code,
                message,
            } => {
                self.errors.insert(request_id, (code, message));
            }
            Response::HelloAck { version } => {
                return Err(ClientError::UnexpectedResponse(format!(
                    "HelloAck({version}) after the handshake"
                )))
            }
            // This client never gossips; routers speak that dialect.
            Response::GossipAck { request_id, .. } => {
                return Err(ClientError::UnexpectedResponse(format!(
                    "unsolicited GossipAck for request {request_id}"
                )))
            }
        }
        Ok(())
    }

    fn write_request(&mut self, request: &Request) -> Result<(), ClientError> {
        let payload = encode_request_v(request, self.version)?;
        write_frame(&mut self.stream, &payload)?;
        Ok(())
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let payload = read_frame(&mut self.stream)?;
        Ok(decode_response_v(&payload, self.version)?)
    }
}

/// FNV-1a over the connection's local and peer ports. Stable for a given
/// socket pair (reproducible delays), distinct across clients (each gets
/// its own ephemeral port, so reconnect storms decorrelate).
fn jitter_seed(stream: &TcpStream, peer: SocketAddr) -> u64 {
    let local = stream.local_addr().map(|a| a.port()).unwrap_or(0);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in local
        .to_be_bytes()
        .into_iter()
        .chain(peer.port().to_be_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Half the base delay guaranteed plus a uniform random half: keeps the
/// expected wait near the schedule while decorrelating concurrent
/// reconnectors.
fn jittered(base: Duration, rng: &mut impl Rng) -> Duration {
    let half = base / 2;
    half + half.mul_f64(rng.next_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_options_carry_seed() {
        let opts = SubmitOptions::with_seed(9);
        assert_eq!(opts.seed, Some(9));
        assert_eq!(opts.timeout_ms, None);
        assert_eq!(opts.policy, None);
        assert_eq!(SubmitOptions::default().seed, None);
    }

    #[test]
    fn submit_options_carry_policy() {
        let opts = SubmitOptions::with_policy(DispatchPolicy::MinPredictedEnergy);
        assert_eq!(opts.policy, Some(DispatchPolicy::MinPredictedEnergy));
        let opts = SubmitOptions::with_seed(4).policy(DispatchPolicy::DeadlineAware);
        assert_eq!(opts.seed, Some(4));
        assert_eq!(opts.policy, Some(DispatchPolicy::DeadlineAware));
    }

    #[test]
    fn disconnect_classification() {
        let e = ClientError::Wire(WireError::Io(io::Error::new(
            io::ErrorKind::ConnectionReset,
            "reset",
        )));
        assert!(e.is_disconnect());
        let e = ClientError::Busy("limit reached".into());
        assert!(!e.is_disconnect());
        let e = ClientError::Wire(WireError::Truncated { context: "tag" });
        assert!(!e.is_disconnect());
    }

    #[test]
    fn errors_display() {
        let e = ClientError::Busy("limit reached".into());
        assert!(e.to_string().contains("limit reached"));
        let e = ClientError::Rejected {
            code: ErrorCode::InvalidKernel,
            message: "factor target must be at least 4".into(),
        };
        assert!(e.to_string().contains("invalid kernel"));
        let e = ClientError::from(WireError::Truncated { context: "tag" });
        assert!(e.to_string().contains("truncated"));
    }

    #[test]
    fn connect_to_dead_port_errors() {
        // Port 1 on localhost is essentially never listening.
        let result = Client::connect("127.0.0.1:1");
        assert!(matches!(result, Err(ClientError::Wire(WireError::Io(_)))));
    }

    #[test]
    fn jittered_backoff_stays_within_bounds_and_is_seeded() {
        let base = Duration::from_millis(100);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            let d = jittered(base, &mut a);
            assert!(d >= base / 2, "jitter below the guaranteed half: {d:?}");
            assert!(d <= base, "jitter above the base delay: {d:?}");
            assert_eq!(d, jittered(base, &mut b), "same seed, different delay");
        }
        // Different seeds decorrelate the schedules.
        let mut c = StdRng::seed_from_u64(8);
        let schedule_a: Vec<_> = (0..8).map(|_| jittered(base, &mut a)).collect();
        let schedule_c: Vec<_> = (0..8).map(|_| jittered(base, &mut c)).collect();
        assert_ne!(schedule_a, schedule_c);
    }

    #[test]
    fn reconnect_backoff_schedule_is_capped() {
        let policy = RECONNECT_POLICY;
        let mut prev = Duration::ZERO;
        for attempt in 1..=policy.max_retries {
            let delay = policy.backoff(attempt);
            assert!(delay >= prev, "backoff shrank at attempt {attempt}");
            assert!(delay <= policy.max_backoff);
            prev = delay;
        }
    }
}
