//! The per-connection protocol loop.
//!
//! Each connection gets one handler thread running this loop plus one
//! short-lived waiter thread per in-flight job. Requests are pipelined:
//! the handler keeps reading while waiters write each job's result as it
//! finishes, so responses arrive in completion order, demultiplexed by
//! `request_id`. All writes to the socket go through one mutex so frames
//! never interleave.

use crate::server::ServerShared;
use crate::sync::lock_or_recover;
use accel::host::DispatchPolicy;
use runtime::{JobHandle, JobOptions, SubmitError};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use wire::{
    decode_request_v, encode_response_v, negotiate, read_frame, write_frame, ErrorCode, Request,
    Response, WireError, WireOutcome, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};

/// Everything a handler needs from the server.
pub(crate) struct ConnectionContext {
    pub(crate) shared: Arc<ServerShared>,
    pub(crate) peer: SocketAddr,
    pub(crate) conn_id: u64,
}

/// Jobs in flight on one connection, keyed by client request id.
type PendingJobs = Arc<Mutex<HashMap<u64, Arc<JobHandle>>>>;

/// Serves one connection to completion: handshake, then the request
/// loop, then joining every waiter so all responses flush before the
/// handler exits (which is what makes server shutdown drain cleanly).
pub(crate) fn handle_connection(stream: TcpStream, ctx: &ConnectionContext) {
    let reader = stream;
    let writer = match reader.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut conn = Connection {
        reader,
        writer,
        ctx,
        // Hello decodes identically under every version, so the
        // pre-negotiation default only matters for the error path.
        version: PROTOCOL_VERSION,
        pending: Arc::new(Mutex::new(HashMap::new())),
        waiters: Vec::new(),
    };
    if conn.handshake() {
        conn.serve();
    }
    for waiter in conn.waiters.drain(..) {
        let _ = waiter.join();
    }
    // Close the socket for real: the server's registry holds a clone, so
    // dropping our halves alone would leave the peer waiting for EOF.
    let _ = conn.reader.shutdown(std::net::Shutdown::Both);
    ctx.shared.deregister(ctx.conn_id);
}

struct Connection<'a> {
    reader: TcpStream,
    writer: Arc<Mutex<TcpStream>>,
    ctx: &'a ConnectionContext,
    /// The protocol version negotiated in `handshake`. Every frame after
    /// the ack — including waiter-thread job results — is encoded and
    /// decoded at this version, so a v1 client never sees v2 bytes.
    version: u16,
    pending: PendingJobs,
    waiters: Vec<JoinHandle<()>>,
}

impl Connection<'_> {
    /// Reads the opening `Hello` and answers with `HelloAck` or a
    /// connection-level error. Returns whether the session may proceed.
    fn handshake(&mut self) -> bool {
        let request = match self.read_request() {
            Some(r) => r,
            None => return false,
        };
        match request {
            Request::Hello {
                min_version,
                max_version,
            } => match negotiate(min_version, max_version) {
                Some(version) => {
                    self.version = version;
                    self.send(&Response::HelloAck { version })
                }
                None => {
                    self.send(&Response::Error {
                        request_id: 0,
                        code: ErrorCode::UnsupportedVersion,
                        message: format!(
                            "server speaks versions {MIN_SUPPORTED_VERSION}..={PROTOCOL_VERSION}, \
                             client offered {min_version}..={max_version}"
                        ),
                    });
                    false
                }
            },
            _ => {
                self.send(&Response::Error {
                    request_id: 0,
                    code: ErrorCode::Malformed,
                    message: "expected Hello as the first request".into(),
                });
                false
            }
        }
    }

    /// The post-handshake request loop; returns on disconnect or a
    /// malformed frame.
    fn serve(&mut self) {
        loop {
            let request = match self.read_request() {
                Some(r) => r,
                None => return,
            };
            let keep_going = match request {
                Request::Hello { .. } => {
                    self.send(&Response::Error {
                        request_id: 0,
                        code: ErrorCode::Malformed,
                        message: "duplicate Hello".into(),
                    });
                    false
                }
                Request::Ping { token } => self.send(&Response::Pong { token }),
                Request::Submit {
                    request_id,
                    timeout_ms,
                    seed,
                    policy,
                    kernel,
                } => self.submit(request_id, timeout_ms, seed, policy, kernel),
                Request::Cancel { request_id } => self.cancel(request_id),
                Request::GetStats { request_id } => self.send(&Response::Stats {
                    request_id,
                    stats: self.ctx.shared.runtime.stats(),
                }),
            };
            if !keep_going {
                return;
            }
        }
    }

    /// Reads and decodes one request. `None` means the connection is
    /// done: clean disconnect, or a malformed/hostile frame (answered
    /// with a connection-level error first). Never panics on bad input —
    /// the wire layer bounds every length before allocating.
    fn read_request(&mut self) -> Option<Request> {
        let payload = match read_frame(&mut self.reader) {
            Ok(p) => p,
            Err(e) => {
                if !e.is_disconnect() {
                    self.send(&Response::Error {
                        request_id: 0,
                        code: ErrorCode::Malformed,
                        message: format!("unreadable frame from {}: {e}", self.ctx.peer),
                    });
                }
                return None;
            }
        };
        match decode_request_v(&payload, self.version) {
            Ok(request) => Some(request),
            Err(e) => {
                self.send(&Response::Error {
                    request_id: 0,
                    code: ErrorCode::Malformed,
                    message: format!("undecodable request: {e}"),
                });
                None
            }
        }
    }

    /// Submits a kernel and spawns a waiter that writes the job's result
    /// when it completes. Uses the runtime's *blocking* submission path,
    /// so a full queue slows this connection down (backpressure) instead
    /// of failing its requests.
    fn submit(
        &mut self,
        request_id: u64,
        timeout_ms: Option<u64>,
        seed: Option<u64>,
        policy: Option<DispatchPolicy>,
        kernel: accel::kernel::Kernel,
    ) -> bool {
        if lock_or_recover(&self.pending).contains_key(&request_id) {
            return self.send(&Response::Error {
                request_id,
                code: ErrorCode::Malformed,
                message: format!("request id {request_id} is already in flight"),
            });
        }
        let options = JobOptions {
            timeout: timeout_ms.map(Duration::from_millis),
            seed,
            policy,
        };
        let handle = match self.ctx.shared.runtime.submit_with(kernel, options) {
            Ok(handle) => Arc::new(handle),
            Err(e) => {
                let (code, message) = submit_error_frame(&e);
                return self.send(&Response::Error {
                    request_id,
                    code,
                    message,
                });
            }
        };
        lock_or_recover(&self.pending).insert(request_id, Arc::clone(&handle));
        let pending = Arc::clone(&self.pending);
        let writer = Arc::clone(&self.writer);
        let version = self.version;
        let spawned = std::thread::Builder::new()
            .name(format!("server-job-{request_id}"))
            .spawn(move || {
                let outcome = WireOutcome::from(&handle.wait());
                lock_or_recover(&pending).remove(&request_id);
                write_response(
                    &writer,
                    &Response::JobResult {
                        request_id,
                        outcome,
                    },
                    version,
                );
            });
        match spawned {
            Ok(waiter) => {
                self.waiters.push(waiter);
                true
            }
            Err(_) => self.send(&Response::Error {
                request_id,
                code: ErrorCode::Internal,
                message: "could not spawn result waiter".into(),
            }),
        }
    }

    /// Requests cancellation of an in-flight submission. A request id
    /// that already completed (or never existed) reports
    /// `cancelled: false` — cancellation raced completion and lost.
    fn cancel(&mut self, request_id: u64) -> bool {
        let cancelled = lock_or_recover(&self.pending)
            .get(&request_id)
            .is_some_and(|handle| handle.cancel());
        self.send(&Response::CancelResult {
            request_id,
            cancelled,
        })
    }

    fn send(&self, response: &Response) -> bool {
        write_response(&self.writer, response, self.version)
    }
}

/// Maps a submission failure to its wire error frame.
fn submit_error_frame(e: &SubmitError) -> (ErrorCode, String) {
    let code = match e {
        SubmitError::Invalid(_) => ErrorCode::InvalidKernel,
        SubmitError::QueueFull => ErrorCode::QueueFull,
        SubmitError::ShutDown => ErrorCode::ShuttingDown,
    };
    (code, e.to_string())
}

/// Serializes one response onto the shared socket at the connection's
/// negotiated version; returns whether the write succeeded (a failed
/// write means the peer is gone).
fn write_response(writer: &Arc<Mutex<TcpStream>>, response: &Response, version: u16) -> bool {
    let payload = match encode_response_v(response, version) {
        Ok(p) => p,
        Err(WireError::TooLarge { .. }) | Err(_) => return false,
    };
    let mut stream = lock_or_recover(writer);
    write_frame(&mut *stream, &payload).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel::kernel::InvalidKernel;

    #[test]
    fn submit_errors_map_to_codes() {
        let (code, msg) = submit_error_frame(&SubmitError::QueueFull);
        assert_eq!(code, ErrorCode::QueueFull);
        assert!(msg.contains("full"));
        let (code, _) = submit_error_frame(&SubmitError::ShutDown);
        assert_eq!(code, ErrorCode::ShuttingDown);
        let (code, msg) =
            submit_error_frame(&SubmitError::Invalid(InvalidKernel::FactorTooSmall {
                n: 2,
            }));
        assert_eq!(code, ErrorCode::InvalidKernel);
        assert!(msg.contains("invalid kernel"));
    }
}
