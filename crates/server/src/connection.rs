//! The per-connection state machine for the event-loop server.
//!
//! One [`Conn`] per accepted socket, owned entirely by the server's loop
//! thread — no per-connection threads, no per-job waiter threads, no
//! write mutex. Bytes arriving on readiness events accumulate in a
//! [`cluster::FrameBuffer`]; complete frames dispatch through the
//! handshake/serving states; every response is encoded at the negotiated
//! version into a per-connection outbox the loop flushes non-blockingly.
//! Job completions re-enter the loop through the completion queue: a
//! [`runtime::JobHandle::on_finish`] watcher hands the outcome to the
//! encode pool, which pushes the finished frame and wakes the loop.
//!
//! Backpressure is a state, not a blocked thread: when the runtime queue
//! is full the submit *parks*, the connection is muted (stops reading),
//! and the loop retries the parked submit each tick until it lands —
//! pipelined requests behind it simply wait in the buffer.

use crate::server::{Completion, LoopShared, ServerShared};
use accel::kernel::Kernel;
use cluster::{Fill, FrameBuffer, Poll, Token};
use runtime::{JobHandle, JobOptions, SubmitError};
use std::collections::{HashMap, VecDeque};
use std::io::{self, ErrorKind, Write};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;
use wire::{
    decode_request_v, encode_response_v, negotiate, write_frame, ErrorCode, Request, Response,
    WireOutcome, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};

/// Where a connection is in its protocol lifecycle.
enum ConnState {
    /// Waiting for the opening `Hello`.
    Handshake,
    /// Version negotiated; serving pipelined requests.
    Serving,
}

/// A submit the runtime had no queue room for. The connection is muted
/// while one of these exists; the loop retries it every tick.
struct Parked {
    request_id: u64,
    kernel: Kernel,
    options: JobOptions,
}

/// One client connection's full state, owned by the loop thread.
pub(crate) struct Conn {
    token: Token,
    peer: SocketAddr,
    /// The protocol version negotiated in the handshake. Every frame
    /// after the ack — including pool-encoded job results — is encoded
    /// and decoded at this version, so a v1 client never sees v5 bytes.
    /// (`Hello` decodes identically under every version, so the
    /// pre-negotiation default only matters for the error path.)
    version: u16,
    state: ConnState,
    buffer: FrameBuffer,
    /// Encoded frames awaiting flush, plus the byte offset already
    /// written of the front frame.
    outbox: VecDeque<Vec<u8>>,
    out_off: usize,
    /// Jobs in flight on this connection, keyed by client request id.
    pending: HashMap<u64, JobHandle>,
    parked: Option<Parked>,
    /// The peer half-closed (or errored) its write side; we stop reading
    /// but still flush pending results before closing.
    pub(crate) read_closed: bool,
    /// A protocol violation was answered; close once the outbox drains.
    pub(crate) close_after_flush: bool,
}

impl Conn {
    pub(crate) fn new(token: Token, peer: SocketAddr) -> Self {
        Conn {
            token,
            peer,
            version: PROTOCOL_VERSION,
            state: ConnState::Handshake,
            buffer: FrameBuffer::new(),
            outbox: VecDeque::new(),
            out_off: 0,
            pending: HashMap::new(),
            parked: None,
            read_closed: false,
            close_after_flush: false,
        }
    }

    /// Whether the connection still owes the peer work: jobs in flight
    /// or a parked submit. (The outbox is tracked separately by flush.)
    pub(crate) fn has_work(&self) -> bool {
        !self.pending.is_empty() || self.parked.is_some()
    }

    /// Notes that the read side is done and stops readiness scans for
    /// this connection (level-triggered readiness would spin otherwise).
    pub(crate) fn mark_read_closed(&mut self, poll: &mut Poll) {
        self.read_closed = true;
        poll.mute(self.token);
    }

    /// Drains the socket into the frame buffer and dispatches every
    /// complete frame, stopping at `WouldBlock`, a parked submit, EOF, or
    /// a protocol violation.
    pub(crate) fn on_readable(
        &mut self,
        poll: &mut Poll,
        shared: &Arc<ServerShared>,
        loop_shared: &Arc<LoopShared>,
        draining: bool,
    ) {
        if self.read_closed || self.close_after_flush {
            return;
        }
        loop {
            if self.parked.is_some() {
                poll.mute(self.token);
                return;
            }
            match self.buffer.next_frame() {
                Ok(Some(payload)) => {
                    self.handle_payload(&payload, shared, loop_shared, draining);
                    if self.close_after_flush {
                        poll.mute(self.token);
                        return;
                    }
                }
                Ok(None) => {
                    let fill = match poll.stream(self.token) {
                        Some(mut stream) => self.buffer.fill_from(&mut stream),
                        None => return,
                    };
                    match fill {
                        Ok(Fill::Bytes(_)) => {}
                        Ok(Fill::WouldBlock) => return,
                        // I/O errors on read close the connection the same
                        // way a clean EOF does: no error frame, flush what
                        // is owed, tear down.
                        Ok(Fill::Eof) | Err(_) => {
                            self.mark_read_closed(poll);
                            return;
                        }
                    }
                }
                Err(e) => {
                    // Framing violation (bad magic, hostile length):
                    // answer with a connection-level error, then close
                    // once it flushes. Never panics on bad input — the
                    // buffer bounds every length before allocating.
                    self.queue(&Response::Error {
                        request_id: 0,
                        code: ErrorCode::Malformed,
                        message: format!("unreadable frame from {}: {e}", self.peer),
                    });
                    self.close_after_flush = true;
                    poll.mute(self.token);
                    return;
                }
            }
        }
    }

    /// Decodes and dispatches one frame.
    fn handle_payload(
        &mut self,
        payload: &[u8],
        shared: &Arc<ServerShared>,
        loop_shared: &Arc<LoopShared>,
        draining: bool,
    ) {
        let request = match decode_request_v(payload, self.version) {
            Ok(request) => request,
            Err(e) => {
                self.queue(&Response::Error {
                    request_id: 0,
                    code: ErrorCode::Malformed,
                    message: format!("undecodable request: {e}"),
                });
                self.close_after_flush = true;
                return;
            }
        };
        match self.state {
            ConnState::Handshake => self.handshake(&request),
            ConnState::Serving => self.serve_request(request, shared, loop_shared, draining),
        }
    }

    /// Handles the opening `Hello`, answering `HelloAck` or a
    /// connection-level error.
    fn handshake(&mut self, request: &Request) {
        match request {
            Request::Hello {
                min_version,
                max_version,
            } => match negotiate(*min_version, *max_version) {
                Some(version) => {
                    self.version = version;
                    self.state = ConnState::Serving;
                    self.queue(&Response::HelloAck { version });
                }
                None => {
                    self.queue(&Response::Error {
                        request_id: 0,
                        code: ErrorCode::UnsupportedVersion,
                        message: format!(
                            "server speaks versions {MIN_SUPPORTED_VERSION}..={PROTOCOL_VERSION}, \
                             client offered {min_version}..={max_version}"
                        ),
                    });
                    self.close_after_flush = true;
                }
            },
            _ => {
                self.queue(&Response::Error {
                    request_id: 0,
                    code: ErrorCode::Malformed,
                    message: "expected Hello as the first request".into(),
                });
                self.close_after_flush = true;
            }
        }
    }

    /// Dispatches one post-handshake request.
    fn serve_request(
        &mut self,
        request: Request,
        shared: &Arc<ServerShared>,
        loop_shared: &Arc<LoopShared>,
        draining: bool,
    ) {
        match request {
            Request::Hello { .. } => {
                self.queue(&Response::Error {
                    request_id: 0,
                    code: ErrorCode::Malformed,
                    message: "duplicate Hello".into(),
                });
                self.close_after_flush = true;
            }
            Request::Ping { token } => self.queue(&Response::Pong { token }),
            Request::Submit {
                request_id,
                timeout_ms,
                seed,
                policy,
                kernel,
            } => {
                let options = JobOptions {
                    timeout: timeout_ms.map(Duration::from_millis),
                    seed,
                    policy,
                };
                self.submit(request_id, kernel, options, shared, loop_shared, draining);
            }
            Request::Cancel { request_id } => {
                // A request id that already completed (or never existed)
                // reports `cancelled: false` — cancellation raced
                // completion and lost.
                let cancelled = self.pending.get(&request_id).is_some_and(JobHandle::cancel);
                self.queue(&Response::CancelResult {
                    request_id,
                    cancelled,
                });
            }
            Request::GetStats { request_id } => {
                let stats = shared.runtime.stats();
                self.queue(&Response::Stats { request_id, stats });
            }
            Request::Gossip {
                request_id,
                origin: _,
                entries,
            } => {
                let entries = shared.merge_gossip(&entries);
                self.queue(&Response::GossipAck {
                    request_id,
                    entries,
                });
            }
        }
    }

    /// Validates and attempts a submission. New submits are refused while
    /// draining; a full queue parks the submit instead of failing it.
    fn submit(
        &mut self,
        request_id: u64,
        kernel: Kernel,
        options: JobOptions,
        shared: &Arc<ServerShared>,
        loop_shared: &Arc<LoopShared>,
        draining: bool,
    ) {
        if self.pending.contains_key(&request_id) {
            self.queue(&Response::Error {
                request_id,
                code: ErrorCode::Malformed,
                message: format!("request id {request_id} is already in flight"),
            });
            return;
        }
        if draining {
            self.queue(&Response::Error {
                request_id,
                code: ErrorCode::ShuttingDown,
                message: "server is shutting down".into(),
            });
            return;
        }
        self.try_submit(request_id, kernel, options, shared, loop_shared);
    }

    /// One submission attempt. Returns `false` when the submit parked
    /// (queue full); `true` when it was accepted or answered with an
    /// error frame.
    fn try_submit(
        &mut self,
        request_id: u64,
        kernel: Kernel,
        options: JobOptions,
        shared: &Arc<ServerShared>,
        loop_shared: &Arc<LoopShared>,
    ) -> bool {
        // The runtime consumes the kernel; keep a copy in case the queue
        // is full and the submit has to park for a retry.
        let retry = kernel.clone();
        match shared.runtime.try_submit_with(kernel, options) {
            Ok(handle) => {
                arm_watcher(loop_shared, self.token.0, request_id, self.version, &handle);
                self.pending.insert(request_id, handle);
                true
            }
            Err(SubmitError::QueueFull) => {
                // Backpressure: park the submit and stop reading this
                // connection. The loop retries each tick; pipelined
                // requests behind it wait in the frame buffer.
                self.parked = Some(Parked {
                    request_id,
                    kernel: retry,
                    options,
                });
                false
            }
            Err(e) => {
                let (code, message) = submit_error_frame(&e);
                self.queue(&Response::Error {
                    request_id,
                    code,
                    message,
                });
                true
            }
        }
    }

    /// Retries a parked submit; on success, unmutes the connection and
    /// immediately processes any frames that buffered while parked.
    pub(crate) fn retry_parked(
        &mut self,
        poll: &mut Poll,
        shared: &Arc<ServerShared>,
        loop_shared: &Arc<LoopShared>,
        draining: bool,
    ) {
        let Some(parked) = self.parked.take() else {
            return;
        };
        let Parked {
            request_id,
            kernel,
            options,
        } = parked;
        if self.try_submit(request_id, kernel, options, shared, loop_shared) {
            if !self.read_closed && !self.close_after_flush {
                poll.unmute(self.token);
            }
            // Frames that arrived while parked are already buffered and
            // raise no new readiness event; drain them now.
            self.on_readable(poll, shared, loop_shared, draining);
        }
    }

    /// Accepts a finished job's encoded result frame from the completion
    /// queue.
    pub(crate) fn on_completion(&mut self, completion: Completion) {
        self.pending.remove(&completion.request_id);
        match completion.frame {
            Some(frame) => self.outbox.push_back(frame),
            // Encoding failed (or the pool was gone): the result cannot
            // reach the peer; close once everything else flushes.
            None => self.close_after_flush = true,
        }
    }

    /// Encodes a response at the negotiated version onto the outbox. An
    /// encode failure closes the connection (parity with a failed write).
    fn queue(&mut self, response: &Response) {
        match encode_frame(response, self.version) {
            Some(frame) => self.outbox.push_back(frame),
            None => self.close_after_flush = true,
        }
    }

    /// Writes as much of the outbox as the socket accepts right now.
    /// `Ok(true)` means fully flushed; `Ok(false)` means the peer's
    /// buffer is full (retry next tick); `Err` means the peer is gone.
    pub(crate) fn flush(&mut self, poll: &Poll) -> io::Result<bool> {
        let Some(mut stream) = poll.stream(self.token) else {
            return Ok(self.outbox.is_empty());
        };
        while let Some(front) = self.outbox.front() {
            let rest = front.get(self.out_off..).unwrap_or_default();
            if rest.is_empty() {
                self.outbox.pop_front();
                self.out_off = 0;
                continue;
            }
            match stream.write(rest) {
                Ok(0) => {
                    return Err(io::Error::new(
                        ErrorKind::WriteZero,
                        "peer stopped accepting bytes",
                    ))
                }
                Ok(n) => self.out_off += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

/// Registers a completion watcher on a freshly submitted job: when the
/// job settles (on a runtime worker thread), the outcome is handed to
/// the encode pool, which builds the `JobResult` frame off-loop and
/// pushes it onto the completion queue, waking the loop to flush it.
fn arm_watcher(
    loop_shared: &Arc<LoopShared>,
    conn_id: u64,
    request_id: u64,
    version: u16,
    handle: &JobHandle,
) {
    let shared = Arc::clone(loop_shared);
    handle.on_finish(move |outcome| {
        let outcome = WireOutcome::from(outcome);
        let encode_shared = Arc::clone(&shared);
        let queued = shared.pool.execute(move || {
            let frame = encode_frame(
                &Response::JobResult {
                    request_id,
                    outcome,
                },
                version,
            );
            encode_shared.complete(Completion {
                conn_id,
                request_id,
                frame,
            });
        });
        if !queued {
            // The pool is already shut down (late completion during
            // teardown); still clear the pending entry so drain finishes.
            shared.complete(Completion {
                conn_id,
                request_id,
                frame: None,
            });
        }
    });
}

/// Serializes one response at `version` into a ready-to-write frame.
/// `None` means the response cannot be represented at this version (for
/// example a result larger than the frame bound).
pub(crate) fn encode_frame(response: &Response, version: u16) -> Option<Vec<u8>> {
    let payload = encode_response_v(response, version).ok()?;
    let mut framed = Vec::with_capacity(payload.len() + 8);
    write_frame(&mut framed, &payload).ok()?;
    Some(framed)
}

/// Maps a submission failure to its wire error frame.
fn submit_error_frame(e: &SubmitError) -> (ErrorCode, String) {
    let code = match e {
        SubmitError::Invalid(_) => ErrorCode::InvalidKernel,
        SubmitError::QueueFull => ErrorCode::QueueFull,
        SubmitError::ShutDown => ErrorCode::ShuttingDown,
    };
    (code, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel::kernel::InvalidKernel;

    #[test]
    fn submit_errors_map_to_codes() {
        let (code, msg) = submit_error_frame(&SubmitError::QueueFull);
        assert_eq!(code, ErrorCode::QueueFull);
        assert!(msg.contains("full"));
        let (code, _) = submit_error_frame(&SubmitError::ShutDown);
        assert_eq!(code, ErrorCode::ShuttingDown);
        let (code, msg) =
            submit_error_frame(&SubmitError::Invalid(InvalidKernel::FactorTooSmall {
                n: 2,
            }));
        assert_eq!(code, ErrorCode::InvalidKernel);
        assert!(msg.contains("invalid kernel"));
    }

    #[test]
    fn encode_frame_produces_a_parseable_frame() {
        let framed = encode_frame(&Response::Pong { token: 9 }, PROTOCOL_VERSION).unwrap();
        let mut cursor = std::io::Cursor::new(framed);
        let payload = wire::read_frame(&mut cursor).unwrap();
        let response = wire::decode_response_v(&payload, PROTOCOL_VERSION).unwrap();
        assert_eq!(response, Response::Pong { token: 9 });
    }
}
