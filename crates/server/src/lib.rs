//! TCP serving front-end over the concurrent [`runtime`].
//!
//! The paper's heterogeneous machine only earns its keep when it serves
//! traffic, so this crate puts the runtime behind a socket:
//!
//! * [`server`] — [`Server`]: a single readiness-driven event loop
//!   (built on [`cluster::Poll`]) owning the listener and every
//!   connection, a connection limit with graceful "server busy"
//!   rejection, and a draining shutdown that lets every in-flight job
//!   finish and flush its response before the runtime stops;
//! * [`connection`] — the per-connection state machine: version
//!   negotiation, pipelined requests (many submissions in flight,
//!   responses written as each job finishes, in completion order),
//!   per-request deadlines mapped onto [`runtime::JobOptions`] timeouts,
//!   cancellation, a stats endpoint, and shard-health gossip merge;
//! * [`client`] — [`Client`]: a blocking client with ticket-based
//!   pipelining (`submit` returns immediately; `wait` demultiplexes
//!   out-of-order responses).
//!
//! Everything speaks the [`wire`] protocol and is std-only.
//!
//! # Example
//!
//! ```
//! use accel::kernel::{Kernel, KernelResult};
//! use server::{Client, Server, ServerConfig, SubmitOptions};
//!
//! let server = Server::start(ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let outcome = client.run(Kernel::Factor { n: 35 }, SubmitOptions::default())?;
//! match outcome {
//!     wire::WireOutcome::Completed { result, .. } => match result {
//!         KernelResult::Factors(p, q) => assert_eq!(p * q, 35),
//!         other => panic!("unexpected {other:?}"),
//!     },
//!     other => panic!("unexpected {other:?}"),
//! }
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
pub mod connection;
pub mod server;

pub(crate) mod sync {
    //! Poison-tolerant locking for the serving surfaces.
    //!
    //! An encode-pool or runtime-watcher thread that panics while
    //! holding one of the server's registries poisons the mutex; every
    //! registry here stays structurally valid mid-update (plain pushes
    //! and map inserts), so serving must outlive the panic rather than
    //! cascade it.

    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// Locks `m`, recovering the guard if a previous holder panicked.
    pub(crate) fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

pub use client::{Client, ClientError, SubmitOptions};
pub use server::{Server, ServerConfig, ServerError};
