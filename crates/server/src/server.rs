//! The listener: accept loop, connection limit, draining shutdown.

use crate::connection::{handle_connection, ConnectionContext};
use crate::sync::lock_or_recover;
use runtime::{Runtime, RuntimeConfig, RuntimeError, RuntimeStats};
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use wire::{encode_response, write_frame, ErrorCode, Response};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Port 0 picks a free port; read it back with
    /// [`Server::local_addr`].
    pub addr: String,
    /// Connections served concurrently before new ones are turned away
    /// with a graceful [`ErrorCode::Busy`] frame. Must be ≥ 1.
    pub max_connections: usize,
    /// The runtime the server fronts.
    pub runtime: RuntimeConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 32,
            runtime: RuntimeConfig::default(),
        }
    }
}

/// Why the server could not start.
#[derive(Debug)]
pub enum ServerError {
    /// Binding the listener failed.
    Io(io::Error),
    /// Starting the runtime failed.
    Runtime(RuntimeError),
    /// The configuration is unusable.
    Config(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server i/o error: {e}"),
            ServerError::Runtime(e) => write!(f, "server runtime error: {e}"),
            ServerError::Config(msg) => write!(f, "invalid server config: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Runtime(e) => Some(e),
            ServerError::Config(_) => None,
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

/// State shared between the accept loop, connection handlers, and the
/// shutdown path.
pub(crate) struct ServerShared {
    pub(crate) runtime: Runtime,
    pub(crate) running: AtomicBool,
    pub(crate) active: AtomicUsize,
    /// Live connections by id, so shutdown can unblock their handlers'
    /// reads. Handlers deregister themselves on exit.
    streams: Mutex<HashMap<u64, TcpStream>>,
    /// Monotonic counter naming connections.
    conn_counter: AtomicU64,
}

impl ServerShared {
    pub(crate) fn is_running(&self) -> bool {
        self.running.load(Ordering::Acquire)
    }

    /// Drops a finished connection's registry entry (its socket was
    /// already shut down by the handler).
    pub(crate) fn deregister(&self, conn_id: u64) {
        lock_or_recover(&self.streams).remove(&conn_id);
    }
}

/// Decrements the live-connection count when a handler exits, however it
/// exits.
pub(crate) struct ActiveGuard {
    shared: Arc<ServerShared>,
}

impl ActiveGuard {
    fn new(shared: Arc<ServerShared>) -> Self {
        shared.active.fetch_add(1, Ordering::AcqRel);
        ActiveGuard { shared }
    }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.shared.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A TCP front-end serving the wire protocol over a [`Runtime`].
///
/// See the [crate docs](crate) for the serving model and an example.
pub struct Server {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds the listener, starts the runtime, and spawns the accept
    /// loop.
    ///
    /// # Errors
    ///
    /// [`ServerError::Config`] for a zero connection limit,
    /// [`ServerError::Io`] if binding fails, [`ServerError::Runtime`] if
    /// the runtime cannot start.
    pub fn start(config: ServerConfig) -> Result<Self, ServerError> {
        if config.max_connections == 0 {
            return Err(ServerError::Config(
                "connection limit must be at least 1".into(),
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let runtime = Runtime::start(config.runtime).map_err(ServerError::Runtime)?;
        let shared = Arc::new(ServerShared {
            runtime,
            running: AtomicBool::new(true),
            active: AtomicUsize::new(0),
            streams: Mutex::new(HashMap::new()),
            conn_counter: AtomicU64::new(0),
        });
        let conn_handles = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let shared = Arc::clone(&shared);
            let conn_handles = Arc::clone(&conn_handles);
            let max_connections = config.max_connections;
            std::thread::Builder::new()
                .name("server-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &conn_handles, max_connections))
                .map_err(ServerError::Io)?
        };
        Ok(Server {
            shared,
            local_addr,
            accept_handle: Some(accept_handle),
            conn_handles,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently being served.
    #[must_use]
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// A point-in-time snapshot of the fronted runtime's statistics.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        self.shared.runtime.stats()
    }

    /// Gracefully drains and stops the server, returning final runtime
    /// statistics.
    ///
    /// Ordering matters: stop accepting, unblock every connection's read
    /// side, let handlers finish waiting on their in-flight jobs (the
    /// runtime is still alive, so results execute and flush to clients),
    /// join the handlers, and only then shut the runtime down.
    #[must_use]
    pub fn shutdown(mut self) -> RuntimeStats {
        self.stop();
        let shared = Arc::clone(&self.shared);
        drop(self); // releases this handle's Arc before the unwrap below
        match Arc::try_unwrap(shared) {
            Ok(shared) => shared.runtime.shutdown(),
            // A handler thread leaked its Arc (should be impossible once
            // all handlers are joined); fall back to a snapshot.
            Err(shared) => shared.runtime.stats(),
        }
    }

    fn stop(&mut self) {
        self.shared.running.store(false, Ordering::Release);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Unblock handlers stuck in read_frame. Writes stay open so
        // in-flight job results still reach their clients.
        for (_, stream) in lock_or_recover(&self.shared.streams).drain() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let handles: Vec<_> = lock_or_recover(&self.conn_handles).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    conn_handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    max_connections: usize,
) {
    while shared.is_running() {
        match listener.accept() {
            Ok((stream, peer)) => {
                let _ = stream.set_nodelay(true);
                if shared.active.load(Ordering::Acquire) >= max_connections {
                    reject_busy(stream, max_connections);
                    continue;
                }
                let _ = stream.set_nonblocking(false);
                let conn_id = shared.conn_counter.fetch_add(1, Ordering::Relaxed);
                if let Ok(read_half) = stream.try_clone() {
                    lock_or_recover(&shared.streams).insert(conn_id, read_half);
                } else {
                    continue;
                }
                let guard = ActiveGuard::new(Arc::clone(shared));
                let ctx = ConnectionContext {
                    shared: Arc::clone(shared),
                    peer,
                    conn_id,
                };
                let spawned = std::thread::Builder::new()
                    .name(format!("server-conn-{conn_id}"))
                    .spawn(move || {
                        let _guard = guard;
                        handle_connection(stream, &ctx);
                    });
                match spawned {
                    Ok(handle) => lock_or_recover(conn_handles).push(handle),
                    // The guard already dropped with the closure; free
                    // the registry slot too.
                    Err(_) => shared.deregister(conn_id),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Turns a connection away with a connection-level busy frame instead of
/// a silent hangup, so clients can distinguish "try later" from a crash.
fn reject_busy(mut stream: TcpStream, max_connections: usize) {
    let _ = stream.set_nonblocking(false);
    let response = Response::Error {
        request_id: 0,
        code: ErrorCode::Busy,
        message: format!("server at its {max_connections}-connection limit"),
    };
    if let Ok(payload) = encode_response(&response) {
        let _ = write_frame(&mut stream, &payload);
    }
    let _ = stream.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_connection_limit() {
        let config = ServerConfig {
            max_connections: 0,
            ..ServerConfig::default()
        };
        assert!(matches!(Server::start(config), Err(ServerError::Config(_))));
    }

    #[test]
    fn binds_ephemeral_port_and_shuts_down() {
        let server = Server::start(ServerConfig::default()).unwrap();
        assert_ne!(server.local_addr().port(), 0);
        assert_eq!(server.active_connections(), 0);
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 0);
    }

    #[test]
    fn errors_display() {
        let e = ServerError::Config("connection limit must be at least 1".into());
        assert!(e.to_string().contains("connection limit"));
        let e = ServerError::from(io::Error::new(io::ErrorKind::AddrInUse, "taken"));
        assert!(e.to_string().contains("taken"));
    }
}
