//! The listener: readiness event loop, connection limit, draining
//! shutdown.
//!
//! One `server-loop` thread owns a [`cluster::Poll`] with the listener
//! and every connection registered on it. Each loop tick: drain
//! readiness events (accepts, readable connections), drain the
//! completion queue (finished jobs, encoded off-loop), retry parked
//! submits, flush outboxes, and tear down finished connections. There
//! is no accept sleep-poll and no thread-per-connection — idle time is
//! spent parked on the poll's condvar, which job completions and
//! shutdown interrupt through a [`cluster::Waker`].

use crate::connection::Conn;
use crate::sync::lock_or_recover;
use cluster::{Event, Poll, Token, Waker, WorkerPool};
use runtime::{Runtime, RuntimeConfig, RuntimeError, RuntimeStats};
use std::collections::BTreeMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use wire::{encode_response, write_frame, ErrorCode, GossipEntry, Response};

/// Upper bound on one poll wait. Completions and shutdown wake the loop
/// early; this only caps how long a parked-submit retry can lag.
const POLL_TIMEOUT: Duration = Duration::from_millis(25);

/// Cap on encode-pool threads; result encoding is cheap, so a few
/// workers keep up with many runtime workers.
const ENCODE_WORKERS: usize = 4;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Port 0 picks a free port; read it back with
    /// [`Server::local_addr`].
    pub addr: String,
    /// Connections served concurrently before new ones are turned away
    /// with a graceful [`ErrorCode::Busy`] frame. Must be ≥ 1.
    pub max_connections: usize,
    /// The runtime the server fronts.
    pub runtime: RuntimeConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 32,
            runtime: RuntimeConfig::default(),
        }
    }
}

/// Why the server could not start.
#[derive(Debug)]
pub enum ServerError {
    /// Binding the listener failed.
    Io(io::Error),
    /// Starting the runtime failed.
    Runtime(RuntimeError),
    /// The configuration is unusable.
    Config(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server i/o error: {e}"),
            ServerError::Runtime(e) => write!(f, "server runtime error: {e}"),
            ServerError::Config(msg) => write!(f, "invalid server config: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Runtime(e) => Some(e),
            ServerError::Config(_) => None,
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

/// State shared between the loop thread, the public [`Server`] handle,
/// and the shutdown path. Job-completion machinery lives in
/// [`LoopShared`] instead, so in-flight watchers never keep this alive
/// past the loop join (shutdown unwraps it to consume the runtime).
pub(crate) struct ServerShared {
    pub(crate) runtime: Runtime,
    pub(crate) running: AtomicBool,
    pub(crate) active: AtomicUsize,
    /// Cluster health gossip: the freshest entry seen per shard id.
    /// Routers push their local views in `Gossip` frames and read the
    /// merged picture back from the ack, so shard failures propagate
    /// through any shared server without a dedicated gossip mesh.
    gossip: Mutex<BTreeMap<u32, GossipEntry>>,
}

impl ServerShared {
    pub(crate) fn is_running(&self) -> bool {
        self.running.load(Ordering::Acquire)
    }

    /// Folds a router's gossip entries into the server's view (higher
    /// epoch wins, ties keep the incumbent) and returns the merged view,
    /// ascending by shard id.
    pub(crate) fn merge_gossip(&self, entries: &[GossipEntry]) -> Vec<GossipEntry> {
        // lint:allow(eventloop, reason = "bounded hold: the gossip board is only ever locked here, for a BTreeMap fold")
        let mut board = lock_or_recover(&self.gossip);
        for entry in entries {
            match board.get(&entry.shard) {
                Some(existing) if existing.epoch >= entry.epoch => {}
                _ => {
                    board.insert(entry.shard, *entry);
                }
            }
        }
        board.values().cloned().collect()
    }
}

/// A finished job's encoded result, in transit from the encode pool back
/// to the loop thread.
pub(crate) struct Completion {
    pub(crate) conn_id: u64,
    pub(crate) request_id: u64,
    /// The encoded `JobResult` frame; `None` when encoding failed and
    /// the connection should close instead of silently dropping the
    /// result.
    pub(crate) frame: Option<Vec<u8>>,
}

/// Completion plumbing shared by the loop thread, job watchers, and the
/// encode pool. Kept separate from [`ServerShared`] so a job that
/// outlives its connection (watcher still registered) cannot block
/// shutdown's `Arc::try_unwrap` on the runtime.
pub(crate) struct LoopShared {
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
    pub(crate) pool: WorkerPool,
}

impl LoopShared {
    /// Queues a completion and wakes the loop to deliver it.
    pub(crate) fn complete(&self, completion: Completion) {
        let mut queue = lock_or_recover(&self.completions);
        queue.push(completion);
        drop(queue);
        self.waker.wake();
    }

    /// Takes everything queued so far.
    fn drain(&self) -> Vec<Completion> {
        // lint:allow(eventloop, reason = "bounded hold: producers only push-and-wake, the loop swaps the Vec out")
        let mut queue = lock_or_recover(&self.completions);
        std::mem::take(&mut *queue)
    }
}

/// A TCP front-end serving the wire protocol over a [`Runtime`].
///
/// See the [crate docs](crate) for the serving model and an example.
pub struct Server {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    loop_handle: Option<JoinHandle<()>>,
    waker: Waker,
}

impl Server {
    /// Binds the listener, starts the runtime, and spawns the event
    /// loop.
    ///
    /// # Errors
    ///
    /// [`ServerError::Config`] for a zero connection limit,
    /// [`ServerError::Io`] if binding fails, [`ServerError::Runtime`] if
    /// the runtime cannot start.
    pub fn start(config: ServerConfig) -> Result<Self, ServerError> {
        if config.max_connections == 0 {
            return Err(ServerError::Config(
                "connection limit must be at least 1".into(),
            ));
        }
        let max_connections = config.max_connections;
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let encode_workers = config.runtime.workers.clamp(1, ENCODE_WORKERS);
        let runtime = Runtime::start(config.runtime).map_err(ServerError::Runtime)?;
        let mut poll = Poll::new();
        let listener_token = poll.register_listener(listener)?;
        let waker = poll.waker();
        let shared = Arc::new(ServerShared {
            runtime,
            running: AtomicBool::new(true),
            active: AtomicUsize::new(0),
            gossip: Mutex::new(BTreeMap::new()),
        });
        let loop_shared = Arc::new(LoopShared {
            completions: Mutex::new(Vec::new()),
            waker: waker.clone(),
            pool: WorkerPool::new("server-encode", encode_workers),
        });
        let loop_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("server-loop".into())
                .spawn(move || {
                    event_loop(poll, listener_token, &shared, &loop_shared, max_connections);
                })
                .map_err(ServerError::Io)?
        };
        Ok(Server {
            shared,
            local_addr,
            loop_handle: Some(loop_handle),
            waker,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently being served.
    #[must_use]
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// A point-in-time snapshot of the fronted runtime's statistics.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        self.shared.runtime.stats()
    }

    /// Gracefully drains and stops the server, returning final runtime
    /// statistics.
    ///
    /// Ordering matters: stop accepting, then let the loop keep serving
    /// until every connection's in-flight jobs complete and flush (the
    /// runtime is still alive, so results execute and reach their
    /// clients; cancels are still answered), join the loop, and only
    /// then shut the runtime down.
    #[must_use]
    pub fn shutdown(mut self) -> RuntimeStats {
        self.stop();
        let shared = Arc::clone(&self.shared);
        drop(self); // releases this handle's Arc before the unwrap below
        match Arc::try_unwrap(shared) {
            Ok(shared) => shared.runtime.shutdown(),
            // Something leaked an Arc (should be impossible once the
            // loop is joined); fall back to a snapshot.
            Err(shared) => shared.runtime.stats(),
        }
    }

    fn stop(&mut self) {
        self.shared.running.store(false, Ordering::Release);
        self.waker.wake();
        if let Some(handle) = self.loop_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The loop body: owns the poll and every connection until drain
/// completes.
fn event_loop(
    mut poll: Poll,
    listener_token: Token,
    shared: &Arc<ServerShared>,
    loop_shared: &Arc<LoopShared>,
    max_connections: usize,
) {
    let mut conns: BTreeMap<u64, Conn> = BTreeMap::new();
    let mut events: Vec<Event> = Vec::new();
    let mut draining = false;
    loop {
        if !draining && !shared.is_running() {
            // Drain mode: stop accepting, keep serving until every
            // connection's pending work flushes. Cancels, pings, and
            // stats still get answers; new submits are refused.
            draining = true;
            let _ = poll.deregister_listener(listener_token);
        }
        events.clear();
        let _ = poll.poll(&mut events, POLL_TIMEOUT);
        for event in events.drain(..) {
            match event {
                Event::Accepted { stream, peer, .. } => {
                    if draining || conns.len() >= max_connections {
                        reject_busy(stream, loop_shared, max_connections);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if let Ok(token) = poll.register_stream(stream) {
                        conns.insert(token.0, Conn::new(token, peer));
                    }
                }
                Event::Readable(token) => {
                    if let Some(conn) = conns.get_mut(&token.0) {
                        conn.on_readable(&mut poll, shared, loop_shared, draining);
                    }
                }
                Event::Closed(token) => {
                    if let Some(conn) = conns.get_mut(&token.0) {
                        conn.mark_read_closed(&mut poll);
                    }
                }
            }
        }
        for completion in loop_shared.drain() {
            if let Some(conn) = conns.get_mut(&completion.conn_id) {
                conn.on_completion(completion);
            }
            // A completion for a connection already torn down just drops;
            // the job ran, the peer is gone.
        }
        for conn in conns.values_mut() {
            conn.retry_parked(&mut poll, shared, loop_shared, draining);
        }
        let mut dead = Vec::new();
        for (&id, conn) in &mut conns {
            match conn.flush(&poll) {
                Ok(flushed) => {
                    // A connection closes once it owes nothing: no jobs
                    // in flight, no parked submit, outbox flushed — and
                    // either the peer is done (read side closed), a
                    // violation was answered, or the server is draining.
                    let finished = flushed && !conn.has_work();
                    if finished && (conn.close_after_flush || conn.read_closed || draining) {
                        dead.push(id);
                    }
                }
                Err(_) => dead.push(id),
            }
        }
        for id in dead {
            if let Some(stream) = poll.deregister(Token(id)) {
                let _ = stream.shutdown(Shutdown::Both);
            }
            conns.remove(&id);
        }
        shared.active.store(conns.len(), Ordering::Release);
        if draining && conns.is_empty() {
            return;
        }
    }
}

/// Turns a connection away with a connection-level busy frame instead of
/// a silent hangup, so clients can distinguish "try later" from a crash.
/// The farewell write is blocking I/O against a possibly-stalled peer,
/// so it runs on the encode pool — the loop thread only hands the stream
/// off.
fn reject_busy(stream: TcpStream, loop_shared: &LoopShared, max_connections: usize) {
    loop_shared.pool.execute(move || {
        let mut stream = stream;
        let _ = stream.set_nonblocking(false);
        let response = Response::Error {
            request_id: 0,
            code: ErrorCode::Busy,
            message: format!("server at its {max_connections}-connection limit"),
        };
        if let Ok(payload) = encode_response(&response) {
            let _ = write_frame(&mut stream, &payload);
        }
        let _ = stream.shutdown(Shutdown::Both);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_connection_limit() {
        let config = ServerConfig {
            max_connections: 0,
            ..ServerConfig::default()
        };
        assert!(matches!(Server::start(config), Err(ServerError::Config(_))));
    }

    #[test]
    fn binds_ephemeral_port_and_shuts_down() {
        let server = Server::start(ServerConfig::default()).unwrap();
        assert_ne!(server.local_addr().port(), 0);
        assert_eq!(server.active_connections(), 0);
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 0);
    }

    #[test]
    fn errors_display() {
        let e = ServerError::Config("connection limit must be at least 1".into());
        assert!(e.to_string().contains("connection limit"));
        let e = ServerError::from(io::Error::new(io::ErrorKind::AddrInUse, "taken"));
        assert!(e.to_string().contains("taken"));
    }
}
