//! The FAST ring: a radius-3 Bresenham circle of 16 pixels.
//!
//! FAST (paper §III-B) "compares a pixel with its surrounding 16 pixels on a
//! Bresenham circle of radius 3". The offsets below are the canonical ring
//! from Rosten & Drummond's detector, ordered clockwise starting from the
//! top (12 o'clock) pixel, which makes "N contiguous pixels" checks simple
//! modular-window scans.
//!
//! # Example
//!
//! ```
//! use vision::bresenham::{ring_offsets, RING_SIZE};
//!
//! assert_eq!(ring_offsets().len(), RING_SIZE);
//! assert_eq!(ring_offsets()[0], (0, -3)); // 12 o'clock
//! ```

/// Number of pixels on the radius-3 Bresenham circle.
pub const RING_SIZE: usize = 16;

/// The FAST ring margin: ring pixels extend 3 pixels from the centre.
pub const RING_RADIUS: usize = 3;

/// The 16 `(dx, dy)` offsets of the radius-3 Bresenham circle, clockwise
/// from 12 o'clock.
const OFFSETS: [(i32, i32); RING_SIZE] = [
    (0, -3),
    (1, -3),
    (2, -2),
    (3, -1),
    (3, 0),
    (3, 1),
    (2, 2),
    (1, 3),
    (0, 3),
    (-1, 3),
    (-2, 2),
    (-3, 1),
    (-3, 0),
    (-3, -1),
    (-2, -2),
    (-1, -3),
];

/// The ring offsets, clockwise from 12 o'clock.
#[must_use]
pub fn ring_offsets() -> &'static [(i32, i32); RING_SIZE] {
    &OFFSETS
}

/// The absolute ring coordinates around centre `(x, y)`.
///
/// The caller must guarantee a [`RING_RADIUS`] interior margin (see
/// [`crate::image::GrayImage::in_interior`]); offsets are then always in
/// bounds.
#[must_use]
pub fn ring_coords(x: usize, y: usize) -> [(usize, usize); RING_SIZE] {
    let mut out = [(0usize, 0usize); RING_SIZE];
    for (slot, &(dx, dy)) in out.iter_mut().zip(OFFSETS.iter()) {
        *slot = ((x as i32 + dx) as usize, (y as i32 + dy) as usize);
    }
    out
}

/// Checks whether any circular window of `n` contiguous `true` values exists
/// in `flags` (the FAST segment test).
#[must_use]
pub fn has_contiguous_run(flags: &[bool; RING_SIZE], n: usize) -> bool {
    if n == 0 {
        return true;
    }
    if n > RING_SIZE {
        return false;
    }
    // Longest circular run of `true`.
    let mut best = 0usize;
    let mut current = 0usize;
    // Scanning twice around the ring captures wrap-around runs; cap the
    // count at RING_SIZE for the all-true case.
    for i in 0..2 * RING_SIZE {
        if flags[i % RING_SIZE] {
            current += 1;
            best = best.max(current.min(RING_SIZE));
        } else {
            current = 0;
        }
    }
    best >= n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_radius_three() {
        for &(dx, dy) in ring_offsets() {
            let r2 = dx * dx + dy * dy;
            // Bresenham radius-3 circle: squared radius 8..=10.
            assert!((8..=10).contains(&r2), "({dx},{dy}) has r² = {r2}");
        }
    }

    #[test]
    fn offsets_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for &o in ring_offsets() {
            assert!(seen.insert(o), "duplicate offset {o:?}");
        }
    }

    #[test]
    fn offsets_are_clockwise_contiguous() {
        // Adjacent ring pixels are at most 1 pixel apart in each axis.
        let ring = ring_offsets();
        for i in 0..RING_SIZE {
            let (x0, y0) = ring[i];
            let (x1, y1) = ring[(i + 1) % RING_SIZE];
            assert!((x1 - x0).abs() <= 1 && (y1 - y0).abs() <= 1);
        }
    }

    #[test]
    fn coords_translate() {
        let coords = ring_coords(10, 10);
        assert_eq!(coords[0], (10, 7));
        assert_eq!(coords[8], (10, 13));
        assert_eq!(coords[4], (13, 10));
        assert_eq!(coords[12], (7, 10));
    }

    #[test]
    fn contiguous_run_simple() {
        let mut flags = [false; RING_SIZE];
        for f in flags.iter_mut().take(9) {
            *f = true;
        }
        assert!(has_contiguous_run(&flags, 9));
        assert!(!has_contiguous_run(&flags, 10));
    }

    #[test]
    fn contiguous_run_wraps() {
        let mut flags = [false; RING_SIZE];
        // 5 at the end + 5 at the start = wrap-around run of 10.
        for f in flags.iter_mut().take(5) {
            *f = true;
        }
        for f in flags.iter_mut().skip(RING_SIZE - 5) {
            *f = true;
        }
        assert!(has_contiguous_run(&flags, 10));
        assert!(!has_contiguous_run(&flags, 11));
    }

    #[test]
    fn contiguous_run_all_true() {
        let flags = [true; RING_SIZE];
        assert!(has_contiguous_run(&flags, RING_SIZE));
        assert!(!has_contiguous_run(&flags, RING_SIZE + 1));
    }

    #[test]
    fn contiguous_run_edge_counts() {
        let flags = [false; RING_SIZE];
        assert!(has_contiguous_run(&flags, 0));
        assert!(!has_contiguous_run(&flags, 1));
    }
}
