//! Energy and power comparison of the two FAST implementations.
//!
//! Reproduces the paper's §III-B quantitative claim: "The power consumption
//! of the coupled oscillator-based block designed in this example to
//! identify corners is 0.936 mW (including the XOR readout), whereas the
//! power consumption of the corresponding CMOS implementation at the 32 nm
//! process node is 3 mW."
//!
//! The comparison is made **throughput-matched**: the oscillator block owns
//! `parallel_pairs` comparison units, each taking one readout window per
//! comparison; the frame time is therefore
//! `T_frame = comparisons / parallel_pairs × T_window`, and the digital
//! implementation is charged with completing its (operation-counted) frame
//! work in the *same* `T_frame`. Both sides then report average power.
//!
//! # Example
//!
//! ```no_run
//! use vision::energy::{compare_power, ComparisonSetup};
//! use vision::synth::benchmark_scene;
//!
//! let img = benchmark_scene(64).build(0);
//! let setup = ComparisonSetup::default();
//! let cmp = compare_power(&img, &setup)?;
//! assert!(cmp.ratio() > 1.0, "oscillator block should win");
//! # Ok::<(), vision::VisionError>(())
//! ```

use crate::fast::{FastDetector, FastParams};
use crate::image::GrayImage;
use crate::osc_fast::{OscFastDetector, OscFastParams};
use crate::VisionError;
use device::cmos::{CmosEnergyModel, PipelinedDatapath, ProcessNode};
use device::units::{Seconds, Volts, Watts};
use osc::norms::{NormRegime, OscillatorDistance};
use osc::pair::CoupledPair;
use osc::power::block_power;

/// Configuration of the power comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparisonSetup {
    /// Oscillator coupling regime used for the distance primitive.
    pub regime: NormRegime,
    /// Number of parallel oscillator comparison units in the block (the
    /// paper's dataflow uses one per ring pixel: 16).
    pub parallel_pairs: usize,
    /// XOR readout window, in oscillation cycles.
    pub window_cycles: usize,
    /// Oversampling factor of the readout clock.
    pub readout_oversample: f64,
    /// CMOS technology node for the digital baseline.
    pub node: ProcessNode,
    /// FAST parameters shared by both implementations.
    pub fast: FastParams,
    /// Centre gate voltage of the input encoding.
    pub v_center: f64,
    /// Full-scale `ΔV_gs` of the input encoding.
    pub full_scale: f64,
    /// Calibration points for the distance primitive.
    pub calibration_points: usize,
}

impl Default for ComparisonSetup {
    fn default() -> Self {
        ComparisonSetup {
            regime: NormRegime::Shallow,
            parallel_pairs: 16,
            window_cycles: 32,
            readout_oversample: 8.0,
            node: ProcessNode::Nm32,
            fast: FastParams::default(),
            v_center: 0.62,
            full_scale: 0.02,
            calibration_points: 9,
        }
    }
}

/// Result of the throughput-matched power comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerComparison {
    /// Oscillator-block power (analog cells + XOR readout, all parallel
    /// units).
    pub oscillator: Watts,
    /// Digital CMOS power at the matched frame time.
    pub cmos: Watts,
    /// The common frame time both implementations are held to.
    pub frame_time: Seconds,
    /// Oscillator comparisons performed for the frame.
    pub comparisons: u64,
    /// Digital operations performed for the frame.
    pub digital_ops: u64,
    /// Agreement (F1) between the two detectors' corner sets.
    pub agreement_f1: f64,
}

impl PowerComparison {
    /// CMOS-to-oscillator power ratio (> 1 means the oscillator block wins,
    /// as the paper claims with 3 mW / 0.936 mW ≈ 3.2).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.cmos.0 / self.oscillator.0
    }
}

impl std::fmt::Display for PowerComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "oscillator {:.3} mW vs cmos {:.3} mW (ratio {:.2}x, f1 {:.3})",
            self.oscillator.0 * 1e3,
            self.cmos.0 * 1e3,
            self.ratio(),
            self.agreement_f1
        )
    }
}

/// Runs both detectors on `img` and produces the throughput-matched power
/// comparison.
///
/// # Errors
///
/// Propagates oscillator calibration/simulation errors.
pub fn compare_power(
    img: &GrayImage,
    setup: &ComparisonSetup,
) -> Result<PowerComparison, VisionError> {
    // --- Oscillator side -------------------------------------------------
    let config = setup.regime.config();
    let distance = OscillatorDistance::calibrate(
        config,
        setup.v_center,
        setup.full_scale,
        setup.calibration_points,
    )?;
    let osc_params = OscFastParams {
        n_contiguous: setup.fast.n_contiguous,
        threshold: setup.fast.threshold,
        reject_false_positives: true,
        quick_reject: true,
    };
    let osc_detector = OscFastDetector::new(distance, osc_params);
    let osc_out = osc_detector.detect(img);

    // Representative pair (mid-range inputs) for power/frequency numbers.
    let pair = CoupledPair::new(config, Volts(setup.v_center), Volts(setup.v_center))?;
    let run = pair.simulate_default()?;
    let model = CmosEnergyModel::new(setup.node);
    let unit = block_power(&pair, &run, &model, setup.readout_oversample)?;
    let osc_block = Watts(unit.total().0 * setup.parallel_pairs as f64);

    let f_osc = run.frequency(0)?;
    let window_time = setup.window_cycles.max(1) as f64 / f_osc;
    let rounds = (osc_out.comparisons as f64 / setup.parallel_pairs.max(1) as f64).ceil();
    let frame_time = Seconds(rounds * window_time);

    // --- Digital side -----------------------------------------------------
    let (digital_corners, counts) = FastDetector::new(setup.fast).detect_counted(img);
    let engine = PipelinedDatapath::vision_engine(setup.node);
    let cmos_power = engine.average_power(&counts, frame_time);

    let agreement = crate::metrics::match_corners(&digital_corners, &osc_out.corners, 2);

    Ok(PowerComparison {
        oscillator: osc_block,
        cmos: cmos_power,
        frame_time,
        comparisons: osc_out.comparisons,
        digital_ops: counts.total(),
        agreement_f1: agreement.f1(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::benchmark_scene;

    fn quick_setup() -> ComparisonSetup {
        ComparisonSetup {
            calibration_points: 5,
            ..ComparisonSetup::default()
        }
    }

    fn quick_compare(size: usize) -> PowerComparison {
        let img = benchmark_scene(size).build(0);
        // Few calibration points keep the test fast; the default sim
        // durations are already modest (3 µs).
        let setup = quick_setup();
        compare_power(&img, &setup).unwrap()
    }

    #[test]
    fn oscillator_block_wins_on_power() {
        let cmp = quick_compare(48);
        assert!(
            cmp.ratio() > 1.0,
            "expected oscillator advantage, got {cmp}"
        );
    }

    #[test]
    fn detectors_agree_reasonably() {
        let cmp = quick_compare(48);
        assert!(cmp.agreement_f1 > 0.5, "agreement too low: {cmp}");
    }

    #[test]
    fn oscillator_power_sub_10mw() {
        let cmp = quick_compare(48);
        assert!(
            cmp.oscillator.0 < 10e-3,
            "oscillator block {} W implausibly high",
            cmp.oscillator.0
        );
        assert!(cmp.oscillator.0 > 10e-6);
    }

    #[test]
    fn frame_time_positive_and_subsecond() {
        let cmp = quick_compare(48);
        assert!(cmp.frame_time.0 > 0.0);
        assert!(cmp.frame_time.0 < 1.0);
    }

    #[test]
    fn counts_populated() {
        let cmp = quick_compare(48);
        assert!(cmp.comparisons > 0);
        assert!(cmp.digital_ops > 0);
    }

    #[test]
    fn display_mentions_ratio() {
        let cmp = quick_compare(48);
        assert!(cmp.to_string().contains("ratio"));
    }
}
