//! Baseline software FAST segment-test corner detector.
//!
//! Features-from-Accelerated-Segment-Tests (Rosten & Drummond, ECCV 2006 —
//! the paper's ref. \[45\]): a pixel `p` is a corner when `N` *contiguous*
//! pixels on its radius-3 Bresenham ring are all brighter than `p + t` or
//! all darker than `p − t`. The classic `N = 9` variant is the default.
//!
//! The detector also produces an operation count ([`FastDetector::detect_counted`])
//! so the energy model can cost the digital implementation exactly as
//! executed — including the standard 4-pixel quick-reject pre-test that
//! makes FAST fast.
//!
//! # Example
//!
//! ```
//! use vision::fast::{FastDetector, FastParams};
//! use vision::synth::SceneBuilder;
//!
//! let img = SceneBuilder::new(32, 32).rectangle(8, 8, 12, 12, 220).build(0);
//! let corners = FastDetector::new(FastParams::default()).detect(&img);
//! assert!(corners.iter().any(|c| c.chebyshev(&vision::Corner { x: 8, y: 8, score: 0.0 }) <= 1));
//! ```

use crate::bresenham::{has_contiguous_run, ring_coords, RING_RADIUS, RING_SIZE};
use crate::image::GrayImage;
use crate::Corner;
use device::cmos::{Op, OpCounts};

/// FAST detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastParams {
    /// Required number of contiguous brighter/darker ring pixels (the `N`
    /// of FAST-N; 9 and 12 are the common variants).
    pub n_contiguous: usize,
    /// Intensity threshold `t`.
    pub threshold: u8,
    /// Whether to apply 3×3 non-maximum suppression on the corner score.
    pub nonmax_suppression: bool,
}

impl Default for FastParams {
    fn default() -> Self {
        FastParams {
            n_contiguous: 9,
            threshold: 25,
            nonmax_suppression: true,
        }
    }
}

/// Classification of one ring pixel against the centre.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RingClass {
    Brighter,
    Darker,
    Similar,
}

/// The baseline software detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastDetector {
    params: FastParams,
}

impl FastDetector {
    /// Creates a detector.
    #[must_use]
    pub fn new(params: FastParams) -> Self {
        FastDetector { params }
    }

    /// The parameters.
    #[must_use]
    pub fn params(&self) -> &FastParams {
        &self.params
    }

    /// Detects corners.
    #[must_use]
    pub fn detect(&self, img: &GrayImage) -> Vec<Corner> {
        self.detect_counted(img).0
    }

    /// Detects corners and returns the digital operation trace actually
    /// executed (pixel reads as SRAM accesses, threshold compares, absolute
    /// differences for scoring).
    #[must_use]
    pub fn detect_counted(&self, img: &GrayImage) -> (Vec<Corner>, OpCounts) {
        let mut counts = OpCounts::new();
        let mut raw: Vec<Corner> = Vec::new();
        for y in 0..img.height() {
            for x in 0..img.width() {
                if !img.in_interior(x, y, RING_RADIUS) {
                    continue;
                }
                if let Some(score) = self.test_pixel(img, x, y, &mut counts) {
                    raw.push(Corner { x, y, score });
                }
            }
        }
        let corners = if self.params.nonmax_suppression {
            nonmax_suppress(&raw, &mut counts)
        } else {
            raw
        };
        (corners, counts)
    }

    /// Segment test at one pixel; returns the corner score when positive.
    fn test_pixel(
        &self,
        img: &GrayImage,
        x: usize,
        y: usize,
        counts: &mut OpCounts,
    ) -> Option<f64> {
        let p = img.at(x, y) as i32;
        counts.add(Op::SramAccess, 1);
        let t = self.params.threshold as i32;
        let ring = ring_coords(x, y);

        // Quick reject (the "high-speed test") on the 4 compass pixels
        // (indices 0, 4, 8, 12): any run of N ≥ 12 contiguous ring pixels
        // covers at least 3 compass points; N ≥ 9 covers at least 2.
        if self.params.n_contiguous >= 9 {
            let required = if self.params.n_contiguous >= 12 { 3 } else { 2 };
            let mut brighter = 0;
            let mut darker = 0;
            for &i in &[0usize, 4, 8, 12] {
                let (rx, ry) = ring[i];
                let v = img.at(rx, ry) as i32;
                counts.add(Op::SramAccess, 1);
                counts.add(Op::Compare8, 2);
                if v >= p + t {
                    brighter += 1;
                } else if v <= p - t {
                    darker += 1;
                }
            }
            if brighter < required && darker < required {
                return None;
            }
        }

        let mut classes = [RingClass::Similar; RING_SIZE];
        let mut score_acc = 0i32;
        for (i, &(rx, ry)) in ring.iter().enumerate() {
            let v = img.at(rx, ry) as i32;
            counts.add(Op::SramAccess, 1);
            counts.add(Op::Compare8, 2);
            counts.add(Op::AbsDiff8, 1);
            classes[i] = if v >= p + t {
                RingClass::Brighter
            } else if v <= p - t {
                RingClass::Darker
            } else {
                RingClass::Similar
            };
            if classes[i] != RingClass::Similar {
                score_acc += (v - p).abs() - t;
                counts.add(Op::Add32, 1);
            }
        }

        let brighter: [bool; RING_SIZE] =
            std::array::from_fn(|i| classes[i] == RingClass::Brighter);
        let darker: [bool; RING_SIZE] = std::array::from_fn(|i| classes[i] == RingClass::Darker);
        // The contiguity scan is a small shift-register circuit; cost it as
        // 2·RING_SIZE logic-gate evaluations per direction.
        counts.add(Op::LogicGate, 4 * RING_SIZE as u64);
        if has_contiguous_run(&brighter, self.params.n_contiguous)
            || has_contiguous_run(&darker, self.params.n_contiguous)
        {
            Some(score_acc as f64)
        } else {
            None
        }
    }
}

/// 3×3 non-maximum suppression: keeps a corner only when its score is the
/// strict maximum of its 8-neighbourhood (ties broken toward the earlier
/// raster-order corner).
fn nonmax_suppress(corners: &[Corner], counts: &mut OpCounts) -> Vec<Corner> {
    use std::collections::HashMap;
    let by_pos: HashMap<(usize, usize), f64> =
        corners.iter().map(|c| ((c.x, c.y), c.score)).collect();
    corners
        .iter()
        .filter(|c| {
            let mut keep = true;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let nx = c.x as i32 + dx;
                    let ny = c.y as i32 + dy;
                    if nx < 0 || ny < 0 {
                        continue;
                    }
                    if let Some(&s) = by_pos.get(&(nx as usize, ny as usize)) {
                        counts.add(Op::Compare8, 1);
                        // Strict domination, with raster-order tiebreak.
                        let earlier = (ny as usize, nx as usize) < (c.y, c.x);
                        if s > c.score || (s == c.score && earlier) {
                            keep = false;
                        }
                    }
                }
            }
            keep
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SceneBuilder;

    fn bright_square() -> GrayImage {
        SceneBuilder::new(32, 32)
            .background(20)
            .rectangle(10, 10, 10, 10, 220)
            .build(0)
    }

    #[test]
    fn detects_square_corners() {
        let img = bright_square();
        let corners = FastDetector::new(FastParams::default()).detect(&img);
        assert!(!corners.is_empty());
        // All four square vertices should have a detection within 2 px.
        for &(gx, gy) in &[(10, 10), (19, 10), (10, 19), (19, 19)] {
            let hit = corners.iter().any(|c| {
                c.chebyshev(&Corner {
                    x: gx,
                    y: gy,
                    score: 0.0,
                }) <= 2
            });
            assert!(hit, "vertex ({gx},{gy}) missed; corners {corners:?}");
        }
    }

    #[test]
    fn uniform_image_has_no_corners() {
        let img = GrayImage::new(32, 32, 128);
        let corners = FastDetector::new(FastParams::default()).detect(&img);
        assert!(corners.is_empty());
    }

    #[test]
    fn straight_edge_is_not_a_corner() {
        // A half-plane edge: at most 8 contiguous ring pixels differ, so
        // FAST-9 must not fire along the edge interior.
        let img = SceneBuilder::new(32, 32)
            .background(20)
            .rectangle(16, 0, 16, 32, 220)
            .build(0);
        let corners = FastDetector::new(FastParams::default()).detect(&img);
        for c in &corners {
            assert!(
                c.y <= 4 || c.y >= 27,
                "false corner at edge interior: {c:?}"
            );
        }
    }

    #[test]
    fn dark_corner_detected_too() {
        let img = SceneBuilder::new(32, 32)
            .background(220)
            .rectangle(10, 10, 10, 10, 20)
            .build(0);
        let corners = FastDetector::new(FastParams::default()).detect(&img);
        assert!(!corners.is_empty(), "dark-on-bright corners missed");
    }

    #[test]
    fn higher_threshold_detects_fewer() {
        let img = SceneBuilder::new(48, 48)
            .background(100)
            .rectangle(10, 10, 14, 14, 160)
            .rectangle(28, 28, 12, 12, 130)
            .build(0);
        let lo = FastDetector::new(FastParams {
            threshold: 10,
            ..FastParams::default()
        })
        .detect(&img);
        let hi = FastDetector::new(FastParams {
            threshold: 50,
            ..FastParams::default()
        })
        .detect(&img);
        assert!(lo.len() >= hi.len());
    }

    #[test]
    fn nonmax_suppression_thins_detections() {
        let img = bright_square();
        let with = FastDetector::new(FastParams::default()).detect(&img);
        let without = FastDetector::new(FastParams {
            nonmax_suppression: false,
            ..FastParams::default()
        })
        .detect(&img);
        assert!(with.len() <= without.len());
        assert!(!with.is_empty());
    }

    #[test]
    fn op_counts_nonzero_and_dominated_by_reads() {
        let img = bright_square();
        let (_, counts) = FastDetector::new(FastParams::default()).detect_counted(&img);
        assert!(counts.count(Op::SramAccess) > 0);
        assert!(counts.count(Op::Compare8) > 0);
        assert!(counts.total() > 1000);
    }

    #[test]
    fn quick_reject_reduces_work_on_flat_images() {
        let flat = GrayImage::new(64, 64, 128);
        let busy = SceneBuilder::new(64, 64).checkerboard(4, 0, 255).build(0);
        let (_, flat_counts) = FastDetector::new(FastParams::default()).detect_counted(&flat);
        let (_, busy_counts) = FastDetector::new(FastParams::default()).detect_counted(&busy);
        assert!(
            flat_counts.total() < busy_counts.total(),
            "flat {} vs busy {}",
            flat_counts.total(),
            busy_counts.total()
        );
    }

    #[test]
    fn fast12_stricter_than_fast9() {
        let img = bright_square();
        let n9 = FastDetector::new(FastParams {
            n_contiguous: 9,
            nonmax_suppression: false,
            ..FastParams::default()
        })
        .detect(&img);
        let n12 = FastDetector::new(FastParams {
            n_contiguous: 12,
            nonmax_suppression: false,
            ..FastParams::default()
        })
        .detect(&img);
        assert!(n12.len() <= n9.len());
    }
}
