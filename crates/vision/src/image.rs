//! Grayscale image container and PGM I/O.
//!
//! 8-bit grayscale is all FAST needs. Pixels are stored row-major;
//! `(x, y)` indexing is column-then-row to match the computer-vision
//! convention.
//!
//! # Example
//!
//! ```
//! use vision::image::GrayImage;
//!
//! let mut img = GrayImage::new(4, 3, 0);
//! img.set(2, 1, 200)?;
//! assert_eq!(img.get(2, 1)?, 200);
//! assert_eq!(img.width(), 4);
//! # Ok::<(), vision::VisionError>(())
//! ```

use crate::VisionError;
use std::io::{BufRead, Write};

/// An 8-bit grayscale image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl GrayImage {
    /// Creates an image filled with `fill`.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    #[must_use]
    pub fn new(width: usize, height: usize, fill: u8) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        GrayImage {
            width,
            height,
            pixels: vec![fill; width * height],
        }
    }

    /// Builds an image from row-major pixel data.
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::BadGeometry`] when `pixels.len()` ≠
    /// `width · height` or a dimension is zero.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u8>) -> Result<Self, VisionError> {
        if width == 0 || height == 0 {
            return Err(VisionError::BadGeometry {
                what: "image dimensions must be nonzero".into(),
            });
        }
        if pixels.len() != width * height {
            return Err(VisionError::BadGeometry {
                what: format!(
                    "pixel buffer has {} bytes, expected {}",
                    pixels.len(),
                    width * height
                ),
            });
        }
        Ok(GrayImage {
            width,
            height,
            pixels,
        })
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The raw row-major pixel buffer.
    #[must_use]
    pub fn as_pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::BadGeometry`] out of bounds.
    pub fn get(&self, x: usize, y: usize) -> Result<u8, VisionError> {
        self.index(x, y).map(|i| self.pixels[i])
    }

    /// Pixel at `(x, y)` without bounds checking against a `Result`; callers
    /// that have already validated coordinates (hot loops) use this.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn at(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::BadGeometry`] out of bounds.
    pub fn set(&mut self, x: usize, y: usize, value: u8) -> Result<(), VisionError> {
        let i = self.index(x, y)?;
        self.pixels[i] = value;
        Ok(())
    }

    fn index(&self, x: usize, y: usize) -> Result<usize, VisionError> {
        if x >= self.width || y >= self.height {
            return Err(VisionError::BadGeometry {
                what: format!(
                    "pixel ({x}, {y}) outside {}x{} image",
                    self.width, self.height
                ),
            });
        }
        Ok(y * self.width + x)
    }

    /// Whether `(x, y)` lies at least `margin` pixels away from every edge
    /// (FAST needs a 3-pixel margin for its ring).
    #[must_use]
    pub fn in_interior(&self, x: usize, y: usize, margin: usize) -> bool {
        x >= margin && y >= margin && x + margin < self.width && y + margin < self.height
    }

    /// Mean pixel intensity.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.pixels.iter().map(|&p| p as f64).sum::<f64>() / self.pixels.len() as f64
    }

    /// Writes the image as binary PGM (P5).
    ///
    /// # Errors
    ///
    /// Returns [`VisionError::Io`] on write failure.
    pub fn write_pgm<W: Write>(&self, mut writer: W) -> Result<(), VisionError> {
        writeln!(writer, "P5\n{} {}\n255", self.width, self.height)?;
        writer.write_all(&self.pixels)?;
        Ok(())
    }

    /// Reads a binary PGM (P5) image.
    ///
    /// # Errors
    ///
    /// * [`VisionError::Pgm`] on malformed headers or unsupported maxval.
    /// * [`VisionError::Io`] on read failure.
    pub fn read_pgm<R: BufRead>(mut reader: R) -> Result<Self, VisionError> {
        let mut header = Vec::new();
        // Read header tokens: magic, width, height, maxval — skipping
        // comments — then a single whitespace byte before the raster.
        let mut tokens: Vec<String> = Vec::new();
        let mut buf = [0u8; 1];
        let mut token = String::new();
        let mut in_comment = false;
        while tokens.len() < 4 {
            let n = std::io::Read::read(&mut reader, &mut buf)?;
            if n == 0 {
                return Err(VisionError::Pgm {
                    what: "unexpected end of header".into(),
                });
            }
            header.push(buf[0]);
            let c = buf[0] as char;
            if in_comment {
                if c == '\n' {
                    in_comment = false;
                }
                continue;
            }
            if c == '#' {
                in_comment = true;
                continue;
            }
            if c.is_whitespace() {
                if !token.is_empty() {
                    tokens.push(std::mem::take(&mut token));
                }
            } else {
                token.push(c);
            }
        }
        if tokens[0] != "P5" {
            return Err(VisionError::Pgm {
                what: format!("unsupported magic `{}`", tokens[0]),
            });
        }
        let parse = |s: &str| -> Result<usize, VisionError> {
            s.parse().map_err(|_| VisionError::Pgm {
                what: format!("bad header number `{s}`"),
            })
        };
        let width = parse(&tokens[1])?;
        let height = parse(&tokens[2])?;
        let maxval = parse(&tokens[3])?;
        if maxval != 255 {
            return Err(VisionError::Pgm {
                what: format!("unsupported maxval {maxval}"),
            });
        }
        let mut pixels = vec![0u8; width * height];
        std::io::Read::read_exact(&mut reader, &mut pixels).map_err(|e| VisionError::Pgm {
            what: format!("raster truncated: {e}"),
        })?;
        GrayImage::from_pixels(width, height, pixels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = GrayImage::new(5, 4, 7);
        assert_eq!(img.width(), 5);
        assert_eq!(img.height(), 4);
        assert_eq!(img.get(4, 3).unwrap(), 7);
        img.set(0, 0, 255).unwrap();
        assert_eq!(img.at(0, 0), 255);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut img = GrayImage::new(3, 3, 0);
        assert!(img.get(3, 0).is_err());
        assert!(img.get(0, 3).is_err());
        assert!(img.set(9, 9, 1).is_err());
    }

    #[test]
    fn from_pixels_validates_length() {
        assert!(GrayImage::from_pixels(2, 2, vec![0; 3]).is_err());
        assert!(GrayImage::from_pixels(2, 2, vec![0; 4]).is_ok());
        assert!(GrayImage::from_pixels(0, 2, vec![]).is_err());
    }

    #[test]
    fn interior_margin() {
        let img = GrayImage::new(10, 10, 0);
        assert!(img.in_interior(3, 3, 3));
        assert!(img.in_interior(6, 6, 3));
        assert!(!img.in_interior(2, 5, 3));
        assert!(!img.in_interior(5, 7, 3));
    }

    #[test]
    fn mean_intensity() {
        let img = GrayImage::from_pixels(2, 1, vec![0, 100]).unwrap();
        assert_eq!(img.mean(), 50.0);
    }

    #[test]
    fn pgm_roundtrip() {
        let img = GrayImage::from_pixels(3, 2, vec![0, 50, 100, 150, 200, 250]).unwrap();
        let mut buf = Vec::new();
        img.write_pgm(&mut buf).unwrap();
        let back = GrayImage::read_pgm(&buf[..]).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn pgm_with_comment() {
        let mut data = b"P5\n# a comment line\n2 1\n255\n".to_vec();
        data.extend_from_slice(&[10, 20]);
        let img = GrayImage::read_pgm(&data[..]).unwrap();
        assert_eq!(img.as_pixels(), &[10, 20]);
    }

    #[test]
    fn pgm_rejects_bad_magic() {
        let data = b"P2\n2 1\n255\n10 20".to_vec();
        assert!(GrayImage::read_pgm(&data[..]).is_err());
    }

    #[test]
    fn pgm_rejects_truncated_raster() {
        let mut data = b"P5\n4 4\n255\n".to_vec();
        data.extend_from_slice(&[1, 2, 3]);
        assert!(GrayImage::read_pgm(&data[..]).is_err());
    }

    #[test]
    #[should_panic(expected = "dimensions must be nonzero")]
    fn zero_dimension_panics() {
        let _ = GrayImage::new(0, 5, 0);
    }
}
