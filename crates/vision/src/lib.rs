//! Computer-vision workload for the coupled-oscillator computing model
//! (paper §III-B, Fig. 6).
//!
//! The paper demonstrates its oscillator distance-norm primitive on FAST
//! corner detection. This crate provides the complete workload:
//!
//! * [`image`] — a grayscale image container with PGM I/O;
//! * [`synth`] — deterministic synthetic scenes (rectangles, polygons,
//!   checkerboards, gradients, noise) so no external dataset is needed;
//! * [`bresenham`] — the radius-3 Bresenham circle of 16 pixels that FAST
//!   compares against;
//! * [`fast`] — the baseline software FAST-N segment-test detector
//!   (Rosten & Drummond, ECCV 2006 — the paper's ref. \[45\]);
//! * [`osc_fast`] — the oscillator-norm FAST pipeline of Fig. 6: pixel
//!   intensities are encoded as gate voltages, each ring comparison is an
//!   oscillator-pair distance, and a second comparison pass rejects false
//!   positives (the "two comparison steps" the paper describes);
//! * [`metrics`] — corner-set precision/recall/F1 against a reference;
//! * [`energy`] — per-frame energy and power of both implementations,
//!   reproducing the 0.936 mW vs 3 mW comparison.
//!
//! # Example
//!
//! ```
//! use vision::synth::SceneBuilder;
//! use vision::fast::{FastDetector, FastParams};
//!
//! let img = SceneBuilder::new(32, 32).rectangle(8, 8, 16, 16, 200).build(0);
//! let detector = FastDetector::new(FastParams::default());
//! let corners = detector.detect(&img);
//! assert!(!corners.is_empty(), "a bright rectangle has corners");
//! ```

// Deliberate style choices for numerical simulation code: `!(x > 0.0)`
// rejects NaN alongside non-positive values, and indexed loops mirror the
// mathematics they implement (state-vector strides, lattice walks).
#![allow(
    clippy::neg_cmp_op_on_partial_ord,
    clippy::needless_range_loop,
    clippy::manual_is_multiple_of,
    clippy::field_reassign_with_default
)]
pub mod bresenham;
pub mod energy;
pub mod fast;
pub mod image;
pub mod metrics;
pub mod osc_fast;
pub mod synth;

/// Crate-wide error type.
#[derive(Debug)]
pub enum VisionError {
    /// Image dimensions or coordinates were invalid.
    BadGeometry {
        /// Human-readable description.
        what: String,
    },
    /// A PGM file could not be parsed or written.
    Pgm {
        /// Human-readable description.
        what: String,
    },
    /// An oscillator-fabric operation failed.
    Osc(osc::OscError),
    /// An I/O failure during image read/write.
    Io(std::io::Error),
}

impl std::fmt::Display for VisionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VisionError::BadGeometry { what } => write!(f, "bad geometry: {what}"),
            VisionError::Pgm { what } => write!(f, "pgm format error: {what}"),
            VisionError::Osc(e) => write!(f, "oscillator error: {e}"),
            VisionError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for VisionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VisionError::Osc(e) => Some(e),
            VisionError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<osc::OscError> for VisionError {
    fn from(e: osc::OscError) -> Self {
        VisionError::Osc(e)
    }
}

impl From<std::io::Error> for VisionError {
    fn from(e: std::io::Error) -> Self {
        VisionError::Io(e)
    }
}

/// A detected corner: image coordinates plus the detector's score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Column (x) coordinate.
    pub x: usize,
    /// Row (y) coordinate.
    pub y: usize,
    /// Detector-specific strength score (higher = stronger corner).
    pub score: f64,
}

impl Corner {
    /// Chebyshev distance to another corner (used for match tolerance).
    #[must_use]
    pub fn chebyshev(&self, other: &Corner) -> usize {
        self.x.abs_diff(other.x).max(self.y.abs_diff(other.y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_chebyshev() {
        let a = Corner {
            x: 3,
            y: 7,
            score: 1.0,
        };
        let b = Corner {
            x: 6,
            y: 5,
            score: 1.0,
        };
        assert_eq!(a.chebyshev(&b), 3);
        assert_eq!(a.chebyshev(&a), 0);
    }

    #[test]
    fn error_display_nonempty() {
        let e = VisionError::BadGeometry {
            what: "x out of range".into(),
        };
        assert!(e.to_string().contains("x out of range"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VisionError>();
    }
}
