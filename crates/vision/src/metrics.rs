//! Corner-set agreement metrics.
//!
//! The corner-detection experiments compare detector outputs against either
//! synthetic ground truth or the digital baseline. Matching is greedy
//! one-to-one within a Chebyshev pixel tolerance.
//!
//! # Example
//!
//! ```
//! use vision::Corner;
//! use vision::metrics::match_corners;
//!
//! let truth = vec![Corner { x: 10, y: 10, score: 1.0 }];
//! let found = vec![Corner { x: 11, y: 10, score: 1.0 }];
//! let m = match_corners(&truth, &found, 2);
//! assert_eq!(m.true_positives, 1);
//! assert_eq!(m.f1(), 1.0);
//! ```

use crate::Corner;

/// Outcome of matching a detected corner set against a reference set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchResult {
    /// Detections matched to a reference corner.
    pub true_positives: usize,
    /// Detections with no reference match.
    pub false_positives: usize,
    /// Reference corners with no detection.
    pub false_negatives: usize,
}

impl MatchResult {
    /// Precision `TP / (TP + FP)`; 1 when nothing was detected and nothing
    /// was expected.
    #[must_use]
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            return if self.false_negatives == 0 { 1.0 } else { 0.0 };
        }
        self.true_positives as f64 / denom as f64
    }

    /// Recall `TP / (TP + FN)`; 1 when the reference set is empty and
    /// nothing was detected.
    #[must_use]
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            return if self.false_positives == 0 { 1.0 } else { 0.0 };
        }
        self.true_positives as f64 / denom as f64
    }

    /// F1 score (harmonic mean of precision and recall).
    #[must_use]
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl std::fmt::Display for MatchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tp={} fp={} fn={} precision={:.3} recall={:.3} f1={:.3}",
            self.true_positives,
            self.false_positives,
            self.false_negatives,
            self.precision(),
            self.recall(),
            self.f1()
        )
    }
}

/// Greedy one-to-one matching of `detected` against `reference` within a
/// Chebyshev `tolerance` (pixels). Each reference corner can absorb at most
/// one detection; detections are matched in order of increasing distance.
#[must_use]
pub fn match_corners(reference: &[Corner], detected: &[Corner], tolerance: usize) -> MatchResult {
    // Build all candidate (distance, ref_idx, det_idx) pairs within
    // tolerance, then greedily take the closest pairs first.
    let mut candidates: Vec<(usize, usize, usize)> = Vec::new();
    for (ri, r) in reference.iter().enumerate() {
        for (di, d) in detected.iter().enumerate() {
            let dist = r.chebyshev(d);
            if dist <= tolerance {
                candidates.push((dist, ri, di));
            }
        }
    }
    candidates.sort_unstable();
    let mut ref_used = vec![false; reference.len()];
    let mut det_used = vec![false; detected.len()];
    let mut tp = 0usize;
    for (_, ri, di) in candidates {
        if !ref_used[ri] && !det_used[di] {
            ref_used[ri] = true;
            det_used[di] = true;
            tp += 1;
        }
    }
    MatchResult {
        true_positives: tp,
        false_positives: detected.len() - tp,
        false_negatives: reference.len() - tp,
    }
}

/// Convenience: matches detections against bare `(x, y)` ground-truth
/// positions (as produced by [`crate::synth::SceneBuilder::ground_truth_corners`]).
#[must_use]
pub fn match_against_ground_truth(
    ground_truth: &[(usize, usize)],
    detected: &[Corner],
    tolerance: usize,
) -> MatchResult {
    let reference: Vec<Corner> = ground_truth
        .iter()
        .map(|&(x, y)| Corner { x, y, score: 0.0 })
        .collect();
    match_corners(&reference, detected, tolerance)
}

/// Detector repeatability across renders of the same scene (e.g. different
/// noise seeds): the mean pairwise F1 between the detection sets. 1 means
/// perfectly stable detections; falls toward 0 as noise destabilizes them.
///
/// Returns 1 for fewer than two detection sets.
#[must_use]
pub fn repeatability(detections: &[Vec<Corner>], tolerance: usize) -> f64 {
    if detections.len() < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..detections.len() {
        for j in i + 1..detections.len() {
            total += match_corners(&detections[i], &detections[j], tolerance).f1();
            pairs += 1;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: usize, y: usize) -> Corner {
        Corner { x, y, score: 0.0 }
    }

    #[test]
    fn exact_match() {
        let m = match_corners(&[c(5, 5)], &[c(5, 5)], 0);
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
    }

    #[test]
    fn tolerance_allows_offsets() {
        let m = match_corners(&[c(5, 5)], &[c(7, 5)], 2);
        assert_eq!(m.true_positives, 1);
        let strict = match_corners(&[c(5, 5)], &[c(7, 5)], 1);
        assert_eq!(strict.true_positives, 0);
        assert_eq!(strict.false_positives, 1);
        assert_eq!(strict.false_negatives, 1);
    }

    #[test]
    fn one_to_one_matching() {
        // Two detections near one reference: only one may match.
        let m = match_corners(&[c(5, 5)], &[c(5, 5), c(6, 5)], 2);
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.false_positives, 1);
    }

    #[test]
    fn greedy_prefers_closest() {
        // ref A at (0,0), ref B at (4,0); detection at (1,0) must match A
        // even though it is also within tolerance of B.
        let m = match_corners(&[c(0, 0), c(4, 0)], &[c(1, 0), c(4, 0)], 3);
        assert_eq!(m.true_positives, 2);
    }

    #[test]
    fn empty_sets() {
        let m = match_corners(&[], &[], 1);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        let missed = match_corners(&[c(1, 1)], &[], 1);
        assert_eq!(missed.recall(), 0.0);
        assert_eq!(missed.precision(), 0.0);
        let spurious = match_corners(&[], &[c(1, 1)], 1);
        assert_eq!(spurious.precision(), 0.0);
        assert_eq!(spurious.recall(), 0.0);
    }

    #[test]
    fn f1_harmonic_mean() {
        let m = MatchResult {
            true_positives: 1,
            false_positives: 1,
            false_negatives: 0,
        };
        // precision 0.5, recall 1 → f1 = 2/3.
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ground_truth_helper() {
        let m = match_against_ground_truth(&[(3, 3)], &[c(4, 3)], 1);
        assert_eq!(m.true_positives, 1);
    }

    #[test]
    fn repeatability_bounds() {
        // Identical sets → 1.
        let sets = vec![vec![c(3, 3), c(8, 8)], vec![c(3, 3), c(8, 8)]];
        assert_eq!(repeatability(&sets, 1), 1.0);
        // Disjoint sets → 0.
        let sets = vec![vec![c(1, 1)], vec![c(20, 20)]];
        assert_eq!(repeatability(&sets, 1), 0.0);
        // Single set → trivially 1.
        assert_eq!(repeatability(&[vec![c(1, 1)]], 1), 1.0);
    }

    #[test]
    fn repeatability_on_noisy_scene_detections() {
        use crate::fast::{FastDetector, FastParams};
        use crate::synth::SceneBuilder;
        let builder = SceneBuilder::new(32, 32)
            .background(20)
            .rectangle(10, 10, 12, 12, 220)
            .noise_sigma(3.0);
        let detector = FastDetector::new(FastParams::default());
        let detections: Vec<Vec<Corner>> = (0..4u64)
            .map(|seed| detector.detect(&builder.build(seed)))
            .collect();
        let r = repeatability(&detections, 2);
        assert!(r > 0.5, "repeatability {r} too low for mild noise");
    }

    #[test]
    fn display_contains_scores() {
        let m = MatchResult {
            true_positives: 2,
            false_positives: 1,
            false_negatives: 1,
        };
        let s = m.to_string();
        assert!(s.contains("tp=2"));
        assert!(s.contains("f1="));
    }
}
