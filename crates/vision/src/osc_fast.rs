//! Oscillator-norm FAST: the Fig. 6 pipeline.
//!
//! The paper's two-step dataflow:
//!
//! 1. **Ring comparison** — the pixel under test is compared with its 16
//!    ring pixels; intensities are "fed as voltages to the coupled
//!    oscillator distance metric computation primitive", and the XOR
//!    measure is checked against a threshold to flag differing pixels. A
//!    corner candidate needs `N` contiguous flagged pixels.
//! 2. **False-positive rejection** — because the oscillator distance is
//!    unsigned ("the direction of the difference … is not known"), a run of
//!    flagged pixels could mix brighter and darker neighbours. The paper's
//!    fix: "we compare the adjacent pixels in the result set with each
//!    other … if any of the difference values are greater than two times
//!    the threshold, then we can classify the result set as a false
//!    positive."
//!
//! The detector uses a calibrated [`osc::norms::OscillatorDistance`] — the
//! physical transfer curve measured once from the coupled-pair simulator —
//! and counts every oscillator comparison so [`crate::energy`] can cost the
//! block exactly.
//!
//! # Example
//!
//! ```no_run
//! use osc::norms::{NormRegime, OscillatorDistance};
//! use vision::osc_fast::{OscFastDetector, OscFastParams};
//! use vision::synth::SceneBuilder;
//!
//! let dist = OscillatorDistance::calibrate(NormRegime::Shallow.config(), 0.62, 0.02, 9)?;
//! let detector = OscFastDetector::new(dist, OscFastParams::default());
//! let img = SceneBuilder::new(32, 32).rectangle(8, 8, 12, 12, 220).build(0);
//! let outcome = detector.detect(&img);
//! assert!(outcome.comparisons > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::bresenham::{ring_coords, RING_RADIUS, RING_SIZE};
use crate::image::GrayImage;
use crate::Corner;
use osc::norms::OscillatorDistance;

/// Parameters of the oscillator FAST pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OscFastParams {
    /// Required contiguous run length (FAST-N).
    pub n_contiguous: usize,
    /// Intensity threshold `t` on the 0–255 scale; converted to a measure
    /// threshold through the calibrated transfer curve.
    pub threshold: u8,
    /// Whether to run the step-2 false-positive rejection.
    pub reject_false_positives: bool,
    /// Whether to run the 4-pixel quick-reject pre-test (saves oscillator
    /// comparisons exactly like the digital high-speed test).
    pub quick_reject: bool,
}

impl Default for OscFastParams {
    fn default() -> Self {
        OscFastParams {
            n_contiguous: 9,
            threshold: 25,
            reject_false_positives: true,
            quick_reject: true,
        }
    }
}

/// Result of an oscillator-FAST detection pass.
#[derive(Debug, Clone, PartialEq)]
pub struct OscFastOutcome {
    /// Detected corners.
    pub corners: Vec<Corner>,
    /// Total oscillator-pair comparisons performed (the energy unit of the
    /// analog block).
    pub comparisons: u64,
    /// Candidates removed by the step-2 false-positive rejection.
    pub rejected_false_positives: u64,
}

/// The oscillator-norm FAST detector.
#[derive(Debug, Clone, PartialEq)]
pub struct OscFastDetector {
    distance: OscillatorDistance,
    params: OscFastParams,
    measure_threshold: f64,
    measure_threshold_2x: f64,
}

impl OscFastDetector {
    /// Creates a detector around a calibrated distance primitive.
    ///
    /// The intensity threshold `t` maps to a measure threshold by evaluating
    /// the calibrated curve at normalized separation `t/255` (and `2t/255`
    /// for the rejection test) — i.e. the thresholds are set in the same
    /// units the analog hardware actually outputs.
    #[must_use]
    pub fn new(distance: OscillatorDistance, params: OscFastParams) -> Self {
        let t_norm = params.threshold as f64 / 255.0;
        let measure_threshold = distance.distance(0.0, t_norm);
        let measure_threshold_2x = distance.distance(0.0, (2.0 * t_norm).min(1.0));
        OscFastDetector {
            distance,
            params,
            measure_threshold,
            measure_threshold_2x,
        }
    }

    /// The parameters.
    #[must_use]
    pub fn params(&self) -> &OscFastParams {
        &self.params
    }

    /// The measure threshold corresponding to the intensity threshold.
    #[must_use]
    pub fn measure_threshold(&self) -> f64 {
        self.measure_threshold
    }

    /// Runs the two-step pipeline over the image.
    #[must_use]
    pub fn detect(&self, img: &GrayImage) -> OscFastOutcome {
        let mut comparisons = 0u64;
        let mut rejected = 0u64;
        let mut raw = Vec::new();
        for y in 0..img.height() {
            for x in 0..img.width() {
                if !img.in_interior(x, y, RING_RADIUS) {
                    continue;
                }
                match self.test_pixel(img, x, y, &mut comparisons) {
                    PixelOutcome::Corner(score) => raw.push(Corner { x, y, score }),
                    PixelOutcome::FalsePositive => rejected += 1,
                    PixelOutcome::NotCorner => {}
                }
            }
        }
        // Same 3×3 non-max suppression as the digital baseline (done in the
        // digital periphery of the block).
        let corners = nonmax(&raw);
        OscFastOutcome {
            corners,
            comparisons,
            rejected_false_positives: rejected,
        }
    }

    fn norm(v: u8) -> f64 {
        v as f64 / 255.0
    }

    fn test_pixel(
        &self,
        img: &GrayImage,
        x: usize,
        y: usize,
        comparisons: &mut u64,
    ) -> PixelOutcome {
        let p = Self::norm(img.at(x, y));
        let ring = ring_coords(x, y);

        // Step 0 (optional): quick reject on the 4 compass pixels. A run of
        // N ≥ 12 contiguous ring pixels covers at least 3 compass points;
        // N ≥ 9 covers at least 2.
        if self.params.quick_reject && self.params.n_contiguous >= 9 {
            let required = if self.params.n_contiguous >= 12 { 3 } else { 2 };
            let mut differs = 0;
            for &i in &[0usize, 4, 8, 12] {
                let (rx, ry) = ring[i];
                *comparisons += 1;
                if self.distance.distance(p, Self::norm(img.at(rx, ry))) > self.measure_threshold {
                    differs += 1;
                }
            }
            if differs < required {
                return PixelOutcome::NotCorner;
            }
        }

        // Step 1: 16 unsigned oscillator comparisons against the centre.
        let mut flags = [false; RING_SIZE];
        let mut score = 0.0;
        for (i, &(rx, ry)) in ring.iter().enumerate() {
            *comparisons += 1;
            let d = self.distance.distance(p, Self::norm(img.at(rx, ry)));
            if d > self.measure_threshold {
                flags[i] = true;
                score += d - self.measure_threshold;
            }
        }
        let Some(run) = longest_run(&flags) else {
            return PixelOutcome::NotCorner;
        };
        if run.len < self.params.n_contiguous {
            return PixelOutcome::NotCorner;
        }

        // Step 2: adjacent-pixel similarity check inside the result set.
        if self.params.reject_false_positives {
            for k in 0..run.len - 1 {
                let i = (run.start + k) % RING_SIZE;
                let j = (run.start + k + 1) % RING_SIZE;
                let (xi, yi) = ring[i];
                let (xj, yj) = ring[j];
                *comparisons += 1;
                let d = self
                    .distance
                    .distance(Self::norm(img.at(xi, yi)), Self::norm(img.at(xj, yj)));
                if d > self.measure_threshold_2x {
                    return PixelOutcome::FalsePositive;
                }
            }
        }
        PixelOutcome::Corner(score)
    }
}

enum PixelOutcome {
    Corner(f64),
    FalsePositive,
    NotCorner,
}

struct Run {
    start: usize,
    len: usize,
}

/// Longest circular run of `true` flags.
fn longest_run(flags: &[bool; RING_SIZE]) -> Option<Run> {
    let mut best: Option<Run> = None;
    let mut current_start = 0usize;
    let mut current_len = 0usize;
    for i in 0..2 * RING_SIZE {
        if flags[i % RING_SIZE] {
            if current_len == 0 {
                current_start = i % RING_SIZE;
            }
            current_len += 1;
            let capped = current_len.min(RING_SIZE);
            if best.as_ref().is_none_or(|b| capped > b.len) {
                best = Some(Run {
                    start: current_start,
                    len: capped,
                });
            }
        } else {
            current_len = 0;
        }
    }
    best
}

fn nonmax(corners: &[Corner]) -> Vec<Corner> {
    use std::collections::HashMap;
    let by_pos: HashMap<(usize, usize), f64> =
        corners.iter().map(|c| ((c.x, c.y), c.score)).collect();
    corners
        .iter()
        .filter(|c| {
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let nx = c.x as i32 + dx;
                    let ny = c.y as i32 + dy;
                    if nx < 0 || ny < 0 {
                        continue;
                    }
                    if let Some(&s) = by_pos.get(&(nx as usize, ny as usize)) {
                        let earlier = (ny as usize, nx as usize) < (c.y, c.x);
                        if s > c.score || (s == c.score && earlier) {
                            return false;
                        }
                    }
                }
            }
            true
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast::{FastDetector, FastParams};
    use crate::metrics::match_corners;
    use crate::synth::SceneBuilder;
    use device::units::Seconds;
    use osc::norms::NormRegime;

    fn quick_distance() -> OscillatorDistance {
        let mut cfg = NormRegime::Shallow.config();
        cfg.sim.duration = Seconds(2e-6);
        OscillatorDistance::calibrate(cfg, 0.62, 0.02, 7).expect("calibration")
    }

    fn scene() -> GrayImage {
        SceneBuilder::new(32, 32)
            .background(20)
            .rectangle(10, 10, 12, 12, 220)
            .build(0)
    }

    #[test]
    fn detects_square_corners_like_digital_fast() {
        let img = scene();
        let osc_out = OscFastDetector::new(quick_distance(), OscFastParams::default()).detect(&img);
        let digital = FastDetector::new(FastParams::default()).detect(&img);
        assert!(!osc_out.corners.is_empty(), "oscillator FAST found nothing");
        let m = match_corners(&digital, &osc_out.corners, 2);
        assert!(
            m.f1() > 0.6,
            "agreement too low: f1 {} (digital {}, osc {})",
            m.f1(),
            digital.len(),
            osc_out.corners.len()
        );
    }

    #[test]
    fn uniform_image_no_corners_few_comparisons() {
        let img = GrayImage::new(32, 32, 128);
        let out = OscFastDetector::new(quick_distance(), OscFastParams::default()).detect(&img);
        assert!(out.corners.is_empty());
        // Quick reject: 4 comparisons per interior pixel only.
        let interior = (32 - 6) * (32 - 6);
        assert_eq!(out.comparisons, 4 * interior as u64);
    }

    #[test]
    fn quick_reject_saves_comparisons() {
        let img = scene();
        let with = OscFastDetector::new(quick_distance(), OscFastParams::default()).detect(&img);
        let without = OscFastDetector::new(
            quick_distance(),
            OscFastParams {
                quick_reject: false,
                ..OscFastParams::default()
            },
        )
        .detect(&img);
        assert!(with.comparisons < without.comparisons);
    }

    #[test]
    fn false_positive_rejection_kills_mixed_runs() {
        // A one-pixel-wide bright line through the centre: ring pixels along
        // the line are similar to the centre, the rest differ — giving long
        // unsigned runs that mix "brighter background" on both sides at line
        // ends. A dot (single bright pixel) is the cleanest mixed case: all
        // 16 ring pixels differ from the centre in the same direction, so it
        // survives; instead use a line END against contrasting halves.
        let mut img = GrayImage::new(16, 16, 20);
        // Left half bright, right half dark, centre pixel mid-gray: every
        // ring pixel differs from the centre, but adjacent ring pixels
        // straddle the bright/dark boundary → step 2 must reject.
        for y in 0..16 {
            for x in 0..8 {
                img.set(x, y, 250).unwrap();
            }
        }
        img.set(8, 8, 128).unwrap();
        let detector = OscFastDetector::new(quick_distance(), OscFastParams::default());
        let out = detector.detect(&img);
        assert!(
            out.rejected_false_positives > 0,
            "step 2 never fired: {out:?}"
        );
        assert!(
            !out.corners.iter().any(|c| c.x == 8 && c.y == 8),
            "mixed-direction pixel survived"
        );
    }

    #[test]
    fn measure_threshold_positive_and_below_2x() {
        let det = OscFastDetector::new(quick_distance(), OscFastParams::default());
        assert!(det.measure_threshold() > 0.0);
        assert!(det.measure_threshold_2x >= det.measure_threshold());
    }

    #[test]
    fn longest_run_wraps() {
        let mut flags = [false; RING_SIZE];
        for f in flags.iter_mut().take(4) {
            *f = true;
        }
        for f in flags.iter_mut().skip(RING_SIZE - 3) {
            *f = true;
        }
        let run = longest_run(&flags).unwrap();
        assert_eq!(run.len, 7);
        assert_eq!(run.start, RING_SIZE - 3);
    }

    #[test]
    fn longest_run_none_when_empty() {
        let flags = [false; RING_SIZE];
        assert!(longest_run(&flags).is_none());
    }
}
