//! Deterministic synthetic scenes.
//!
//! The environment has no image datasets, so the corner-detection
//! experiments run on generated scenes with *known* corner locations:
//! axis-aligned rectangles, checkerboards, triangles, gradients, and seeded
//! Gaussian pixel noise. [`SceneBuilder`] composes primitives; the ground
//! truth corner list comes from the rectangle/triangle vertices.
//!
//! # Example
//!
//! ```
//! use vision::synth::SceneBuilder;
//!
//! let img = SceneBuilder::new(64, 64)
//!     .background(30)
//!     .rectangle(10, 10, 20, 15, 220)
//!     .noise_sigma(2.0)
//!     .build(42);
//! assert_eq!(img.width(), 64);
//! ```

use crate::image::GrayImage;
use numerics::rng::{rng_from_seed, sample_gaussian};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Shape {
    Rectangle {
        x: usize,
        y: usize,
        w: usize,
        h: usize,
        value: u8,
    },
    Triangle {
        // Axis-aligned right triangle with the right angle at (x, y).
        x: usize,
        y: usize,
        size: usize,
        value: u8,
    },
    Checkerboard {
        cell: usize,
        dark: u8,
        light: u8,
    },
    GradientX {
        from: u8,
        to: u8,
    },
}

/// Composable synthetic-scene builder.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneBuilder {
    width: usize,
    height: usize,
    background: u8,
    noise_sigma: f64,
    shapes: Vec<Shape>,
}

impl SceneBuilder {
    /// Starts a scene of the given size with a dark background.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "scene dimensions must be nonzero");
        SceneBuilder {
            width,
            height,
            background: 20,
            noise_sigma: 0.0,
            shapes: Vec::new(),
        }
    }

    /// Sets the background intensity.
    #[must_use]
    pub fn background(mut self, value: u8) -> Self {
        self.background = value;
        self
    }

    /// Adds a filled axis-aligned rectangle (clipped to the image).
    #[must_use]
    pub fn rectangle(mut self, x: usize, y: usize, w: usize, h: usize, value: u8) -> Self {
        self.shapes.push(Shape::Rectangle { x, y, w, h, value });
        self
    }

    /// Adds a filled axis-aligned right triangle with legs of `size` pixels
    /// and the right angle at `(x, y)` (clipped to the image).
    #[must_use]
    pub fn triangle(mut self, x: usize, y: usize, size: usize, value: u8) -> Self {
        self.shapes.push(Shape::Triangle { x, y, size, value });
        self
    }

    /// Fills the whole scene with a checkerboard (applied before later
    /// shapes).
    #[must_use]
    pub fn checkerboard(mut self, cell: usize, dark: u8, light: u8) -> Self {
        self.shapes.push(Shape::Checkerboard {
            cell: cell.max(1),
            dark,
            light,
        });
        self
    }

    /// Fills the scene with a horizontal linear gradient.
    #[must_use]
    pub fn gradient_x(mut self, from: u8, to: u8) -> Self {
        self.shapes.push(Shape::GradientX { from, to });
        self
    }

    /// Adds zero-mean Gaussian pixel noise with the given σ at build time.
    #[must_use]
    pub fn noise_sigma(mut self, sigma: f64) -> Self {
        self.noise_sigma = sigma.max(0.0);
        self
    }

    /// Ground-truth corner locations of the composed shapes: rectangle
    /// vertices and triangle vertices that lie inside the image interior
    /// (3-pixel margin, where FAST can respond).
    #[must_use]
    pub fn ground_truth_corners(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let interior =
            |x: usize, y: usize| x >= 3 && y >= 3 && x + 3 < self.width && y + 3 < self.height;
        for shape in &self.shapes {
            match *shape {
                Shape::Rectangle { x, y, w, h, .. } => {
                    if w == 0 || h == 0 {
                        continue;
                    }
                    let x1 = (x + w - 1).min(self.width - 1);
                    let y1 = (y + h - 1).min(self.height - 1);
                    for &(cx, cy) in &[(x, y), (x1, y), (x, y1), (x1, y1)] {
                        if interior(cx, cy) {
                            out.push((cx, cy));
                        }
                    }
                }
                Shape::Triangle { x, y, size, .. } => {
                    if size == 0 {
                        continue;
                    }
                    let xe = (x + size - 1).min(self.width - 1);
                    let ye = (y + size - 1).min(self.height - 1);
                    for &(cx, cy) in &[(x, y), (xe, y), (x, ye)] {
                        if interior(cx, cy) {
                            out.push((cx, cy));
                        }
                    }
                }
                Shape::Checkerboard { .. } | Shape::GradientX { .. } => {}
            }
        }
        out
    }

    /// Renders the scene deterministically for a noise seed.
    #[must_use]
    pub fn build(&self, seed: u64) -> GrayImage {
        let mut img = GrayImage::new(self.width, self.height, self.background);
        for shape in &self.shapes {
            match *shape {
                Shape::Rectangle { x, y, w, h, value } => {
                    for yy in y..(y + h).min(self.height) {
                        for xx in x..(x + w).min(self.width) {
                            img.set(xx, yy, value).expect("clipped coords");
                        }
                    }
                }
                Shape::Triangle { x, y, size, value } => {
                    for dy in 0..size {
                        let yy = y + dy;
                        if yy >= self.height {
                            break;
                        }
                        // Row dy spans size − dy pixels from the left leg.
                        for dx in 0..(size - dy) {
                            let xx = x + dx;
                            if xx >= self.width {
                                break;
                            }
                            img.set(xx, yy, value).expect("clipped coords");
                        }
                    }
                }
                Shape::Checkerboard { cell, dark, light } => {
                    for yy in 0..self.height {
                        for xx in 0..self.width {
                            let parity = (xx / cell + yy / cell) % 2;
                            let v = if parity == 0 { dark } else { light };
                            img.set(xx, yy, v).expect("in range");
                        }
                    }
                }
                Shape::GradientX { from, to } => {
                    for xx in 0..self.width {
                        let t = xx as f64 / (self.width - 1).max(1) as f64;
                        let v = from as f64 + (to as f64 - from as f64) * t;
                        for yy in 0..self.height {
                            img.set(xx, yy, v.round() as u8).expect("in range");
                        }
                    }
                }
            }
        }
        if self.noise_sigma > 0.0 {
            let mut rng = rng_from_seed(seed);
            for yy in 0..self.height {
                for xx in 0..self.width {
                    let v = img.at(xx, yy) as f64;
                    let noisy = sample_gaussian(&mut rng, v, self.noise_sigma);
                    img.set(xx, yy, noisy.clamp(0.0, 255.0).round() as u8)
                        .expect("in range");
                }
            }
        }
        img
    }
}

/// The standard benchmark scene used across the corner-detection
/// experiments: two rectangles and a triangle on a dark background.
#[must_use]
pub fn benchmark_scene(size: usize) -> SceneBuilder {
    let s = size.max(32);
    SceneBuilder::new(s, s)
        .background(30)
        .rectangle(s / 8, s / 8, s / 4, s / 5, 210)
        .rectangle(s / 2, s / 3, s / 3, s / 4, 140)
        .triangle(s / 6, (2 * s) / 3, s / 5, 230)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangle_rendered() {
        let img = SceneBuilder::new(16, 16)
            .background(10)
            .rectangle(4, 4, 4, 4, 200)
            .build(0);
        assert_eq!(img.at(5, 5), 200);
        assert_eq!(img.at(0, 0), 10);
        assert_eq!(img.at(8, 8), 10);
    }

    #[test]
    fn rectangle_clips_at_border() {
        let img = SceneBuilder::new(8, 8).rectangle(6, 6, 10, 10, 99).build(0);
        assert_eq!(img.at(7, 7), 99);
    }

    #[test]
    fn triangle_shape() {
        let img = SceneBuilder::new(16, 16)
            .background(0)
            .triangle(2, 2, 6, 100)
            .build(0);
        assert_eq!(img.at(2, 2), 100); // right-angle vertex
        assert_eq!(img.at(7, 2), 100); // end of the top row
        assert_eq!(img.at(2, 7), 100); // bottom of the left leg
        assert_eq!(img.at(7, 7), 0); // hypotenuse side empty
    }

    #[test]
    fn checkerboard_pattern() {
        let img = SceneBuilder::new(8, 8).checkerboard(2, 0, 255).build(0);
        assert_eq!(img.at(0, 0), 0);
        assert_eq!(img.at(2, 0), 255);
        assert_eq!(img.at(0, 2), 255);
        assert_eq!(img.at(2, 2), 0);
    }

    #[test]
    fn gradient_monotone() {
        let img = SceneBuilder::new(32, 4).gradient_x(0, 255).build(0);
        assert_eq!(img.at(0, 0), 0);
        assert_eq!(img.at(31, 0), 255);
        for x in 1..32 {
            assert!(img.at(x, 2) >= img.at(x - 1, 2));
        }
    }

    #[test]
    fn noise_deterministic_per_seed() {
        let builder = SceneBuilder::new(16, 16).background(128).noise_sigma(5.0);
        assert_eq!(builder.build(7), builder.build(7));
        assert_ne!(builder.build(7), builder.build(8));
    }

    #[test]
    fn ground_truth_inside_interior_only() {
        let builder = SceneBuilder::new(32, 32).rectangle(0, 0, 10, 10, 200);
        let corners = builder.ground_truth_corners();
        // Vertices at (0,0), (9,0), (0,9) fall outside the 3-px interior;
        // only (9,9) qualifies.
        assert_eq!(corners, vec![(9, 9)]);
    }

    #[test]
    fn benchmark_scene_has_ground_truth() {
        let b = benchmark_scene(64);
        let corners = b.ground_truth_corners();
        assert!(corners.len() >= 8, "got {corners:?}");
        let img = b.build(1);
        assert_eq!(img.width(), 64);
    }
}
