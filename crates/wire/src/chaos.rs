//! Deterministic stream-fault injection for the framed protocol.
//!
//! The transport-level half of the chaos story: where
//! `accel::fault::FaultPlan` makes *devices* lie, [`ChaosStream`] makes
//! the *socket* lie — frames truncate mid-payload, connections reset
//! between bytes, reads dribble in one-byte chunks. Wrapping any
//! `io::Read + io::Write` (a `TcpStream`, a test cursor) with a
//! [`StreamFault`] exercises the decoder's robustness contract and the
//! client's reconnect path under reproducible, seed-derived schedules.
//!
//! Faults are injected *below* the framing layer, so the peer observes
//! exactly what a flaky network produces: a clean `UnexpectedEof`, an
//! abrupt `ConnectionReset`, or byte-at-a-time progress — never a panic.

use numerics::rng::{Rng, SeedStream};
use std::io::{self, Read, Write};

/// One transport fault schedule, applied to a wrapped stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFault {
    /// The stream dies silently after this many bytes have crossed it in
    /// each direction: writes beyond the budget are swallowed (reported
    /// as written, never delivered) and reads beyond it return `Ok(0)` —
    /// the peer sees a truncated frame followed by a clean EOF.
    TruncateAfter(usize),
    /// The stream errors with [`io::ErrorKind::ConnectionReset`] once
    /// this many bytes have crossed it in the faulted direction — the
    /// mid-frame disconnect case.
    DisconnectAfter(usize),
    /// Reads make progress at most this many bytes at a time (writes are
    /// untouched) — the slow-read case. The framing layer must loop, not
    /// assume one `read` fills the buffer.
    SlowChunks(usize),
}

impl StreamFault {
    /// Derives a fault deterministically from a seed: same `(seed, span)`
    /// → same fault, every time. `span` bounds the byte offsets drawn for
    /// the truncate/disconnect variants (a span near the encoded traffic
    /// size lands faults mid-frame).
    #[must_use]
    pub fn seeded(seed: u64, span: usize) -> Self {
        let mut rng = SeedStream::new(seed ^ 0x57495245).next_rng();
        let cutoff = rng.gen_range(0..=span.max(1));
        match rng.gen_range(0u32..3) {
            0 => StreamFault::TruncateAfter(cutoff),
            1 => StreamFault::DisconnectAfter(cutoff),
            _ => StreamFault::SlowChunks(rng.gen_range(1..=3usize)),
        }
    }
}

/// A stream wrapper that injects one [`StreamFault`] into the byte flow.
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    fault: StreamFault,
    read_bytes: usize,
    write_bytes: usize,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner` under the given fault schedule.
    pub fn new(inner: S, fault: StreamFault) -> Self {
        ChaosStream {
            inner,
            fault,
            read_bytes: 0,
            write_bytes: 0,
        }
    }

    /// The installed fault.
    #[must_use]
    pub fn fault(&self) -> StreamFault {
        self.fault
    }

    /// Unwraps back to the inner stream.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

fn reset_error() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionReset, "injected connection reset")
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let budget = match self.fault {
            StreamFault::TruncateAfter(n) => {
                let left = n.saturating_sub(self.read_bytes);
                if left == 0 {
                    return Ok(0); // clean EOF past the truncation point
                }
                left
            }
            StreamFault::DisconnectAfter(n) => {
                let left = n.saturating_sub(self.read_bytes);
                if left == 0 {
                    return Err(reset_error());
                }
                left
            }
            StreamFault::SlowChunks(chunk) => chunk.max(1),
        };
        let want = buf.len().min(budget);
        // lint:allow(panic::index, reason = "want is clamped to buf.len() on the previous line")
        let got = self.inner.read(&mut buf[..want])?;
        self.read_bytes += got;
        Ok(got)
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.fault {
            StreamFault::TruncateAfter(n) => {
                let left = n.saturating_sub(self.write_bytes);
                if left == 0 {
                    // Swallow silently: the writer believes it succeeded,
                    // the peer never sees the bytes.
                    return Ok(buf.len());
                }
                let want = buf.len().min(left);
                // lint:allow(panic::index, reason = "want is clamped to buf.len() on the previous line")
                let wrote = self.inner.write(&buf[..want])?;
                self.write_bytes += wrote;
                // Report full success so the truncation is invisible to
                // the writer, exactly like a buffered kernel socket.
                if wrote == want {
                    self.write_bytes += buf.len() - want;
                    Ok(buf.len())
                } else {
                    Ok(wrote)
                }
            }
            StreamFault::DisconnectAfter(n) => {
                let left = n.saturating_sub(self.write_bytes);
                if left == 0 {
                    return Err(reset_error());
                }
                let want = buf.len().min(left);
                // lint:allow(panic::index, reason = "want is clamped to buf.len() on the previous line")
                let wrote = self.inner.write(&buf[..want])?;
                self.write_bytes += wrote;
                Ok(wrote)
            }
            StreamFault::SlowChunks(_) => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame, write_frame};
    use crate::WireError;
    use std::io::Cursor;

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn truncation_surfaces_as_wire_error_not_panic() {
        let bytes = framed(b"hello fault world");
        for cut in 0..bytes.len() {
            let mut stream =
                ChaosStream::new(Cursor::new(bytes.clone()), StreamFault::TruncateAfter(cut));
            let err = read_frame(&mut stream).unwrap_err();
            assert!(
                matches!(err, WireError::Io(_) | WireError::Truncated { .. }),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn disconnect_surfaces_as_connection_reset() {
        let bytes = framed(b"payload");
        let mut stream =
            ChaosStream::new(Cursor::new(bytes.clone()), StreamFault::DisconnectAfter(5));
        let err = read_frame(&mut stream).unwrap_err();
        match err {
            WireError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::ConnectionReset),
            other => panic!("unexpected {other:?}"),
        }
        // The classification helper treats it as a disconnect.
        let mut stream = ChaosStream::new(Cursor::new(bytes), StreamFault::DisconnectAfter(5));
        assert!(read_frame(&mut stream).unwrap_err().is_disconnect());
    }

    #[test]
    fn slow_reads_still_deliver_complete_frames() {
        let payload = b"slow but intact payload".to_vec();
        let bytes = framed(&payload);
        for chunk in 1..4 {
            let mut stream =
                ChaosStream::new(Cursor::new(bytes.clone()), StreamFault::SlowChunks(chunk));
            let got = read_frame(&mut stream).unwrap();
            assert_eq!(got, payload, "chunk size {chunk}");
        }
    }

    #[test]
    fn truncated_writes_are_silently_swallowed() {
        let mut sink = Vec::new();
        {
            let mut stream = ChaosStream::new(&mut sink, StreamFault::TruncateAfter(6));
            write_frame(&mut stream, b"doomed payload").unwrap();
        }
        assert_eq!(sink.len(), 6, "only the budgeted prefix reaches the peer");
        // A reader of that prefix sees a truncated frame, never a panic.
        let mut cursor = Cursor::new(sink);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn seeded_faults_are_reproducible_and_varied() {
        let a = StreamFault::seeded(42, 100);
        let b = StreamFault::seeded(42, 100);
        assert_eq!(a, b);
        // Across seeds all three variants appear.
        let mut saw = [false; 3];
        for seed in 0..64 {
            match StreamFault::seeded(seed, 100) {
                StreamFault::TruncateAfter(_) => saw[0] = true,
                StreamFault::DisconnectAfter(_) => saw[1] = true,
                StreamFault::SlowChunks(k) => {
                    assert!((1..=3).contains(&k));
                    saw[2] = true;
                }
            }
        }
        assert_eq!(saw, [true; 3]);
    }

    #[test]
    fn zero_budget_faults_fail_immediately() {
        let bytes = framed(b"x");
        let mut stream =
            ChaosStream::new(Cursor::new(bytes.clone()), StreamFault::TruncateAfter(0));
        assert!(read_frame(&mut stream).is_err());
        let mut stream = ChaosStream::new(Cursor::new(bytes), StreamFault::DisconnectAfter(0));
        assert!(read_frame(&mut stream).unwrap_err().is_disconnect());
    }
}
