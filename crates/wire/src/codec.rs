//! Bounds-checked primitive encoding: the byte-level reader and writer
//! every payload codec is built on.
//!
//! All multi-byte integers are big-endian. Floats travel as their IEEE-754
//! bit patterns, so a value that round-trips the wire is *byte-identical*
//! to the original — the property the serving layer's cross-wire
//! determinism check relies on.
//!
//! [`ByteReader`] is total: every accessor checks the remaining input and
//! returns [`WireError::Truncated`] instead of slicing out of bounds, and
//! collection counts are validated against both a protocol maximum and the
//! bytes actually remaining *before* any allocation.

use crate::{WireError, MAX_STRING_LEN};

/// An append-only encoder over a growable buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends an optional `u64` as a presence flag plus the value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.put_u8(1);
                self.put_u64(v);
            }
            None => self.put_u8(0),
        }
    }

    /// Appends raw bytes with no length prefix. Callers write a
    /// cap-validated length field first (the generic family frame does).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`WireError::TooLarge`] when the string exceeds
    /// [`MAX_STRING_LEN`](crate::MAX_STRING_LEN) bytes.
    pub fn put_str(&mut self, s: &str) -> Result<(), WireError> {
        let len = u64::try_from(s.len()).unwrap_or(u64::MAX);
        if len > u64::from(MAX_STRING_LEN) {
            return Err(WireError::TooLarge {
                context: "string",
                len,
                max: u64::from(MAX_STRING_LEN),
            });
        }
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

/// A checked decoder over a borrowed byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte has been consumed — strict decoders call
    /// this last so a frame cannot smuggle trailing garbage.
    ///
    /// # Errors
    ///
    /// [`WireError::TrailingBytes`] when input remains.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        let slice = self
            .buf
            .get(self.pos..self.pos.saturating_add(n))
            .ok_or(WireError::Truncated { context })?;
        self.pos += n;
        Ok(slice)
    }

    /// Reads exactly `N` bytes as an array. The length mismatch arm is
    /// unreachable — `take` already returned an `N`-byte slice — but it
    /// degrades to a `Truncated` error rather than a panic.
    fn take_arr<const N: usize>(&mut self, context: &'static str) -> Result<[u8; N], WireError> {
        self.take(N, context)?
            .try_into()
            .map_err(|_| WireError::Truncated { context })
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(u8::from_be_bytes(self.take_arr(context)?))
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn get_u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take_arr(context)?))
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take_arr(context)?))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take_arr(context)?))
    }

    /// Reads a big-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn get_i64(&mut self, context: &'static str) -> Result<i64, WireError> {
        Ok(i64::from_be_bytes(self.take_arr(context)?))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn get_f64(&mut self, context: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64(context)?))
    }

    /// Reads a `u64` decoded into `usize`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input; [`WireError::Invalid`]
    /// when the value does not fit a `usize`.
    pub fn get_usize(&mut self, context: &'static str) -> Result<usize, WireError> {
        let v = self.get_u64(context)?;
        usize::try_from(v).map_err(|_| WireError::Invalid {
            context,
            detail: format!("{v} does not fit a usize"),
        })
    }

    /// Reads an optional `u64` (presence flag plus value).
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input; [`WireError::Invalid`]
    /// for a flag byte other than 0/1.
    pub fn get_opt_u64(&mut self, context: &'static str) -> Result<Option<u64>, WireError> {
        match self.get_u8(context)? {
            0 => Ok(None),
            1 => Ok(Some(self.get_u64(context)?)),
            flag => Err(WireError::Invalid {
                context,
                detail: format!("option flag must be 0 or 1, got {flag}"),
            }),
        }
    }

    /// Reads a collection count, rejecting counts above `max` or counts
    /// whose elements (at `min_elem_bytes` each) could not possibly fit in
    /// the remaining input. This makes `Vec::with_capacity(count)` safe:
    /// a hostile length prefix can never trigger a large allocation.
    ///
    /// # Errors
    ///
    /// [`WireError::TooLarge`] above `max`; [`WireError::Truncated`] when
    /// the remaining input is provably too short.
    pub fn get_count(
        &mut self,
        max: u32,
        min_elem_bytes: usize,
        context: &'static str,
    ) -> Result<usize, WireError> {
        let count = self.get_u32(context)?;
        if count > max {
            return Err(WireError::TooLarge {
                context,
                len: u64::from(count),
                max: u64::from(max),
            });
        }
        let count = count as usize;
        if count.saturating_mul(min_elem_bytes) > self.remaining() {
            return Err(WireError::Truncated { context });
        }
        Ok(count)
    }

    /// Reads exactly `len` raw bytes. Callers must have validated `len`
    /// against a protocol cap *and* the remaining input first (via
    /// [`ByteReader::get_count`]); this only re-checks the input bound.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when fewer than `len` bytes remain.
    pub fn get_bytes(&mut self, len: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        self.take(len, context)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`WireError::TooLarge`], [`WireError::Truncated`], or
    /// [`WireError::Invalid`] for non-UTF-8 bytes.
    pub fn get_str(&mut self, context: &'static str) -> Result<String, WireError> {
        let len = self.get_u32(context)?;
        if len > MAX_STRING_LEN {
            return Err(WireError::TooLarge {
                context,
                len: u64::from(len),
                max: u64::from(MAX_STRING_LEN),
            });
        }
        let bytes = self.take(len as usize, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| WireError::Invalid {
            context,
            detail: format!("invalid utf-8: {e}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f64(std::f64::consts::PI);
        w.put_opt_u64(Some(9));
        w.put_opt_u64(None);
        w.put_str("héllo").unwrap();
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8("t").unwrap(), 7);
        assert_eq!(r.get_u16("t").unwrap(), 300);
        assert_eq!(r.get_u32("t").unwrap(), 70_000);
        assert_eq!(r.get_u64("t").unwrap(), u64::MAX);
        assert_eq!(r.get_i64("t").unwrap(), -42);
        assert_eq!(r.get_f64("t").unwrap(), std::f64::consts::PI);
        assert_eq!(r.get_opt_u64("t").unwrap(), Some(9));
        assert_eq!(r.get_opt_u64("t").unwrap(), None);
        assert_eq!(r.get_str("t").unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let mut w = ByteWriter::new();
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        w.put_f64(weird);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_f64("t").unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(
            r.get_u32("field"),
            Err(WireError::Truncated { context: "field" })
        ));
        // The failed read consumed nothing usable but the reader is still safe.
        assert!(r.get_u16("field").is_ok());
    }

    #[test]
    fn string_limits_enforced() {
        // Claimed length far beyond the buffer.
        let mut w = ByteWriter::new();
        w.put_u32(1000);
        w.put_u8(b'x');
        let bytes = w.into_bytes();
        assert!(matches!(
            ByteReader::new(&bytes).get_str("s"),
            Err(WireError::Truncated { .. })
        ));
        // Claimed length beyond the protocol cap.
        let mut w = ByteWriter::new();
        w.put_u32(MAX_STRING_LEN + 1);
        let bytes = w.into_bytes();
        assert!(matches!(
            ByteReader::new(&bytes).get_str("s"),
            Err(WireError::TooLarge { .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_u8(0xff);
        w.put_u8(0xfe);
        let bytes = w.into_bytes();
        assert!(matches!(
            ByteReader::new(&bytes).get_str("s"),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn hostile_count_rejected_before_allocation() {
        // A count of ~4 billion with 2 bytes of input must fail fast.
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_count(u32::MAX, 8, "list"),
            Err(WireError::Truncated { .. })
        ));
        // And a count above the protocol cap fails even if bytes remain.
        let mut w = ByteWriter::new();
        w.put_u32(100);
        for _ in 0..100 {
            w.put_u8(0);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_count(10, 1, "list"),
            Err(WireError::TooLarge { .. })
        ));
    }

    #[test]
    fn bad_option_flag_rejected() {
        let bytes = [2u8];
        assert!(matches!(
            ByteReader::new(&bytes).get_opt_u64("opt"),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn finish_rejects_trailing() {
        let bytes = [0u8; 3];
        let mut r = ByteReader::new(&bytes);
        let _ = r.get_u8("t").unwrap();
        assert!(matches!(
            r.finish(),
            Err(WireError::TrailingBytes { count: 2 })
        ));
    }

    #[test]
    fn writer_len_tracks() {
        let mut w = ByteWriter::new();
        assert!(w.is_empty());
        w.put_u32(1);
        assert_eq!(w.len(), 4);
    }
}
