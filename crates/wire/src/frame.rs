//! Framing: magic + length prefix over `io::Read` / `io::Write`.
//!
//! A frame is `[MAGIC (4 bytes)][payload length (u32 BE)][payload]`. The
//! length is validated against [`MAX_FRAME_LEN`](crate::MAX_FRAME_LEN)
//! *before* the payload buffer is allocated, so a hostile length prefix
//! cannot OOM the receiver, and a wrong magic fails before the length is
//! even read.

use crate::{WireError, MAGIC, MAX_FRAME_LEN};
use std::io::{Read, Write};

/// Writes one frame (magic, length, payload) and flushes.
///
/// # Errors
///
/// [`WireError::TooLarge`] when the payload exceeds
/// [`MAX_FRAME_LEN`](crate::MAX_FRAME_LEN); [`WireError::Io`] on stream
/// failure.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    let len = u64::try_from(payload.len()).unwrap_or(u64::MAX);
    if len > u64::from(MAX_FRAME_LEN) {
        return Err(WireError::TooLarge {
            context: "frame payload",
            len,
            max: u64::from(MAX_FRAME_LEN),
        });
    }
    w.write_all(&MAGIC)?;
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, returning its payload.
///
/// # Errors
///
/// [`WireError::BadMagic`] when the stream does not start with [`MAGIC`];
/// [`WireError::TooLarge`] for a length prefix beyond
/// [`MAX_FRAME_LEN`](crate::MAX_FRAME_LEN); [`WireError::Io`] on stream
/// failure (an `UnexpectedEof` before any magic byte is the peer closing
/// between frames — see [`WireError::is_disconnect`]).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, WireError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(WireError::TooLarge {
            context: "frame payload",
            len: u64::from(len),
            max: u64::from(MAX_FRAME_LEN),
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frames").unwrap();
        let payload = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(payload, b"hello frames");
    }

    #[test]
    fn empty_payload_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").unwrap();
        assert_eq!(read_frame(&mut buf.as_slice()).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn back_to_back_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"two").unwrap();
        let mut cursor = buf.as_slice();
        assert_eq!(read_frame(&mut cursor).unwrap(), b"one");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"two");
        // A third read is a clean disconnect.
        assert!(read_frame(&mut cursor).unwrap_err().is_disconnect());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = b"HTTP/1.1 200 OK\r\n".to_vec();
        buf.resize(64, 0);
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, WireError::BadMagic { found } if &found == b"HTTP"));
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, WireError::TooLarge { .. }));
        // u32::MAX likewise.
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::TooLarge { .. })
        ));
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        let mut full = Vec::new();
        write_frame(&mut full, b"payload bytes").unwrap();
        for cut in 0..full.len() {
            let err = read_frame(&mut &full[..cut]).unwrap_err();
            assert!(matches!(err, WireError::Io(_)), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn oversized_write_refused() {
        // Construct a frame just past the cap without allocating 4 GiB:
        // the check happens before any write.
        let payload = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, &payload),
            Err(WireError::TooLarge { .. })
        ));
        assert!(sink.is_empty());
    }
}
