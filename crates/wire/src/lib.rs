//! The wire protocol of the network serving layer.
//!
//! The paper's system view (Figs. 1–2) — and Britt & Humble's HPC framing —
//! treat exotic accelerators as *services reached across a host boundary*,
//! not linked libraries. This crate defines the boundary: a hand-rolled,
//! versioned, length-prefixed binary protocol that carries kernels to a
//! remote [`runtime::Runtime`] and results back, using only `std`.
//!
//! # Frame layout
//!
//! Every frame on the socket is
//!
//! ```text
//! +----------+----------------+------------------+
//! | magic    | payload length | payload          |
//! | 4 bytes  | u32 big-endian | ≤ MAX_FRAME_LEN  |
//! +----------+----------------+------------------+
//! ```
//!
//! and the payload starts with a one-byte message tag (see [`message`]).
//! A connection opens with a `Hello { min_version, max_version }` request;
//! the server answers `HelloAck { version }` with the highest mutually
//! supported version, or an error frame and a close.
//!
//! # Robustness contract
//!
//! Decoding is total: *no* input — truncated, oversized, wrong-magic,
//! wrong-version, or random bytes — may panic or trigger an unbounded
//! allocation. Every length field is bounds-checked against both a
//! protocol maximum and the bytes actually remaining in the frame before
//! any allocation happens.
//!
//! * [`codec`] — bounds-checked primitive reader/writer;
//! * [`frame`] — magic + length-prefix framing over `io::Read`/`io::Write`;
//! * [`payload`] — codecs for [`accel::kernel::Kernel`],
//!   [`accel::kernel::KernelResult`], [`accel::kernel::CostReport`],
//!   [`mem::cnf::Formula`], job outcomes and [`runtime::RuntimeStats`];
//! * [`message`] — the request/response envelopes and version negotiation.
//!
//! # Example
//!
//! ```
//! use accel::kernel::Kernel;
//! use wire::message::{decode_request, encode_request, Request};
//!
//! let req = Request::Submit {
//!     request_id: 7,
//!     timeout_ms: Some(250),
//!     seed: None,
//!     policy: None,
//!     kernel: Kernel::Factor { n: 21 },
//! };
//! let bytes = encode_request(&req)?;
//! assert_eq!(decode_request(&bytes)?, req);
//! # Ok::<(), wire::WireError>(())
//! ```

pub mod chaos;
pub mod codec;
pub mod frame;
pub mod message;
pub mod payload;

pub use chaos::{ChaosStream, StreamFault};
pub use frame::{read_frame, write_frame};
pub use message::{
    decode_request, decode_request_v, decode_response, decode_response_v, encode_request,
    encode_request_v, encode_response, encode_response_v, negotiate, ErrorCode, GossipEntry,
    Request, Response, GOSSIP_ALIVE, GOSSIP_QUARANTINED, GOSSIP_SUSPECT,
};
pub use payload::{
    decode_kernel, decode_kernel_result, encode_kernel, encode_kernel_result, WireOutcome,
};

/// Magic bytes opening every frame ("ReBooting Computing Models").
pub const MAGIC: [u8; 4] = *b"RBCM";

/// The protocol version this build speaks.
///
/// Version history:
///
/// * **1** — initial protocol: submit/cancel/stats over framed messages.
/// * **2** — cost-model-driven dispatch: `Submit` carries an optional
///   per-job [`accel::host::DispatchPolicy`] override, and `Stats` rows
///   carry predicted device seconds plus the EWMA calibration pair.
/// * **3** — fault accounting: `Stats` gains the global fault counters
///   (device faults, retries, reroutes, quarantine events, recovery
///   probes) and each backend row gains its fault count.
/// * **4** — admission tier: `Stats` gains the global admission counters
///   (cache hits, misses, evictions, coalesced submissions, hedged
///   dispatches, hedge cancellations) after the fault-counter block.
/// * **5** — cluster tier: new `Gossip` request / `GossipAck` response
///   carrying per-shard health entries (status, consecutive failures,
///   epoch) between routers and shards. `Submit`/`Stats` layouts are
///   unchanged — a v5 frame of any v4 message is byte-identical to its
///   v4 encoding.
/// * **6** — kernel-family registry: kernel tag `5` and result tag `5`
///   open a *generic family frame* (u16 registry family tag, u32
///   length-prefixed family-owned body), so new workload families ship
///   through their [`accel::family`] registry entry without new
///   top-level wire tags. The legacy five families keep their native
///   v1 tags — a v6 frame of any v5 message is byte-identical to its
///   v5 encoding.
pub const PROTOCOL_VERSION: u16 = 6;

/// The oldest protocol version this build still accepts.
pub const MIN_SUPPORTED_VERSION: u16 = 1;

/// Hard cap on a frame's payload length. A length prefix beyond this is
/// rejected before any allocation.
pub const MAX_FRAME_LEN: u32 = 4 * 1024 * 1024;

/// Hard cap on any encoded string (backend names, error messages, DNA
/// sequences).
pub const MAX_STRING_LEN: u32 = 1 << 20;

/// Hard cap on any encoded sequence (marked search items, SAT assignment
/// bits, histogram buckets, backend table rows).
pub const MAX_SEQUENCE_LEN: u32 = 1 << 20;

/// Hard cap on the clause count of an encoded formula.
pub const MAX_CLAUSES: u32 = 1 << 20;

/// Hard cap on the width (literal count) of one encoded clause.
pub const MAX_CLAUSE_WIDTH: u32 = 1 << 10;

/// Hard cap on the body of one generic family frame (kernel/result tag
/// `5`, protocol version ≥ 6). Individual families enforce their own,
/// tighter serving caps inside the body.
pub const MAX_FAMILY_BODY: u32 = 1 << 20;

/// Everything that can go wrong encoding, decoding, or framing.
#[derive(Debug)]
pub enum WireError {
    /// An underlying socket/stream error.
    Io(std::io::Error),
    /// The input ended before the field being decoded.
    Truncated {
        /// What was being decoded.
        context: &'static str,
    },
    /// A frame payload decoded cleanly but left unconsumed bytes.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
    /// The frame did not start with [`MAGIC`].
    BadMagic {
        /// The four bytes actually read.
        found: [u8; 4],
    },
    /// A length prefix exceeded its protocol maximum.
    TooLarge {
        /// What was being decoded.
        context: &'static str,
        /// The claimed length.
        len: u64,
        /// The maximum the protocol allows.
        max: u64,
    },
    /// The peer requested a protocol version range we do not speak.
    UnsupportedVersion {
        /// The peer's minimum version.
        min: u16,
        /// The peer's maximum version.
        max: u16,
    },
    /// An unknown message/variant tag.
    UnknownTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A field decoded but failed semantic validation (bad UTF-8, invalid
    /// formula, out-of-range count).
    Invalid {
        /// What was being decoded.
        context: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Truncated { context } => {
                write!(f, "truncated input while decoding {context}")
            }
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after a complete message")
            }
            WireError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02x?} (expected {MAGIC:02x?})")
            }
            WireError::TooLarge { context, len, max } => {
                write!(f, "{context} length {len} exceeds protocol maximum {max}")
            }
            WireError::UnsupportedVersion { min, max } => write!(
                f,
                "peer speaks protocol versions {min}..={max}; this build speaks \
                 {MIN_SUPPORTED_VERSION}..={PROTOCOL_VERSION}"
            ),
            WireError::UnknownTag { context, tag } => {
                write!(f, "unknown tag {tag:#04x} while decoding {context}")
            }
            WireError::Invalid { context, detail } => {
                write!(f, "invalid {context}: {detail}")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// Whether this error is a clean end-of-stream (the peer closed the
    /// connection between frames), as opposed to a protocol violation.
    #[must_use]
    pub fn is_disconnect(&self) -> bool {
        matches!(self, WireError::Io(e) if matches!(
            e.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::BrokenPipe
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = WireError::Truncated { context: "kernel" };
        assert!(e.to_string().contains("kernel"));
        let e = WireError::BadMagic { found: *b"HTTP" };
        assert!(e.to_string().contains("48"));
        let e = WireError::UnsupportedVersion { min: 9, max: 12 };
        assert!(e.to_string().contains("9..=12"));
        let e = WireError::TooLarge {
            context: "string",
            len: 1 << 30,
            max: u64::from(MAX_STRING_LEN),
        };
        assert!(e.to_string().contains("maximum"));
    }

    #[test]
    fn disconnect_classification() {
        let eof = WireError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "eof",
        ));
        assert!(eof.is_disconnect());
        assert!(!WireError::Truncated { context: "x" }.is_disconnect());
        assert!(!WireError::BadMagic { found: [0; 4] }.is_disconnect());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WireError>();
    }
}
