//! Request/response envelopes and protocol-version negotiation.
//!
//! Requests carry tags `0x01..=0x05`, responses `0x81..=0x86` — disjoint
//! ranges so a peer that confuses the two directions fails loudly with
//! [`WireError::UnknownTag`] instead of misparsing. Every `decode_*`
//! consumes the whole payload and rejects trailing bytes.

use crate::codec::{ByteReader, ByteWriter};
use crate::payload::{
    get_kernel, get_outcome, get_policy, get_stats, put_kernel, put_outcome, put_policy, put_stats,
    WireOutcome,
};
use crate::{WireError, MAX_SEQUENCE_LEN, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION};
use accel::host::DispatchPolicy;
use accel::kernel::Kernel;
use runtime::RuntimeStats;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens a connection: the client's supported protocol-version range.
    Hello {
        /// Lowest protocol version the client speaks.
        min_version: u16,
        /// Highest protocol version the client speaks.
        max_version: u16,
    },
    /// Liveness probe; the server echoes `token` in a `Pong`.
    Ping {
        /// Opaque echo token.
        token: u64,
    },
    /// Submits a kernel for execution.
    Submit {
        /// Client-chosen id echoed in the matching [`Response::JobResult`].
        request_id: u64,
        /// Optional queue deadline in milliseconds.
        timeout_ms: Option<u64>,
        /// Optional explicit backend seed (for cross-run determinism).
        seed: Option<u64>,
        /// Optional per-job dispatch-policy override. Only encodable at
        /// protocol version ≥ 2; encoding `Some` on a v1 connection is a
        /// [`WireError::Invalid`].
        policy: Option<DispatchPolicy>,
        /// The kernel to execute.
        kernel: Kernel,
    },
    /// Requests cancellation of an in-flight submission.
    Cancel {
        /// The id passed to the original `Submit`.
        request_id: u64,
    },
    /// Requests a [`RuntimeStats`] snapshot.
    GetStats {
        /// Client-chosen id echoed in the matching [`Response::Stats`].
        request_id: u64,
    },
    /// A shard-health gossip exchange (protocol version ≥ 5): the sender's
    /// view of every shard's health, answered by a [`Response::GossipAck`]
    /// with the receiver's merged view. Encoding one on an older link is a
    /// [`WireError::Invalid`].
    Gossip {
        /// Client-chosen id echoed in the matching ack.
        request_id: u64,
        /// Shard id of the sender (`u64::MAX` for a router, which is not
        /// itself a shard).
        origin: u64,
        /// The sender's health view, one entry per shard it knows about.
        entries: Vec<GossipEntry>,
    },
}

/// One shard's health as carried in v5 gossip frames.
///
/// `status` uses the [`GOSSIP_ALIVE`]/[`GOSSIP_SUSPECT`]/
/// [`GOSSIP_QUARANTINED`] encoding; any other value is rejected at decode
/// time with [`WireError::Invalid`]. Views are merged by `epoch`: the
/// entry with the higher epoch is the fresher observation and wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipEntry {
    /// The shard this entry describes.
    pub shard: u32,
    /// Health status byte (0 alive, 1 suspect, 2 quarantined).
    pub status: u8,
    /// Consecutive failures observed against this shard.
    pub failures: u32,
    /// Logical clock of the observation; higher is fresher.
    pub epoch: u64,
}

/// [`GossipEntry::status`] value: the shard is serving normally.
pub const GOSSIP_ALIVE: u8 = 0;
/// [`GossipEntry::status`] value: recent failures, still routable.
pub const GOSSIP_SUSPECT: u8 = 1;
/// [`GossipEntry::status`] value: unroutable until a probe succeeds.
pub const GOSSIP_QUARANTINED: u8 = 2;

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Accepts the connection at the negotiated protocol version.
    HelloAck {
        /// The version both sides will speak.
        version: u16,
    },
    /// Echo of a [`Request::Ping`].
    Pong {
        /// The token from the ping.
        token: u64,
    },
    /// Terminal outcome of a submitted job.
    JobResult {
        /// The id from the originating `Submit`.
        request_id: u64,
        /// What happened to the job.
        outcome: WireOutcome,
    },
    /// Result of a [`Request::Cancel`].
    CancelResult {
        /// The id from the originating `Submit`.
        request_id: u64,
        /// Whether the cancel landed before the job finished.
        cancelled: bool,
    },
    /// A [`RuntimeStats`] snapshot.
    Stats {
        /// The id from the originating `GetStats`.
        request_id: u64,
        /// The snapshot.
        stats: RuntimeStats,
    },
    /// A request- or connection-level error.
    Error {
        /// The offending request's id, or 0 for connection-level errors.
        request_id: u64,
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to a [`Request::Gossip`] (protocol version ≥ 5): the
    /// receiver's health view after merging in the sender's entries.
    GossipAck {
        /// The id from the originating `Gossip`.
        request_id: u64,
        /// The receiver's merged view.
        entries: Vec<GossipEntry>,
    },
}

/// Machine-readable error categories carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The server is at its connection limit.
    Busy,
    /// The request could not be decoded.
    Malformed,
    /// No common protocol version.
    UnsupportedVersion,
    /// The kernel failed submission-time validation.
    InvalidKernel,
    /// The job queue rejected the submission.
    QueueFull,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// Anything else.
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Busy => 1,
            ErrorCode::Malformed => 2,
            ErrorCode::UnsupportedVersion => 3,
            ErrorCode::InvalidKernel => 4,
            ErrorCode::QueueFull => 5,
            ErrorCode::ShuttingDown => 6,
            ErrorCode::Internal => 7,
        }
    }

    fn from_u8(code: u8) -> Result<Self, WireError> {
        match code {
            1 => Ok(ErrorCode::Busy),
            2 => Ok(ErrorCode::Malformed),
            3 => Ok(ErrorCode::UnsupportedVersion),
            4 => Ok(ErrorCode::InvalidKernel),
            5 => Ok(ErrorCode::QueueFull),
            6 => Ok(ErrorCode::ShuttingDown),
            7 => Ok(ErrorCode::Internal),
            tag => Err(WireError::UnknownTag {
                context: "error code",
                tag,
            }),
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Busy => "busy",
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnsupportedVersion => "unsupported version",
            ErrorCode::InvalidKernel => "invalid kernel",
            ErrorCode::QueueFull => "queue full",
            ErrorCode::ShuttingDown => "shutting down",
            ErrorCode::Internal => "internal",
        };
        f.write_str(name)
    }
}

const TAG_HELLO: u8 = 0x01;
const TAG_PING: u8 = 0x02;
const TAG_SUBMIT: u8 = 0x03;
const TAG_CANCEL: u8 = 0x04;
const TAG_GET_STATS: u8 = 0x05;
const TAG_GOSSIP: u8 = 0x06;

const TAG_HELLO_ACK: u8 = 0x81;
const TAG_PONG: u8 = 0x82;
const TAG_JOB_RESULT: u8 = 0x83;
const TAG_CANCEL_RESULT: u8 = 0x84;
const TAG_STATS: u8 = 0x85;
const TAG_ERROR: u8 = 0x86;
const TAG_GOSSIP_ACK: u8 = 0x87;

/// Writes a gossip entry table: u32 count then fixed-width entries.
fn put_gossip_entries(w: &mut ByteWriter, entries: &[GossipEntry]) -> Result<(), WireError> {
    let count = u32::try_from(entries.len()).unwrap_or(u32::MAX);
    if count > MAX_SEQUENCE_LEN {
        return Err(WireError::TooLarge {
            context: "gossip entries",
            len: entries.len() as u64,
            max: u64::from(MAX_SEQUENCE_LEN),
        });
    }
    w.put_u32(count);
    for entry in entries {
        w.put_u32(entry.shard);
        w.put_u8(entry.status);
        w.put_u32(entry.failures);
        w.put_u64(entry.epoch);
    }
    Ok(())
}

/// Reads a gossip entry table, validating every status byte.
fn get_gossip_entries(r: &mut ByteReader) -> Result<Vec<GossipEntry>, WireError> {
    // Each entry is 17 bytes: shard u32 + status u8 + failures u32 + epoch u64.
    let count = r.get_count(MAX_SEQUENCE_LEN, 17, "gossip entries")?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let shard = r.get_u32("gossip shard")?;
        let status = r.get_u8("gossip status")?;
        if status > GOSSIP_QUARANTINED {
            return Err(WireError::Invalid {
                context: "gossip status",
                detail: format!("expected 0..=2, got {status}"),
            });
        }
        entries.push(GossipEntry {
            shard,
            status,
            failures: r.get_u32("gossip failures")?,
            epoch: r.get_u64("gossip epoch")?,
        });
    }
    Ok(entries)
}

/// Rejects gossip traffic on a pre-v5 link with a uniform diagnostic.
fn require_gossip_version(version: u16) -> Result<(), WireError> {
    if version >= 5 {
        Ok(())
    } else {
        Err(WireError::Invalid {
            context: "gossip version",
            detail: format!("gossip frames need protocol version 5, link is v{version}"),
        })
    }
}

/// Rejects generic family frames on a pre-v6 link with a uniform
/// diagnostic. A v5 peer has no kernel/result tag `5`, so registry-served
/// kernels must not be encoded toward — or accepted from — older links.
fn require_family_version(version: u16) -> Result<(), WireError> {
    if version >= 6 {
        Ok(())
    } else {
        Err(WireError::Invalid {
            context: "family version",
            detail: format!("generic family frames need protocol version 6, link is v{version}"),
        })
    }
}

/// Encodes one request to a frame payload at [`PROTOCOL_VERSION`].
///
/// # Errors
///
/// [`WireError::TooLarge`] for out-of-bounds field sizes.
pub fn encode_request(request: &Request) -> Result<Vec<u8>, WireError> {
    encode_request_v(request, PROTOCOL_VERSION)
}

/// Encodes one request to a frame payload at a negotiated protocol
/// version. `Hello` encodes identically under every version (it must be
/// readable before negotiation completes).
///
/// # Errors
///
/// [`WireError::TooLarge`] for out-of-bounds field sizes, or
/// [`WireError::Invalid`] when the request carries a field the negotiated
/// version cannot express (a `Submit` policy override on a v1 link).
pub fn encode_request_v(request: &Request, version: u16) -> Result<Vec<u8>, WireError> {
    let mut w = ByteWriter::new();
    match request {
        Request::Hello {
            min_version,
            max_version,
        } => {
            w.put_u8(TAG_HELLO);
            w.put_u16(*min_version);
            w.put_u16(*max_version);
        }
        Request::Ping { token } => {
            w.put_u8(TAG_PING);
            w.put_u64(*token);
        }
        Request::Submit {
            request_id,
            timeout_ms,
            seed,
            policy,
            kernel,
        } => {
            w.put_u8(TAG_SUBMIT);
            w.put_u64(*request_id);
            w.put_opt_u64(*timeout_ms);
            w.put_opt_u64(*seed);
            if version >= 2 {
                put_policy(&mut w, *policy);
            } else if policy.is_some() {
                return Err(WireError::Invalid {
                    context: "submit policy",
                    detail: format!(
                        "dispatch-policy overrides need protocol version 2, link is v{version}"
                    ),
                });
            }
            if kernel.uses_family_frame() {
                require_family_version(version)?;
            }
            put_kernel(&mut w, kernel)?;
        }
        Request::Cancel { request_id } => {
            w.put_u8(TAG_CANCEL);
            w.put_u64(*request_id);
        }
        Request::GetStats { request_id } => {
            w.put_u8(TAG_GET_STATS);
            w.put_u64(*request_id);
        }
        Request::Gossip {
            request_id,
            origin,
            entries,
        } => {
            require_gossip_version(version)?;
            w.put_u8(TAG_GOSSIP);
            w.put_u64(*request_id);
            w.put_u64(*origin);
            put_gossip_entries(&mut w, entries)?;
        }
    }
    Ok(w.into_bytes())
}

/// Decodes one request from a frame payload at [`PROTOCOL_VERSION`],
/// rejecting trailing bytes.
///
/// # Errors
///
/// Any [`WireError`] decoding variant; never panics on hostile input.
pub fn decode_request(bytes: &[u8]) -> Result<Request, WireError> {
    decode_request_v(bytes, PROTOCOL_VERSION)
}

/// Decodes one request from a frame payload at a negotiated protocol
/// version, rejecting trailing bytes. A v1 `Submit` has no policy byte;
/// the decoded request gets `policy: None`.
///
/// # Errors
///
/// Any [`WireError`] decoding variant; never panics on hostile input.
pub fn decode_request_v(bytes: &[u8], version: u16) -> Result<Request, WireError> {
    let mut r = ByteReader::new(bytes);
    let request = match r.get_u8("request tag")? {
        TAG_HELLO => Request::Hello {
            min_version: r.get_u16("hello min version")?,
            max_version: r.get_u16("hello max version")?,
        },
        TAG_PING => Request::Ping {
            token: r.get_u64("ping token")?,
        },
        TAG_SUBMIT => {
            let request_id = r.get_u64("submit request id")?;
            let timeout_ms = r.get_opt_u64("submit timeout")?;
            let seed = r.get_opt_u64("submit seed")?;
            let policy = if version >= 2 {
                get_policy(&mut r)?
            } else {
                None
            };
            let kernel = get_kernel(&mut r)?;
            if kernel.uses_family_frame() {
                require_family_version(version)?;
            }
            Request::Submit {
                request_id,
                timeout_ms,
                seed,
                policy,
                kernel,
            }
        }
        TAG_CANCEL => Request::Cancel {
            request_id: r.get_u64("cancel request id")?,
        },
        TAG_GET_STATS => Request::GetStats {
            request_id: r.get_u64("stats request id")?,
        },
        TAG_GOSSIP => {
            require_gossip_version(version)?;
            Request::Gossip {
                request_id: r.get_u64("gossip request id")?,
                origin: r.get_u64("gossip origin")?,
                entries: get_gossip_entries(&mut r)?,
            }
        }
        tag => {
            return Err(WireError::UnknownTag {
                context: "request",
                tag,
            })
        }
    };
    r.finish()?;
    Ok(request)
}

/// Encodes one response to a frame payload at [`PROTOCOL_VERSION`].
///
/// # Errors
///
/// [`WireError::TooLarge`] for out-of-bounds field sizes.
pub fn encode_response(response: &Response) -> Result<Vec<u8>, WireError> {
    encode_response_v(response, PROTOCOL_VERSION)
}

/// Encodes one response to a frame payload at a negotiated protocol
/// version. `HelloAck` encodes identically under every version; `Stats`
/// rows carry the prediction-tracking triple only at version ≥ 2.
///
/// # Errors
///
/// [`WireError::TooLarge`] for out-of-bounds field sizes.
pub fn encode_response_v(response: &Response, version: u16) -> Result<Vec<u8>, WireError> {
    let mut w = ByteWriter::new();
    match response {
        Response::HelloAck { version } => {
            w.put_u8(TAG_HELLO_ACK);
            w.put_u16(*version);
        }
        Response::Pong { token } => {
            w.put_u8(TAG_PONG);
            w.put_u64(*token);
        }
        Response::JobResult {
            request_id,
            outcome,
        } => {
            if let WireOutcome::Completed { result, .. } = outcome {
                if result.uses_family_frame() {
                    require_family_version(version)?;
                }
            }
            w.put_u8(TAG_JOB_RESULT);
            w.put_u64(*request_id);
            put_outcome(&mut w, outcome)?;
        }
        Response::CancelResult {
            request_id,
            cancelled,
        } => {
            w.put_u8(TAG_CANCEL_RESULT);
            w.put_u64(*request_id);
            w.put_u8(u8::from(*cancelled));
        }
        Response::Stats { request_id, stats } => {
            w.put_u8(TAG_STATS);
            w.put_u64(*request_id);
            put_stats(&mut w, stats, version)?;
        }
        Response::Error {
            request_id,
            code,
            message,
        } => {
            w.put_u8(TAG_ERROR);
            w.put_u64(*request_id);
            w.put_u8(code.to_u8());
            w.put_str(message)?;
        }
        Response::GossipAck {
            request_id,
            entries,
        } => {
            require_gossip_version(version)?;
            w.put_u8(TAG_GOSSIP_ACK);
            w.put_u64(*request_id);
            put_gossip_entries(&mut w, entries)?;
        }
    }
    Ok(w.into_bytes())
}

/// Decodes one response from a frame payload at [`PROTOCOL_VERSION`],
/// rejecting trailing bytes.
///
/// # Errors
///
/// Any [`WireError`] decoding variant; never panics on hostile input.
pub fn decode_response(bytes: &[u8]) -> Result<Response, WireError> {
    decode_response_v(bytes, PROTOCOL_VERSION)
}

/// Decodes one response from a frame payload at a negotiated protocol
/// version, rejecting trailing bytes.
///
/// # Errors
///
/// Any [`WireError`] decoding variant; never panics on hostile input.
pub fn decode_response_v(bytes: &[u8], version: u16) -> Result<Response, WireError> {
    let mut r = ByteReader::new(bytes);
    let response = match r.get_u8("response tag")? {
        TAG_HELLO_ACK => Response::HelloAck {
            version: r.get_u16("ack version")?,
        },
        TAG_PONG => Response::Pong {
            token: r.get_u64("pong token")?,
        },
        TAG_JOB_RESULT => {
            let request_id = r.get_u64("result request id")?;
            let outcome = get_outcome(&mut r)?;
            if let WireOutcome::Completed { result, .. } = &outcome {
                if result.uses_family_frame() {
                    require_family_version(version)?;
                }
            }
            Response::JobResult {
                request_id,
                outcome,
            }
        }
        TAG_CANCEL_RESULT => Response::CancelResult {
            request_id: r.get_u64("cancel request id")?,
            cancelled: match r.get_u8("cancelled flag")? {
                0 => false,
                1 => true,
                flag => {
                    return Err(WireError::Invalid {
                        context: "cancelled flag",
                        detail: format!("expected 0 or 1, got {flag}"),
                    })
                }
            },
        },
        TAG_STATS => Response::Stats {
            request_id: r.get_u64("stats request id")?,
            stats: get_stats(&mut r, version)?,
        },
        TAG_ERROR => Response::Error {
            request_id: r.get_u64("error request id")?,
            code: ErrorCode::from_u8(r.get_u8("error code")?)?,
            message: r.get_str("error message")?,
        },
        TAG_GOSSIP_ACK => {
            require_gossip_version(version)?;
            Response::GossipAck {
                request_id: r.get_u64("gossip request id")?,
                entries: get_gossip_entries(&mut r)?,
            }
        }
        tag => {
            return Err(WireError::UnknownTag {
                context: "response",
                tag,
            })
        }
    };
    r.finish()?;
    Ok(response)
}

/// Picks the protocol version for a connection given the client's
/// advertised range, or `None` when the ranges don't overlap.
///
/// The result is the highest version both sides support.
#[must_use]
pub fn negotiate(client_min: u16, client_max: u16) -> Option<u16> {
    if client_min > client_max
        || client_min > PROTOCOL_VERSION
        || client_max < MIN_SUPPORTED_VERSION
    {
        None
    } else {
        Some(client_max.min(PROTOCOL_VERSION))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel::family::{ColoringSpec, FamilyKernel, FamilyResult};
    use accel::kernel::{CostReport, KernelResult};
    use runtime::stats::{LatencyHistogram, LATENCY_BUCKETS};

    fn round_trip_request(request: &Request) -> Request {
        decode_request(&encode_request(request).unwrap()).unwrap()
    }

    fn round_trip_response(response: &Response) -> Response {
        decode_response(&encode_response(response).unwrap()).unwrap()
    }

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::Hello {
                min_version: 1,
                max_version: 3,
            },
            Request::Ping { token: 0xDEAD_BEEF },
            Request::Submit {
                request_id: 7,
                timeout_ms: Some(250),
                seed: Some(42),
                policy: Some(DispatchPolicy::MinPredictedLatency),
                kernel: Kernel::Factor { n: 77 },
            },
            Request::Submit {
                request_id: 8,
                timeout_ms: None,
                seed: None,
                policy: None,
                kernel: Kernel::Compare { x: 0.1, y: 0.9 },
            },
            Request::Cancel { request_id: 7 },
            Request::GetStats { request_id: 9 },
        ];
        for request in &requests {
            assert_eq!(&round_trip_request(request), request);
        }
    }

    #[test]
    fn responses_round_trip() {
        let mut counts = [0u64; LATENCY_BUCKETS];
        counts[1] = 4;
        let responses = vec![
            Response::HelloAck { version: 1 },
            Response::Pong { token: 3 },
            Response::JobResult {
                request_id: 7,
                outcome: WireOutcome::Completed {
                    backend: "oscillator".into(),
                    result: KernelResult::Similarity(0.5),
                    cost: CostReport {
                        device_seconds: 2e-6,
                        operations: 64,
                    },
                    wall_nanos: 1_234,
                },
            },
            Response::JobResult {
                request_id: 8,
                outcome: WireOutcome::TimedOut,
            },
            Response::CancelResult {
                request_id: 7,
                cancelled: true,
            },
            Response::Stats {
                request_id: 9,
                stats: RuntimeStats {
                    submitted: 5,
                    completed: 5,
                    workers: 2,
                    latency: LatencyHistogram::from_counts(counts),
                    ..RuntimeStats::default()
                },
            },
            Response::Error {
                request_id: 0,
                code: ErrorCode::Busy,
                message: "server at connection limit".into(),
            },
        ];
        for response in &responses {
            assert_eq!(&round_trip_response(response), response);
        }
    }

    #[test]
    fn direction_confusion_fails_loudly() {
        let request = encode_request(&Request::Ping { token: 1 }).unwrap();
        assert!(matches!(
            decode_response(&request),
            Err(WireError::UnknownTag {
                context: "response",
                ..
            })
        ));
        let response = encode_response(&Response::Pong { token: 1 }).unwrap();
        assert!(matches!(
            decode_request(&response),
            Err(WireError::UnknownTag {
                context: "request",
                ..
            })
        ));
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::Busy,
            ErrorCode::Malformed,
            ErrorCode::UnsupportedVersion,
            ErrorCode::InvalidKernel,
            ErrorCode::QueueFull,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u8(code.to_u8()).unwrap(), code);
            assert!(!code.to_string().is_empty());
        }
        assert!(ErrorCode::from_u8(0).is_err());
        assert!(ErrorCode::from_u8(200).is_err());
    }

    #[test]
    fn negotiation_picks_highest_common_version() {
        assert_eq!(negotiate(1, 1), Some(1));
        assert_eq!(negotiate(1, 99), Some(PROTOCOL_VERSION));
        assert_eq!(
            negotiate(MIN_SUPPORTED_VERSION, PROTOCOL_VERSION),
            Some(PROTOCOL_VERSION)
        );
        // Client only speaks versions newer than ours.
        assert_eq!(negotiate(PROTOCOL_VERSION + 1, PROTOCOL_VERSION + 5), None);
        // Client only speaks versions older than we support.
        assert_eq!(negotiate(0, MIN_SUPPORTED_VERSION.wrapping_sub(1)), None);
        // Inverted range is nonsense.
        assert_eq!(negotiate(5, 1), None);
    }

    #[test]
    fn v1_submit_round_trips_without_policy_byte() {
        let submit = Request::Submit {
            request_id: 11,
            timeout_ms: Some(100),
            seed: Some(5),
            policy: None,
            kernel: Kernel::Factor { n: 21 },
        };
        let v1 = encode_request_v(&submit, 1).unwrap();
        let v2 = encode_request_v(&submit, 2).unwrap();
        // The v2 frame carries exactly one extra byte: the policy slot.
        assert_eq!(v2.len(), v1.len() + 1);
        assert_eq!(decode_request_v(&v1, 1).unwrap(), submit);
        // A v1 frame is NOT a valid v2 frame (the decoder would read the
        // kernel tag as a policy byte) — versions must be negotiated.
        assert_ne!(v1, v2);
    }

    #[test]
    fn v1_cannot_carry_policy_override() {
        let submit = Request::Submit {
            request_id: 11,
            timeout_ms: None,
            seed: None,
            policy: Some(DispatchPolicy::DeadlineAware),
            kernel: Kernel::Factor { n: 21 },
        };
        assert!(matches!(
            encode_request_v(&submit, 1),
            Err(WireError::Invalid {
                context: "submit policy",
                ..
            })
        ));
        assert!(encode_request_v(&submit, 2).is_ok());
    }

    #[test]
    fn hello_and_ack_encode_identically_across_versions() {
        let hello = Request::Hello {
            min_version: 1,
            max_version: 2,
        };
        assert_eq!(
            encode_request_v(&hello, 1).unwrap(),
            encode_request_v(&hello, 2).unwrap()
        );
        let ack = Response::HelloAck { version: 1 };
        assert_eq!(
            encode_response_v(&ack, 1).unwrap(),
            encode_response_v(&ack, 2).unwrap()
        );
    }

    #[test]
    fn gossip_round_trips_at_v5() {
        let gossip = Request::Gossip {
            request_id: 40,
            origin: u64::MAX,
            entries: vec![
                GossipEntry {
                    shard: 0,
                    status: GOSSIP_ALIVE,
                    failures: 0,
                    epoch: 12,
                },
                GossipEntry {
                    shard: 1,
                    status: GOSSIP_QUARANTINED,
                    failures: 5,
                    epoch: 9,
                },
            ],
        };
        let bytes = encode_request_v(&gossip, 5).unwrap();
        assert_eq!(decode_request_v(&bytes, 5).unwrap(), gossip);
        let ack = Response::GossipAck {
            request_id: 40,
            entries: vec![GossipEntry {
                shard: 1,
                status: GOSSIP_SUSPECT,
                failures: 2,
                epoch: 14,
            }],
        };
        let bytes = encode_response_v(&ack, 5).unwrap();
        assert_eq!(decode_response_v(&bytes, 5).unwrap(), ack);
    }

    #[test]
    fn gossip_refused_on_pre_v5_links() {
        let gossip = Request::Gossip {
            request_id: 1,
            origin: 0,
            entries: vec![],
        };
        let bytes = encode_request_v(&gossip, 5).unwrap();
        for version in 1..5 {
            assert!(matches!(
                encode_request_v(&gossip, version),
                Err(WireError::Invalid {
                    context: "gossip version",
                    ..
                })
            ));
            assert!(decode_request_v(&bytes, version).is_err());
        }
        let ack = Response::GossipAck {
            request_id: 1,
            entries: vec![],
        };
        assert!(encode_response_v(&ack, 4).is_err());
    }

    #[test]
    fn gossip_status_is_validated_at_decode() {
        let good = Request::Gossip {
            request_id: 2,
            origin: 3,
            entries: vec![GossipEntry {
                shard: 7,
                status: GOSSIP_ALIVE,
                failures: 0,
                epoch: 1,
            }],
        };
        let mut bytes = encode_request_v(&good, 5).unwrap();
        // The status byte sits after tag + request_id + origin + count + shard.
        let status_at = 1 + 8 + 8 + 4 + 4;
        bytes[status_at] = 3;
        assert!(matches!(
            decode_request_v(&bytes, 5),
            Err(WireError::Invalid {
                context: "gossip status",
                ..
            })
        ));
        // A hostile entry count is bounded by the bytes actually present.
        let mut short = encode_request_v(&good, 5).unwrap();
        short[1 + 8 + 8 + 3] = 200;
        assert!(decode_request_v(&short, 5).is_err());
    }

    #[test]
    fn v5_encoding_of_v4_messages_is_byte_identical() {
        let submit = Request::Submit {
            request_id: 7,
            timeout_ms: Some(250),
            seed: Some(42),
            policy: Some(DispatchPolicy::MinPredictedLatency),
            kernel: Kernel::Factor { n: 77 },
        };
        assert_eq!(
            encode_request_v(&submit, 4).unwrap(),
            encode_request_v(&submit, 5).unwrap()
        );
        let stats = Response::Stats {
            request_id: 9,
            stats: RuntimeStats {
                submitted: 5,
                completed: 5,
                ..RuntimeStats::default()
            },
        };
        assert_eq!(
            encode_response_v(&stats, 4).unwrap(),
            encode_response_v(&stats, 5).unwrap()
        );
    }

    fn family_submit() -> Request {
        Request::Submit {
            request_id: 21,
            timeout_ms: None,
            seed: Some(9),
            policy: None,
            kernel: Kernel::Family(FamilyKernel::Coloring(ColoringSpec {
                n_vertices: 3,
                n_colors: 2,
                edges: vec![(0, 1), (1, 2)],
            })),
        }
    }

    #[test]
    fn family_submit_round_trips_at_v6() {
        let submit = family_submit();
        let bytes = encode_request_v(&submit, 6).unwrap();
        assert_eq!(decode_request_v(&bytes, 6).unwrap(), submit);
        let result = Response::JobResult {
            request_id: 21,
            outcome: WireOutcome::Completed {
                backend: "oscillator".into(),
                result: KernelResult::Family(FamilyResult::Coloring {
                    colors: vec![0, 1, 0],
                    conflicts: 0,
                }),
                cost: CostReport {
                    device_seconds: 5.6e-6,
                    operations: 3,
                },
                wall_nanos: 900,
            },
        };
        let bytes = encode_response_v(&result, 6).unwrap();
        assert_eq!(decode_response_v(&bytes, 6).unwrap(), result);
    }

    #[test]
    fn family_frames_refused_on_pre_v6_links() {
        let submit = family_submit();
        let bytes = encode_request_v(&submit, 6).unwrap();
        for version in 1..6 {
            assert!(matches!(
                encode_request_v(&submit, version),
                Err(WireError::Invalid {
                    context: "family version",
                    ..
                })
            ));
            assert!(decode_request_v(&bytes, version).is_err());
        }
        let result = Response::JobResult {
            request_id: 1,
            outcome: WireOutcome::Completed {
                backend: "cpu".into(),
                result: KernelResult::Family(FamilyResult::Qubo {
                    bits: vec![true],
                    energy: -1.0,
                }),
                cost: CostReport {
                    device_seconds: 1e-9,
                    operations: 1,
                },
                wall_nanos: 10,
            },
        };
        assert!(matches!(
            encode_response_v(&result, 5),
            Err(WireError::Invalid {
                context: "family version",
                ..
            })
        ));
        let bytes = encode_response_v(&result, 6).unwrap();
        assert!(decode_response_v(&bytes, 5).is_err());
    }

    #[test]
    fn v6_encoding_of_v5_messages_is_byte_identical() {
        let submit = Request::Submit {
            request_id: 7,
            timeout_ms: Some(250),
            seed: Some(42),
            policy: Some(DispatchPolicy::MinPredictedLatency),
            kernel: Kernel::Factor { n: 77 },
        };
        assert_eq!(
            encode_request_v(&submit, 5).unwrap(),
            encode_request_v(&submit, 6).unwrap()
        );
        let gossip = Request::Gossip {
            request_id: 40,
            origin: 2,
            entries: vec![GossipEntry {
                shard: 0,
                status: GOSSIP_ALIVE,
                failures: 0,
                epoch: 12,
            }],
        };
        assert_eq!(
            encode_request_v(&gossip, 5).unwrap(),
            encode_request_v(&gossip, 6).unwrap()
        );
    }

    #[test]
    fn truncated_gossip_errors_not_panics() {
        let full = encode_request_v(
            &Request::Gossip {
                request_id: 3,
                origin: 1,
                entries: vec![GossipEntry {
                    shard: 0,
                    status: GOSSIP_SUSPECT,
                    failures: 1,
                    epoch: 2,
                }],
            },
            5,
        )
        .unwrap();
        for cut in 0..full.len() {
            assert!(
                decode_request_v(&full[..cut], 5).is_err(),
                "truncation at {cut} must error"
            );
        }
    }

    #[test]
    fn truncated_envelopes_error_not_panic() {
        let full = encode_request(&Request::Submit {
            request_id: 3,
            timeout_ms: Some(100),
            seed: None,
            policy: Some(DispatchPolicy::PreferSpecialized),
            kernel: Kernel::Factor { n: 33 },
        })
        .unwrap();
        for cut in 0..full.len() {
            assert!(
                decode_request(&full[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
        let full = encode_response(&Response::Error {
            request_id: 1,
            code: ErrorCode::Internal,
            message: "boom".into(),
        })
        .unwrap();
        for cut in 0..full.len() {
            assert!(
                decode_response(&full[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
    }
}
