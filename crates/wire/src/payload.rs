//! Payload codecs: kernels, results, costs, formulas, outcomes, stats.
//!
//! Every codec is a `put_*` / `get_*` pair over the bounds-checked
//! [`ByteWriter`] / [`ByteReader`]. Variant tags are one byte; collection
//! lengths are validated against protocol maxima *and* remaining input
//! before allocation; formulas are rebuilt through `mem::cnf`'s validating
//! constructors so a decoded formula is structurally sound by construction.

use crate::codec::{ByteReader, ByteWriter};
use crate::{WireError, MAX_CLAUSES, MAX_CLAUSE_WIDTH, MAX_FAMILY_BODY, MAX_SEQUENCE_LEN};
use accel::family::FamilyCodecError;
use accel::host::DispatchPolicy;
use accel::kernel::{CostReport, Kernel, KernelResult};
use mem::cnf::{Clause, Formula, Literal};
use runtime::stats::{BackendThroughput, LatencyHistogram, LATENCY_BUCKETS};
use runtime::{JobOutcome, RuntimeStats};
use std::collections::BTreeMap;

/// A job outcome as it travels the wire.
///
/// Mirrors [`runtime::JobOutcome`] but replaces the host-side
/// `KernelExecution` wrapper with its flattened fields and carries the
/// execution wall time in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub enum WireOutcome {
    /// The kernel executed.
    Completed {
        /// Name of the backend that ran the kernel.
        backend: String,
        /// The result payload.
        result: KernelResult,
        /// The modelled device cost.
        cost: CostReport,
        /// Host wall-clock execution time, in nanoseconds.
        wall_nanos: u64,
    },
    /// The backend returned an error (rendered).
    Failed(String),
    /// The job's queue deadline passed before a worker picked it up.
    TimedOut,
    /// The job was cancelled before it completed.
    Cancelled,
}

impl WireOutcome {
    /// Whether the outcome carries a kernel result.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        matches!(self, WireOutcome::Completed { .. })
    }
}

impl From<&JobOutcome> for WireOutcome {
    fn from(outcome: &JobOutcome) -> Self {
        match outcome {
            JobOutcome::Completed {
                backend,
                execution,
                wall,
            } => WireOutcome::Completed {
                backend: backend.clone(),
                result: execution.result.clone(),
                cost: execution.cost,
                wall_nanos: u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX),
            },
            JobOutcome::Failed(msg) => WireOutcome::Failed(msg.clone()),
            JobOutcome::TimedOut => WireOutcome::TimedOut,
            JobOutcome::Cancelled => WireOutcome::Cancelled,
        }
    }
}

// ---------------------------------------------------------------- kernels

pub(crate) fn put_kernel(w: &mut ByteWriter, kernel: &Kernel) -> Result<(), WireError> {
    match kernel {
        Kernel::Factor { n } => {
            w.put_u8(0);
            w.put_u64(*n);
        }
        Kernel::Search { n_qubits, marked } => {
            w.put_u8(1);
            w.put_u32(u32::try_from(*n_qubits).map_err(|_| too_large("search width"))?);
            put_seq_len(w, marked.len(), "marked items")?;
            for &item in marked {
                w.put_u64(item as u64);
            }
        }
        Kernel::DnaSimilarity { a, b, k } => {
            w.put_u8(2);
            w.put_str(a)?;
            w.put_str(b)?;
            w.put_u64(*k as u64);
        }
        Kernel::SolveSat { formula } => {
            w.put_u8(3);
            put_formula(w, formula)?;
        }
        Kernel::Compare { x, y } => {
            w.put_u8(4);
            w.put_f64(*x);
            w.put_f64(*y);
        }
        Kernel::Family(_) => {
            let (tag, body) = accel::family::encode_kernel_body(kernel).map_err(family_err)?;
            w.put_u8(5);
            put_family_body(w, tag, &body)?;
        }
    }
    Ok(())
}

pub(crate) fn get_kernel(r: &mut ByteReader<'_>) -> Result<Kernel, WireError> {
    match r.get_u8("kernel tag")? {
        0 => Ok(Kernel::Factor {
            n: r.get_u64("factor n")?,
        }),
        1 => {
            let n_qubits = r.get_u32("search width")? as usize;
            let count = r.get_count(MAX_SEQUENCE_LEN, 8, "marked items")?;
            let mut marked = Vec::with_capacity(count);
            for _ in 0..count {
                marked.push(r.get_usize("marked item")?);
            }
            Ok(Kernel::Search { n_qubits, marked })
        }
        2 => Ok(Kernel::DnaSimilarity {
            a: r.get_str("dna sequence a")?,
            b: r.get_str("dna sequence b")?,
            k: r.get_usize("dna k")?,
        }),
        3 => Ok(Kernel::SolveSat {
            formula: get_formula(r)?,
        }),
        4 => Ok(Kernel::Compare {
            x: r.get_f64("compare x")?,
            y: r.get_f64("compare y")?,
        }),
        5 => {
            let (tag, body) = get_family_body(r)?;
            accel::family::decode_kernel_body(tag, body).map_err(family_err)
        }
        tag => Err(WireError::UnknownTag {
            context: "kernel",
            tag,
        }),
    }
}

/// Encodes one kernel to a standalone byte buffer.
///
/// # Errors
///
/// [`WireError::TooLarge`] for out-of-bounds field sizes.
pub fn encode_kernel(kernel: &Kernel) -> Result<Vec<u8>, WireError> {
    let mut w = ByteWriter::new();
    put_kernel(&mut w, kernel)?;
    Ok(w.into_bytes())
}

/// Decodes one kernel from a standalone byte buffer, rejecting trailing
/// bytes.
///
/// # Errors
///
/// Any [`WireError`] decoding variant.
pub fn decode_kernel(bytes: &[u8]) -> Result<Kernel, WireError> {
    let mut r = ByteReader::new(bytes);
    let kernel = get_kernel(&mut r)?;
    r.finish()?;
    Ok(kernel)
}

// ---------------------------------------------------------------- results

pub(crate) fn put_kernel_result(
    w: &mut ByteWriter,
    result: &KernelResult,
) -> Result<(), WireError> {
    match result {
        KernelResult::Factors(p, q) => {
            w.put_u8(0);
            w.put_u64(*p);
            w.put_u64(*q);
        }
        KernelResult::Found(item) => {
            w.put_u8(1);
            w.put_u64(*item as u64);
        }
        KernelResult::Similarity(s) => {
            w.put_u8(2);
            w.put_f64(*s);
        }
        KernelResult::SatSolution(solution) => {
            w.put_u8(3);
            match solution {
                Some(bits) => {
                    w.put_u8(1);
                    put_seq_len(w, bits.len(), "sat assignment")?;
                    for &bit in bits {
                        w.put_u8(u8::from(bit));
                    }
                }
                None => w.put_u8(0),
            }
        }
        KernelResult::Distance(d) => {
            w.put_u8(4);
            w.put_f64(*d);
        }
        KernelResult::Family(family_result) => {
            let (tag, body) =
                accel::family::encode_result_body(family_result).map_err(family_err)?;
            w.put_u8(5);
            put_family_body(w, tag, &body)?;
        }
    }
    Ok(())
}

pub(crate) fn get_kernel_result(r: &mut ByteReader<'_>) -> Result<KernelResult, WireError> {
    match r.get_u8("result tag")? {
        0 => Ok(KernelResult::Factors(
            r.get_u64("factor p")?,
            r.get_u64("factor q")?,
        )),
        1 => Ok(KernelResult::Found(r.get_usize("found item")?)),
        2 => Ok(KernelResult::Similarity(r.get_f64("similarity")?)),
        3 => match r.get_u8("sat solution flag")? {
            0 => Ok(KernelResult::SatSolution(None)),
            1 => {
                let count = r.get_count(MAX_SEQUENCE_LEN, 1, "sat assignment")?;
                let mut bits = Vec::with_capacity(count);
                for _ in 0..count {
                    match r.get_u8("sat assignment bit")? {
                        0 => bits.push(false),
                        1 => bits.push(true),
                        bit => {
                            return Err(WireError::Invalid {
                                context: "sat assignment bit",
                                detail: format!("expected 0 or 1, got {bit}"),
                            })
                        }
                    }
                }
                Ok(KernelResult::SatSolution(Some(bits)))
            }
            flag => Err(WireError::Invalid {
                context: "sat solution flag",
                detail: format!("expected 0 or 1, got {flag}"),
            }),
        },
        4 => Ok(KernelResult::Distance(r.get_f64("distance")?)),
        5 => {
            let (tag, body) = get_family_body(r)?;
            accel::family::decode_result_body(tag, body).map_err(family_err)
        }
        tag => Err(WireError::UnknownTag {
            context: "kernel result",
            tag,
        }),
    }
}

/// Encodes one kernel result to a standalone byte buffer — also the
/// canonical byte representation the load generator compares for its
/// byte-for-byte cross-wire determinism check.
///
/// # Errors
///
/// [`WireError::TooLarge`] for out-of-bounds field sizes.
pub fn encode_kernel_result(result: &KernelResult) -> Result<Vec<u8>, WireError> {
    let mut w = ByteWriter::new();
    put_kernel_result(&mut w, result)?;
    Ok(w.into_bytes())
}

/// Decodes one kernel result from a standalone byte buffer, rejecting
/// trailing bytes.
///
/// # Errors
///
/// Any [`WireError`] decoding variant.
pub fn decode_kernel_result(bytes: &[u8]) -> Result<KernelResult, WireError> {
    let mut r = ByteReader::new(bytes);
    let result = get_kernel_result(&mut r)?;
    r.finish()?;
    Ok(result)
}

// ------------------------------------------------------------------ costs

pub(crate) fn put_cost(w: &mut ByteWriter, cost: &CostReport) {
    w.put_f64(cost.device_seconds);
    w.put_u64(cost.operations);
}

pub(crate) fn get_cost(r: &mut ByteReader<'_>) -> Result<CostReport, WireError> {
    Ok(CostReport {
        device_seconds: r.get_f64("cost device seconds")?,
        operations: r.get_u64("cost operations")?,
    })
}

// --------------------------------------------------------------- policies

/// One byte: 0 = no override, 1..=5 = the five [`DispatchPolicy`]
/// variants. Present in `Submit` payloads only at protocol version ≥ 2.
pub(crate) fn put_policy(w: &mut ByteWriter, policy: Option<DispatchPolicy>) {
    let code = match policy {
        None => 0u8,
        Some(DispatchPolicy::PreferSpecialized) => 1,
        Some(DispatchPolicy::CpuOnly) => 2,
        Some(DispatchPolicy::MinPredictedLatency) => 3,
        Some(DispatchPolicy::MinPredictedEnergy) => 4,
        Some(DispatchPolicy::DeadlineAware) => 5,
    };
    w.put_u8(code);
}

pub(crate) fn get_policy(r: &mut ByteReader<'_>) -> Result<Option<DispatchPolicy>, WireError> {
    match r.get_u8("dispatch policy")? {
        0 => Ok(None),
        1 => Ok(Some(DispatchPolicy::PreferSpecialized)),
        2 => Ok(Some(DispatchPolicy::CpuOnly)),
        3 => Ok(Some(DispatchPolicy::MinPredictedLatency)),
        4 => Ok(Some(DispatchPolicy::MinPredictedEnergy)),
        5 => Ok(Some(DispatchPolicy::DeadlineAware)),
        tag => Err(WireError::UnknownTag {
            context: "dispatch policy",
            tag,
        }),
    }
}

// --------------------------------------------------------------- formulas

pub(crate) fn put_formula(w: &mut ByteWriter, formula: &Formula) -> Result<(), WireError> {
    w.put_u32(u32::try_from(formula.n_vars()).map_err(|_| too_large("formula variables"))?);
    let clauses = formula.clauses();
    if clauses.len() as u64 > u64::from(MAX_CLAUSES) {
        return Err(WireError::TooLarge {
            context: "formula clauses",
            len: clauses.len() as u64,
            max: u64::from(MAX_CLAUSES),
        });
    }
    w.put_u32(clauses.len() as u32);
    for clause in clauses {
        if clause.len() as u64 > u64::from(MAX_CLAUSE_WIDTH) {
            return Err(WireError::TooLarge {
                context: "clause width",
                len: clause.len() as u64,
                max: u64::from(MAX_CLAUSE_WIDTH),
            });
        }
        w.put_u32(clause.len() as u32);
        for lit in clause.literals() {
            w.put_i64(lit.to_dimacs());
        }
    }
    Ok(())
}

pub(crate) fn get_formula(r: &mut ByteReader<'_>) -> Result<Formula, WireError> {
    let n_vars = r.get_u32("formula variables")? as usize;
    // Each clause needs at least a length word plus one literal.
    let clause_count = r.get_count(MAX_CLAUSES, 12, "formula clauses")?;
    let mut clauses = Vec::with_capacity(clause_count);
    for _ in 0..clause_count {
        let width = r.get_count(MAX_CLAUSE_WIDTH, 8, "clause width")?;
        let mut literals = Vec::with_capacity(width);
        for _ in 0..width {
            let code = r.get_i64("literal")?;
            literals.push(Literal::from_dimacs(code).map_err(|e| WireError::Invalid {
                context: "literal",
                detail: e.to_string(),
            })?);
        }
        clauses.push(Clause::new(literals).map_err(|e| WireError::Invalid {
            context: "clause",
            detail: e.to_string(),
        })?);
    }
    Formula::new(n_vars, clauses).map_err(|e| WireError::Invalid {
        context: "formula",
        detail: e.to_string(),
    })
}

// --------------------------------------------------------------- outcomes

pub(crate) fn put_outcome(w: &mut ByteWriter, outcome: &WireOutcome) -> Result<(), WireError> {
    match outcome {
        WireOutcome::Completed {
            backend,
            result,
            cost,
            wall_nanos,
        } => {
            w.put_u8(0);
            w.put_str(backend)?;
            put_kernel_result(w, result)?;
            put_cost(w, cost);
            w.put_u64(*wall_nanos);
        }
        WireOutcome::Failed(msg) => {
            w.put_u8(1);
            w.put_str(msg)?;
        }
        WireOutcome::TimedOut => w.put_u8(2),
        WireOutcome::Cancelled => w.put_u8(3),
    }
    Ok(())
}

pub(crate) fn get_outcome(r: &mut ByteReader<'_>) -> Result<WireOutcome, WireError> {
    match r.get_u8("outcome tag")? {
        0 => Ok(WireOutcome::Completed {
            backend: r.get_str("backend name")?,
            result: get_kernel_result(r)?,
            cost: get_cost(r)?,
            wall_nanos: r.get_u64("wall nanos")?,
        }),
        1 => Ok(WireOutcome::Failed(r.get_str("failure message")?)),
        2 => Ok(WireOutcome::TimedOut),
        3 => Ok(WireOutcome::Cancelled),
        tag => Err(WireError::UnknownTag {
            context: "outcome",
            tag,
        }),
    }
}

// ------------------------------------------------------------------ stats

/// Encodes a stats snapshot at `version`. Version 1 peers receive the
/// original row layout; version ≥ 2 rows append the prediction-tracking
/// triple (predicted device seconds, EWMA correction, EWMA error);
/// version ≥ 3 adds the global fault counters after the worker count and
/// a per-row fault count after the triple; version ≥ 4 adds the global
/// admission counters (cache hits/misses/evictions, coalesced, hedged,
/// hedge-cancelled) after the fault-counter block.
pub(crate) fn put_stats(
    w: &mut ByteWriter,
    stats: &RuntimeStats,
    version: u16,
) -> Result<(), WireError> {
    w.put_u64(stats.submitted);
    w.put_u64(stats.completed);
    w.put_u64(stats.failed);
    w.put_u64(stats.rejected);
    w.put_u64(stats.invalid);
    w.put_u64(stats.timed_out);
    w.put_u64(stats.cancelled);
    w.put_u64(stats.queue_depth as u64);
    w.put_u64(stats.workers as u64);
    if version >= 3 {
        w.put_u64(stats.backend_faults);
        w.put_u64(stats.retries);
        w.put_u64(stats.reroutes);
        w.put_u64(stats.quarantine_events);
        w.put_u64(stats.recovery_probes);
    }
    if version >= 4 {
        w.put_u64(stats.cache_hits);
        w.put_u64(stats.cache_misses);
        w.put_u64(stats.cache_evictions);
        w.put_u64(stats.coalesced);
        w.put_u64(stats.hedged);
        w.put_u64(stats.hedge_cancelled);
    }
    if stats.per_backend.len() as u64 > u64::from(MAX_SEQUENCE_LEN) {
        return Err(WireError::TooLarge {
            context: "backend table",
            len: stats.per_backend.len() as u64,
            max: u64::from(MAX_SEQUENCE_LEN),
        });
    }
    w.put_u32(stats.per_backend.len() as u32);
    for (name, t) in &stats.per_backend {
        w.put_str(name)?;
        w.put_u64(t.jobs);
        w.put_f64(t.device_seconds);
        w.put_u64(t.operations);
        w.put_f64(t.busy_seconds);
        if version >= 2 {
            w.put_f64(t.predicted_device_seconds);
            w.put_f64(t.ewma_correction);
            w.put_f64(t.ewma_error);
        }
        if version >= 3 {
            w.put_u64(t.faults);
        }
    }
    w.put_u32(LATENCY_BUCKETS as u32);
    for &count in stats.latency.counts() {
        w.put_u64(count);
    }
    Ok(())
}

pub(crate) fn get_stats(r: &mut ByteReader<'_>, version: u16) -> Result<RuntimeStats, WireError> {
    let submitted = r.get_u64("stats submitted")?;
    let completed = r.get_u64("stats completed")?;
    let failed = r.get_u64("stats failed")?;
    let rejected = r.get_u64("stats rejected")?;
    let invalid = r.get_u64("stats invalid")?;
    let timed_out = r.get_u64("stats timed out")?;
    let cancelled = r.get_u64("stats cancelled")?;
    let queue_depth = r.get_usize("stats queue depth")?;
    let workers = r.get_usize("stats workers")?;
    let (backend_faults, retries, reroutes, quarantine_events, recovery_probes) = if version >= 3 {
        (
            r.get_u64("stats backend faults")?,
            r.get_u64("stats retries")?,
            r.get_u64("stats reroutes")?,
            r.get_u64("stats quarantine events")?,
            r.get_u64("stats recovery probes")?,
        )
    } else {
        (0, 0, 0, 0, 0)
    };
    let (cache_hits, cache_misses, cache_evictions, coalesced, hedged, hedge_cancelled) =
        if version >= 4 {
            (
                r.get_u64("stats cache hits")?,
                r.get_u64("stats cache misses")?,
                r.get_u64("stats cache evictions")?,
                r.get_u64("stats coalesced")?,
                r.get_u64("stats hedged")?,
                r.get_u64("stats hedge cancelled")?,
            )
        } else {
            (0, 0, 0, 0, 0, 0)
        };
    let backend_count = r.get_count(MAX_SEQUENCE_LEN, 37, "backend table")?;
    let mut per_backend = BTreeMap::new();
    for _ in 0..backend_count {
        let name = r.get_str("backend name")?;
        let mut t = BackendThroughput {
            jobs: r.get_u64("backend jobs")?,
            device_seconds: r.get_f64("backend device seconds")?,
            operations: r.get_u64("backend operations")?,
            busy_seconds: r.get_f64("backend busy seconds")?,
            ..BackendThroughput::default()
        };
        if version >= 2 {
            t.predicted_device_seconds = r.get_f64("backend predicted seconds")?;
            t.ewma_correction = r.get_f64("backend ewma correction")?;
            t.ewma_error = r.get_f64("backend ewma error")?;
        }
        if version >= 3 {
            t.faults = r.get_u64("backend faults")?;
        }
        per_backend.insert(name, t);
    }
    let bucket_count = r.get_count(MAX_SEQUENCE_LEN, 8, "latency buckets")?;
    if bucket_count != LATENCY_BUCKETS {
        return Err(WireError::Invalid {
            context: "latency buckets",
            detail: format!("expected {LATENCY_BUCKETS} buckets, got {bucket_count}"),
        });
    }
    let mut counts = [0u64; LATENCY_BUCKETS];
    for slot in &mut counts {
        *slot = r.get_u64("latency bucket count")?;
    }
    Ok(RuntimeStats {
        submitted,
        completed,
        failed,
        rejected,
        invalid,
        timed_out,
        cancelled,
        queue_depth,
        workers,
        per_backend,
        latency: LatencyHistogram::from_counts(counts),
        backend_faults,
        retries,
        reroutes,
        quarantine_events,
        recovery_probes,
        cache_hits,
        cache_misses,
        cache_evictions,
        coalesced,
        hedged,
        hedge_cancelled,
    })
}

// ---------------------------------------------------- family frames (v6)

/// Writes the generic family frame introduced at protocol version 6:
/// u16 registry family tag, u32 body length, then the family-owned body
/// bytes (encoded by the family's registry entry, opaque to this layer).
fn put_family_body(w: &mut ByteWriter, tag: u16, body: &[u8]) -> Result<(), WireError> {
    if body.len() as u64 > u64::from(MAX_FAMILY_BODY) {
        return Err(WireError::TooLarge {
            context: "family body",
            len: body.len() as u64,
            max: u64::from(MAX_FAMILY_BODY),
        });
    }
    w.put_u16(tag);
    w.put_u32(body.len() as u32);
    w.put_bytes(body);
    Ok(())
}

/// Reads one generic family frame: the registry tag plus the exact body
/// slice. The length prefix is validated against [`MAX_FAMILY_BODY`] and
/// the remaining input before the slice is taken.
fn get_family_body<'a>(r: &mut ByteReader<'a>) -> Result<(u16, &'a [u8]), WireError> {
    let tag = r.get_u16("family tag")?;
    let len = r.get_count(MAX_FAMILY_BODY, 1, "family body")?;
    let body = r.get_bytes(len, "family body")?;
    Ok((tag, body))
}

/// Maps a family body codec error onto the wire error taxonomy. A family
/// tag is a u16, so its unknown-tag case cannot reuse
/// [`WireError::UnknownTag`] (a u8 slot) and lands on `Invalid` instead.
fn family_err(err: FamilyCodecError) -> WireError {
    match err {
        FamilyCodecError::UnknownTag { tag } => WireError::Invalid {
            context: "family tag",
            detail: format!("unknown kernel family tag {tag}"),
        },
        FamilyCodecError::LegacyFraming { family } => WireError::Invalid {
            context: "family frame",
            detail: format!("family `{family}` uses native v1 framing"),
        },
        FamilyCodecError::Truncated { context } => WireError::Truncated { context },
        FamilyCodecError::TooLarge { context, len, max } => {
            WireError::TooLarge { context, len, max }
        }
        FamilyCodecError::Invalid { context, detail } => WireError::Invalid { context, detail },
        FamilyCodecError::TrailingBytes { context, remaining } => WireError::Invalid {
            context,
            detail: format!("{remaining} trailing bytes inside a family body"),
        },
    }
}

// ---------------------------------------------------------------- helpers

fn put_seq_len(w: &mut ByteWriter, len: usize, context: &'static str) -> Result<(), WireError> {
    if len as u64 > u64::from(MAX_SEQUENCE_LEN) {
        return Err(WireError::TooLarge {
            context,
            len: len as u64,
            max: u64::from(MAX_SEQUENCE_LEN),
        });
    }
    w.put_u32(len as u32);
    Ok(())
}

fn too_large(context: &'static str) -> WireError {
    WireError::TooLarge {
        context,
        len: u64::MAX,
        max: u64::from(u32::MAX),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel::family::{ColoringSpec, FamilyKernel, FamilyResult, QuboSpec};
    use mem::generators::planted_3sat;
    use std::time::Duration;

    fn round_trip_kernel(kernel: &Kernel) -> Kernel {
        decode_kernel(&encode_kernel(kernel).unwrap()).unwrap()
    }

    fn round_trip_result(result: &KernelResult) -> KernelResult {
        decode_kernel_result(&encode_kernel_result(result).unwrap()).unwrap()
    }

    #[test]
    fn kernels_round_trip() {
        let sat = planted_3sat(12, 3.5, 3).unwrap();
        let kernels = vec![
            Kernel::Factor { n: 91 },
            Kernel::Search {
                n_qubits: 6,
                marked: vec![0, 17, 63],
            },
            Kernel::DnaSimilarity {
                a: "ACGTACGT".into(),
                b: "TTGCACGA".into(),
                k: 3,
            },
            Kernel::SolveSat {
                formula: sat.formula,
            },
            Kernel::Compare { x: 0.25, y: 0.75 },
        ];
        for kernel in &kernels {
            assert_eq!(&round_trip_kernel(kernel), kernel);
        }
    }

    #[test]
    fn results_round_trip() {
        let results = vec![
            KernelResult::Factors(7, 13),
            KernelResult::Found(42),
            KernelResult::Similarity(0.815),
            KernelResult::SatSolution(None),
            KernelResult::SatSolution(Some(vec![true, false, true])),
            KernelResult::Distance(1.0 / 3.0),
        ];
        for result in &results {
            assert_eq!(&round_trip_result(result), result);
        }
    }

    #[test]
    fn float_payloads_are_byte_exact() {
        let tricky = [0.1 + 0.2, f64::MIN_POSITIVE, -0.0, 1e-300];
        for &v in &tricky {
            let bytes = encode_kernel_result(&KernelResult::Distance(v)).unwrap();
            match decode_kernel_result(&bytes).unwrap() {
                KernelResult::Distance(back) => assert_eq!(back.to_bits(), v.to_bits()),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn outcomes_round_trip() {
        let outcomes = vec![
            WireOutcome::Completed {
                backend: "quantum".into(),
                result: KernelResult::Factors(3, 5),
                cost: CostReport {
                    device_seconds: 1.5e-6,
                    operations: 240,
                },
                wall_nanos: 81_000,
            },
            WireOutcome::Failed("backend exploded".into()),
            WireOutcome::TimedOut,
            WireOutcome::Cancelled,
        ];
        for outcome in &outcomes {
            let mut w = ByteWriter::new();
            put_outcome(&mut w, outcome).unwrap();
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(&get_outcome(&mut r).unwrap(), outcome);
            r.finish().unwrap();
        }
    }

    #[test]
    fn job_outcome_conversion() {
        let wall = Duration::from_micros(55);
        let outcome = JobOutcome::Completed {
            backend: "cpu".into(),
            execution: accel::kernel::KernelExecution {
                result: KernelResult::Found(9),
                cost: CostReport {
                    device_seconds: 0.5,
                    operations: 3,
                },
            },
            wall,
        };
        match WireOutcome::from(&outcome) {
            WireOutcome::Completed {
                backend,
                result,
                wall_nanos,
                ..
            } => {
                assert_eq!(backend, "cpu");
                assert_eq!(result, KernelResult::Found(9));
                assert_eq!(wall_nanos, 55_000);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            WireOutcome::from(&JobOutcome::TimedOut),
            WireOutcome::TimedOut
        );
        assert!(!WireOutcome::Cancelled.is_completed());
    }

    fn sample_stats() -> RuntimeStats {
        let mut per_backend = BTreeMap::new();
        per_backend.insert(
            "memcomputing".to_string(),
            BackendThroughput {
                jobs: 12,
                device_seconds: 3.5e-3,
                operations: 90_000,
                busy_seconds: 0.82,
                predicted_device_seconds: 3.1e-3,
                ewma_correction: 1.13,
                ewma_error: 0.11,
                faults: 5,
            },
        );
        let mut counts = [0u64; LATENCY_BUCKETS];
        counts[2] = 7;
        RuntimeStats {
            submitted: 20,
            completed: 12,
            failed: 1,
            rejected: 2,
            invalid: 3,
            timed_out: 1,
            cancelled: 1,
            queue_depth: 4,
            workers: 6,
            per_backend,
            latency: LatencyHistogram::from_counts(counts),
            backend_faults: 5,
            retries: 3,
            reroutes: 2,
            quarantine_events: 1,
            recovery_probes: 4,
            cache_hits: 9,
            cache_misses: 11,
            cache_evictions: 2,
            coalesced: 6,
            hedged: 5,
            hedge_cancelled: 3,
        }
    }

    #[test]
    fn stats_round_trip_v4() {
        let stats = sample_stats();
        let mut w = ByteWriter::new();
        put_stats(&mut w, &stats, 4).unwrap();
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_stats(&mut r, 4).unwrap(), stats);
        r.finish().unwrap();
    }

    #[test]
    fn stats_round_trip_v3() {
        let stats = sample_stats();
        let mut w = ByteWriter::new();
        put_stats(&mut w, &stats, 3).unwrap();
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = get_stats(&mut r, 3).unwrap();
        r.finish().unwrap();
        // v3 peers never see the admission counters; everything else survives.
        assert_eq!(back.cache_hits, 0);
        assert_eq!(back.cache_misses, 0);
        assert_eq!(back.cache_evictions, 0);
        assert_eq!(back.coalesced, 0);
        assert_eq!(back.hedged, 0);
        assert_eq!(back.hedge_cancelled, 0);
        assert_eq!(back.backend_faults, stats.backend_faults);
        assert_eq!(back.retries, stats.retries);
        assert_eq!(back.per_backend, stats.per_backend);
        assert_eq!(back.latency, stats.latency);
    }

    #[test]
    fn stats_round_trip_v2() {
        let stats = sample_stats();
        let mut w = ByteWriter::new();
        put_stats(&mut w, &stats, 2).unwrap();
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = get_stats(&mut r, 2).unwrap();
        r.finish().unwrap();
        // v2 peers never see the fault counters; everything else survives.
        assert_eq!(back.backend_faults, 0);
        assert_eq!(back.retries, 0);
        assert_eq!(back.reroutes, 0);
        assert_eq!(back.per_backend["memcomputing"].faults, 0);
        assert_eq!(back.submitted, stats.submitted);
        assert_eq!(back.workers, stats.workers);
        assert_eq!(
            back.per_backend["memcomputing"].ewma_correction,
            stats.per_backend["memcomputing"].ewma_correction
        );
        assert_eq!(back.latency, stats.latency);
    }

    #[test]
    fn stats_v1_drops_prediction_fields() {
        let stats = sample_stats();
        let mut w = ByteWriter::new();
        put_stats(&mut w, &stats, 1).unwrap();
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = get_stats(&mut r, 1).unwrap();
        r.finish().unwrap();
        let t = &back.per_backend["memcomputing"];
        // v1 rows carry no prediction triple; the decoder fills defaults.
        assert_eq!(t.predicted_device_seconds, 0.0);
        assert_eq!(t.ewma_correction, 1.0);
        assert_eq!(t.ewma_error, 0.0);
        assert_eq!(t.jobs, 12);
        assert_eq!(t.busy_seconds, 0.82);
    }

    #[test]
    fn policies_round_trip() {
        let policies = [
            None,
            Some(DispatchPolicy::PreferSpecialized),
            Some(DispatchPolicy::CpuOnly),
            Some(DispatchPolicy::MinPredictedLatency),
            Some(DispatchPolicy::MinPredictedEnergy),
            Some(DispatchPolicy::DeadlineAware),
        ];
        for policy in policies {
            let mut w = ByteWriter::new();
            put_policy(&mut w, policy);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(get_policy(&mut r).unwrap(), policy);
            r.finish().unwrap();
        }
        let mut r = ByteReader::new(&[6]);
        assert!(matches!(
            get_policy(&mut r),
            Err(WireError::UnknownTag {
                context: "dispatch policy",
                tag: 6,
            })
        ));
    }

    #[test]
    fn malformed_formula_rejected() {
        // An empty clause is structurally invalid and must be caught by
        // the validating constructors, not panic downstream.
        let mut w = ByteWriter::new();
        w.put_u32(3); // n_vars
        w.put_u32(1); // one clause
        w.put_u32(0); // of width zero
        w.put_u64(0); // padding past the per-clause size floor
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            get_formula(&mut r),
            Err(WireError::Invalid { .. })
        ));
        // Literal 0 is the DIMACS terminator, never a literal.
        let mut w = ByteWriter::new();
        w.put_u32(3);
        w.put_u32(1);
        w.put_u32(1);
        w.put_i64(0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            get_formula(&mut r),
            Err(WireError::Invalid { .. })
        ));
        // Out-of-range variable index.
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_u32(1);
        w.put_u32(1);
        w.put_i64(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            get_formula(&mut r),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn hostile_clause_count_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(3);
        w.put_u32(u32::MAX); // claims 4 billion clauses with no bytes behind it
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let err = get_formula(&mut r).unwrap_err();
        assert!(
            matches!(
                err,
                WireError::TooLarge { .. } | WireError::Truncated { .. }
            ),
            "unexpected {err}"
        );
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(matches!(
            decode_kernel(&[200]),
            Err(WireError::UnknownTag {
                context: "kernel",
                tag: 200,
            })
        ));
        assert!(matches!(
            decode_kernel_result(&[99]),
            Err(WireError::UnknownTag { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_kernel(&Kernel::Factor { n: 15 }).unwrap();
        bytes.push(0);
        assert!(matches!(
            decode_kernel(&bytes),
            Err(WireError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn bad_sat_bits_rejected() {
        let mut w = ByteWriter::new();
        w.put_u8(3); // SatSolution
        w.put_u8(1); // present
        w.put_u32(1); // one bit
        w.put_u8(7); // not a bool
        let bytes = w.into_bytes();
        assert!(matches!(
            decode_kernel_result(&bytes),
            Err(WireError::Invalid { .. })
        ));
    }

    fn coloring_kernel() -> Kernel {
        Kernel::Family(FamilyKernel::Coloring(ColoringSpec {
            n_vertices: 4,
            n_colors: 2,
            edges: vec![(0, 1), (1, 2), (2, 3), (3, 0)],
        }))
    }

    fn qubo_kernel() -> Kernel {
        Kernel::Family(FamilyKernel::Qubo(QuboSpec {
            n_vars: 3,
            linear: vec![(0, 1.5), (2, -0.25)],
            quadratic: vec![(0, 1, -2.0), (1, 2, 0.5)],
        }))
    }

    #[test]
    fn family_kernels_round_trip() {
        for kernel in [coloring_kernel(), qubo_kernel()] {
            assert_eq!(round_trip_kernel(&kernel), kernel);
        }
    }

    #[test]
    fn family_results_round_trip() {
        let results = vec![
            KernelResult::Family(FamilyResult::Coloring {
                colors: vec![0, 1, 0, 1],
                conflicts: 0,
            }),
            KernelResult::Family(FamilyResult::Qubo {
                bits: vec![true, false, true],
                energy: -1.75,
            }),
        ];
        for result in &results {
            assert_eq!(&round_trip_result(result), result);
        }
    }

    #[test]
    fn family_frame_layout_is_tag_then_length_prefixed_body() {
        let bytes = encode_kernel(&coloring_kernel()).unwrap();
        assert_eq!(bytes[0], 5, "generic family frames use kernel tag 5");
        assert_eq!(
            u16::from_be_bytes([bytes[1], bytes[2]]),
            6,
            "coloring carries registry family tag 6"
        );
        let body_len = u32::from_be_bytes([bytes[3], bytes[4], bytes[5], bytes[6]]) as usize;
        assert_eq!(bytes.len(), 7 + body_len, "body length prefix is exact");
    }

    #[test]
    fn unknown_family_tag_rejected() {
        let mut w = ByteWriter::new();
        w.put_u8(5); // family frame
        w.put_u16(999); // no such family
        w.put_u32(1);
        w.put_u8(0);
        let bytes = w.into_bytes();
        assert!(matches!(
            decode_kernel(&bytes),
            Err(WireError::Invalid {
                context: "family tag",
                ..
            })
        ));
    }

    #[test]
    fn legacy_families_refuse_generic_framing() {
        // Registry tag 1 is Factor, which is natively framed (kernel tag
        // 0); smuggling it through a family frame must be rejected, not
        // silently accepted as a second encoding of the same kernel.
        let mut w = ByteWriter::new();
        w.put_u8(5);
        w.put_u16(1);
        w.put_u32(8);
        w.put_u64(21);
        let bytes = w.into_bytes();
        assert!(matches!(
            decode_kernel(&bytes),
            Err(WireError::Invalid {
                context: "family frame",
                ..
            })
        ));
    }

    #[test]
    fn truncated_family_frames_error_not_panic() {
        for kernel in [coloring_kernel(), qubo_kernel()] {
            let full = encode_kernel(&kernel).unwrap();
            for cut in 0..full.len() {
                assert!(
                    decode_kernel(&full[..cut]).is_err(),
                    "truncation at {cut} must error"
                );
            }
        }
        let full = encode_kernel_result(&KernelResult::Family(FamilyResult::Qubo {
            bits: vec![true, false],
            energy: 0.5,
        }))
        .unwrap();
        for cut in 0..full.len() {
            assert!(
                decode_kernel_result(&full[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
    }

    #[test]
    fn hostile_family_body_length_rejected() {
        // A body length claiming more bytes than remain must fail before
        // any allocation.
        let mut w = ByteWriter::new();
        w.put_u8(5);
        w.put_u16(6);
        w.put_u32(u32::MAX);
        w.put_u8(0);
        let bytes = w.into_bytes();
        let err = decode_kernel(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                WireError::TooLarge { .. } | WireError::Truncated { .. }
            ),
            "unexpected {err}"
        );
    }

    #[test]
    fn family_body_trailing_bytes_rejected() {
        // Pad a valid coloring body with one extra byte inside the
        // length-prefixed region: the family decoder must notice.
        let (tag, mut body) = accel::family::encode_kernel_body(&coloring_kernel()).unwrap();
        body.push(0);
        let mut w = ByteWriter::new();
        w.put_u8(5);
        w.put_u16(tag);
        w.put_u32(body.len() as u32);
        w.put_bytes(&body);
        let bytes = w.into_bytes();
        assert!(matches!(
            decode_kernel(&bytes),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn family_frames_are_deterministic() {
        for kernel in [coloring_kernel(), qubo_kernel()] {
            assert_eq!(
                encode_kernel(&kernel).unwrap(),
                encode_kernel(&kernel).unwrap()
            );
        }
    }
}
