//! Cluster scaling benchmark: the same duplicate-heavy workload served
//! by a 1-shard and a 2-shard cluster, with a byte-for-byte determinism
//! check against a direct in-process runtime. Emits `BENCH_cluster.json`.
//!
//! **What the speedup measures.** Each shard runs one worker and a
//! bounded admission result cache that is deliberately *smaller than the
//! unique key pool* (capacity 24 vs 40 uniques). On one shard the
//! random-access duplicate stream thrashes the LRU — roughly
//! `(U - C) / U` of the duplicate traffic misses and recomputes. Two
//! shards split the key space by the router's consistent hash, so each
//! shard's resident set (~20 keys) fits its cache and nearly every
//! duplicate is a hit. The speedup is therefore *aggregate cache*
//! scaling — the shards' caches add up because key affinity keeps every
//! canonical kernel on one shard — not thread parallelism (the harness
//! is a single closed-loop client, and this container has one core).
//!
//! The compute per miss is a Grover search simulated at 12 qubits under
//! `PreferSpecialized`, expensive enough (~10ms) that cache behavior,
//! not wire overhead, dominates the wall clock.
//!
//! Run with: `cargo run --release --example cluster_bench` (add
//! `-- --quick` for a smaller job count in smoke tests).

use accel::kernel::Kernel;
use cluster::{Router, RouterConfig};
use numerics::rng::{rng_from_seed, Rng};
use rebooting_models::workload::job_seeds;
use runtime::{
    AdmissionConfig, DispatchPolicy, JobOptions, QuarantinePolicy, Runtime, RuntimeConfig,
};
use server::{Server, ServerConfig};
use std::time::Instant;
use wire::{encode_kernel_result, WireError, WireOutcome};

const MASTER_SEED: u64 = 2019;
const N_QUBITS: usize = 12;
const UNIQUES: usize = 40;
const CACHE_CAPACITY: usize = 24;
const POLICY: DispatchPolicy = DispatchPolicy::PreferSpecialized;

/// The duplicate-heavy stream: `uniques` distinct Grover searches (one
/// marked item each, so every kernel has its own canonical key), then
/// seeded-random repeats that keep each original's seed — the same
/// shape as `workload::duplicate_heavy_workload`, pinned to a kernel
/// family whose recompute cost dwarfs the wire round-trip.
fn bench_workload(jobs: usize) -> (Vec<Kernel>, Vec<u64>) {
    let pool: Vec<Kernel> = (0..UNIQUES)
        .map(|i| Kernel::Search {
            n_qubits: N_QUBITS,
            marked: vec![(i * 97) % (1 << N_QUBITS)],
        })
        .collect();
    let pool_seeds = job_seeds(UNIQUES, MASTER_SEED);
    let mut rng = rng_from_seed(MASTER_SEED ^ 0x9e37_79b9_7f4a_7c15);
    let mut kernels = Vec::with_capacity(jobs);
    let mut seeds = Vec::with_capacity(jobs);
    for i in 0..jobs {
        let src = if i < UNIQUES {
            i
        } else {
            rng.gen_range(0..UNIQUES)
        };
        kernels.push(pool[src].clone());
        seeds.push(pool_seeds[src]);
    }
    (kernels, seeds)
}

/// Same canonical outcome fingerprint as `examples/loadgen.rs`.
fn wire_fingerprint(outcome: &WireOutcome) -> Result<Vec<u8>, WireError> {
    Ok(match outcome {
        WireOutcome::Completed {
            backend, result, ..
        } => {
            let mut bytes = vec![0u8];
            bytes.extend_from_slice(backend.as_bytes());
            bytes.push(0);
            bytes.extend_from_slice(&encode_kernel_result(result)?);
            bytes
        }
        WireOutcome::Failed(msg) => {
            let mut bytes = vec![1u8];
            bytes.extend_from_slice(msg.as_bytes());
            bytes
        }
        WireOutcome::TimedOut => vec![2],
        WireOutcome::Cancelled => vec![3],
    })
}

/// Length-prefixed FNV-1a over every fingerprint in workload order.
fn digest(fingerprints: &[Vec<u8>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let eat = |h: &mut u64, byte: u8| {
        *h ^= u64::from(byte);
        *h = h.wrapping_mul(0x100_0000_01b3);
    };
    for fp in fingerprints {
        for byte in (fp.len() as u64).to_le_bytes() {
            eat(&mut h, byte);
        }
        for &byte in fp {
            eat(&mut h, byte);
        }
    }
    h
}

struct ShardStats {
    shard: u32,
    submitted: u64,
    cache_hits: u64,
    cache_misses: u64,
    coalesced: u64,
}

struct RunReport {
    shards: usize,
    wall_s: f64,
    throughput: f64,
    p50_ms: f64,
    p99_ms: f64,
    computed: u64,
    per_shard: Vec<ShardStats>,
    digest: u64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

/// Serves the workload closed-loop from an N-shard cluster and reports
/// wall time, latency percentiles, per-shard admission counters, and
/// the outcome digest.
fn run_sharded(
    shards: usize,
    workload: &[Kernel],
    seeds: &[u64],
) -> Result<RunReport, Box<dyn std::error::Error>> {
    let servers: Vec<Server> = (0..shards)
        .map(|_| {
            Server::start(ServerConfig {
                addr: "127.0.0.1:0".into(),
                max_connections: 4,
                runtime: RuntimeConfig {
                    workers: 1,
                    policy: POLICY,
                    seed: MASTER_SEED,
                    quarantine: QuarantinePolicy::disabled(),
                    admission: AdmissionConfig {
                        cache_capacity: CACHE_CAPACITY,
                        coalesce: false,
                        hedge: None,
                    },
                    ..RuntimeConfig::default()
                },
            })
        })
        .collect::<Result<_, _>>()?;
    let addrs: Vec<std::net::SocketAddr> = servers.iter().map(Server::local_addr).collect();
    let mut router = Router::connect(
        &addrs,
        RouterConfig {
            seed: MASTER_SEED,
            ..RouterConfig::default()
        },
    )?;

    let mut fingerprints = Vec::with_capacity(workload.len());
    let mut latencies_ms = Vec::with_capacity(workload.len());
    let started = Instant::now();
    for (kernel, &seed) in workload.iter().zip(seeds) {
        let job_started = Instant::now();
        let ticket = router.submit_blocking(
            kernel.clone(),
            JobOptions {
                seed: Some(seed),
                policy: Some(POLICY),
                timeout: None,
            },
        )?;
        let outcome = router.wait(ticket)?;
        latencies_ms.push(job_started.elapsed().as_secs_f64() * 1e3);
        if !matches!(outcome, WireOutcome::Completed { .. }) {
            return Err(format!("job did not complete: {outcome:?}").into());
        }
        fingerprints.push(wire_fingerprint(&outcome)?);
    }
    let wall_s = started.elapsed().as_secs_f64();

    let stats = router.stats()?;
    let per_shard: Vec<ShardStats> = stats
        .per_shard
        .iter()
        .map(|(shard, s)| ShardStats {
            shard: *shard,
            submitted: s.submitted,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            coalesced: s.coalesced,
        })
        .collect();
    let computed = stats.merged.cache_misses;
    drop(router);
    for server in servers {
        let _ = server.shutdown();
    }

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    #[allow(clippy::cast_precision_loss)]
    let throughput = workload.len() as f64 / wall_s;
    Ok(RunReport {
        shards,
        wall_s,
        throughput,
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        computed,
        per_shard,
        digest: digest(&fingerprints),
    })
}

/// Replays the workload on a direct in-process runtime (same worker
/// count and policy, default admission) and returns its digest.
fn run_direct(workload: &[Kernel], seeds: &[u64]) -> Result<u64, Box<dyn std::error::Error>> {
    let runtime = Runtime::start(RuntimeConfig {
        workers: 1,
        policy: POLICY,
        seed: MASTER_SEED,
        quarantine: QuarantinePolicy::disabled(),
        ..RuntimeConfig::default()
    })?;
    let mut fingerprints = Vec::with_capacity(workload.len());
    for (kernel, &seed) in workload.iter().zip(seeds) {
        let handle = runtime.submit_with(
            kernel.clone(),
            JobOptions {
                seed: Some(seed),
                policy: Some(POLICY),
                timeout: None,
            },
        )?;
        let outcome = handle.wait();
        fingerprints.push(wire_fingerprint(&WireOutcome::from(&outcome))?);
    }
    let _ = runtime.shutdown();
    Ok(digest(&fingerprints))
}

fn shard_json(s: &ShardStats) -> String {
    let keyed = s.cache_hits + s.cache_misses + s.coalesced;
    #[allow(clippy::cast_precision_loss)]
    let hit_rate = if keyed == 0 {
        0.0
    } else {
        (s.cache_hits + s.coalesced) as f64 / keyed as f64
    };
    format!(
        "{{\"shard\": {}, \"submitted\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
         \"coalesced\": {}, \"hit_rate\": {hit_rate:.4}}}",
        s.shard, s.submitted, s.cache_hits, s.cache_misses, s.coalesced
    )
}

fn run_json(r: &RunReport) -> String {
    let shards: Vec<String> = r.per_shard.iter().map(shard_json).collect();
    format!(
        "    {{\n      \"shards\": {},\n      \"wall_s\": {:.4},\n      \
         \"throughput_jobs_per_s\": {:.2},\n      \"p50_ms\": {:.3},\n      \
         \"p99_ms\": {:.3},\n      \"computed_jobs\": {},\n      \
         \"digest\": \"{:016x}\",\n      \"per_shard\": [{}]\n    }}",
        r.shards,
        r.wall_s,
        r.throughput,
        r.p50_ms,
        r.p99_ms,
        r.computed,
        r.digest,
        shards.join(", ")
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let jobs = if quick { 120 } else { 320 };
    let (workload, seeds) = bench_workload(jobs);
    println!(
        "cluster bench: {jobs} jobs over {UNIQUES} unique {N_QUBITS}-qubit searches, \
         per-shard cache capacity {CACHE_CAPACITY}, policy {POLICY:?}"
    );

    let mut runs = Vec::new();
    for shards in [1usize, 2] {
        let report = run_sharded(shards, &workload, &seeds)?;
        println!(
            "  {} shard(s): {:.2} jobs/s ({:.3}s wall, p50 {:.2}ms, p99 {:.2}ms, \
             {} jobs computed, digest {:016x})",
            report.shards,
            report.throughput,
            report.wall_s,
            report.p50_ms,
            report.p99_ms,
            report.computed,
            report.digest
        );
        for s in &report.per_shard {
            println!(
                "    shard {}: {} submitted, {} hits / {} misses",
                s.shard, s.submitted, s.cache_hits, s.cache_misses
            );
        }
        runs.push(report);
    }

    let direct_digest = run_direct(&workload, &seeds)?;
    let results_match = runs.iter().all(|r| r.digest == direct_digest);
    let speedup = runs[1].throughput / runs[0].throughput;
    println!("direct replay digest: {direct_digest:016x}");
    println!("2-shard speedup over 1-shard: {speedup:.2}x (aggregate-cache effect)");
    if !results_match {
        return Err("cluster outcomes diverged from the direct replay".into());
    }
    println!("all runs agree byte-for-byte with the direct replay");

    let json = format!(
        "{{\n  \"bench\": \"cluster_scaling\",\n  \"jobs\": {jobs},\n  \
         \"uniques\": {UNIQUES},\n  \"kernel\": \"search_{N_QUBITS}_qubits\",\n  \
         \"policy\": \"{POLICY:?}\",\n  \"workers_per_shard\": 1,\n  \
         \"clients\": 1,\n  \"cache_capacity_per_shard\": {CACHE_CAPACITY},\n  \
         \"runs\": [\n{}\n  ],\n  \"speedup_2_shard_over_1\": {speedup:.3},\n  \
         \"results_match_direct\": {results_match}\n}}\n",
        runs.iter().map(run_json).collect::<Vec<_>>().join(",\n")
    );
    std::fs::write("BENCH_cluster.json", &json)?;
    println!("wrote BENCH_cluster.json");
    Ok(())
}
