//! FAST corner detection with oscillator distance norms (paper Fig. 6),
//! including the 0.936 mW vs 3 mW style power comparison.
//!
//! Run with: `cargo run --release --example corner_detection`

use vision::energy::{compare_power, ComparisonSetup};
use vision::fast::{FastDetector, FastParams};
use vision::metrics::match_against_ground_truth;
use vision::synth::benchmark_scene;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = benchmark_scene(64);
    let img = scene.build(7);
    let truth = scene.ground_truth_corners();
    println!(
        "synthetic scene: {}x{}, {} ground-truth corners",
        img.width(),
        img.height(),
        truth.len()
    );

    // Digital baseline.
    let digital = FastDetector::new(FastParams::default()).detect(&img);
    let dm = match_against_ground_truth(&truth, &digital, 2);
    println!(
        "software FAST-9 : {} corners | vs truth: {}",
        digital.len(),
        dm
    );

    // Oscillator pipeline + throughput-matched power comparison.
    println!("\ncalibrating the coupled-oscillator distance primitive …");
    let cmp = compare_power(&img, &ComparisonSetup::default())?;
    println!(
        "oscillator FAST : agreement with digital F1 = {:.3}",
        cmp.agreement_f1
    );
    println!(
        "\npower (throughput-matched, frame time {:.2} ms):",
        cmp.frame_time.0 * 1e3
    );
    println!(
        "  oscillator block : {:.3} mW   (paper: 0.936 mW)",
        cmp.oscillator.0 * 1e3
    );
    println!(
        "  32 nm CMOS engine: {:.3} mW   (paper: 3 mW)",
        cmp.cmos.0 * 1e3
    );
    println!("  ratio            : {:.2}x    (paper: ~3.2x)", cmp.ratio());
    Ok(())
}
