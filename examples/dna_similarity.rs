//! Quantum DNA-sequence similarity (paper §II-C): k-mer profiles amplitude-
//! encoded "as a superposition of a single wave function", compared by swap
//! test, validated against classical measures.
//!
//! Run with: `cargo run --release --example dna_similarity`

use numerics::rng::rng_from_seed;
use quantum::dna;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rng_from_seed(21);
    let reference = dna::random_sequence(&mut rng, 120);
    println!("reference sequence ({} bases)\n", reference.len());
    println!(
        "{:>12} | {:>12} | {:>12} | {:>12} | {:>9}",
        "mutation", "swap test", "exact |<a|b>|2", "cosine", "edit dist"
    );
    println!("{}", "-".repeat(68));
    for rate in [0.0, 0.02, 0.05, 0.1, 0.2, 0.4] {
        let mutated = dna::mutate_sequence(&mut rng, &reference, rate);
        let sampled = dna::quantum_similarity(&reference, &mutated, 3, 800, &mut rng)?;
        let exact = dna::exact_similarity(&reference, &mutated, 3)?;
        let cosine = dna::cosine_similarity(&reference, &mutated, 3)?;
        let edit = dna::edit_distance(&reference, &mutated);
        println!(
            "{:>11.0}% | {:>12.4} | {:>12.4} | {:>12.4} | {:>9}",
            rate * 100.0,
            sampled,
            exact,
            cosine,
            edit
        );
    }
    println!("\nThe swap-test estimate tracks the exact overlap, and the quantum");
    println!("similarity ranking agrees with the classical edit-distance ranking.");
    Ok(())
}
