//! A heterogeneous host dispatching a mixed workload to quantum,
//! oscillator, and memcomputing accelerators (paper Fig. 1), plus the
//! per-layer latency breakdown of a quantum job (paper Fig. 2).
//!
//! Run with: `cargo run --release --example hetero_pipeline`

use accel::accelerator::CpuBackend;
use accel::backends::{MemBackend, OscillatorBackend, QuantumBackend};
use accel::host::{DispatchPolicy, HostRuntime};
use accel::kernel::Kernel;
use accel::stack::StackModel;
use mem::generators::planted_3sat;
use numerics::rng::rng_from_seed;
use quantum::isa::assemble;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build the Fig. 1 system: specialized accelerators + CPU fallback.
    let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
    host.register(Box::new(QuantumBackend::new(1)));
    host.register(Box::new(OscillatorBackend::new()?));
    host.register(Box::new(MemBackend::new(2)));
    host.register(Box::new(CpuBackend::new(3)));
    println!("registered backends: {:?}\n", host.backend_names());

    // A mixed workload touching every paradigm.
    let sat = planted_3sat(25, 4.0, 5)?;
    let workload = vec![
        Kernel::Factor { n: 21 },
        Kernel::Search {
            n_qubits: 7,
            marked: vec![100],
        },
        Kernel::DnaSimilarity {
            a: "ACGTACGTACGTACGT".into(),
            b: "ACGAACGTACCTACGT".into(),
            k: 2,
        },
        Kernel::SolveSat {
            formula: sat.formula,
        },
        Kernel::Compare { x: 0.30, y: 0.34 },
        Kernel::Compare { x: 0.10, y: 0.90 },
    ];
    for kernel in &workload {
        let run = host.dispatch(kernel)?;
        println!(
            "{:<44} -> {:?}  ({:.2e} s device time)",
            kernel.describe(),
            run.result,
            run.cost.device_seconds
        );
    }

    println!("\nper-backend utilization:");
    for (name, stats) in host.stats() {
        println!(
            "  {:<14} kernels={:<3} device_time={:.3e} s ops={}",
            name, stats.kernels, stats.device_seconds, stats.operations
        );
    }

    // Fig. 2: where does a quantum job's latency go?
    println!("\nFig. 2 stack breakdown for a GHZ job:");
    let program = assemble("qubits 3\nh q0\ncnot q0, q1\ncnot q1, q2\nmeasure_all\n")?;
    let mut rng = rng_from_seed(4);
    let report = StackModel::default().run(&program, &mut rng)?;
    print!("{report}");
    println!(
        "chip fraction: {:.1}% — the classical stack dominates small jobs",
        report.chip_fraction() * 100.0
    );
    Ok(())
}
