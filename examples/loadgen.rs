//! Load generator: concurrent clients hammering the network serving
//! layer, with a cross-wire determinism check.
//!
//! Starts a [`server::Server`] in-process, fans the shared mixed
//! workload out across N client threads (each pipelining its slice over
//! one connection), and reports throughput, a client-side latency
//! histogram, and the server's own statistics. It then replays the
//! identical workload on a direct single-worker [`runtime::Runtime`] and
//! asserts every result matches **byte for byte** — same kernels, same
//! explicit per-job seeds, so transport, concurrency, and scheduling
//! order must not change a single bit of output.
//!
//! Run with: `cargo run --release --example loadgen -- [--clients N]
//! [--jobs N] [--workers N] [--queue N] [--policy P]` where `P` is one
//! of `prefer-specialized`, `cpu-only`, `min-latency`, `min-energy`, or
//! `deadline`. The policy rides the protocol-v2 per-job `Submit` field,
//! and when it differs from `prefer-specialized` the run also reports
//! how many jobs the cost-model planner routed differently.

use rebooting_models::workload::{job_seeds, mixed_workload};
use runtime::stats::LatencyHistogram;
use runtime::{DispatchPolicy, JobOptions, JobOutcome, Runtime, RuntimeConfig};
use server::{Client, Server, ServerConfig, SubmitOptions};
use std::time::Instant;
use wire::{encode_kernel_result, WireOutcome};

const MASTER_SEED: u64 = 2019;

struct Args {
    clients: usize,
    jobs: usize,
    workers: usize,
    queue: usize,
    policy: DispatchPolicy,
}

fn parse_policy(name: &str) -> Result<DispatchPolicy, String> {
    match name {
        "prefer-specialized" => Ok(DispatchPolicy::PreferSpecialized),
        "cpu-only" => Ok(DispatchPolicy::CpuOnly),
        "min-latency" => Ok(DispatchPolicy::MinPredictedLatency),
        "min-energy" => Ok(DispatchPolicy::MinPredictedEnergy),
        "deadline" => Ok(DispatchPolicy::DeadlineAware),
        other => Err(format!(
            "unknown policy {other} (expected prefer-specialized, cpu-only, \
             min-latency, min-energy, or deadline)"
        )),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 4,
        jobs: 160,
        workers: 4,
        queue: 64,
        policy: DispatchPolicy::MinPredictedLatency,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let raw = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        if flag == "--policy" {
            args.policy = parse_policy(&raw)?;
            continue;
        }
        let value = raw.parse::<usize>().map_err(|e| format!("{flag}: {e}"))?;
        match flag.as_str() {
            "--clients" => args.clients = value,
            "--jobs" => args.jobs = value,
            "--workers" => args.workers = value,
            "--queue" => args.queue = value,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.clients == 0 || args.jobs == 0 || args.workers == 0 || args.queue == 0 {
        return Err("all parameters must be at least 1".into());
    }
    Ok(args)
}

/// What one client thread brings home: `(workload index, encoded result
/// bytes, backend name)` per job, plus its local latency histogram.
type ClientReport = (Vec<(usize, Vec<u8>, String)>, LatencyHistogram);

/// Runs one client over its round-robin slice of the workload,
/// pipelining every submission before redeeming any ticket.
fn run_client(
    addr: std::net::SocketAddr,
    workload: &[accel::kernel::Kernel],
    seeds: &[u64],
    policy: DispatchPolicy,
    client_idx: usize,
    clients: usize,
) -> Result<ClientReport, String> {
    let fail = |e: &dyn std::fmt::Display| format!("client {client_idx}: {e}");
    let mut client = Client::connect(addr).map_err(|e| fail(&e))?;
    let mine: Vec<usize> = (0..workload.len())
        .filter(|i| i % clients == client_idx)
        .collect();
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(mine.len());
    for &i in &mine {
        // The per-job override rides the protocol-v2 Submit field, so
        // every submission exercises the new wire path.
        let options = SubmitOptions::with_seed(seeds[i]).policy(policy);
        let ticket = client
            .submit(workload[i].clone(), options)
            .map_err(|e| fail(&e))?;
        tickets.push((i, ticket));
    }
    let mut results = Vec::with_capacity(mine.len());
    let mut latency = LatencyHistogram::new();
    for (i, ticket) in tickets {
        match client.wait(ticket).map_err(|e| fail(&e))? {
            WireOutcome::Completed {
                result, backend, ..
            } => {
                latency.record(started.elapsed());
                results.push((
                    i,
                    encode_kernel_result(&result).map_err(|e| fail(&e))?,
                    backend,
                ));
            }
            other => return Err(format!("job {i} did not complete: {other:?}")),
        }
    }
    Ok((results, latency))
}

/// `(encoded result bytes, backend name)` per workload index.
type DirectResults = Vec<(Vec<u8>, String)>;

/// Replays the workload on a direct single-worker runtime with the same
/// explicit seeds, returning encoded result bytes per workload index.
fn run_direct(
    workload: &[accel::kernel::Kernel],
    seeds: &[u64],
    policy: DispatchPolicy,
) -> Result<DirectResults, Box<dyn std::error::Error>> {
    let rt = Runtime::start(RuntimeConfig {
        workers: 1,
        queue_capacity: workload.len().max(1),
        policy,
        seed: MASTER_SEED,
        default_timeout: None,
        ..RuntimeConfig::default()
    })?;
    let handles: Vec<_> = workload
        .iter()
        .zip(seeds)
        .map(|(kernel, &seed)| rt.submit_with(kernel.clone(), JobOptions::with_seed(seed)))
        .collect::<Result<_, _>>()?;
    let mut results = Vec::with_capacity(handles.len());
    for (i, handle) in handles.iter().enumerate() {
        match handle.wait() {
            JobOutcome::Completed {
                execution, backend, ..
            } => results.push((encode_kernel_result(&execution.result)?, backend)),
            other => return Err(format!("direct job {i} did not complete: {other:?}").into()),
        }
    }
    let _ = rt.shutdown();
    Ok(results)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| format!("usage error: {e}"))?;
    let workload = mixed_workload(args.jobs, MASTER_SEED)?;
    let seeds = job_seeds(args.jobs, MASTER_SEED);

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_connections: args.clients + 2,
        runtime: RuntimeConfig {
            workers: args.workers,
            queue_capacity: args.queue,
            policy: args.policy,
            seed: MASTER_SEED,
            default_timeout: None,
            ..RuntimeConfig::default()
        },
    })?;
    let addr = server.local_addr();
    println!(
        "loadgen: {} jobs over {} clients against {addr} ({} workers, queue {}, policy {:?})\n",
        args.jobs, args.clients, args.workers, args.queue, args.policy
    );

    let started = Instant::now();
    let reports: Vec<ClientReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                let workload = &workload;
                let seeds = &seeds;
                scope.spawn(move || run_client(addr, workload, seeds, args.policy, c, args.clients))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<Result<_, _>>()
    })
    .map_err(|e| format!("client failed: {e}"))?;
    let wall = started.elapsed();

    let mut wire_results: Vec<Option<(Vec<u8>, String)>> = vec![None; args.jobs];
    let mut latency = LatencyHistogram::new();
    for (results, client_latency) in reports {
        latency.merge(&client_latency);
        for (i, bytes, backend) in results {
            wire_results[i] = Some((bytes, backend));
        }
    }
    println!(
        "served {} jobs in {:.3}s  ({:.0} jobs/s over the wire)",
        args.jobs,
        wall.as_secs_f64(),
        args.jobs as f64 / wall.as_secs_f64()
    );
    println!("client-side completion latency:");
    for (idx, &count) in latency.counts().iter().enumerate() {
        if count > 0 {
            println!("  {:<8} {count}", LatencyHistogram::bucket_label(idx));
        }
    }

    let mut probe = Client::connect(addr)?;
    println!("\nserver stats (over the wire):\n{}", probe.stats()?);
    drop(probe);
    let _ = server.shutdown();

    println!("replaying on a direct 1-worker runtime to check determinism ...");
    let direct = run_direct(&workload, &seeds, args.policy)?;
    let mut agreements = 0usize;
    for (i, pair) in wire_results.iter().enumerate() {
        let (wire_bytes, wire_backend) = pair.as_ref().expect("every job must report");
        let (direct_bytes, direct_backend) = &direct[i];
        assert_eq!(
            wire_backend, direct_backend,
            "job {i}: backend routing must not depend on transport"
        );
        assert_eq!(
            wire_bytes, direct_bytes,
            "job {i}: results must match byte for byte across the wire"
        );
        agreements += 1;
    }
    println!(
        "networked ({} clients) and direct (1 worker) runs agree byte-for-byte on all {agreements}/{} results",
        args.clients, args.jobs
    );

    if args.policy != DispatchPolicy::PreferSpecialized {
        let baseline = run_direct(&workload, &seeds, DispatchPolicy::PreferSpecialized)?;
        let rerouted = direct
            .iter()
            .zip(&baseline)
            .filter(|((_, b), (_, base))| b != base)
            .count();
        println!(
            "cost-model planner ({:?}) routed {rerouted}/{} jobs to a different \
             backend than PreferSpecialized",
            args.policy, args.jobs
        );
        if args.policy == DispatchPolicy::MinPredictedLatency && args.jobs >= 2 {
            assert!(
                rerouted >= 1,
                "MinPredictedLatency must reroute at least one job of the mixed workload"
            );
        }
    }
    Ok(())
}
