//! Load generator: concurrent clients hammering the network serving
//! layer, with a cross-wire determinism check.
//!
//! Starts a [`server::Server`] in-process, fans the shared mixed
//! workload out across N client threads (each pipelining its slice over
//! one connection), and reports throughput, a client-side latency
//! histogram, and the server's own statistics. It then replays the
//! identical workload on a direct single-worker [`runtime::Runtime`] and
//! asserts every result matches **byte for byte** — same kernels, same
//! explicit per-job seeds, so transport, concurrency, and scheduling
//! order must not change a single bit of output.
//!
//! Run with: `cargo run --release --example loadgen -- [--clients N]
//! [--jobs N] [--workers N] [--queue N] [--shards N] [--policy P]
//! [--chaos] [--seed N] [--mix M] [--dup-ratio R]` where `P` is one of
//! `prefer-specialized`, `cpu-only`, `min-latency`, `min-energy`, or
//! `deadline`. The policy rides the protocol-v2 per-job `Submit` field,
//! and when it differs from `prefer-specialized` the run also reports
//! how many jobs the cost-model planner routed differently.
//!
//! `--shards N` (default 1) serves the workload from an N-shard cluster
//! instead of one server: N `server::Server` shards, each client driving
//! a [`cluster::Router`] that consistent-hash-shards keyed submissions
//! across them. The determinism check is unchanged — whatever shard a
//! job lands on (or re-routes to), its bytes must match the direct
//! single-worker replay.
//!
//! `--mix duplicate-heavy` swaps in a workload where a small unique pool
//! of `(kernel, seed)` pairs is resubmitted over and over (`--dup-ratio`
//! controls the duplicate fraction, default 0.9), exercising the
//! admission tier: the run reports the server's cache/coalescing
//! counters and hit rate, asserts the hit rate clears the duplicate
//! ratio, and replays the workload on an admission-*disabled* runtime to
//! prove cached results are byte-identical to cold recomputation.
//!
//! `--mix coloring-heavy` / `--mix qubo-heavy` swap in registry-family
//! workloads: three of every four jobs are phase-dynamics vertex
//! colorings (or Ising/QUBO minimizations) riding the protocol-v6
//! generic family frame, interleaved with legacy kernels on their native
//! v1 frames. The run reports how many jobs used the v6 frame and the
//! byte-for-byte replay covers both framings on the same connections.
//!
//! `--chaos` installs the stock [`FaultPlan::chaos`] schedule (seeded by
//! `--seed`, default 29) on the server's runtime: backends fault, the
//! dispatcher retries and fails over, and every job must still resolve
//! to a typed outcome that matches the direct single-worker replay under
//! the same plan. The run prints a `chaos digest` — an order-independent
//! fingerprint of every outcome — so two runs with the same seed can be
//! compared byte-for-byte from their stdout alone.

use rebooting_models::workload::{
    coloring_heavy_workload, duplicate_heavy_workload, job_seeds, mixed_workload,
    qubo_heavy_workload,
};
use runtime::stats::LatencyHistogram;
use runtime::{
    AdmissionConfig, DispatchPolicy, FaultPlan, JobOptions, JobOutcome, QuarantinePolicy, Runtime,
    RuntimeConfig,
};
use server::{Client, Server, ServerConfig, SubmitOptions};
use std::time::Instant;
use wire::{encode_kernel_result, WireError, WireOutcome};

const MASTER_SEED: u64 = 2019;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mix {
    Mixed,
    DuplicateHeavy,
    ColoringHeavy,
    QuboHeavy,
}

struct Args {
    clients: usize,
    jobs: usize,
    workers: usize,
    queue: usize,
    shards: usize,
    policy: DispatchPolicy,
    chaos: bool,
    chaos_seed: u64,
    mix: Mix,
    dup_ratio: f64,
}

fn parse_policy(name: &str) -> Result<DispatchPolicy, String> {
    match name {
        "prefer-specialized" => Ok(DispatchPolicy::PreferSpecialized),
        "cpu-only" => Ok(DispatchPolicy::CpuOnly),
        "min-latency" => Ok(DispatchPolicy::MinPredictedLatency),
        "min-energy" => Ok(DispatchPolicy::MinPredictedEnergy),
        "deadline" => Ok(DispatchPolicy::DeadlineAware),
        other => Err(format!(
            "unknown policy {other} (expected prefer-specialized, cpu-only, \
             min-latency, min-energy, or deadline)"
        )),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 4,
        jobs: 160,
        workers: 4,
        queue: 64,
        shards: 1,
        policy: DispatchPolicy::MinPredictedLatency,
        chaos: false,
        chaos_seed: 29,
        mix: Mix::Mixed,
        dup_ratio: 0.9,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--chaos" {
            args.chaos = true;
            continue;
        }
        let raw = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        if flag == "--policy" {
            args.policy = parse_policy(&raw)?;
            continue;
        }
        if flag == "--seed" {
            args.chaos_seed = raw.parse::<u64>().map_err(|e| format!("{flag}: {e}"))?;
            continue;
        }
        if flag == "--mix" {
            args.mix = match raw.as_str() {
                "mixed" => Mix::Mixed,
                "duplicate-heavy" => Mix::DuplicateHeavy,
                "coloring-heavy" => Mix::ColoringHeavy,
                "qubo-heavy" => Mix::QuboHeavy,
                other => {
                    return Err(format!(
                        "unknown mix {other} (expected mixed, duplicate-heavy, \
                         coloring-heavy, or qubo-heavy)"
                    ))
                }
            };
            continue;
        }
        if flag == "--dup-ratio" {
            let ratio = raw.parse::<f64>().map_err(|e| format!("{flag}: {e}"))?;
            if !(0.0..=1.0).contains(&ratio) {
                return Err(format!("{flag} must be in [0, 1], got {ratio}"));
            }
            args.dup_ratio = ratio;
            continue;
        }
        let value = raw.parse::<usize>().map_err(|e| format!("{flag}: {e}"))?;
        match flag.as_str() {
            "--clients" => args.clients = value,
            "--jobs" => args.jobs = value,
            "--workers" => args.workers = value,
            "--queue" => args.queue = value,
            "--shards" => args.shards = value,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.clients == 0 || args.jobs == 0 || args.workers == 0 || args.queue == 0 {
        return Err("all parameters must be at least 1".into());
    }
    if args.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    Ok(args)
}

/// A canonical byte fingerprint of one typed outcome. Two outcomes are
/// identical iff their fingerprints match byte for byte, so chaos runs
/// can compare completed results *and* failure modes across transports.
fn wire_fingerprint(outcome: &WireOutcome) -> Result<Vec<u8>, WireError> {
    Ok(match outcome {
        WireOutcome::Completed {
            backend, result, ..
        } => {
            let mut bytes = vec![0u8];
            bytes.extend_from_slice(backend.as_bytes());
            bytes.push(0);
            bytes.extend_from_slice(&encode_kernel_result(result)?);
            bytes
        }
        WireOutcome::Failed(msg) => {
            let mut bytes = vec![1u8];
            bytes.extend_from_slice(msg.as_bytes());
            bytes
        }
        WireOutcome::TimedOut => vec![2],
        WireOutcome::Cancelled => vec![3],
    })
}

fn job_fingerprint(outcome: &JobOutcome) -> Result<Vec<u8>, WireError> {
    wire_fingerprint(&WireOutcome::from(outcome))
}

/// FNV-1a over every fingerprint in workload order, length-prefixed so
/// adjacent fingerprints cannot alias. Two chaos runs with the same seed
/// must print the same digest — the flake detector's comparand.
fn digest(fingerprints: &[Vec<u8>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let eat = |h: &mut u64, byte: u8| {
        *h ^= u64::from(byte);
        *h = h.wrapping_mul(0x100_0000_01b3);
    };
    for fp in fingerprints {
        for byte in (fp.len() as u64).to_le_bytes() {
            eat(&mut h, byte);
        }
        for &byte in fp {
            eat(&mut h, byte);
        }
    }
    h
}

/// What one client thread brings home: `(workload index, outcome
/// fingerprint)` per job, plus its local latency histogram.
type ClientReport = (Vec<(usize, Vec<u8>)>, LatencyHistogram);

/// Runs one client over its round-robin slice of the workload,
/// pipelining every submission before redeeming any ticket. Outside
/// chaos mode every job must complete; under chaos any *typed* outcome
/// is acceptable — hangs and dropped connections are not.
fn run_client(
    addr: std::net::SocketAddr,
    workload: &[accel::kernel::Kernel],
    seeds: &[u64],
    policy: DispatchPolicy,
    chaos: bool,
    client_idx: usize,
    clients: usize,
) -> Result<ClientReport, String> {
    let fail = |e: &dyn std::fmt::Display| format!("client {client_idx}: {e}");
    let mut client = Client::connect(addr).map_err(|e| fail(&e))?;
    let mine: Vec<usize> = (0..workload.len())
        .filter(|i| i % clients == client_idx)
        .collect();
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(mine.len());
    for &i in &mine {
        // The per-job override rides the protocol-v2 Submit field, so
        // every submission exercises the new wire path.
        let options = SubmitOptions::with_seed(seeds[i]).policy(policy);
        let ticket = client
            .submit(workload[i].clone(), options)
            .map_err(|e| fail(&e))?;
        tickets.push((i, ticket));
    }
    let mut results = Vec::with_capacity(mine.len());
    let mut latency = LatencyHistogram::new();
    for (i, ticket) in tickets {
        let outcome = client.wait(ticket).map_err(|e| fail(&e))?;
        match &outcome {
            WireOutcome::Completed { .. } => latency.record(started.elapsed()),
            other if !chaos => return Err(format!("job {i} did not complete: {other:?}")),
            _ => {}
        }
        results.push((i, wire_fingerprint(&outcome).map_err(|e| fail(&e))?));
    }
    Ok((results, latency))
}

/// Runs one cluster client over its round-robin slice: a private
/// [`cluster::Router`] over every shard, pipelining submissions up to
/// the router's in-flight window before redeeming tickets.
fn run_cluster_client(
    addrs: &[std::net::SocketAddr],
    workload: &[accel::kernel::Kernel],
    seeds: &[u64],
    policy: DispatchPolicy,
    chaos: bool,
    client_idx: usize,
    clients: usize,
) -> Result<ClientReport, String> {
    let fail = |e: &dyn std::fmt::Display| format!("cluster client {client_idx}: {e}");
    let mut router = cluster::Router::connect(
        addrs,
        cluster::RouterConfig {
            seed: MASTER_SEED,
            ..cluster::RouterConfig::default()
        },
    )
    .map_err(|e| fail(&e))?;
    let mine: Vec<usize> = (0..workload.len())
        .filter(|i| i % clients == client_idx)
        .collect();
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(mine.len());
    for &i in &mine {
        let options = JobOptions {
            seed: Some(seeds[i]),
            policy: Some(policy),
            timeout: None,
        };
        let ticket = router
            .submit_blocking(workload[i].clone(), options)
            .map_err(|e| fail(&e))?;
        tickets.push((i, ticket));
    }
    let mut results = Vec::with_capacity(mine.len());
    let mut latency = LatencyHistogram::new();
    for (i, ticket) in tickets {
        let outcome = router.wait(ticket).map_err(|e| fail(&e))?;
        match &outcome {
            WireOutcome::Completed { .. } => latency.record(started.elapsed()),
            other if !chaos => return Err(format!("job {i} did not complete: {other:?}")),
            _ => {}
        }
        results.push((i, wire_fingerprint(&outcome).map_err(|e| fail(&e))?));
    }
    Ok((results, latency))
}

/// `(outcome fingerprint, backend name)` per workload index; the backend
/// is empty for jobs that did not complete.
type DirectResults = Vec<(Vec<u8>, String)>;

/// Replays the workload on a direct single-worker runtime with the same
/// explicit seeds (and, in chaos mode, the same fault plan), returning
/// outcome fingerprints per workload index.
fn run_direct(
    workload: &[accel::kernel::Kernel],
    seeds: &[u64],
    policy: DispatchPolicy,
    faults: Option<FaultPlan>,
    admission: AdmissionConfig,
) -> Result<DirectResults, Box<dyn std::error::Error>> {
    let chaos = faults.is_some();
    let rt = Runtime::start(RuntimeConfig {
        workers: 1,
        queue_capacity: workload.len().max(1),
        policy,
        seed: MASTER_SEED,
        default_timeout: None,
        faults,
        // Quarantine is history-dependent; disabling it keeps routing a
        // pure function of the job, matching the server configuration.
        quarantine: QuarantinePolicy::disabled(),
        admission,
        ..RuntimeConfig::default()
    })?;
    let handles: Vec<_> = workload
        .iter()
        .zip(seeds)
        .map(|(kernel, &seed)| rt.submit_with(kernel.clone(), JobOptions::with_seed(seed)))
        .collect::<Result<_, _>>()?;
    let mut results = Vec::with_capacity(handles.len());
    for (i, handle) in handles.iter().enumerate() {
        let outcome = handle.wait();
        let backend = match &outcome {
            JobOutcome::Completed { backend, .. } => backend.clone(),
            other if !chaos => {
                return Err(format!("direct job {i} did not complete: {other:?}").into())
            }
            _ => String::new(),
        };
        results.push((job_fingerprint(&outcome)?, backend));
    }
    let _ = rt.shutdown();
    Ok(results)
}

/// The `--shards N` flavor: N shard servers behind per-client routers,
/// then the same direct-replay determinism check as the 1-server path.
fn run_cluster(
    args: &Args,
    workload: &[accel::kernel::Kernel],
    seeds: &[u64],
    plan: Option<FaultPlan>,
) -> Result<(), Box<dyn std::error::Error>> {
    let shards: Vec<Server> = (0..args.shards)
        .map(|_| {
            Server::start(ServerConfig {
                addr: "127.0.0.1:0".into(),
                max_connections: args.clients + 2,
                runtime: RuntimeConfig {
                    workers: args.workers,
                    queue_capacity: args.queue,
                    policy: args.policy,
                    seed: MASTER_SEED,
                    default_timeout: None,
                    faults: plan.clone(),
                    quarantine: QuarantinePolicy::disabled(),
                    ..RuntimeConfig::default()
                },
            })
        })
        .collect::<Result<_, _>>()?;
    let addrs: Vec<std::net::SocketAddr> = shards.iter().map(Server::local_addr).collect();
    println!(
        "loadgen: {} jobs over {} clients against a {}-shard cluster ({} workers/shard, \
         queue {}, policy {:?})",
        args.jobs, args.clients, args.shards, args.workers, args.queue, args.policy
    );
    if args.chaos {
        println!(
            "chaos mode: fault plan seed {} (reproduce with --chaos --seed {})",
            args.chaos_seed, args.chaos_seed
        );
    }
    println!();

    let started = Instant::now();
    let reports: Vec<ClientReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                let addrs = &addrs;
                scope.spawn(move || {
                    run_cluster_client(
                        addrs,
                        workload,
                        seeds,
                        args.policy,
                        args.chaos,
                        c,
                        args.clients,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cluster client thread panicked"))
            .collect::<Result<_, _>>()
    })
    .map_err(|e| format!("cluster client failed: {e}"))?;
    let wall = started.elapsed();

    let mut wire_results: Vec<Option<Vec<u8>>> = vec![None; args.jobs];
    let mut latency = LatencyHistogram::new();
    for (results, client_latency) in reports {
        latency.merge(&client_latency);
        for (i, fingerprint) in results {
            wire_results[i] = Some(fingerprint);
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let throughput = args.jobs as f64 / wall.as_secs_f64();
    println!(
        "served {} jobs in {:.3}s  ({throughput:.0} jobs/s across {} shards)",
        args.jobs,
        wall.as_secs_f64(),
        args.shards
    );
    println!("client-side completion latency:");
    for (idx, &count) in latency.counts().iter().enumerate() {
        if count > 0 {
            println!("  {:<8} {count}", LatencyHistogram::bucket_label(idx));
        }
    }

    // One more router for the cluster-wide stats view (and a gossip
    // round, so the v5 frames see traffic on every loadgen run).
    let mut probe = cluster::Router::connect(&addrs, cluster::RouterConfig::default())?;
    probe.gossip_round()?;
    let stats = probe.stats()?;
    println!("\nper-shard admission:");
    for (shard, s) in &stats.per_shard {
        let keyed = s.cache_hits + s.cache_misses + s.coalesced;
        #[allow(clippy::cast_precision_loss)]
        let hit_rate = if keyed == 0 {
            0.0
        } else {
            (s.cache_hits + s.coalesced) as f64 / keyed as f64
        };
        println!(
            "  shard {shard}: {} submitted, {} cache hits + {} coalesced / {} keyed \
             ({:.1}% hit rate)",
            s.submitted,
            s.cache_hits,
            s.coalesced,
            keyed,
            hit_rate * 100.0
        );
    }
    println!("\ncluster stats (all shards merged):\n{}", stats.merged);
    drop(probe);

    let fingerprints: Vec<Vec<u8>> = wire_results
        .iter()
        .map(|o| o.clone().expect("every job must report"))
        .collect();
    if args.chaos {
        println!("chaos digest: {:016x}", digest(&fingerprints));
    }

    println!("replaying on a direct 1-worker runtime to check determinism ...");
    let direct = run_direct(
        workload,
        seeds,
        args.policy,
        plan,
        AdmissionConfig::default(),
    )?;
    for (i, fingerprint) in fingerprints.iter().enumerate() {
        assert_eq!(
            fingerprint, &direct[i].0,
            "job {i}: outcomes must match byte for byte across the cluster"
        );
    }
    println!(
        "cluster ({} shards) and direct (1 worker) runs agree byte-for-byte on all {}/{} outcomes",
        args.shards,
        direct.len(),
        args.jobs
    );
    for shard in shards {
        let _ = shard.shutdown();
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| format!("usage error: {e}"))?;
    let (workload, seeds) = match args.mix {
        Mix::Mixed => (
            mixed_workload(args.jobs, MASTER_SEED)?,
            job_seeds(args.jobs, MASTER_SEED),
        ),
        Mix::DuplicateHeavy => duplicate_heavy_workload(args.jobs, MASTER_SEED, args.dup_ratio)?,
        Mix::ColoringHeavy => (
            coloring_heavy_workload(args.jobs, MASTER_SEED)?,
            job_seeds(args.jobs, MASTER_SEED),
        ),
        Mix::QuboHeavy => (
            qubo_heavy_workload(args.jobs, MASTER_SEED)?,
            job_seeds(args.jobs, MASTER_SEED),
        ),
    };
    let family_jobs = workload.iter().filter(|k| k.uses_family_frame()).count();
    if matches!(args.mix, Mix::ColoringHeavy | Mix::QuboHeavy) {
        assert!(
            family_jobs > 0 && (args.jobs < 4 || family_jobs < args.jobs),
            "a family-heavy mix must interleave family and legacy kernels"
        );
        println!(
            "family mix: {family_jobs}/{} jobs ride the protocol-v6 generic family frame, \
             the rest stay on native v1 frames",
            args.jobs
        );
    }
    let plan = args.chaos.then(|| FaultPlan::chaos(args.chaos_seed));

    if args.shards > 1 {
        return run_cluster(&args, &workload, &seeds, plan);
    }

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_connections: args.clients + 2,
        runtime: RuntimeConfig {
            workers: args.workers,
            queue_capacity: args.queue,
            policy: args.policy,
            seed: MASTER_SEED,
            default_timeout: None,
            faults: plan.clone(),
            quarantine: QuarantinePolicy::disabled(),
            ..RuntimeConfig::default()
        },
    })?;
    let addr = server.local_addr();
    println!(
        "loadgen: {} jobs over {} clients against {addr} ({} workers, queue {}, policy {:?})",
        args.jobs, args.clients, args.workers, args.queue, args.policy
    );
    if args.chaos {
        println!(
            "chaos mode: fault plan seed {} (reproduce with --chaos --seed {})",
            args.chaos_seed, args.chaos_seed
        );
    }
    println!();

    let started = Instant::now();
    let reports: Vec<ClientReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                let workload = &workload;
                let seeds = &seeds;
                scope.spawn(move || {
                    run_client(
                        addr,
                        workload,
                        seeds,
                        args.policy,
                        args.chaos,
                        c,
                        args.clients,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<Result<_, _>>()
    })
    .map_err(|e| format!("client failed: {e}"))?;
    let wall = started.elapsed();

    let mut wire_results: Vec<Option<Vec<u8>>> = vec![None; args.jobs];
    let mut latency = LatencyHistogram::new();
    for (results, client_latency) in reports {
        latency.merge(&client_latency);
        for (i, fingerprint) in results {
            wire_results[i] = Some(fingerprint);
        }
    }
    println!(
        "served {} jobs in {:.3}s  ({:.0} jobs/s over the wire)",
        args.jobs,
        wall.as_secs_f64(),
        args.jobs as f64 / wall.as_secs_f64()
    );
    println!("client-side completion latency:");
    for (idx, &count) in latency.counts().iter().enumerate() {
        if count > 0 {
            println!("  {:<8} {count}", LatencyHistogram::bucket_label(idx));
        }
    }

    let fingerprints: Vec<Vec<u8>> = wire_results
        .iter()
        .map(|o| o.clone().expect("every job must report"))
        .collect();
    if args.chaos {
        println!("chaos digest: {:016x}", digest(&fingerprints));
    }

    let mut probe = Client::connect(addr)?;
    let server_stats = probe.stats()?;
    println!("\nserver stats (over the wire):\n{server_stats}");
    drop(probe);
    let _ = server.shutdown();
    if args.chaos {
        assert!(
            server_stats.backend_faults > 0,
            "a chaos run must inject at least one backend fault"
        );
        println!(
            "chaos injected {} backend faults ({} retries, {} reroutes) and every job \
             still resolved to a typed outcome",
            server_stats.backend_faults, server_stats.retries, server_stats.reroutes
        );
    }

    if args.mix == Mix::DuplicateHeavy {
        let served = server_stats.cache_hits + server_stats.cache_misses + server_stats.coalesced;
        #[allow(clippy::cast_precision_loss)]
        let hit_rate = if served == 0 {
            0.0
        } else {
            (server_stats.cache_hits + server_stats.coalesced) as f64 / served as f64
        };
        println!(
            "admission: {} cache hits + {} coalesced over {} keyed submissions \
             (hit rate {:.1}%, {} evictions)",
            server_stats.cache_hits,
            server_stats.coalesced,
            served,
            hit_rate * 100.0,
            server_stats.cache_evictions,
        );
        if args.policy == DispatchPolicy::DeadlineAware {
            println!("deadline-aware jobs bypass admission; skipping the hit-rate check");
        } else if args.chaos {
            // Failed leads are never cached, so chaos runs legitimately
            // recompute some duplicates; only the floor applies.
            assert!(
                hit_rate > 0.0,
                "a duplicate-heavy chaos run must still serve some duplicates from admission"
            );
        } else {
            // The pool size rounds down, so the duplicate share is at
            // least the requested ratio (capped by the single-unique
            // clamp); every duplicate must be a hit or a coalesced
            // waiter.
            #[allow(clippy::cast_precision_loss)]
            let floor = args
                .dup_ratio
                .min((args.jobs - 1) as f64 / args.jobs as f64);
            assert!(
                hit_rate > 0.0 && hit_rate + 1e-9 >= floor,
                "duplicate-heavy hit rate {hit_rate:.3} fell below the duplicate share {floor:.3}"
            );
        }
    }

    println!("replaying on a direct 1-worker runtime to check determinism ...");
    let direct = run_direct(
        &workload,
        &seeds,
        args.policy,
        plan.clone(),
        AdmissionConfig::default(),
    )?;
    let mut agreements = 0usize;
    for (i, fingerprint) in fingerprints.iter().enumerate() {
        assert_eq!(
            fingerprint, &direct[i].0,
            "job {i}: outcomes must match byte for byte across the wire"
        );
        agreements += 1;
    }
    println!(
        "networked ({} clients) and direct (1 worker) runs agree byte-for-byte on all {agreements}/{} outcomes",
        args.clients, args.jobs
    );

    if args.mix == Mix::DuplicateHeavy {
        println!("replaying cold (admission disabled) to check cached results byte-for-byte ...");
        let cold = run_direct(
            &workload,
            &seeds,
            args.policy,
            plan,
            AdmissionConfig::disabled(),
        )?;
        for (i, fingerprint) in fingerprints.iter().enumerate() {
            assert_eq!(
                fingerprint, &cold[i].0,
                "job {i}: cached outcome must match cold recomputation byte for byte"
            );
        }
        println!(
            "cached and cold runs agree byte-for-byte on all {}/{} outcomes \
             (digest {:016x})",
            cold.len(),
            args.jobs,
            digest(&fingerprints)
        );
    }

    if args.policy != DispatchPolicy::PreferSpecialized && !args.chaos {
        let baseline = run_direct(
            &workload,
            &seeds,
            DispatchPolicy::PreferSpecialized,
            None,
            AdmissionConfig::default(),
        )?;
        let rerouted = direct
            .iter()
            .zip(&baseline)
            .filter(|((_, b), (_, base))| b != base)
            .count();
        println!(
            "cost-model planner ({:?}) routed {rerouted}/{} jobs to a different \
             backend than PreferSpecialized",
            args.policy, args.jobs
        );
        if args.policy == DispatchPolicy::MinPredictedLatency && args.jobs >= 2 {
            assert!(
                rerouted >= 1,
                "MinPredictedLatency must reroute at least one job of the mixed workload"
            );
        }
    }
    Ok(())
}
