//! Quickstart: one tour through all three post-von-Neumann paradigms.
//!
//! Run with: `cargo run --release --example quickstart`

use rebooting::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== {} ==\n", rebooting::PAPER);

    // ------------------------------------------------------------------
    // §II — Quantum computing as an accelerator: entangle, then factor.
    // ------------------------------------------------------------------
    println!("[quantum] preparing a Bell pair …");
    let mut circuit = Circuit::new(2)?;
    circuit.h(0)?.cx(0, 1)?;
    let state = circuit.run(StateVector::zero(2))?;
    println!(
        "  P(|00>) = {:.3}, P(|11>) = {:.3}",
        state.probability(0b00)?,
        state.probability(0b11)?
    );

    let mut rng = numerics::rng::rng_from_seed(7);
    let outcome = rebooting::quantum::shor::factor(15, &mut rng, 30)?;
    println!(
        "  Shor: 15 = {} x {} ({} order-finding calls)\n",
        outcome.factors.0, outcome.factors.1, outcome.quantum_calls
    );

    // ------------------------------------------------------------------
    // §III — Coupled VO2 oscillators: frequency locking + distance norm.
    // ------------------------------------------------------------------
    println!("[oscillator] coupling two VO2 relaxation oscillators …");
    let config = NormRegime::Shallow.config();
    let pair = CoupledPair::new(config, Volts(0.62), Volts(0.625))?;
    let run = pair.simulate_default()?;
    println!(
        "  f1 = {:.2} MHz, f2 = {:.2} MHz, locked = {}",
        run.frequency(0)? / 1e6,
        run.frequency(1)? / 1e6,
        run.is_locked(0.01)?
    );
    let same = CoupledPair::new(config, Volts(0.62), Volts(0.62))?
        .simulate_default()?
        .xor_measure()?;
    println!(
        "  XOR distance measure: {:.3} at dVgs = 0, {:.3} at dVgs = 5 mV\n",
        same,
        run.xor_measure()?
    );

    // ------------------------------------------------------------------
    // §IV — Digital memcomputing: solve a hard random 3-SAT instance.
    // ------------------------------------------------------------------
    println!("[memcomputing] solving planted 3-SAT (40 vars, ratio 4.2) …");
    let instance = rebooting::mem::generators::planted_3sat(40, 4.2, 42)?;
    let dmm = DmmSolver::new(DmmParams::default());
    let result = dmm.solve(&instance.formula, 1)?;
    match &result.solution {
        Some(solution) => println!(
            "  solved in {} integration steps (t = {:.1} time units); valid = {}",
            result.steps,
            result.time,
            instance.formula.is_satisfied(solution)
        ),
        None => println!("  gave up after {} steps", result.steps),
    }
    let walksat = WalkSat::new(WalkSatParams::default()).solve(&instance.formula, 1);
    println!(
        "  WalkSAT baseline: solved = {}, flips = {}",
        walksat.solution.is_some(),
        walksat.flips
    );

    Ok(())
}
