//! Mode-assisted (memcomputing) vs contrastive-divergence RBM pre-training
//! (paper §IV, refs. [55, 57]).
//!
//! Run with: `cargo run --release --example rbm_pretraining`

use mem::datasets::{bars_and_stripes, with_label_units};
use mem::rbm::{ModeSearch, Rbm, TrainConfig, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let patterns = bars_and_stripes(2);
    let data: Vec<Vec<bool>> = patterns.iter().map(|p| p.pixels.clone()).collect();
    println!(
        "bars-and-stripes 2x2: {} patterns, {} visible units\n",
        data.len(),
        data[0].len()
    );

    let config = TrainConfig {
        epochs: 500,
        learning_rate: 0.5,
        weight_decay: 0.0,
    };

    println!(
        "{:>26} | {:>12} | {:>14}",
        "trainer", "final LL", "recon error"
    );
    println!("{}", "-".repeat(60));
    let trainers: Vec<(&str, Trainer)> = vec![
        ("CD-1", Trainer::cd(1)),
        ("CD-5", Trainer::cd(5)),
        (
            "mode-assisted (exhaustive)",
            Trainer::mode_assisted(0.05, ModeSearch::Exhaustive),
        ),
        (
            "mode-assisted (DMM)",
            Trainer::mode_assisted(0.05, ModeSearch::Dmm),
        ),
    ];
    for (name, trainer) in trainers {
        let mut rbm = Rbm::new(4, 6, 0.05, 5)?;
        trainer.train(&mut rbm, &data, &config, 1)?;
        println!(
            "{:>26} | {:>12.4} | {:>14.4}",
            name,
            rbm.exact_log_likelihood(&data)?,
            rbm.reconstruction_error(&data, 2)
        );
    }

    // Downstream classification with label units.
    println!("\ntraining a labeled RBM classifier (free-energy rule) …");
    let labeled = with_label_units(&patterns);
    let mut rbm = Rbm::new(6, 8, 0.05, 7)?;
    let config = TrainConfig {
        epochs: 400,
        learning_rate: 0.3,
        weight_decay: 0.0,
    };
    Trainer::mode_assisted(0.05, ModeSearch::Exhaustive).train(&mut rbm, &labeled, &config, 3)?;
    let correct = patterns
        .iter()
        .filter(|p| rbm.classify(&p.pixels) == p.is_stripe)
        .count();
    println!(
        "bar/stripe accuracy: {}/{} = {:.1}%",
        correct,
        patterns.len(),
        100.0 * correct as f64 / patterns.len() as f64
    );
    Ok(())
}
