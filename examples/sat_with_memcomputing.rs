//! DMM vs classical solvers on random 3-SAT (paper §IV scaling claim).
//!
//! Run with: `cargo run --release --example sat_with_memcomputing`

use mem::dmm::{DmmParams, DmmSolver};
use mem::dpll::Dpll;
use mem::generators::planted_3sat;
use mem::walksat::{WalkSat, WalkSatParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("planted 3-SAT at clause ratio 4.2 (near the hardness peak)\n");
    println!(
        "{:>6} | {:>14} | {:>14} | {:>14}",
        "N", "DMM steps", "WalkSAT flips", "DPLL decisions"
    );
    println!("{}", "-".repeat(60));

    let dmm = DmmSolver::new(DmmParams::default());
    let walksat = WalkSat::new(WalkSatParams::default());

    for n in [20usize, 40, 60, 80] {
        let mut dmm_cost = Vec::new();
        let mut ws_cost = Vec::new();
        let mut dpll_cost = Vec::new();
        for seed in 0..5u64 {
            let inst = planted_3sat(n, 4.2, 1000 + seed)?;
            let d = dmm.solve(&inst.formula, seed)?;
            dmm_cost.push(d.steps as f64);
            let w = walksat.solve(&inst.formula, seed);
            ws_cost.push(w.flips as f64);
            let p = Dpll::new(50_000_000).solve(&inst.formula);
            dpll_cost.push((p.decisions + p.propagations) as f64);
        }
        let med = |v: &[f64]| numerics::stats::median(v).unwrap_or(f64::NAN);
        println!(
            "{:>6} | {:>14.0} | {:>14.0} | {:>14.0}",
            n,
            med(&dmm_cost),
            med(&ws_cost),
            med(&dpll_cost)
        );
    }
    println!("\n(median over 5 planted instances each; all solvers solved every instance)");
    Ok(())
}
