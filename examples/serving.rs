//! The heterogeneous machine under load: a concurrent serving run.
//!
//! Builds a [`runtime::Runtime`] whose workers each own the full
//! accelerator pool (quantum, oscillator, memcomputing, CPU fallback),
//! submits a few hundred mixed jobs, prints the serving statistics, and
//! then re-runs the identical workload on a single-worker runtime to show
//! that results are deterministic — independent of worker count and
//! scheduling order.
//!
//! Run with: `cargo run --release --example serving`

use accel::kernel::Kernel;
use rebooting_models::workload::mixed_workload;
use runtime::{DispatchPolicy, JobOutcome, Runtime, RuntimeConfig};

const MASTER_SEED: u64 = 2019;
const JOBS: usize = 240;

/// Runs the workload on `workers` threads, returning the outcomes in
/// submission order (plus the final stats).
fn serve(
    workload: &[Kernel],
    workers: usize,
) -> Result<(Vec<JobOutcome>, runtime::RuntimeStats), Box<dyn std::error::Error>> {
    let rt = Runtime::start(RuntimeConfig {
        workers,
        queue_capacity: 32,
        policy: DispatchPolicy::PreferSpecialized,
        seed: MASTER_SEED,
        default_timeout: None,
        ..RuntimeConfig::default()
    })?;
    let handles: Vec<_> = workload
        .iter()
        .map(|k| rt.submit(k.clone()))
        .collect::<Result<_, _>>()?;
    let outcomes = handles.iter().map(runtime::JobHandle::wait).collect();
    Ok((outcomes, rt.shutdown()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = mixed_workload(JOBS, MASTER_SEED)?;
    println!(
        "serving {} mixed jobs (factor / compare / sat / dna) ...\n",
        workload.len()
    );

    let (outcomes, stats) = serve(&workload, 4)?;
    println!("{stats}");

    let completed = outcomes.iter().filter(|o| o.is_completed()).count();
    assert_eq!(completed, workload.len(), "every job should complete");
    let busy_backends = stats
        .per_backend
        .values()
        .filter(|t| t.jobs > 0 && t.jobs_per_second() > 0.0)
        .count();
    assert!(
        busy_backends >= 3,
        "expected ≥3 backends with non-zero throughput, saw {busy_backends}"
    );

    // Determinism: the same seed on a single worker reproduces every result.
    println!("re-running on 1 worker to check determinism ...");
    let (solo, _) = serve(&workload, 1)?;
    let mut agreements = 0usize;
    for (concurrent, single) in outcomes.iter().zip(&solo) {
        match (concurrent, single) {
            (
                JobOutcome::Completed {
                    execution: a,
                    backend: ba,
                    ..
                },
                JobOutcome::Completed {
                    execution: b,
                    backend: bb,
                    ..
                },
            ) => {
                assert_eq!(ba, bb, "backend routing must not depend on worker count");
                assert_eq!(
                    a.result, b.result,
                    "results must not depend on worker count"
                );
                agreements += 1;
            }
            other => panic!("unexpected outcome pair {other:?}"),
        }
    }
    println!(
        "4-worker and 1-worker runs agree on all {agreements}/{} job results",
        workload.len()
    );
    Ok(())
}
