//! Shor's algorithm on the quantum-accelerator stack (paper §II-C's
//! cryptography killer app), compared against classical trial division.
//!
//! Run with: `cargo run --release --example shor_factoring`

use numerics::rng::rng_from_seed;
use quantum::numtheory::trial_division;
use quantum::shor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>6} | {:>10} | {:>14} | {:>14} | {:>16}",
        "N", "factors", "quantum calls", "quantum ops", "classical divs"
    );
    println!("{}", "-".repeat(72));
    let mut rng = rng_from_seed(11);
    for n in [15u64, 21, 33, 35] {
        let outcome = shor::factor(n, &mut rng, 60)?;
        let (_, classical_ops) = trial_division(n);
        println!(
            "{:>6} | {:>4} x {:>3} | {:>14} | {:>14} | {:>16}",
            n,
            outcome.factors.0,
            outcome.factors.1,
            outcome.quantum_calls,
            outcome.quantum_ops,
            classical_ops
        );
    }
    println!("\nNote: at these toy sizes trial division is trivially cheap — the");
    println!("point of the experiment is that the full quantum pipeline (phase");
    println!("estimation over modular-multiplication unitaries, inverse QFT,");
    println!("continued fractions) runs end-to-end and recovers correct factors.");
    Ok(())
}
