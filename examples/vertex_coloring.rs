//! Graph vertex coloring by coupled-oscillator phase dynamics (the §III
//! application cited from ref. [42]).
//!
//! Run with: `cargo run --release --example vertex_coloring`

use osc::coloring::{color_graph, ColoringConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    type Case = (&'static str, usize, Vec<(usize, usize)>, usize);
    let cases: Vec<Case> = vec![
        ("edge (K2)", 2, vec![(0, 1)], 2),
        ("path P4", 4, vec![(0, 1), (1, 2), (2, 3)], 2),
        ("cycle C4", 4, vec![(0, 1), (1, 2), (2, 3), (3, 0)], 2),
        (
            "cycle C6",
            6,
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
            2,
        ),
        ("triangle K3", 3, vec![(0, 1), (1, 2), (0, 2)], 3),
        (
            "bipartite K2,3",
            5,
            vec![(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)],
            2,
        ),
    ];
    println!(
        "{:>14} | {:>7} | {:>16} | {:>9}",
        "graph", "colors", "assignment", "conflicts"
    );
    println!("{}", "-".repeat(58));
    for (name, n, edges, k) in cases {
        let config = ColoringConfig {
            n_colors: k,
            ..ColoringConfig::default()
        };
        let result = color_graph(n, &edges, &config)?;
        let assignment: String = result
            .colors
            .iter()
            .map(|c| char::from(b'A' + *c as u8))
            .collect();
        println!(
            "{:>14} | {:>7} | {:>16} | {:>9}",
            name, k, assignment, result.conflicts
        );
    }
    println!("\nIdentical oscillators coupled along graph edges phase-repel;");
    println!("rounding the settled phases into k sectors colors the graph.");
    println!("Like the hardware heuristic of ref. [42], success is not");
    println!("guaranteed on every graph — conflicts report the miss distance.");
    Ok(())
}
