#!/usr/bin/env bash
# Runs the dispatch-policy experiment bench and reports where the JSON
# landed. Pass --all to run the full figure-regeneration suite instead.
# Offline like everything else here: no registry dependencies.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--all" ]]; then
  echo "==> cargo bench (full suite)"
  cargo bench
else
  echo "==> cargo bench -p bench --bench dispatch_policies"
  cargo bench -p bench --bench dispatch_policies
fi

echo "==> loadgen duplicate-heavy (admission tier under wire load)"
timeout 180 cargo run --release --example loadgen -- --clients 4 --jobs 160 --workers 4 \
  --mix duplicate-heavy --dup-ratio 0.9

echo "==> cluster bench (1-shard vs 2-shard aggregate-cache scaling)"
timeout 580 cargo run --release --example cluster_bench

if [[ -f BENCH_dispatch.json ]]; then
  echo "==> BENCH_dispatch.json"
  cat BENCH_dispatch.json
fi

if [[ -f BENCH_cluster.json ]]; then
  echo "==> BENCH_cluster.json"
  cat BENCH_cluster.json
fi
