#!/usr/bin/env bash
# Flake detector: runs the seeded chaos suites several times and fails on
# any divergence. Every suite here draws all randomness from fixed seeds,
# so a test that passes only sometimes — or a chaos digest that changes
# between identically-seeded runs — is a determinism bug, not bad luck.
set -euo pipefail

cd "$(dirname "$0")/.."

RUNS="${RUNS:-3}"
SEED="${SEED:-29}"

cargo build --release --tests --example loadgen

echo "==> flake detector: ${RUNS}x seeded test suites"
for run in $(seq 1 "$RUNS"); do
  echo "--- run ${run}/${RUNS}: chaos_serving"
  cargo test -q --release --test chaos_serving
  echo "--- run ${run}/${RUNS}: net_serving"
  cargo test -q --release --test net_serving
done

echo "==> flake detector: ${RUNS}x loadgen chaos digest comparison"
digests=()
for run in $(seq 1 "$RUNS"); do
  out="$(timeout 180 cargo run --release --example loadgen -- \
    --clients 3 --jobs 48 --workers 3 --policy prefer-specialized \
    --chaos --seed "$SEED")"
  digest="$(printf '%s\n' "$out" | sed -n 's/^chaos digest: //p')"
  if [[ -z "$digest" ]]; then
    echo "run ${run}: loadgen printed no chaos digest" >&2
    exit 1
  fi
  echo "--- run ${run}/${RUNS}: chaos digest ${digest}"
  digests+=("$digest")
done
for digest in "${digests[@]}"; do
  if [[ "$digest" != "${digests[0]}" ]]; then
    echo "chaos digest diverged across identically-seeded runs: ${digests[*]}" >&2
    exit 1
  fi
done

echo "flake detector: ${RUNS}/${RUNS} runs agree (digest ${digests[0]})"
