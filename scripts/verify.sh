#!/usr/bin/env bash
# Full local verification: formatting, lints, tier-1 build + tests.
# Everything here works offline — the workspace has no registry
# dependencies, so no network access is needed at any step.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (release profile)"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> rebootlint (determinism, panic-hygiene, wire-freeze, family-tag-freeze, lock-order, event-loop, alloc-bounds, channel-discipline)"
# Wall-clock budget: the call-graph + dataflow analyses must stay cheap
# enough to run on every check. The binary is already built release by
# the clippy step above, so this times analysis, not compilation.
LINT_BUDGET_SECS=30
lint_start=$SECONDS
cargo run --release -q -p lint
lint_elapsed=$((SECONDS - lint_start))
echo "    rebootlint wall-clock: ${lint_elapsed}s (budget ${LINT_BUDGET_SECS}s)"
if [ "$lint_elapsed" -gt "$LINT_BUDGET_SECS" ]; then
  echo "verify: rebootlint took ${lint_elapsed}s, over its ${LINT_BUDGET_SECS}s budget" >&2
  exit 1
fi

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests"
cargo test -q --release --workspace

echo "==> smoke: loadgen (TCP serving + cross-wire determinism)"
timeout 180 cargo run --release --example loadgen -- --clients 2 --jobs 24 --workers 2

echo "==> smoke: loadgen chaos (seeded fault injection + failover)"
timeout 180 cargo run --release --example loadgen -- --clients 2 --jobs 24 --workers 2 \
  --policy prefer-specialized --chaos --seed 29

echo "==> smoke: loadgen duplicate-heavy (admission cache + coalescing)"
# loadgen itself asserts the hit rate clears the duplicate ratio and that
# cached results are byte-identical to an admission-disabled cold replay;
# the greps below keep this script honest about what that run proved.
dup_out=$(timeout 180 cargo run --release --example loadgen -- --clients 2 --jobs 40 \
  --workers 2 --mix duplicate-heavy --dup-ratio 0.9)
echo "$dup_out" | tail -n 8
echo "$dup_out" | grep -E "admission: [0-9]+ cache hits" | grep -qv "admission: 0 cache hits + 0 coalesced" \
  || { echo "verify: duplicate-heavy run served no traffic from admission" >&2; exit 1; }
echo "$dup_out" | grep -q "cached and cold runs agree byte-for-byte" \
  || { echo "verify: cached-vs-cold byte equality check missing" >&2; exit 1; }

echo "==> smoke: loadgen coloring-heavy (v6 family frames + cross-wire determinism)"
# Three of four jobs ride the protocol-v6 generic family frame; the rest
# stay on native v1 frames over the same connections. loadgen asserts the
# networked results match a direct replay byte-for-byte.
col_out=$(timeout 180 cargo run --release --example loadgen -- --clients 2 --jobs 40 \
  --workers 2 --mix coloring-heavy)
echo "$col_out" | tail -n 4
echo "$col_out" | grep -q "family mix: 30/40 jobs ride the protocol-v6 generic family frame" \
  || { echo "verify: coloring-heavy run did not use v6 family frames" >&2; exit 1; }
echo "$col_out" | grep -q "agree byte-for-byte on all 40/40 outcomes" \
  || { echo "verify: coloring-heavy byte equality check missing" >&2; exit 1; }

echo "==> smoke: loadgen qubo-heavy (v6 family frames on the DMM backend)"
qubo_out=$(timeout 180 cargo run --release --example loadgen -- --clients 2 --jobs 40 \
  --workers 2 --mix qubo-heavy --policy prefer-specialized)
echo "$qubo_out" | tail -n 4
echo "$qubo_out" | grep -q "family mix: 30/40 jobs ride the protocol-v6 generic family frame" \
  || { echo "verify: qubo-heavy run did not use v6 family frames" >&2; exit 1; }
echo "$qubo_out" | grep -q "agree byte-for-byte on all 40/40 outcomes" \
  || { echo "verify: qubo-heavy byte equality check missing" >&2; exit 1; }

echo "==> smoke: loadgen 2-shard cluster (router sharding + cross-shard determinism)"
cluster_out=$(timeout 180 cargo run --release --example loadgen -- --shards 2 --clients 2 \
  --jobs 60 --workers 1 --mix duplicate-heavy --dup-ratio 0.9)
echo "$cluster_out" | tail -n 6
echo "$cluster_out" | grep -q "cluster (2 shards) and direct (1 worker) runs agree byte-for-byte" \
  || { echo "verify: cluster-vs-direct byte equality check missing" >&2; exit 1; }

echo "verify: all checks passed"
