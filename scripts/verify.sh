#!/usr/bin/env bash
# Full local verification: formatting, lints, tier-1 build + tests.
# Everything here works offline — the workspace has no registry
# dependencies, so no network access is needed at any step.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (release profile)"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> rebootlint (determinism, panic-hygiene, wire-freeze, lock-order)"
cargo run --release -q -p lint

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests"
cargo test -q --release --workspace

echo "==> smoke: loadgen (TCP serving + cross-wire determinism)"
timeout 180 cargo run --release --example loadgen -- --clients 2 --jobs 24 --workers 2

echo "==> smoke: loadgen chaos (seeded fault injection + failover)"
timeout 180 cargo run --release --example loadgen -- --clients 2 --jobs 24 --workers 2 \
  --policy prefer-specialized --chaos --seed 29

echo "verify: all checks passed"
