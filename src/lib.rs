//! Workspace-root helper library for the `rebooting-models` reproduction.
//!
//! The actual functionality lives in the workspace crates; this package
//! exists to own the repository-level `examples/` and `tests/` directories.
