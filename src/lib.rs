//! Workspace-root helper library for the `rebooting-models` reproduction.
//!
//! The actual functionality lives in the workspace crates; this package
//! owns the repository-level `examples/` and `tests/` directories plus
//! the [`workload`] generator they share.

pub mod workload;
