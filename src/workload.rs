//! The shared mixed workload the examples and smoke tests drive.
//!
//! One deterministic generator feeds both `examples/serving.rs` (direct
//! runtime) and `examples/loadgen.rs` (over the network), so the two can
//! compare results byte for byte.

use accel::family::{ColoringSpec, FamilyKernel, QuboSpec};
use accel::kernel::Kernel;
use mem::generators::planted_3sat;
use mem::MemError;
use numerics::rng::{rng_from_seed, Rng, SeedStream};

/// A deterministic mixed workload touching every paradigm: integer
/// factoring, oscillator comparison, SAT solving, and DNA similarity,
/// interleaved round-robin.
///
/// # Errors
///
/// Propagates [`MemError`] from SAT instance generation (cannot happen
/// for the sizes used here).
pub fn mixed_workload(jobs: usize, master_seed: u64) -> Result<Vec<Kernel>, MemError> {
    let mut rng = rng_from_seed(master_seed);
    let semiprimes = [15u64, 21, 33, 35, 55, 77];
    let bases = ['A', 'C', 'G', 'T'];
    let mut kernels = Vec::with_capacity(jobs);
    for i in 0..jobs {
        kernels.push(match i % 4 {
            0 => Kernel::Factor {
                n: semiprimes[rng.gen_range(0..semiprimes.len())],
            },
            1 => Kernel::Compare {
                x: rng.gen_range(0.0..1.0),
                y: rng.gen_range(0.0..1.0),
            },
            2 => {
                let sat = planted_3sat(12, 3.8, rng.gen::<u64>())?;
                Kernel::SolveSat {
                    formula: sat.formula,
                }
            }
            _ => {
                let mut seq = |len: usize| -> String {
                    (0..len)
                        .map(|_| bases[rng.gen_range(0..bases.len())])
                        .collect()
                };
                let a = seq(12);
                let b = seq(12);
                Kernel::DnaSimilarity { a, b, k: 2 }
            }
        });
    }
    Ok(kernels)
}

/// A duplicate-heavy workload for exercising the admission tier: a small
/// pool of unique `(kernel, seed)` pairs is resubmitted over and over, so
/// a result cache should serve most of the traffic.
///
/// `dup_ratio` in `[0, 1]` is the target fraction of duplicate
/// submissions. The unique pool is the first `floor(jobs * (1 -
/// dup_ratio))` entries (at least one) of [`mixed_workload`] with their
/// [`job_seeds`] seeds; every remaining slot repeats a pool entry chosen
/// by a seeded RNG, *keeping the original's seed* so the repeat is
/// byte-for-byte the same job. Rounding the pool *down* keeps the
/// duplicate share at or above `dup_ratio` (up to the single-unique
/// clamp), so an admission-tier hit rate can be asserted against the
/// ratio directly. Returns `(kernels, seeds)` in submission order.
///
/// # Errors
///
/// Propagates [`MemError`] from SAT instance generation (cannot happen
/// for the sizes used here).
pub fn duplicate_heavy_workload(
    jobs: usize,
    master_seed: u64,
    dup_ratio: f64,
) -> Result<(Vec<Kernel>, Vec<u64>), MemError> {
    let ratio = dup_ratio.clamp(0.0, 1.0);
    // The epsilon absorbs binary-fraction noise (40 * (1 - 0.9) is
    // 3.999...) so a nominally exact pool size does not round down twice.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let uniques = ((jobs as f64) * (1.0 - ratio) + 1e-9).floor() as usize;
    let uniques = uniques.clamp(1, jobs.max(1));
    let pool = mixed_workload(uniques, master_seed)?;
    let pool_seeds = job_seeds(uniques, master_seed);
    let mut rng = rng_from_seed(master_seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut kernels = Vec::with_capacity(jobs);
    let mut seeds = Vec::with_capacity(jobs);
    for i in 0..jobs {
        let src = if i < uniques {
            i
        } else {
            rng.gen_range(0..uniques)
        };
        kernels.push(pool[src].clone());
        seeds.push(pool_seeds[src]);
    }
    Ok((kernels, seeds))
}

/// One legacy (pre-registry) kernel for the thin interleave stream of the
/// family-heavy mixes, so v6 generic family frames and native v1 frames
/// share every connection.
fn legacy_filler(slot: usize, rng: &mut impl Rng) -> Result<Kernel, MemError> {
    let semiprimes = [15u64, 21, 33, 35, 55, 77];
    Ok(match slot % 3 {
        0 => Kernel::Factor {
            n: semiprimes[rng.gen_range(0..semiprimes.len())],
        },
        1 => Kernel::Compare {
            x: rng.gen_range(0.0..1.0),
            y: rng.gen_range(0.0..1.0),
        },
        _ => {
            let sat = planted_3sat(12, 3.8, rng.gen::<u64>())?;
            Kernel::SolveSat {
                formula: sat.formula,
            }
        }
    })
}

/// A coloring-heavy workload for exercising the kernel-family registry:
/// three of every four jobs are phase-dynamics vertex-coloring kernels
/// (a ring plus a few random chords, 3 colors), which ride the
/// protocol-v6 generic family frame; the fourth is a rotating legacy
/// kernel on its native v1 frame, so both framings share every
/// connection and the byte-for-byte replay covers them together.
///
/// # Errors
///
/// Propagates [`MemError`] from SAT instance generation in the legacy
/// interleave (cannot happen for the sizes used here).
pub fn coloring_heavy_workload(jobs: usize, master_seed: u64) -> Result<Vec<Kernel>, MemError> {
    let mut rng = rng_from_seed(master_seed ^ 0x636f_6c6f_7269_6e67);
    let mut kernels = Vec::with_capacity(jobs);
    for i in 0..jobs {
        if i % 4 == 3 {
            kernels.push(legacy_filler(i / 4, &mut rng)?);
            continue;
        }
        let n_vertices = rng.gen_range(6..14);
        // A ring guarantees a connected conflict graph; chords make some
        // instances genuinely frustrated under 3 colors.
        let mut edges: Vec<(usize, usize)> =
            (0..n_vertices).map(|v| (v, (v + 1) % n_vertices)).collect();
        for _ in 0..rng.gen_range(0..4) {
            let a = rng.gen_range(0..n_vertices);
            let b = rng.gen_range(0..n_vertices);
            if a != b {
                edges.push((a, b));
            }
        }
        kernels.push(Kernel::Family(FamilyKernel::Coloring(ColoringSpec {
            n_vertices,
            n_colors: 3,
            edges,
        })));
    }
    Ok(kernels)
}

/// A QUBO-heavy workload for exercising the kernel-family registry:
/// three of every four jobs are Ising/QUBO energy minimizations (dense
/// linear terms, sparse random couplings) on the v6 generic family
/// frame, interleaved with rotating legacy kernels exactly like
/// [`coloring_heavy_workload`].
///
/// # Errors
///
/// Propagates [`MemError`] from SAT instance generation in the legacy
/// interleave (cannot happen for the sizes used here).
pub fn qubo_heavy_workload(jobs: usize, master_seed: u64) -> Result<Vec<Kernel>, MemError> {
    let mut rng = rng_from_seed(master_seed ^ 0x7175_626f_2121_2121);
    let mut kernels = Vec::with_capacity(jobs);
    for i in 0..jobs {
        if i % 4 == 3 {
            kernels.push(legacy_filler(i / 4, &mut rng)?);
            continue;
        }
        let n_vars = rng.gen_range(4..12);
        let linear: Vec<(usize, f64)> =
            (0..n_vars).map(|v| (v, rng.gen_range(-1.0..1.0))).collect();
        let mut quadratic = Vec::with_capacity(n_vars);
        for _ in 0..n_vars {
            let i = rng.gen_range(0..n_vars);
            let j = rng.gen_range(0..n_vars);
            if i != j {
                quadratic.push((i, j, rng.gen_range(-1.0..1.0)));
            }
        }
        kernels.push(Kernel::Family(FamilyKernel::Qubo(QuboSpec {
            n_vars,
            linear,
            quadratic,
        })));
    }
    Ok(kernels)
}

/// One explicit execution seed per job, derived from the master seed.
///
/// Concurrent clients reach the server in nondeterministic order, so
/// server-assigned job ids differ run to run; pinning each job's seed by
/// *workload index* instead makes every result a pure function of
/// `(kernel, seed)` regardless of arrival order, worker count, or
/// transport.
#[must_use]
pub fn job_seeds(jobs: usize, master_seed: u64) -> Vec<u64> {
    let mut stream = SeedStream::new(master_seed ^ 0xa076_1d64_78bd_642f);
    (0..jobs).map(|_| stream.next_seed()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_mixed() {
        let a = mixed_workload(24, 7).unwrap();
        let b = mixed_workload(24, 7).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().any(|k| matches!(k, Kernel::Factor { .. })));
        assert!(a.iter().any(|k| matches!(k, Kernel::Compare { .. })));
        assert!(a.iter().any(|k| matches!(k, Kernel::SolveSat { .. })));
        assert!(a.iter().any(|k| matches!(k, Kernel::DnaSimilarity { .. })));
        let c = mixed_workload(24, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn workload_kernels_pass_validation() {
        for kernel in mixed_workload(48, 2019).unwrap() {
            kernel.validate().unwrap();
        }
    }

    #[test]
    fn duplicate_heavy_workload_repeats_whole_jobs() {
        let (kernels, seeds) = duplicate_heavy_workload(40, 7, 0.9).unwrap();
        assert_eq!(kernels.len(), 40);
        assert_eq!(seeds.len(), 40);
        let (again_k, again_s) = duplicate_heavy_workload(40, 7, 0.9).unwrap();
        assert_eq!(kernels, again_k, "generator must be deterministic");
        assert_eq!(seeds, again_s);
        // Duplicates repeat the kernel *and* its seed, so the number of
        // distinct (kernel, seed) pairs equals the unique-pool size.
        let mut pairs: Vec<(String, u64)> = kernels
            .iter()
            .zip(&seeds)
            .map(|(k, &s)| (format!("{k:?}"), s))
            .collect();
        pairs.sort();
        pairs.dedup();
        assert_eq!(pairs.len(), 4, "40 jobs at 0.9 dup ratio leave 4 uniques");
        for kernel in &kernels {
            kernel.validate().unwrap();
        }
    }

    #[test]
    fn duplicate_heavy_ratio_extremes() {
        let (kernels, seeds) = duplicate_heavy_workload(12, 3, 0.0).unwrap();
        assert_eq!(kernels, mixed_workload(12, 3).unwrap());
        assert_eq!(seeds, job_seeds(12, 3));
        let (kernels, seeds) = duplicate_heavy_workload(12, 3, 1.0).unwrap();
        assert!(kernels.iter().all(|k| *k == kernels[0]));
        assert!(seeds.iter().all(|&s| s == seeds[0]));
    }

    #[test]
    fn family_heavy_workloads_mix_frames_and_validate() {
        for (name, workload) in [
            ("coloring", coloring_heavy_workload(32, 7).unwrap()),
            ("qubo", qubo_heavy_workload(32, 7).unwrap()),
        ] {
            let family = workload.iter().filter(|k| k.uses_family_frame()).count();
            let legacy = workload.len() - family;
            assert_eq!(family, 24, "{name}: 3 of 4 jobs ride the family frame");
            assert_eq!(legacy, 8, "{name}: 1 of 4 jobs stays on a v1 frame");
            for kernel in &workload {
                kernel.validate().unwrap();
            }
        }
        assert_eq!(
            coloring_heavy_workload(32, 7).unwrap(),
            coloring_heavy_workload(32, 7).unwrap()
        );
        assert_eq!(
            qubo_heavy_workload(32, 7).unwrap(),
            qubo_heavy_workload(32, 7).unwrap()
        );
        assert_ne!(
            coloring_heavy_workload(32, 7).unwrap(),
            coloring_heavy_workload(32, 8).unwrap()
        );
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = job_seeds(16, 1);
        assert_eq!(a, job_seeds(16, 1));
        assert_ne!(a, job_seeds(16, 2));
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len(), "seeds must not collide");
    }
}
