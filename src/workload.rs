//! The shared mixed workload the examples and smoke tests drive.
//!
//! One deterministic generator feeds both `examples/serving.rs` (direct
//! runtime) and `examples/loadgen.rs` (over the network), so the two can
//! compare results byte for byte.

use accel::kernel::Kernel;
use mem::generators::planted_3sat;
use mem::MemError;
use numerics::rng::{rng_from_seed, Rng, SeedStream};

/// A deterministic mixed workload touching every paradigm: integer
/// factoring, oscillator comparison, SAT solving, and DNA similarity,
/// interleaved round-robin.
///
/// # Errors
///
/// Propagates [`MemError`] from SAT instance generation (cannot happen
/// for the sizes used here).
pub fn mixed_workload(jobs: usize, master_seed: u64) -> Result<Vec<Kernel>, MemError> {
    let mut rng = rng_from_seed(master_seed);
    let semiprimes = [15u64, 21, 33, 35, 55, 77];
    let bases = ['A', 'C', 'G', 'T'];
    let mut kernels = Vec::with_capacity(jobs);
    for i in 0..jobs {
        kernels.push(match i % 4 {
            0 => Kernel::Factor {
                n: semiprimes[rng.gen_range(0..semiprimes.len())],
            },
            1 => Kernel::Compare {
                x: rng.gen_range(0.0..1.0),
                y: rng.gen_range(0.0..1.0),
            },
            2 => {
                let sat = planted_3sat(12, 3.8, rng.gen::<u64>())?;
                Kernel::SolveSat {
                    formula: sat.formula,
                }
            }
            _ => {
                let mut seq = |len: usize| -> String {
                    (0..len)
                        .map(|_| bases[rng.gen_range(0..bases.len())])
                        .collect()
                };
                let a = seq(12);
                let b = seq(12);
                Kernel::DnaSimilarity { a, b, k: 2 }
            }
        });
    }
    Ok(kernels)
}

/// One explicit execution seed per job, derived from the master seed.
///
/// Concurrent clients reach the server in nondeterministic order, so
/// server-assigned job ids differ run to run; pinning each job's seed by
/// *workload index* instead makes every result a pure function of
/// `(kernel, seed)` regardless of arrival order, worker count, or
/// transport.
#[must_use]
pub fn job_seeds(jobs: usize, master_seed: u64) -> Vec<u64> {
    let mut stream = SeedStream::new(master_seed ^ 0xa076_1d64_78bd_642f);
    (0..jobs).map(|_| stream.next_seed()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_mixed() {
        let a = mixed_workload(24, 7).unwrap();
        let b = mixed_workload(24, 7).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().any(|k| matches!(k, Kernel::Factor { .. })));
        assert!(a.iter().any(|k| matches!(k, Kernel::Compare { .. })));
        assert!(a.iter().any(|k| matches!(k, Kernel::SolveSat { .. })));
        assert!(a.iter().any(|k| matches!(k, Kernel::DnaSimilarity { .. })));
        let c = mixed_workload(24, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn workload_kernels_pass_validation() {
        for kernel in mixed_workload(48, 2019).unwrap() {
            kernel.validate().unwrap();
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = job_seeds(16, 1);
        assert_eq!(a, job_seeds(16, 1));
        assert_ne!(a, job_seeds(16, 2));
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len(), "seeds must not collide");
    }
}
