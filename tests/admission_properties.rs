//! Property tests for the admission tier, driven by the workspace's
//! seeded RNG so every run checks the same cases.
//!
//! # What "canonicalization preserves results" means here
//!
//! The SAT solvers are clause-order sensitive: DPLL's unit propagation and
//! WalkSAT's flip sequence both depend on clause presentation order, so a
//! permuted formula can converge to a *different satisfying assignment*
//! on the raw backend. The invariant the system guarantees is therefore a
//! serving-level one: the runtime canonicalizes every keyed submission at
//! the door and executes the canonical form, so
//! `run(canonicalize(k), seed) == run(k, seed)` holds byte-for-byte for
//! the serving path by construction — submitting a kernel, its canonical
//! form, or any syntactic scramble of it yields the same bytes, cold or
//! cached alike. The tests below pin exactly that:
//!
//! * scrambled kernels (permuted/duplicated SAT clauses, shuffled marked
//!   search items, `-0.0` compare operands) share both halves of the
//!   admission identity and one canonical form, across all families;
//! * independent runtimes serving the raw, canonical, and scrambled
//!   variants of the same kernel under the same seed produce
//!   byte-identical completed outcomes;
//! * single-flight coalescing isolates waiter cancellations: randomized
//!   cancelled subsets never perturb the lead or surviving waiters, and
//!   the statistics settle exactly;
//! * hedged portfolio dispatch returns the same bytes as unhedged
//!   dispatch, including under chaos where hedge losers die to injected
//!   permanent faults.

use accel::accelerator::{Accelerator, CpuBackend};
use accel::kernel::Kernel;
use accel::AccelError;
use admission::{admit, canonicalize};
use mem::cnf::{Clause, Formula};
use mem::generators::planted_3sat;
use numerics::rng::{rng_from_seed, Rng, StdRng};
use runtime::{
    AdmissionConfig, DispatchPolicy, FaultPlan, FaultSpec, HedgeConfig, JobOptions, JobOutcome,
    Runtime, RuntimeConfig, RuntimeStats,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fisher–Yates shuffle on the workspace RNG (the RNG has no shuffle of
/// its own, and determinism requires staying on the seeded stream).
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.gen_range(0..=i));
    }
}

/// A random kernel plus a syntactic scramble denoting the same
/// computation, per family.
fn scrambled_pair(family: u32, rng: &mut StdRng) -> (Kernel, Kernel) {
    match family {
        0 => {
            // SAT: shuffle clause order, reverse literals inside each
            // clause, and duplicate a random clause.
            let base = planted_3sat(rng.gen_range(8..13usize), 3.8, rng.gen::<u64>())
                .expect("generator parameters are valid")
                .formula;
            let mut clauses: Vec<Clause> = base.clauses().to_vec();
            let dup = clauses[rng.gen_range(0..clauses.len())].clone();
            clauses.push(dup);
            shuffle(&mut clauses, rng);
            let clauses: Vec<Clause> = clauses
                .iter()
                .map(|c| {
                    let mut lits = c.literals().to_vec();
                    lits.reverse();
                    Clause::new(lits).expect("reversing literals keeps the clause valid")
                })
                .collect();
            let scrambled = Formula::new(base.n_vars(), clauses)
                .expect("same variable space as the base formula");
            (
                Kernel::SolveSat { formula: base },
                Kernel::SolveSat { formula: scrambled },
            )
        }
        1 => {
            // Search: shuffle the marked items and duplicate one.
            let n_qubits = rng.gen_range(3..8usize);
            let marked: Vec<usize> = (0..rng.gen_range(2..5usize))
                .map(|_| rng.gen_range(0..(1usize << n_qubits)))
                .collect();
            let mut scrambled = marked.clone();
            scrambled.push(marked[rng.gen_range(0..marked.len())]);
            shuffle(&mut scrambled, rng);
            (
                Kernel::Search { n_qubits, marked },
                Kernel::Search {
                    n_qubits,
                    marked: scrambled,
                },
            )
        }
        _ => {
            // Compare: a zero operand scrambles to negative zero.
            let x = if rng.gen_range(0..2u32) == 0 {
                0.0
            } else {
                rng.gen_range(0.0..1.0)
            };
            let y = rng.gen_range(0.0..1.0);
            let scrub = |v: f64| if v == 0.0 { -0.0 } else { v };
            (
                Kernel::Compare { x, y },
                Kernel::Compare {
                    x: scrub(x),
                    y: scrub(y),
                },
            )
        }
    }
}

#[test]
fn scrambles_share_one_canonical_identity() {
    let mut rng = rng_from_seed(0x5eed_ad31);
    for round in 0..200 {
        let (raw, scrambled) = scrambled_pair(round % 3, &mut rng);
        let (canon_raw, key_raw) = admit(&raw);
        let (canon_scrambled, key_scrambled) = admit(&scrambled);
        assert_eq!(
            canon_raw, canon_scrambled,
            "round {round}: scramble changed the canonical form"
        );
        assert_eq!(
            key_raw, key_scrambled,
            "round {round}: scramble changed the admission identity"
        );
        // Canonicalization is idempotent, and the canonical form is its
        // own fixed point under re-admission.
        assert_eq!(canonicalize(&canon_raw), canon_raw);
        assert_eq!(admit(&canon_raw).1, key_raw);
    }
}

/// Serves the kernels on a fresh single-worker runtime and returns the
/// completed `(backend, execution)` pairs in submission order.
fn serve(kernels: &[Kernel], seeds: &[u64]) -> Vec<(String, accel::kernel::KernelExecution)> {
    let config = RuntimeConfig {
        workers: 1,
        queue_capacity: 16,
        policy: DispatchPolicy::PreferSpecialized,
        seed: 0,
        ..RuntimeConfig::default()
    };
    let rt = Runtime::start(config).expect("runtime starts");
    let handles: Vec<_> = kernels
        .iter()
        .zip(seeds)
        .map(|(kernel, &seed)| {
            rt.submit_with(kernel.clone(), JobOptions::with_seed(seed))
                .expect("submission is valid")
        })
        .collect();
    handles
        .iter()
        .map(|h| match h.wait() {
            JobOutcome::Completed {
                backend, execution, ..
            } => (backend, execution),
            other => panic!("unexpected outcome {other:?}"),
        })
        .collect()
}

#[test]
fn serving_raw_canonical_and_scrambled_forms_is_byte_identical() {
    let mut rng = rng_from_seed(0xf00d_cafe);
    for round in 0..4u64 {
        // One kernel per family per round, each with a pinned job seed.
        let pairs: Vec<(Kernel, Kernel)> = (0..3).map(|f| scrambled_pair(f, &mut rng)).collect();
        let seeds: Vec<u64> = (0..3).map(|f| round * 31 + f).collect();
        let raw: Vec<Kernel> = pairs.iter().map(|(r, _)| r.clone()).collect();
        let canonical: Vec<Kernel> = raw.iter().map(canonicalize).collect();
        let scrambled: Vec<Kernel> = pairs.iter().map(|(_, s)| s.clone()).collect();
        // Three *independent* runtimes — no shared cache — so equality
        // comes from each runtime executing the canonical form, not from
        // one runtime serving stored bytes.
        let served_raw = serve(&raw, &seeds);
        let served_canonical = serve(&canonical, &seeds);
        let served_scrambled = serve(&scrambled, &seeds);
        assert_eq!(
            served_raw, served_canonical,
            "round {round}: run(canonicalize(k), seed) != run(k, seed)"
        );
        assert_eq!(
            served_raw, served_scrambled,
            "round {round}: a syntactic scramble changed served bytes"
        );
    }
}

/// A CPU backend whose executions block until the test opens the gate —
/// the deterministic way to hold a flight open while duplicates attach
/// and cancellations race.
struct GatedCpu {
    gate: Arc<AtomicBool>,
    inner: CpuBackend,
}

impl Accelerator for GatedCpu {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn supports(&self, kernel: &Kernel) -> bool {
        self.inner.supports(kernel)
    }
    fn reseed(&mut self, seed: u64) {
        self.inner.reseed(seed);
    }
    fn estimate(&self, kernel: &Kernel) -> Option<accel::kernel::CostEstimate> {
        self.inner.estimate(kernel)
    }
    fn execute(&mut self, kernel: &Kernel) -> Result<accel::kernel::KernelExecution, AccelError> {
        while !self.gate.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.inner.execute(kernel)
    }
}

fn gated_runtime(seed: u64, gate: &Arc<AtomicBool>) -> Runtime {
    let factory_gate = Arc::clone(gate);
    let config = RuntimeConfig {
        workers: 1,
        queue_capacity: 32,
        policy: DispatchPolicy::CpuOnly,
        seed,
        ..RuntimeConfig::default()
    };
    Runtime::with_backend_factory(config, move |pool_seed| {
        Ok(vec![Box::new(GatedCpu {
            gate: Arc::clone(&factory_gate),
            inner: CpuBackend::new(pool_seed),
        }) as Box<dyn Accelerator>])
    })
    .expect("runtime starts")
}

#[test]
fn randomized_waiter_cancellations_never_leak_across_a_flight() {
    const WAITERS: usize = 4;
    const ROUNDS: usize = 10;
    let gate = Arc::new(AtomicBool::new(false));
    let rt = gated_runtime(11, &gate);

    let mut rng = rng_from_seed(0xca9c_e1ed);
    let mut total_cancelled = 0u64;
    let mut total_kept = 0u64;
    for round in 0..ROUNDS {
        // A fresh kernel per round keeps rounds on separate cache keys.
        let kernel = Kernel::Compare {
            x: (round as f64 + 1.0) / 16.0,
            y: 0.5,
        };
        let opts = JobOptions::with_seed(1000 + round as u64);
        gate.store(false, Ordering::SeqCst);
        // The flight registers at submission time, so the duplicates
        // attach deterministically whether or not the worker has picked
        // the lead up yet.
        let lead = rt.submit_with(kernel.clone(), opts).expect("submit lead");
        let waiters: Vec<_> = (0..WAITERS)
            .map(|_| rt.submit_with(kernel.clone(), opts).expect("submit dup"))
            .collect();
        // A random subset of waiters — forced non-empty and non-full —
        // cancels while the lead is still gated.
        let mut cancel = [false; WAITERS];
        for flag in &mut cancel {
            *flag = rng.gen_range(0..2u32) == 1;
        }
        cancel[rng.gen_range(0..WAITERS)] = true;
        cancel[rng.gen_range(0..WAITERS)] = false;
        for (waiter, &doomed) in waiters.iter().zip(&cancel) {
            if doomed {
                assert!(waiter.cancel(), "round {round}: cancel lost its race");
            }
        }
        gate.store(true, Ordering::SeqCst);

        let lead_outcome = lead.wait();
        let JobOutcome::Completed {
            execution: lead_execution,
            ..
        } = &lead_outcome
        else {
            panic!("round {round}: unexpected lead outcome {lead_outcome:?}");
        };
        for (i, (waiter, &doomed)) in waiters.iter().zip(&cancel).enumerate() {
            let outcome = waiter.wait();
            if doomed {
                total_cancelled += 1;
                assert_eq!(
                    outcome,
                    JobOutcome::Cancelled,
                    "round {round}: cancelled waiter {i} resolved otherwise"
                );
            } else {
                total_kept += 1;
                let JobOutcome::Completed { execution, .. } = &outcome else {
                    panic!("round {round}: surviving waiter {i} got {outcome:?}");
                };
                assert_eq!(
                    execution, lead_execution,
                    "round {round}: waiter {i} diverged from the lead's bytes"
                );
            }
        }
    }
    let stats = rt.shutdown();
    assert_eq!(stats.coalesced, (WAITERS * ROUNDS) as u64);
    assert_eq!(stats.cache_misses, ROUNDS as u64, "one lead per round");
    assert_eq!(stats.cancelled, total_cancelled);
    assert_eq!(stats.completed, ROUNDS as u64 + total_kept);
    assert_eq!(stats.settled(), ((1 + WAITERS) * ROUNDS) as u64);
    assert_eq!(
        stats.per_backend["cpu"].jobs, ROUNDS as u64,
        "each flight must execute exactly once"
    );
}

#[test]
fn cancelling_the_lead_still_serves_its_waiters() {
    let gate = Arc::new(AtomicBool::new(false));
    let rt = gated_runtime(23, &gate);
    let kernel = Kernel::Compare { x: 0.375, y: 0.875 };
    let opts = JobOptions::with_seed(7);
    let lead = rt.submit_with(kernel.clone(), opts).expect("submit lead");
    let waiter = rt.submit_with(kernel, opts).expect("submit dup");
    // The lead cancels while gated; its live waiter must still be served
    // a real execution rather than inheriting the cancellation.
    assert!(lead.cancel());
    gate.store(true, Ordering::SeqCst);
    assert_eq!(lead.wait(), JobOutcome::Cancelled);
    assert!(
        matches!(waiter.wait(), JobOutcome::Completed { .. }),
        "a lead's cancellation leaked to its waiter"
    );
    let stats = rt.shutdown();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 1);
}

/// Runs a fixed SAT batch with the given hedge/fault configuration and
/// returns the completed results with the final statistics.
fn sat_batch(
    master_seed: u64,
    hedge: Option<HedgeConfig>,
    faults: Option<FaultPlan>,
) -> (Vec<JobOutcome>, RuntimeStats) {
    let config = RuntimeConfig {
        workers: 2,
        queue_capacity: 32,
        policy: DispatchPolicy::PreferSpecialized,
        seed: master_seed,
        faults,
        admission: AdmissionConfig {
            hedge,
            ..AdmissionConfig::default()
        },
        ..RuntimeConfig::default()
    };
    // Both sides race-or-walk the same portfolio pool: comparing hedged
    // serving against an unhedged pool *without* WalkSAT would measure the
    // pool difference, not the hedge.
    let rt = Runtime::with_backend_factory(config, accel::backends::portfolio_pool)
        .expect("runtime starts");
    let handles: Vec<_> = (0..5u64)
        .map(|i| {
            let formula = planted_3sat(10 + (i as usize % 3), 3.8, master_seed ^ (i * 977))
                .expect("generator parameters are valid")
                .formula;
            rt.submit_with(
                Kernel::SolveSat { formula },
                JobOptions::with_seed(master_seed.wrapping_mul(131) + i),
            )
            .expect("submission is valid")
        })
        .collect();
    let outcomes = handles.iter().map(runtime::JobHandle::wait).collect();
    (outcomes, rt.shutdown())
}

/// Completed results must match pairwise, byte for byte.
fn assert_same_results(plain: &[JobOutcome], hedged: &[JobOutcome], context: &str) {
    for (i, (a, b)) in plain.iter().zip(hedged).enumerate() {
        match (a, b) {
            (
                JobOutcome::Completed { execution: ea, .. },
                JobOutcome::Completed { execution: eb, .. },
            ) => assert_eq!(
                ea.result, eb.result,
                "{context}: job {i} changed results under hedging"
            ),
            other => panic!("{context}: job {i} unexpected outcomes {other:?}"),
        }
    }
}

#[test]
fn hedged_dispatch_matches_unhedged_across_seeds() {
    for master_seed in [3u64, 17, 29, 101] {
        let (plain, plain_stats) = sat_batch(master_seed, None, None);
        let (hedged, hedged_stats) = sat_batch(master_seed, Some(HedgeConfig { top_k: 2 }), None);
        assert_same_results(&plain, &hedged, &format!("seed {master_seed}"));
        assert_eq!(plain_stats.hedged, 0);
        assert_eq!(
            hedged_stats.hedged, 5,
            "seed {master_seed}: every SAT job must race a portfolio"
        );
    }
}

#[test]
fn hedge_losers_dying_to_faults_never_change_results() {
    // The DMM is the top-ranked SAT backend under PreferSpecialized;
    // killing it permanently makes a hedge racer (and the sequential
    // walk's first pick) fault on every attempt. Results must still match
    // the unhedged walk byte-for-byte, because the hedge only ever keeps
    // the winner the sequential failover would have reached.
    for master_seed in [5u64, 43] {
        let plan = || {
            Some(
                FaultPlan::new(master_seed).with_backend("memcomputing", FaultSpec::permanent(1.0)),
            )
        };
        let (plain, plain_stats) = sat_batch(master_seed, None, plan());
        let (hedged, hedged_stats) = sat_batch(master_seed, Some(HedgeConfig { top_k: 3 }), plan());
        assert_same_results(&plain, &hedged, &format!("chaos seed {master_seed}"));
        assert!(
            plain_stats.backend_faults > 0 && hedged_stats.backend_faults > 0,
            "chaos seed {master_seed}: the fault plan never fired"
        );
        assert_eq!(hedged_stats.hedged, 5);
        assert_eq!(
            hedged_stats.completed, 5,
            "chaos seed {master_seed}: hedged serving must absorb the dead racer"
        );
    }
}
