//! Seeded chaos tests across the full serving stack.
//!
//! The fault-injection counterpart to `net_serving.rs`: every test here
//! runs the real TCP stack (or the runtime under it) with a
//! [`FaultPlan`] installed and asserts the failure-handling contract —
//! every submitted job resolves to a *typed* outcome (no hangs, no
//! panics, no dropped sockets), fault/reroute counters are exact, and
//! the same plan seed reproduces the same outcomes byte-for-byte.

use accel::accelerator::{Accelerator, CpuBackend};
use accel::fault::{FaultPlan, FaultSpec};
use accel::host::{QuarantinePolicy, RetryPolicy};
use accel::kernel::Kernel;
use rebooting_models::workload::{
    coloring_heavy_workload, job_seeds, mixed_workload, qubo_heavy_workload,
};
use runtime::{DispatchPolicy, JobOptions, JobOutcome, Runtime, RuntimeConfig, RuntimeStats};
use server::{Client, Server, ServerConfig, SubmitOptions};
use std::net::TcpStream;
use std::time::Duration;
use wire::{
    encode_kernel_result, encode_request, read_frame, write_frame, ChaosStream, Request,
    StreamFault, WireOutcome, PROTOCOL_VERSION,
};

/// Three distinct fault-plan seeds, per the acceptance criteria. Each
/// drives a different chaos schedule; all must resolve cleanly.
const CHAOS_SEEDS: [u64; 3] = [11, 29, 47];
/// Master seed for the workload itself (kernels and job seeds).
const MASTER_SEED: u64 = 404;
const JOBS: usize = 24;

/// Collapses an outcome to the bytes that must be identical across
/// reruns and transports: variant tag, backend, and the canonical wire
/// encoding of the result. Wall-clock and cost are deliberately excluded.
fn fingerprint(outcome: &WireOutcome) -> Vec<u8> {
    match outcome {
        WireOutcome::Completed {
            backend, result, ..
        } => {
            let mut bytes = vec![0u8];
            bytes.extend_from_slice(backend.as_bytes());
            bytes.push(0);
            bytes.extend_from_slice(&encode_kernel_result(result).expect("encodable result"));
            bytes
        }
        WireOutcome::Failed(msg) => {
            let mut bytes = vec![1u8];
            bytes.extend_from_slice(msg.as_bytes());
            bytes
        }
        WireOutcome::TimedOut => vec![2],
        WireOutcome::Cancelled => vec![3],
    }
}

fn job_fingerprint(outcome: &JobOutcome) -> Vec<u8> {
    fingerprint(&WireOutcome::from(outcome))
}

fn chaos_runtime_config(plan_seed: u64, workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        queue_capacity: 64,
        policy: DispatchPolicy::PreferSpecialized,
        seed: MASTER_SEED,
        default_timeout: None,
        faults: Some(FaultPlan::chaos(plan_seed)),
        retry: RetryPolicy::no_backoff(2),
        // Quarantine is history-dependent (it looks at consecutive-fault
        // streaks per worker), so byte-for-byte reproducibility across
        // worker counts requires it off. Its own determinism is covered
        // by `quarantine_isolates_dead_backend_and_probes_for_recovery`.
        quarantine: QuarantinePolicy::disabled(),
        ..RuntimeConfig::default()
    }
}

/// Runs the full TCP stack under a chaos plan: `clients` concurrent
/// connections submit the given workload to a `workers`-wide server.
/// Returns the per-job fingerprints (workload order) and the server's
/// stats snapshot taken after every job settled.
fn chaos_over_tcp(
    workload: &[Kernel],
    seeds: &[u64],
    plan_seed: u64,
    clients: usize,
    workers: usize,
) -> (Vec<Vec<u8>>, RuntimeStats) {
    let jobs = workload.len();
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_connections: clients + 2,
        runtime: chaos_runtime_config(plan_seed, workers),
    })
    .expect("server must start under a fault plan");
    let addr = server.local_addr();

    let mut prints: Vec<Option<Vec<u8>>> = vec![None; jobs];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let mine: Vec<usize> = (0..jobs).filter(|i| i % clients == c).collect();
                    let tickets: Vec<(usize, u64)> = mine
                        .iter()
                        .map(|&i| {
                            let options = SubmitOptions::with_seed(seeds[i]);
                            (i, client.submit(workload[i].clone(), options).unwrap())
                        })
                        .collect();
                    tickets
                        .into_iter()
                        .map(|(i, ticket)| {
                            // `wait` returning at all IS the typed-outcome
                            // guarantee: no hang, no dropped socket.
                            let outcome = client.wait(ticket).expect("typed outcome");
                            (i, fingerprint(&outcome))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, fp) in handle.join().expect("client thread must not panic") {
                prints[i] = Some(fp);
            }
        }
    });

    // Fault counters travel the versioned stats row (protocol v3).
    let mut probe = Client::connect(addr).expect("stats probe connects");
    assert_eq!(probe.version(), PROTOCOL_VERSION);
    let stats = probe.stats().expect("stats over the wire");
    drop(probe);
    let _ = server.shutdown();
    (prints.into_iter().map(Option::unwrap).collect(), stats)
}

/// Replays the same workload on a 1-worker runtime directly (no sockets)
/// under the same plan — the deterministic baseline.
fn chaos_direct(
    workload: &[Kernel],
    seeds: &[u64],
    plan_seed: u64,
) -> (Vec<Vec<u8>>, RuntimeStats) {
    let rt = Runtime::start(chaos_runtime_config(plan_seed, 1)).expect("runtime");
    let handles: Vec<_> = workload
        .iter()
        .zip(seeds)
        .map(|(kernel, &seed)| {
            rt.submit_with(kernel.clone(), JobOptions::with_seed(seed))
                .expect("submit")
        })
        .collect();
    let prints = handles.iter().map(|h| job_fingerprint(&h.wait())).collect();
    (prints, rt.shutdown())
}

#[test]
fn seeded_chaos_resolves_reproduces_and_matches_direct_baseline() {
    let workload = mixed_workload(JOBS, MASTER_SEED).expect("workload");
    let seeds = job_seeds(JOBS, MASTER_SEED);
    for plan_seed in CHAOS_SEEDS {
        // Two independent server runs with *different* topologies, plus a
        // direct no-socket replay: fault decisions are pure functions of
        // (plan seed, backend, job seed), so all three must agree.
        let (first, stats_a) = chaos_over_tcp(&workload, &seeds, plan_seed, 3, 3);
        let (second, stats_b) = chaos_over_tcp(&workload, &seeds, plan_seed, 2, 4);
        let (direct, stats_c) = chaos_direct(&workload, &seeds, plan_seed);

        assert_eq!(
            first, second,
            "seed {plan_seed}: same plan seed must reproduce identical outcomes byte-for-byte"
        );
        assert_eq!(
            first, direct,
            "seed {plan_seed}: TCP outcomes must match the direct single-worker baseline"
        );

        // The chaos plan never permanently faults the CPU, so with
        // failover in place every job still completes.
        for (i, fp) in first.iter().enumerate() {
            assert_eq!(
                fp[0], 0,
                "seed {plan_seed}: job {i} must complete, got tag {}",
                fp[0]
            );
        }

        // Counters are nonzero (chaos really fired) and exact: identical
        // across topologies and transports.
        assert!(
            stats_a.backend_faults > 0,
            "seed {plan_seed}: chaos run must record injected faults"
        );
        assert!(
            stats_a.retries > 0,
            "seed {plan_seed}: transient bursts must record retries"
        );
        for (label, other) in [("second TCP run", &stats_b), ("direct replay", &stats_c)] {
            assert_eq!(
                stats_a.backend_faults, other.backend_faults,
                "seed {plan_seed}: fault count must be exact vs {label}"
            );
            assert_eq!(
                stats_a.retries, other.retries,
                "seed {plan_seed}: retry count must be exact vs {label}"
            );
            assert_eq!(
                stats_a.reroutes, other.reroutes,
                "seed {plan_seed}: reroute count must be exact vs {label}"
            );
        }
        assert_eq!(stats_a.completed, JOBS as u64);
        assert_eq!(stats_a.settled(), JOBS as u64);
    }
}

#[test]
fn chaos_byte_replay_covers_mixed_legacy_and_family_frames() {
    // Registry-born families (coloring and QUBO, riding the protocol-v6
    // generic family frame) and legacy kernels (native v1 frames) share
    // every chaotic connection in one seeded stream. The same plan seed
    // must reproduce every outcome byte-for-byte across topologies, and
    // the direct no-socket replay must agree — the family registry adds
    // no nondeterminism to the failure-handling contract.
    let mut workload = coloring_heavy_workload(16, MASTER_SEED).expect("coloring workload");
    workload.extend(qubo_heavy_workload(16, MASTER_SEED).expect("qubo workload"));
    let seeds = job_seeds(workload.len(), MASTER_SEED);
    let family = workload.iter().filter(|k| k.uses_family_frame()).count();
    assert!(
        family > 0 && family < workload.len(),
        "the stream must mix v6 family frames with native v1 frames"
    );

    let plan_seed = 29;
    let (first, stats_a) = chaos_over_tcp(&workload, &seeds, plan_seed, 3, 3);
    let (second, _) = chaos_over_tcp(&workload, &seeds, plan_seed, 2, 4);
    let (direct, stats_c) = chaos_direct(&workload, &seeds, plan_seed);

    assert_eq!(
        first, second,
        "same plan seed must reproduce the mixed-frame stream byte-for-byte"
    );
    assert_eq!(
        first, direct,
        "TCP outcomes for the mixed-frame stream must match the direct baseline"
    );
    for (i, fp) in first.iter().enumerate() {
        assert_eq!(fp[0], 0, "job {i} must complete, got tag {}", fp[0]);
    }
    assert!(
        stats_a.backend_faults > 0,
        "the chaos plan must actually fire on the mixed-frame stream"
    );
    assert_eq!(
        stats_a.backend_faults, stats_c.backend_faults,
        "fault count must be exact across transports"
    );
}

#[test]
fn wall_clock_deadlines_never_leak_into_results() {
    // The runtime's audited `Instant::now()` sites — queue-time/deadline
    // stamping in `prepare`, the pickup deadline check in `serve_one`,
    // and the caller-side `wait_timeout` deadline — carry
    // `lint:allow(wall-clock)` annotations on the claim that their
    // readings never feed a job result. This run exercises exactly those
    // paths (generous per-job timeouts plus `wait_timeout` polling) and
    // holds the claim to byte-for-byte agreement across two replays.
    let run = || {
        let workload = mixed_workload(JOBS, MASTER_SEED).expect("workload");
        let seeds = job_seeds(JOBS, MASTER_SEED);
        let rt = Runtime::start(chaos_runtime_config(13, 1)).expect("runtime");
        let handles: Vec<_> = workload
            .iter()
            .zip(&seeds)
            .map(|(kernel, &seed)| {
                let options = JobOptions {
                    timeout: Some(Duration::from_secs(60)),
                    seed: Some(seed),
                    policy: None,
                };
                rt.submit_with(kernel.clone(), options).expect("submit")
            })
            .collect();
        let prints: Vec<Vec<u8>> = handles
            .iter()
            .map(|handle| {
                let outcome = loop {
                    if let Some(o) = handle.wait_timeout(Duration::from_millis(20)) {
                        break o;
                    }
                };
                job_fingerprint(&outcome)
            })
            .collect();
        let _ = rt.shutdown();
        prints
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "wall-clock deadline stamping must not influence outcomes"
    );
    for (i, fp) in first.iter().enumerate() {
        assert_eq!(fp[0], 0, "job {i}: a 60s budget must never time out");
    }
}

#[test]
fn at_least_one_chaos_seed_exercises_failover() {
    // The per-seed test above asserts exactness; this one pins the
    // tentpole claim that the planner actually *fails over* under the
    // checked-in seeds, not merely retries in place.
    let workload = mixed_workload(JOBS, MASTER_SEED).expect("workload");
    let seeds = job_seeds(JOBS, MASTER_SEED);
    let total_reroutes: u64 = CHAOS_SEEDS
        .iter()
        .map(|&seed| chaos_direct(&workload, &seeds, seed).1.reroutes)
        .sum();
    assert!(
        total_reroutes > 0,
        "across seeds {CHAOS_SEEDS:?} the planner must reroute at least once"
    );
}

#[test]
fn transient_fault_counters_are_analytically_exact() {
    // A single-CPU pool with a guaranteed transient burst of 1..=3 on
    // every job and a retry budget of 2: bursts of length <= 2 recover on
    // the same backend; bursts of 3 exhaust the budget and, with nowhere
    // to fail over, surface as a typed `Failed`. Every counter is then a
    // pure function of the plan — computed here without running anything.
    let plan = FaultPlan::new(71).with_backend("cpu", FaultSpec::transient(1.0, 3));
    let seeds: Vec<u64> = (100..130).collect();

    let (mut want_faults, mut want_retries, mut want_failed) = (0u64, 0u64, 0u64);
    for &seed in &seeds {
        let burst = u64::from(plan.decision("cpu", seed).transient_attempts);
        assert!(burst >= 1, "rate-1.0 spec must always inject");
        if burst <= 2 {
            want_faults += burst;
            want_retries += burst;
        } else {
            want_faults += 3; // initial attempt + 2 retries, all faulted
            want_retries += 2;
            want_failed += 1;
        }
    }
    assert!(want_failed > 0, "seed choice must exercise exhaustion");
    assert!(
        want_failed < seeds.len() as u64,
        "seed choice must exercise recovery"
    );

    let config = RuntimeConfig {
        workers: 1,
        queue_capacity: 64,
        policy: DispatchPolicy::CpuOnly,
        seed: 9,
        default_timeout: None,
        faults: Some(plan),
        retry: RetryPolicy::no_backoff(2),
        quarantine: QuarantinePolicy::disabled(),
        ..RuntimeConfig::default()
    };
    let rt = Runtime::with_backend_factory(config, |seed| {
        Ok(vec![Box::new(CpuBackend::new(seed)) as Box<dyn Accelerator>])
    })
    .expect("runtime");

    let handles: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            rt.submit_with(
                Kernel::Compare { x: 0.25, y: 0.75 },
                JobOptions::with_seed(seed),
            )
            .expect("submit")
        })
        .collect();
    let mut failed = 0u64;
    for handle in handles {
        match handle.wait() {
            JobOutcome::Completed { backend, .. } => assert_eq!(backend, "cpu"),
            JobOutcome::Failed(msg) => {
                failed += 1;
                assert!(
                    msg.contains("device fault"),
                    "failure must carry the typed device-fault detail, got: {msg}"
                );
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    let stats = rt.shutdown();
    assert_eq!(failed, want_failed);
    assert_eq!(
        stats.backend_faults, want_faults,
        "fault counter must be exact"
    );
    assert_eq!(stats.retries, want_retries, "retry counter must be exact");
    assert_eq!(stats.failed, want_failed);
    assert_eq!(stats.completed, seeds.len() as u64 - want_failed);
    assert_eq!(
        stats.reroutes, 0,
        "a one-backend pool has nowhere to reroute"
    );
    assert_eq!(stats.per_backend["cpu"].faults, want_faults);
}

#[test]
fn quarantine_isolates_dead_backend_and_probes_for_recovery() {
    // The quantum backend faults permanently on every attempt. With a
    // threshold of 2 and a probe interval of 4, a 10-job sequential run
    // has an exactly predictable shape: jobs 1-2 fault on quantum and
    // trip the quarantine, jobs 3-5 skip it outright, jobs 6 and 10 are
    // recovery probes (which fault again); every job completes on the CPU.
    let plan = FaultPlan::new(9).with_backend("quantum", FaultSpec::permanent(1.0));
    let config = RuntimeConfig {
        workers: 1,
        queue_capacity: 16,
        policy: DispatchPolicy::PreferSpecialized,
        seed: 2,
        default_timeout: None,
        faults: Some(plan),
        retry: RetryPolicy::no_backoff(0),
        quarantine: QuarantinePolicy {
            threshold: 2,
            probe_interval: 4,
        },
        ..RuntimeConfig::default()
    };
    let rt = Runtime::start(config).expect("runtime");
    for i in 0..10u64 {
        // Sequential submission keeps the quarantine history exact.
        let outcome = rt
            .submit_with(Kernel::Factor { n: 21 }, JobOptions::with_seed(1_000 + i))
            .expect("submit")
            .wait();
        match outcome {
            JobOutcome::Completed { backend, .. } => {
                assert_eq!(backend, "cpu", "job {i}: must fail over to the CPU");
            }
            other => panic!("job {i}: unexpected outcome {other:?}"),
        }
    }
    let stats = rt.shutdown();
    assert_eq!(stats.completed, 10);
    assert_eq!(
        stats.per_backend["quantum"].faults, 4,
        "jobs 1, 2 + probes 6, 10"
    );
    assert_eq!(stats.backend_faults, 4);
    assert_eq!(stats.quarantine_events, 1);
    assert_eq!(stats.recovery_probes, 2);
    assert_eq!(stats.reroutes, 10, "every job diverted away from quantum");
}

#[test]
fn seeded_hostile_streams_cannot_take_down_the_server() {
    // Sixteen connections each complete a real handshake, then push a
    // valid Submit frame through a seeded transport fault: truncation
    // mid-frame, connection reset mid-frame, or byte-dribbling reads.
    // Whatever the schedule, the server must keep serving honest clients.
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_connections: 8,
        runtime: RuntimeConfig {
            workers: 1,
            queue_capacity: 64,
            policy: DispatchPolicy::PreferSpecialized,
            seed: 7,
            default_timeout: None,
            ..RuntimeConfig::default()
        },
    })
    .expect("server must start");
    let addr = server.local_addr();

    for seed in 0..16u64 {
        let mut raw = TcpStream::connect(addr).expect("tcp connect");
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let hello = encode_request(&Request::Hello {
            min_version: 1,
            max_version: PROTOCOL_VERSION,
        })
        .unwrap();
        write_frame(&mut raw, &hello).expect("hello");
        let _ack = read_frame(&mut raw).expect("hello ack");

        let submit = encode_request(&Request::Submit {
            request_id: 1,
            timeout_ms: None,
            seed: Some(seed),
            policy: None,
            kernel: Kernel::Factor { n: 15 },
        })
        .unwrap();
        let mut framed = Vec::new();
        write_frame(&mut framed, &submit).unwrap();

        let fault = StreamFault::seeded(seed, framed.len());
        let mut chaotic = ChaosStream::new(raw, fault);
        // Truncation swallows silently; disconnection errors locally.
        // Either way the server sees a damaged or partial frame and must
        // survive the subsequent hangup.
        let _ = std::io::Write::write_all(&mut chaotic, &framed);
        let _ = std::io::Write::flush(&mut chaotic);
        drop(chaotic);
    }

    // After all that abuse, a well-behaved client still gets full service.
    let mut client = Client::connect(addr).expect("honest client connects");
    client.ping(0xCAFE).expect("server still answers pings");
    assert!(client
        .run(Kernel::Factor { n: 15 }, SubmitOptions::with_seed(1))
        .expect("server still executes jobs")
        .is_completed());
    drop(client);
    let _ = server.shutdown();
}

#[test]
fn client_reconnects_and_classifies_disconnects() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_connections: 4,
        runtime: RuntimeConfig {
            workers: 1,
            queue_capacity: 16,
            policy: DispatchPolicy::PreferSpecialized,
            seed: 7,
            default_timeout: None,
            ..RuntimeConfig::default()
        },
    })
    .expect("server must start");

    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert!(client
        .run(Kernel::Factor { n: 15 }, SubmitOptions::with_seed(1))
        .unwrap()
        .is_completed());

    // Drop the link and redial the remembered peer: the fresh connection
    // renegotiates and serves as if nothing happened.
    client.reconnect().expect("reconnect to the same server");
    assert_eq!(client.version(), PROTOCOL_VERSION);
    assert!(client
        .run(Kernel::Factor { n: 21 }, SubmitOptions::with_seed(2))
        .unwrap()
        .is_completed());

    // Once the server is gone, the next request dies with an error the
    // caller can classify as a disconnect (and hence retry/redial) rather
    // than a protocol failure.
    let _ = server.shutdown();
    let err = client.ping(5).expect_err("server is gone");
    assert!(
        err.is_disconnect(),
        "expected a disconnect class, got: {err}"
    );
}

#[test]
fn worker_stalls_and_queue_pressure_never_hang_or_drop_jobs() {
    // Every job stalls its worker, the queue is tiny, and submission uses
    // the non-blocking path: some jobs are rejected with a typed error at
    // submit time, and every accepted job still settles. Nothing hangs,
    // nothing is silently dropped, and the books balance exactly.
    let plan = FaultPlan::new(5).with_worker_stall(1.0, Duration::from_millis(2));
    let config = RuntimeConfig {
        workers: 2,
        queue_capacity: 4,
        policy: DispatchPolicy::CpuOnly,
        seed: 3,
        default_timeout: None,
        faults: Some(plan),
        quarantine: QuarantinePolicy::disabled(),
        ..RuntimeConfig::default()
    };
    let rt = Runtime::with_backend_factory(config, |seed| {
        Ok(vec![Box::new(CpuBackend::new(seed)) as Box<dyn Accelerator>])
    })
    .expect("runtime");

    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for i in 0..40u64 {
        match rt.try_submit_with(Kernel::Compare { x: 0.1, y: 0.9 }, JobOptions::with_seed(i)) {
            Ok(handle) => accepted.push(handle),
            Err(runtime::SubmitError::QueueFull) => rejected += 1,
            Err(other) => panic!("unexpected submit error {other}"),
        }
    }
    assert!(
        rejected > 0,
        "stalled workers plus a 4-deep queue must shed load"
    );
    for handle in &accepted {
        match handle.wait() {
            JobOutcome::Completed { .. } => {}
            other => panic!("accepted job must complete, got {other:?}"),
        }
    }
    let stats = rt.shutdown();
    assert_eq!(stats.submitted, accepted.len() as u64);
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.completed, accepted.len() as u64);
    assert_eq!(stats.settled(), accepted.len() as u64);
}
