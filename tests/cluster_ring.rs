//! Property tests for the cluster's consistent-hash ring, driven by the
//! admission tier's canonical routing hashes — the exact keys the router
//! shards by in production.
//!
//! The properties under test are the two that make consistent hashing
//! worth its complexity over `hash % n`:
//!
//! * **Stability** — adding or removing one shard moves only the keys
//!   that shard gains or owned; everything else stays put. (Modulo
//!   hashing would reshuffle nearly all keys and flush every shard's
//!   result cache on each membership change.)
//! * **Affinity** — every syntactic variant of one canonical kernel
//!   routes to the same live shard, including after failures knock
//!   shards out of the routable set.

use accel::kernel::Kernel;
use admission::routing_hash;
use cluster::HashRing;
use numerics::rng::{Rng, SeedStream, StdRng};
use rebooting_models::workload::mixed_workload;

const MASTER_SEED: u64 = 2019;

/// A pile of realistic routing hashes: canonical keys of a mixed
/// workload, plus seeded synthetic keys to get into the thousands.
fn routing_hashes(count: usize) -> Vec<u64> {
    let workload = mixed_workload(count.min(64), MASTER_SEED).unwrap();
    let mut hashes: Vec<u64> = workload.iter().map(routing_hash).collect();
    let mut stream = SeedStream::new(MASTER_SEED);
    while hashes.len() < count {
        hashes.push(stream.next_seed());
    }
    hashes
}

#[test]
fn adding_a_shard_moves_at_most_its_fair_share() {
    let keys = routing_hashes(4_000);
    for n in [2u32, 4, 8] {
        let mut ring = HashRing::new();
        for s in 0..n {
            ring.add_shard(s);
        }
        let before: Vec<Option<u32>> = keys.iter().map(|&k| ring.route(k)).collect();
        ring.add_shard(n);
        let after: Vec<Option<u32>> = keys.iter().map(|&k| ring.route(k)).collect();
        let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        // Every moved key must have moved *onto* the new shard — a key
        // changing hands between two old shards is a stability bug.
        for (b, a) in before.iter().zip(&after) {
            if b != a {
                assert_eq!(*a, Some(n), "key moved between two old shards");
            }
        }
        // Expected movement is K/(N+1); allow 2x slack for hash variance.
        let fair = keys.len() / (n as usize + 1);
        assert!(
            moved <= fair * 2,
            "{moved} of {} keys moved adding shard {n} to {n} shards (fair share {fair})",
            keys.len()
        );
        assert!(moved > 0, "the new shard must take ownership of something");
    }
}

#[test]
fn removing_a_shard_moves_only_its_own_keys() {
    let keys = routing_hashes(4_000);
    let mut ring = HashRing::new();
    for s in 0..5u32 {
        ring.add_shard(s);
    }
    let before: Vec<Option<u32>> = keys.iter().map(|&k| ring.route(k)).collect();
    ring.remove_shard(2);
    let after: Vec<Option<u32>> = keys.iter().map(|&k| ring.route(k)).collect();
    for (&key, (b, a)) in keys.iter().zip(before.iter().zip(&after)) {
        if *b == Some(2) {
            assert_ne!(*a, Some(2), "key {key:#x} still routes to a removed shard");
        } else {
            assert_eq!(a, b, "key {key:#x} moved although its shard survived");
        }
    }
}

#[test]
fn syntactic_variants_of_one_kernel_land_on_one_shard() {
    // Each group is one canonical kernel spelled several ways; the
    // admission hash folds them together and the ring must keep them
    // together, on any membership.
    let groups: Vec<Vec<Kernel>> = vec![
        vec![
            Kernel::Search {
                n_qubits: 4,
                marked: vec![3, 1, 3],
            },
            Kernel::Search {
                n_qubits: 4,
                marked: vec![1, 3],
            },
            Kernel::Search {
                n_qubits: 4,
                marked: vec![3, 1],
            },
        ],
        vec![
            Kernel::Compare { x: -0.0, y: 0.25 },
            Kernel::Compare { x: 0.0, y: 0.25 },
        ],
        vec![Kernel::Factor { n: 77 }, Kernel::Factor { n: 77 }],
    ];
    for n in [1u32, 2, 3, 8] {
        let mut ring = HashRing::new();
        for s in 0..n {
            ring.add_shard(s);
        }
        for group in &groups {
            let shards: Vec<Option<u32>> =
                group.iter().map(|k| ring.route(routing_hash(k))).collect();
            assert!(
                shards.windows(2).all(|w| w[0] == w[1]),
                "variants split across shards at n={n}: {shards:?}"
            );
            assert!(shards[0].is_some());
        }
    }
}

#[test]
fn filtered_routing_walks_past_dead_shards_consistently() {
    let keys = routing_hashes(2_000);
    let mut ring = HashRing::new();
    for s in 0..4u32 {
        ring.add_shard(s);
    }
    let dead = 1u32;
    for &key in &keys {
        let filtered = ring.route_filtered(key, |s| s != dead);
        assert_ne!(filtered, Some(dead), "filter must exclude the dead shard");
        // A key that was not on the dead shard keeps its owner; one that
        // was re-homes exactly where a ring without the shard would put it.
        let owner = ring.route(key);
        if owner != Some(dead) {
            assert_eq!(filtered, owner);
        } else {
            let mut shrunk = HashRing::new();
            for s in (0..4u32).filter(|&s| s != dead) {
                shrunk.add_shard(s);
            }
            assert_eq!(filtered, shrunk.route(key));
        }
    }
}

#[test]
fn ring_distribution_is_roughly_balanced() {
    // Not a strict property of consistent hashing, but a regression
    // guard on the point-hash mixing: with 64 virtual points per shard
    // no shard should own a wildly outsized share.
    let keys = routing_hashes(8_000);
    let mut ring = HashRing::new();
    for s in 0..4u32 {
        ring.add_shard(s);
    }
    let mut counts = [0usize; 4];
    for &key in &keys {
        let s = ring.route(key).unwrap();
        counts[s as usize] += 1;
    }
    let fair = keys.len() / 4;
    for (s, &c) in counts.iter().enumerate() {
        assert!(
            c > fair / 3 && c < fair * 3,
            "shard {s} owns {c} of {} keys (fair {fair}): {counts:?}",
            keys.len()
        );
    }
}

#[test]
fn routing_is_a_pure_function_of_the_key() {
    // Same ring, same key, same answer — across construction orders. The
    // ring sorts its points, so insertion order must not matter.
    let keys = routing_hashes(512);
    let mut forward = HashRing::new();
    for s in 0..6u32 {
        forward.add_shard(s);
    }
    let mut backward = HashRing::new();
    for s in (0..6u32).rev() {
        backward.add_shard(s);
    }
    let mut rng = StdRng::seed_from_u64(MASTER_SEED);
    for _ in 0..keys.len() {
        let key = keys[rng.gen_range(0..keys.len())];
        assert_eq!(forward.route(key), backward.route(key));
    }
}
