//! End-to-end cluster tests: a consistent-hash router in front of real
//! `server::Server` shards over real sockets — key affinity and shard-
//! local cache hits, byte-equality with a direct single-runtime run,
//! shard death with drain/quarantine/re-route, probe-driven rejoin,
//! gossip propagation, and a seeded chaos digest that must replay
//! byte-for-byte.

use accel::host::QuarantinePolicy;
use accel::kernel::Kernel;
use cluster::{Router, RouterConfig, RouterError, ShardStatus};
use rebooting_models::workload::{job_seeds, mixed_workload};
use runtime::{DispatchPolicy, JobOptions, Runtime, RuntimeConfig};
use server::{Server, ServerConfig};
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;
use wire::WireOutcome;

const MASTER_SEED: u64 = 2019;

fn shard_server(workers: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_connections: 8,
        runtime: RuntimeConfig {
            workers,
            queue_capacity: 64,
            policy: DispatchPolicy::PreferSpecialized,
            seed: 7,
            default_timeout: None,
            ..RuntimeConfig::default()
        },
    })
    .expect("shard must start")
}

fn router_config() -> RouterConfig {
    RouterConfig {
        quarantine: QuarantinePolicy {
            threshold: 1,
            probe_interval: 2,
        },
        seed: MASTER_SEED,
        wait_timeout: Duration::from_secs(120),
        ..RouterConfig::default()
    }
}

/// A duplicate-heavy seeded mix: `distinct` canonical kernels, each
/// submitted with the same per-kernel seed every time it repeats — the
/// shape shard-local result caches exist for.
fn duplicate_heavy(total: usize, distinct: usize) -> Vec<(Kernel, u64)> {
    let kernels = mixed_workload(distinct, MASTER_SEED).unwrap();
    let seeds = job_seeds(distinct, MASTER_SEED);
    (0..total)
        .map(|i| (kernels[i % distinct].clone(), seeds[i % distinct]))
        .collect()
}

/// The result bytes of an outcome, independent of which shard (and which
/// wall-clock) produced it. Results are pure functions of
/// `(canonical kernel, seed, policy)`, so this is the cross-placement
/// identity the determinism contract promises.
fn result_bytes(outcome: &WireOutcome) -> String {
    match outcome {
        WireOutcome::Completed { result, .. } => format!("ok:{result:?}"),
        WireOutcome::Failed(msg) => format!("failed:{msg}"),
        WireOutcome::TimedOut => "timed-out".to_owned(),
        WireOutcome::Cancelled => "cancelled".to_owned(),
    }
}

/// FNV-1a over `(ticket, result bytes)` pairs — the chaos-replay digest.
fn digest(outcomes: &[(u64, WireOutcome)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (ticket, outcome) in outcomes {
        for b in ticket
            .to_be_bytes()
            .into_iter()
            .chain(result_bytes(outcome).into_bytes())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Reserves a port that is free right now and has never carried a
/// connection (so no TIME_WAIT) — used to stand up a shard address that
/// starts dead and comes alive later.
fn reserve_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap()
}

#[test]
fn duplicate_heavy_mix_keeps_key_affinity_and_hits_shard_caches() {
    let shards = [shard_server(2), shard_server(2)];
    let addrs: Vec<SocketAddr> = shards.iter().map(Server::local_addr).collect();
    let mut router = Router::connect(&addrs, router_config()).unwrap();

    let mix = duplicate_heavy(32, 8);
    let mut tickets = Vec::new();
    for (kernel, seed) in &mix {
        let options = JobOptions::with_seed(*seed);
        // Affinity, checked pre-flight: every repeat of a kernel must
        // preview to the same shard.
        let preview = router.route_for(kernel, &options).unwrap();
        let ticket = router.submit_blocking(kernel.clone(), options).unwrap();
        tickets.push((ticket, kernel.clone(), *seed, preview));
    }
    let mut previews: std::collections::BTreeMap<String, u32> = std::collections::BTreeMap::new();
    for (_, kernel, _, shard) in &tickets {
        let key = format!("{kernel:?}");
        if let Some(prev) = previews.insert(key, *shard) {
            assert_eq!(prev, *shard, "one kernel previewed two shards");
        }
    }

    let mut outcomes = Vec::new();
    for (ticket, ..) in &tickets {
        outcomes.push((*ticket, router.wait(*ticket).unwrap()));
    }
    for (_, outcome) in &outcomes {
        assert!(
            matches!(outcome, WireOutcome::Completed { .. }),
            "unexpected {outcome:?}"
        );
    }

    // 32 submissions of 8 distinct (kernel, seed) pairs: all but the
    // first occurrence of each must be served by admission (cache hit,
    // or coalesced onto an in-flight duplicate) — which only works if
    // the ring kept each kernel's repeats on one shard's cache.
    let stats = router.stats().unwrap();
    assert_eq!(stats.merged.submitted, 32);
    let deduped = stats.merged.cache_hits + stats.merged.coalesced;
    assert_eq!(deduped, 24, "{:?}", stats.merged);
    assert_eq!(stats.per_shard.len(), 2, "both shards must answer stats");

    // Byte-equality with a direct, routerless, single-runtime run.
    let runtime = Runtime::start(RuntimeConfig {
        workers: 2,
        seed: 7,
        ..RuntimeConfig::default()
    })
    .unwrap();
    for ((_, cluster_outcome), (kernel, seed)) in outcomes.iter().zip(&mix) {
        let handle = runtime
            .submit_with(kernel.clone(), JobOptions::with_seed(*seed))
            .unwrap();
        let direct = WireOutcome::from(&handle.wait());
        assert_eq!(
            result_bytes(cluster_outcome),
            result_bytes(&direct),
            "cluster and direct runs disagree on {kernel:?}"
        );
    }
    let _ = runtime.shutdown();

    drop(router);
    for shard in shards {
        let _ = shard.shutdown();
    }
}

#[test]
fn full_window_surfaces_busy_and_submit_blocking_rides_it_out() {
    let shard = shard_server(1);
    let mut router = Router::connect(
        &[shard.local_addr()],
        RouterConfig {
            window: 1,
            ..router_config()
        },
    )
    .unwrap();

    // Distinct seeds so the second submission cannot be served by the
    // cache or coalesced — it must actually contend for the window.
    let first = router
        .submit(Kernel::Factor { n: 77 }, JobOptions::with_seed(1))
        .unwrap();
    let second = router.submit(Kernel::Factor { n: 77 }, JobOptions::with_seed(2));
    assert!(
        matches!(second, Err(RouterError::Busy)),
        "window of 1 must refuse a second in-flight submission: {second:?}"
    );
    let second = router
        .submit_blocking(Kernel::Factor { n: 77 }, JobOptions::with_seed(2))
        .unwrap();
    assert!(matches!(
        router.wait(first).unwrap(),
        WireOutcome::Completed { .. }
    ));
    assert!(matches!(
        router.wait(second).unwrap(),
        WireOutcome::Completed { .. }
    ));
    drop(router);
    let _ = shard.shutdown();
}

#[test]
fn shard_death_mid_run_drains_quarantines_and_reroutes() {
    let mut shards = vec![Some(shard_server(1)), Some(shard_server(1))];
    let addrs: Vec<SocketAddr> = shards
        .iter()
        .map(|s| s.as_ref().unwrap().local_addr())
        .collect();
    let mut router = Router::connect(&addrs, router_config()).unwrap();

    // Find a slow kernel keyed to shard 0 so the drain window is long.
    let slow = Kernel::Factor { n: 77 };
    let doomed = router
        .route_for(&slow, &JobOptions::with_seed(1))
        .expect("slow kernel must route somewhere");

    // Occupy the doomed shard: distinct seeds defeat the cache, one
    // worker serializes them, so the shard drains for a while.
    let mut tickets = Vec::new();
    for seed in 1..=4u64 {
        tickets.push(
            router
                .submit_blocking(slow.clone(), JobOptions::with_seed(seed))
                .unwrap(),
        );
    }

    // Kill it mid-run (graceful: drains in-flight jobs, refuses new ones).
    let dying = shards[doomed as usize].take().unwrap();
    let killer = std::thread::spawn(move || dying.shutdown());
    // Give the drain a moment to engage so the next submissions land in
    // the window where the shard refuses (or has closed) — either way
    // they must re-route.
    std::thread::sleep(Duration::from_millis(50));

    // Keep submitting into the drain window: these are refused with
    // ShuttingDown and must transparently re-route, keeping their tickets.
    for seed in 5..=10u64 {
        tickets.push(
            router
                .submit_blocking(slow.clone(), JobOptions::with_seed(seed))
                .unwrap(),
        );
    }
    for &ticket in &tickets {
        let outcome = router.wait(ticket).unwrap();
        assert!(
            matches!(outcome, WireOutcome::Completed { .. }),
            "ticket {ticket} lost to the shard death: {outcome:?}"
        );
    }
    killer.join().unwrap();

    // The dead shard is gone from routing and marked unhealthy...
    assert!(!router.connected().contains(&doomed));
    let health = router.health().get(doomed).unwrap();
    assert_ne!(health.status, ShardStatus::Alive, "{health:?}");
    // ...new work for its keys re-homes to the survivor...
    let rehomed = router
        .route_for(&slow, &JobOptions::with_seed(1))
        .expect("survivor must take over");
    assert_ne!(rehomed, doomed);
    // ...and at least the post-shutdown submissions were re-routed.
    assert!(
        router.reroutes() > 0,
        "the drain window must have re-routed something"
    );

    drop(router);
    for shard in shards.into_iter().flatten() {
        let _ = shard.shutdown();
    }
}

#[test]
fn quarantined_shard_rejoins_after_a_successful_probe() {
    let alive = shard_server(1);
    let dead_addr = reserve_addr();
    let mut router = Router::connect(&[alive.local_addr(), dead_addr], router_config()).unwrap();

    // Shard 1 was dead on arrival: quarantined, not routable, no link.
    assert_eq!(router.connected(), vec![0]);
    assert_eq!(
        router.health().get(1).unwrap().status,
        ShardStatus::Quarantined
    );

    // The cluster still serves from shard 0 alone.
    let ticket = router
        .submit_blocking(Kernel::Factor { n: 15 }, JobOptions::with_seed(3))
        .unwrap();
    assert!(matches!(
        router.wait(ticket).unwrap(),
        WireOutcome::Completed { .. }
    ));

    // Shard 1 comes up on its reserved address; heartbeat probes are on
    // a deterministic 2-tick cadence, so a handful of ticks must find it.
    let late = Server::start(ServerConfig {
        addr: dead_addr.to_string(),
        max_connections: 8,
        runtime: RuntimeConfig {
            workers: 1,
            seed: 7,
            ..RuntimeConfig::default()
        },
    })
    .expect("late shard must bind its reserved address");
    for _ in 0..4 {
        router.heartbeat();
    }
    assert_eq!(router.connected(), vec![0, 1]);
    assert_eq!(router.health().get(1).unwrap().status, ShardStatus::Alive);

    // And it serves: some canonical key must route to the rejoined shard.
    let kernels = mixed_workload(16, MASTER_SEED).unwrap();
    let routed_to_rejoined = kernels
        .iter()
        .any(|k| router.route_for(k, &JobOptions::with_seed(9)) == Some(1));
    assert!(routed_to_rejoined, "rejoined shard never takes traffic");

    drop(router);
    let _ = alive.shutdown();
    let _ = late.shutdown();
}

#[test]
fn gossip_propagates_shard_health_between_routers() {
    let hub = shard_server(1);
    let dead_addr = reserve_addr();

    // Router A observes shard 1 dead (quarantined at connect) and pushes
    // its view to the hub shard.
    let mut a = Router::connect(&[hub.local_addr(), dead_addr], router_config()).unwrap();
    a.gossip_round().unwrap();

    // Router B only knows the hub. One gossip round later it has learned
    // about shard 1's quarantine from the hub's merged board.
    let mut b = Router::connect(&[hub.local_addr()], router_config()).unwrap();
    assert!(b.health().get(1).is_none());
    b.gossip_round().unwrap();
    let learned = b
        .health()
        .get(1)
        .expect("gossip must teach router B about shard 1");
    assert_eq!(learned.status, ShardStatus::Quarantined);

    drop(a);
    drop(b);
    let _ = hub.shutdown();
}

#[test]
fn chaos_run_digest_is_reproducible_per_seed() {
    // The whole scenario — duplicate-heavy mix, shard killed mid-run,
    // re-routes — must produce identical (ticket, result-bytes) digests
    // on every replay with the same seed: placement may race, results
    // may arrive in any order, but what each ticket *returns* may not.
    let run = |master_seed: u64| -> u64 {
        let shards = vec![Some(shard_server(1)), Some(shard_server(1))];
        let addrs: Vec<SocketAddr> = shards
            .iter()
            .map(|s| s.as_ref().unwrap().local_addr())
            .collect();
        let mut shards = shards;
        let mut router = Router::connect(
            &addrs,
            RouterConfig {
                seed: master_seed,
                ..router_config()
            },
        )
        .unwrap();

        let kernels = mixed_workload(6, master_seed).unwrap();
        let seeds = job_seeds(6, master_seed);
        let mix: Vec<(Kernel, u64)> = (0..24)
            .map(|i| (kernels[i % 6].clone(), seeds[i % 6]))
            .collect();

        let mut tickets = Vec::new();
        for (i, (kernel, seed)) in mix.iter().enumerate() {
            if i == 12 {
                // Mid-run shard kill; drain overlaps the rest of the mix.
                if let Some(victim) = shards[1].take() {
                    let _ = victim.shutdown();
                }
            }
            tickets.push(
                router
                    .submit_blocking(kernel.clone(), JobOptions::with_seed(*seed))
                    .unwrap(),
            );
        }
        let mut outcomes = Vec::new();
        for ticket in tickets {
            outcomes.push((ticket, router.wait(ticket).unwrap()));
        }
        for (ticket, outcome) in &outcomes {
            assert!(
                matches!(outcome, WireOutcome::Completed { .. }),
                "ticket {ticket}: {outcome:?}"
            );
        }
        let digest = digest(&outcomes);
        drop(router);
        for shard in shards.into_iter().flatten() {
            let _ = shard.shutdown();
        }
        digest
    };

    let first = run(MASTER_SEED);
    let second = run(MASTER_SEED);
    assert_eq!(first, second, "same seed must replay to the same digest");
    let other = run(MASTER_SEED + 1);
    assert_ne!(first, other, "different seeds must explore different runs");
}
