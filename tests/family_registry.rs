//! Frozen-golden equivalence proof for the kernel-family registry.
//!
//! The golden tables below were generated against the pre-registry code
//! (the closed `Kernel` enum with per-crate match arms) and then frozen.
//! Every observable the refactor could have perturbed is pinned for all
//! five legacy families: `describe`/`class`/`validate`, the two-level
//! canonical key and routing hash, the wire encoding of both the raw and
//! the canonicalized kernel, per-backend `supports`/`estimate` bits, and
//! the planner's ranked dispatch order under every policy. If any of
//! these assertions fails, registry-driven behavior has drifted from the
//! enum behavior — that is a serving-compatibility break, not a test to
//! "fix" by re-blessing.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```text
//! cargo test --test family_registry regenerate -- --ignored --nocapture
//! ```

use accel::backends::standard_pool;
use accel::host::{CorrectionTable, DispatchPolicy, Planner};
use accel::kernel::Kernel;
use admission::{canonical_key, canonicalize, routing_hash};
use mem::cnf::{Clause, Formula, Literal};
use mem::generators::planted_3sat;
use wire::encode_kernel;

/// Fixed pool seed: estimates and plans must not depend on it (no legacy
/// estimator is stochastic), but we pin it anyway so the corpus is fully
/// deterministic.
const POOL_SEED: u64 = 7;

const POLICIES: [(&str, DispatchPolicy); 5] = [
    ("prefer-specialized", DispatchPolicy::PreferSpecialized),
    ("cpu-only", DispatchPolicy::CpuOnly),
    ("min-latency", DispatchPolicy::MinPredictedLatency),
    ("min-energy", DispatchPolicy::MinPredictedEnergy),
    ("deadline-aware", DispatchPolicy::DeadlineAware),
];

fn lit(dimacs: i64) -> Literal {
    Literal::from_dimacs(dimacs).expect("valid literal")
}

fn clause(lits: &[i64]) -> Clause {
    Clause::new(lits.iter().map(|&l| lit(l)).collect()).expect("valid clause")
}

/// A formula with unsorted literals, unsorted clauses, and a duplicate
/// clause — exercises every normalization step of SAT canonicalization.
fn scrambled_formula() -> Formula {
    Formula::new(
        5,
        vec![
            clause(&[4, -2, 1]),
            clause(&[-5, 3]),
            clause(&[1, -2, 4]),
            clause(&[2, -1]),
        ],
    )
    .expect("valid formula")
}

/// The frozen corpus: one row per observable behavior worth pinning,
/// including canonicalization-sensitive variants (unsorted marked sets,
/// scrambled clauses, negative-zero compares) and every invalid-kernel
/// arm. Values are arbitrary but frozen: changing them invalidates the
/// golden tables.
fn corpus() -> Vec<(&'static str, Kernel)> {
    vec![
        ("factor_77", Kernel::Factor { n: 77 }),
        ("factor_15", Kernel::Factor { n: 15 }),
        ("factor_too_small", Kernel::Factor { n: 3 }),
        (
            "search_unsorted_dups",
            Kernel::Search {
                n_qubits: 4,
                marked: vec![9, 3, 9, 1],
            },
        ),
        (
            "search_single",
            Kernel::Search {
                n_qubits: 3,
                marked: vec![5],
            },
        ),
        (
            "search_empty_space",
            Kernel::Search {
                n_qubits: 0,
                marked: vec![],
            },
        ),
        (
            "search_marked_oob",
            Kernel::Search {
                n_qubits: 2,
                marked: vec![4],
            },
        ),
        (
            "dna_mixed",
            Kernel::DnaSimilarity {
                a: "ACGTACGTTGCA".into(),
                b: "TGCAACGTACGT".into(),
                k: 3,
            },
        ),
        (
            "dna_zero_kmer",
            Kernel::DnaSimilarity {
                a: "ACGT".into(),
                b: "ACGT".into(),
                k: 0,
            },
        ),
        (
            "dna_kmer_too_long",
            Kernel::DnaSimilarity {
                a: "ACGT".into(),
                b: "ACG".into(),
                k: 4,
            },
        ),
        (
            "sat_planted",
            Kernel::SolveSat {
                formula: planted_3sat(8, 3.5, 11).expect("planted instance").formula,
            },
        ),
        (
            "sat_scrambled",
            Kernel::SolveSat {
                formula: scrambled_formula(),
            },
        ),
        ("compare_quarters", Kernel::Compare { x: 0.25, y: 0.75 }),
        ("compare_neg_zero", Kernel::Compare { x: -0.0, y: 0.5 }),
        (
            "compare_nan",
            Kernel::Compare {
                x: f64::NAN,
                y: 0.5,
            },
        ),
        ("compare_oob", Kernel::Compare { x: 0.1, y: 1.5 }),
    ]
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn validate_text(kernel: &Kernel) -> String {
    match kernel.validate() {
        Ok(()) => "ok".to_string(),
        Err(e) => format!("err: {e}"),
    }
}

fn wire_hex(kernel: &Kernel) -> String {
    match encode_kernel(kernel) {
        Ok(bytes) => hex(&bytes),
        Err(e) => format!("err: {e}"),
    }
}

/// `supports` + corrected-estimate bit patterns for every backend in the
/// standard pool — the complete input surface of the planner.
fn estimate_text(kernel: &Kernel) -> String {
    let pool = standard_pool(POOL_SEED).expect("standard pool");
    pool.iter()
        .map(|b| {
            if !b.supports(kernel) {
                return format!("{}:unsupported", b.name());
            }
            match b.estimate(kernel) {
                Some(e) => format!(
                    "{}:ds={:016x},ej={:016x}",
                    b.name(),
                    e.device_seconds.to_bits(),
                    e.energy_joules.to_bits()
                ),
                None => format!("{}:no-estimate", b.name()),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// The planner's ranked backend order under one policy (pure function of
/// the estimate surface above, pinned separately for direct readability).
fn plan_text(kernel: &Kernel, policy: DispatchPolicy) -> String {
    let pool = standard_pool(POOL_SEED).expect("standard pool");
    let planner = Planner::frozen(CorrectionTable::new());
    match planner.plan(&pool, kernel, policy, None) {
        Ok(plan) => plan
            .ranked
            .iter()
            .map(|&(i, _)| pool[i].name())
            .collect::<Vec<_>>()
            .join(">"),
        Err(e) => format!("err: {e}"),
    }
}

/// One golden row: everything observable about a corpus kernel.
fn observe(kernel: &Kernel) -> Vec<(&'static str, String)> {
    let valid = kernel.validate().is_ok();
    let mut row = vec![
        ("describe", kernel.describe()),
        ("class", format!("{:?}", kernel.class())),
        ("validate", validate_text(kernel)),
        ("wire", wire_hex(kernel)),
    ];
    if valid {
        let canonical = canonicalize(kernel);
        let key = canonical_key(&canonical);
        row.push(("canon_coarse", format!("{:016x}", key.key)));
        row.push(("canon_exact", format!("{:016x}", key.exact)));
        row.push(("routing", format!("{:016x}", routing_hash(kernel))));
        row.push(("canon_wire", wire_hex(&canonical)));
        row.push(("estimates", estimate_text(kernel)));
        for (policy_name, policy) in POLICIES {
            row.push((policy_name, plan_text(kernel, policy)));
        }
    }
    row
}

// ---------------------------------------------------------------------
// Golden tables, generated against the pre-registry enum code. Each row
// is (kernel, field, value). Regenerate with the ignored test below ONLY
// for an intentional, wire-compatible behavior change.
// ---------------------------------------------------------------------

const GOLDENS: &[(&str, &str, &str)] = &[
    ("factor_77", "describe", "factor(77)"),
    ("factor_77", "class", "Quantum"),
    ("factor_77", "validate", "ok"),
    ("factor_77", "wire", "00000000000000004d"),
    ("factor_77", "canon_coarse", "529a71dc8ff5a8eb"),
    ("factor_77", "canon_exact", "529a71dc8ff5a8eb"),
    ("factor_77", "routing", "5be7a50aee5a4f15"),
    ("factor_77", "canon_wire", "00000000000000004d"),
    ("factor_77", "estimates", "quantum:ds=3f2cc5de710f0be2,ej=3f767a95c853c149 oscillator:unsupported memcomputing:unsupported cpu:ds=3e3723996cccc750,ej=3e3723996cccc750"),
    ("factor_77", "prefer-specialized", "quantum>cpu"),
    ("factor_77", "cpu-only", "cpu"),
    ("factor_77", "min-latency", "cpu>quantum"),
    ("factor_77", "min-energy", "cpu>quantum"),
    ("factor_77", "deadline-aware", "cpu>quantum"),
    ("factor_15", "describe", "factor(15)"),
    ("factor_15", "class", "Quantum"),
    ("factor_15", "validate", "ok"),
    ("factor_15", "wire", "00000000000000000f"),
    ("factor_15", "canon_coarse", "529a33dc8ff53f91"),
    ("factor_15", "canon_exact", "529a33dc8ff53f91"),
    ("factor_15", "routing", "c7f6ca66f90c2951"),
    ("factor_15", "canon_wire", "00000000000000000f"),
    ("factor_15", "estimates", "quantum:ds=3f05798ee2308c3a,ej=3f50c6f7a0b5ed8d oscillator:unsupported memcomputing:unsupported cpu:ds=3e293969d9c0a586,ej=3e293969d9c0a586"),
    ("factor_15", "prefer-specialized", "quantum>cpu"),
    ("factor_15", "cpu-only", "cpu"),
    ("factor_15", "min-latency", "cpu>quantum"),
    ("factor_15", "min-energy", "cpu>quantum"),
    ("factor_15", "deadline-aware", "cpu>quantum"),
    ("factor_too_small", "describe", "factor(3)"),
    ("factor_too_small", "class", "Quantum"),
    ("factor_too_small", "validate", "err: factor(3): composites below 4 have no nontrivial factors"),
    ("factor_too_small", "wire", "000000000000000003"),
    ("search_unsorted_dups", "describe", "search(2^4, 4 marked)"),
    ("search_unsorted_dups", "class", "Quantum"),
    ("search_unsorted_dups", "validate", "ok"),
    ("search_unsorted_dups", "wire", "0100000004000000040000000000000009000000000000000300000000000000090000000000000001"),
    ("search_unsorted_dups", "canon_coarse", "3678c93179214ef1"),
    ("search_unsorted_dups", "canon_exact", "3678c93179214ef1"),
    ("search_unsorted_dups", "routing", "d0d45053f73ea425"),
    ("search_unsorted_dups", "canon_wire", "010000000400000003000000000000000100000000000000030000000000000009"),
    ("search_unsorted_dups", "estimates", "quantum:ds=3e9ad7f29abcaf49,ej=3ee4f8b588e368f1 oscillator:unsupported memcomputing:unsupported cpu:ds=3e2d34add7753997,ej=3e2d34add7753997"),
    ("search_unsorted_dups", "prefer-specialized", "quantum>cpu"),
    ("search_unsorted_dups", "cpu-only", "cpu"),
    ("search_unsorted_dups", "min-latency", "cpu>quantum"),
    ("search_unsorted_dups", "min-energy", "cpu>quantum"),
    ("search_unsorted_dups", "deadline-aware", "cpu>quantum"),
    ("search_single", "describe", "search(2^3, 1 marked)"),
    ("search_single", "class", "Quantum"),
    ("search_single", "validate", "ok"),
    ("search_single", "wire", "0100000003000000010000000000000005"),
    ("search_single", "canon_coarse", "ace7e6cf6a345160"),
    ("search_single", "canon_exact", "ace7e6cf6a345160"),
    ("search_single", "routing", "c858e0058dbd6735"),
    ("search_single", "canon_wire", "0100000003000000010000000000000005"),
    ("search_single", "estimates", "quantum:ds=3ea5798ee2308c3a,ej=3ef0c6f7a0b5ed8d oscillator:unsupported memcomputing:unsupported cpu:ds=3e3353cd652bb168,ej=3e3353cd652bb168"),
    ("search_single", "prefer-specialized", "quantum>cpu"),
    ("search_single", "cpu-only", "cpu"),
    ("search_single", "min-latency", "cpu>quantum"),
    ("search_single", "min-energy", "cpu>quantum"),
    ("search_single", "deadline-aware", "cpu>quantum"),
    ("search_empty_space", "describe", "search(2^0, 0 marked)"),
    ("search_empty_space", "class", "Quantum"),
    ("search_empty_space", "validate", "err: search over 0 qubits: the search space is empty"),
    ("search_empty_space", "wire", "010000000000000000"),
    ("search_marked_oob", "describe", "search(2^2, 1 marked)"),
    ("search_marked_oob", "class", "Quantum"),
    ("search_marked_oob", "validate", "err: marked item 4 outside search space 0..2^2"),
    ("search_marked_oob", "wire", "0100000002000000010000000000000004"),
    ("dna_mixed", "describe", "dna_similarity(|a|=12, |b|=12, k=3)"),
    ("dna_mixed", "class", "Quantum"),
    ("dna_mixed", "validate", "ok"),
    ("dna_mixed", "wire", "020000000c4143475441434754544743410000000c5447434141434754414347540000000000000003"),
    ("dna_mixed", "canon_coarse", "f8d573df3ad015a3"),
    ("dna_mixed", "canon_exact", "f8d573df3ad015a3"),
    ("dna_mixed", "routing", "040ed11e7c774add"),
    ("dna_mixed", "canon_wire", "020000000c4143475441434754544743410000000c5447434141434754414347540000000000000003"),
    ("dna_mixed", "estimates", "quantum:ds=3f40b630a91537a0,ej=3f8a1cac083126ea oscillator:unsupported memcomputing:unsupported cpu:ds=3e8cfdb417c18a1b,ej=3e8cfdb417c18a1b"),
    ("dna_mixed", "prefer-specialized", "quantum>cpu"),
    ("dna_mixed", "cpu-only", "cpu"),
    ("dna_mixed", "min-latency", "cpu>quantum"),
    ("dna_mixed", "min-energy", "cpu>quantum"),
    ("dna_mixed", "deadline-aware", "cpu>quantum"),
    ("dna_zero_kmer", "describe", "dna_similarity(|a|=4, |b|=4, k=0)"),
    ("dna_zero_kmer", "class", "Quantum"),
    ("dna_zero_kmer", "validate", "err: dna similarity with k = 0"),
    ("dna_zero_kmer", "wire", "02000000044143475400000004414347540000000000000000"),
    ("dna_kmer_too_long", "describe", "dna_similarity(|a|=4, |b|=3, k=4)"),
    ("dna_kmer_too_long", "class", "Quantum"),
    ("dna_kmer_too_long", "validate", "err: dna similarity k-mer length 4 exceeds shorter sequence length 3"),
    ("dna_kmer_too_long", "wire", "020000000441434754000000034143470000000000000004"),
    ("sat_planted", "describe", "solve_sat(8 vars, 28 clauses)"),
    ("sat_planted", "class", "Optimization"),
    ("sat_planted", "validate", "ok"),
    ("sat_planted", "wire", "03000000080000001c00000003fffffffffffffff9fffffffffffffffcffffffffffffffff0000000300000000000000010000000000000007fffffffffffffffd0000000300000000000000010000000000000005000000000000000800000003fffffffffffffffc0000000000000001fffffffffffffffd000000030000000000000005fffffffffffffff9000000000000000300000003fffffffffffffffffffffffffffffffbfffffffffffffffd00000003fffffffffffffffd00000000000000060000000000000004000000030000000000000008fffffffffffffffb000000000000000700000003fffffffffffffffc000000000000000500000000000000030000000300000000000000030000000000000007000000000000000600000003fffffffffffffffefffffffffffffffcfffffffffffffff80000000300000000000000040000000000000005fffffffffffffffe000000030000000000000004fffffffffffffffafffffffffffffffb000000030000000000000006000000000000000800000000000000020000000300000000000000010000000000000008fffffffffffffffa00000003fffffffffffffffdfffffffffffffff8fffffffffffffffc00000003fffffffffffffff8fffffffffffffffffffffffffffffffb000000030000000000000001fffffffffffffff800000000000000070000000300000000000000010000000000000002fffffffffffffffb00000003fffffffffffffff9fffffffffffffffcfffffffffffffff8000000030000000000000006fffffffffffffffeffffffffffffffff000000030000000000000001fffffffffffffffa000000000000000300000003fffffffffffffff8fffffffffffffffe000000000000000600000003fffffffffffffff8fffffffffffffffffffffffffffffffd000000030000000000000008fffffffffffffff9ffffffffffffffff00000003fffffffffffffffafffffffffffffff9fffffffffffffffe00000003ffffffffffffffff0000000000000003000000000000000500000003fffffffffffffffdfffffffffffffffbfffffffffffffff8"),
    ("sat_planted", "canon_coarse", "53494a553875189e"),
    ("sat_planted", "canon_exact", "10a23d57c8457003"),
    ("sat_planted", "routing", "60395e93dbc86dfd"),
    ("sat_planted", "canon_wire", "03000000080000001c0000000300000000000000010000000000000002fffffffffffffffb0000000300000000000000010000000000000003fffffffffffffffa000000030000000000000001fffffffffffffffdfffffffffffffffc000000030000000000000001fffffffffffffffd000000000000000700000003000000000000000100000000000000050000000000000008000000030000000000000001fffffffffffffffa00000000000000080000000300000000000000010000000000000007fffffffffffffff800000003fffffffffffffffffffffffffffffffe000000000000000600000003ffffffffffffffff0000000000000003000000000000000500000003fffffffffffffffffffffffffffffffdfffffffffffffffb00000003fffffffffffffffffffffffffffffffdfffffffffffffff800000003fffffffffffffffffffffffffffffffcfffffffffffffff900000003fffffffffffffffffffffffffffffffbfffffffffffffff800000003fffffffffffffffffffffffffffffff900000000000000080000000300000000000000020000000000000006000000000000000800000003fffffffffffffffe0000000000000004000000000000000500000003fffffffffffffffefffffffffffffffcfffffffffffffff800000003fffffffffffffffe0000000000000006fffffffffffffff800000003fffffffffffffffefffffffffffffffafffffffffffffff9000000030000000000000003fffffffffffffffc00000000000000050000000300000000000000030000000000000005fffffffffffffff90000000300000000000000030000000000000006000000000000000700000003fffffffffffffffd0000000000000004000000000000000600000003fffffffffffffffdfffffffffffffffcfffffffffffffff800000003fffffffffffffffdfffffffffffffffbfffffffffffffff8000000030000000000000004fffffffffffffffbfffffffffffffffa00000003fffffffffffffffcfffffffffffffff9fffffffffffffff800000003fffffffffffffffb00000000000000070000000000000008"),
    ("sat_planted", "estimates", "quantum:unsupported oscillator:unsupported memcomputing:ds=3e8353cd652bb168,ej=3e18bd2fdda89129 cpu:ds=3e7cc673433a523a,ej=3e7cc673433a523a"),
    ("sat_planted", "prefer-specialized", "memcomputing>cpu"),
    ("sat_planted", "cpu-only", "cpu"),
    ("sat_planted", "min-latency", "cpu>memcomputing"),
    ("sat_planted", "min-energy", "memcomputing>cpu"),
    ("sat_planted", "deadline-aware", "cpu>memcomputing"),
    ("sat_scrambled", "describe", "solve_sat(5 vars, 4 clauses)"),
    ("sat_scrambled", "class", "Optimization"),
    ("sat_scrambled", "validate", "ok"),
    ("sat_scrambled", "wire", "030000000500000004000000030000000000000004fffffffffffffffe000000000000000100000002fffffffffffffffb0000000000000003000000030000000000000001fffffffffffffffe0000000000000004000000020000000000000002ffffffffffffffff"),
    ("sat_scrambled", "canon_coarse", "2d54f6244358c38b"),
    ("sat_scrambled", "canon_exact", "b39e67eb9a6bced0"),
    ("sat_scrambled", "routing", "f4ea5e0120965b8d"),
    ("sat_scrambled", "canon_wire", "030000000500000003000000030000000000000001fffffffffffffffe000000000000000400000002ffffffffffffffff0000000000000002000000020000000000000003fffffffffffffffb"),
    ("sat_scrambled", "estimates", "quantum:unsupported oscillator:unsupported memcomputing:ds=3e6353cd652bb168,ej=3df8bd2fdda89129 cpu:ds=3e4bcc305134218a,ej=3e4bcc305134218a"),
    ("sat_scrambled", "prefer-specialized", "memcomputing>cpu"),
    ("sat_scrambled", "cpu-only", "cpu"),
    ("sat_scrambled", "min-latency", "cpu>memcomputing"),
    ("sat_scrambled", "min-energy", "memcomputing>cpu"),
    ("sat_scrambled", "deadline-aware", "cpu>memcomputing"),
    ("compare_quarters", "describe", "compare(0.250, 0.750)"),
    ("compare_quarters", "class", "Analog"),
    ("compare_quarters", "validate", "ok"),
    ("compare_quarters", "wire", "043fd00000000000003fe8000000000000"),
    ("compare_quarters", "canon_coarse", "a9516d064a078a38"),
    ("compare_quarters", "canon_exact", "77b17fd813e5cc48"),
    ("compare_quarters", "routing", "273f3f40ba4953e2"),
    ("compare_quarters", "canon_wire", "043fd00000000000003fe8000000000000"),
    ("compare_quarters", "estimates", "quantum:unsupported oscillator:ds=3ebad7f29abcaf48,ej=3e19ba83b3532652 memcomputing:unsupported cpu:ds=3e29c511dc3a41e0,ej=3e29c511dc3a41e0"),
    ("compare_quarters", "prefer-specialized", "oscillator>cpu"),
    ("compare_quarters", "cpu-only", "cpu"),
    ("compare_quarters", "min-latency", "cpu>oscillator"),
    ("compare_quarters", "min-energy", "oscillator>cpu"),
    ("compare_quarters", "deadline-aware", "cpu>oscillator"),
    ("compare_neg_zero", "describe", "compare(-0.000, 0.500)"),
    ("compare_neg_zero", "class", "Analog"),
    ("compare_neg_zero", "validate", "ok"),
    ("compare_neg_zero", "wire", "0480000000000000003fe0000000000000"),
    ("compare_neg_zero", "canon_coarse", "0911d125d8fe7cb8"),
    ("compare_neg_zero", "canon_exact", "4f1aa366e149989f"),
    ("compare_neg_zero", "routing", "6f3a3d72cb5ed520"),
    ("compare_neg_zero", "canon_wire", "0400000000000000003fe0000000000000"),
    ("compare_neg_zero", "estimates", "quantum:unsupported oscillator:ds=3ebad7f29abcaf48,ej=3e19ba83b3532652 memcomputing:unsupported cpu:ds=3e29c511dc3a41e0,ej=3e29c511dc3a41e0"),
    ("compare_neg_zero", "prefer-specialized", "oscillator>cpu"),
    ("compare_neg_zero", "cpu-only", "cpu"),
    ("compare_neg_zero", "min-latency", "cpu>oscillator"),
    ("compare_neg_zero", "min-energy", "oscillator>cpu"),
    ("compare_neg_zero", "deadline-aware", "cpu>oscillator"),
    ("compare_nan", "describe", "compare(NaN, 0.500)"),
    ("compare_nan", "class", "Analog"),
    ("compare_nan", "validate", "err: compare operands (NaN, 0.5) must be finite"),
    ("compare_nan", "wire", "047ff80000000000003fe0000000000000"),
    ("compare_oob", "describe", "compare(0.100, 1.500)"),
    ("compare_oob", "class", "Analog"),
    ("compare_oob", "validate", "err: compare operands (0.1, 1.5) must lie in [0, 1]"),
    ("compare_oob", "wire", "043fb999999999999a3ff8000000000000"),
];

#[test]
fn legacy_families_match_pre_registry_goldens() {
    if GOLDENS.len() == 1 && GOLDENS[0].0 == "placeholder" {
        panic!("golden table not yet generated — run the regenerate test");
    }
    let mut checked = 0usize;
    for (name, kernel) in corpus() {
        for (field, value) in observe(&kernel) {
            let golden = GOLDENS
                .iter()
                .find(|(n, f, _)| *n == name && *f == field)
                .unwrap_or_else(|| panic!("missing golden for {name}/{field}"));
            assert_eq!(
                value, golden.2,
                "{name}/{field} drifted from pre-registry behavior"
            );
            checked += 1;
        }
    }
    assert_eq!(
        checked,
        GOLDENS.len(),
        "golden table has rows the corpus no longer produces"
    );
}

/// Prints the full golden table. Run after an *intentional* behavior
/// change, then paste the output over the constant above.
#[test]
#[ignore = "generator, not a check"]
fn regenerate() {
    println!("const GOLDENS: &[(&str, &str, &str)] = &[");
    for (name, kernel) in corpus() {
        for (field, value) in observe(&kernel) {
            println!(
                "    (\"{name}\", \"{field}\", \"{}\"),",
                value.escape_debug()
            );
        }
    }
    println!("];");
}
