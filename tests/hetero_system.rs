//! Integration: the Fig. 1 heterogeneous system — specialized backends
//! produce answers consistent with the CPU reference, and the host routes
//! and accounts correctly.

use accel::accelerator::{Accelerator, CpuBackend};
use accel::backends::{MemBackend, OscillatorBackend, QuantumBackend};
use accel::host::{DispatchPolicy, HostRuntime};
use accel::kernel::{Kernel, KernelResult};
use mem::generators::planted_3sat;

fn full_host() -> HostRuntime {
    let mut host = HostRuntime::new(DispatchPolicy::PreferSpecialized);
    host.register(Box::new(QuantumBackend::new(1)));
    host.register(Box::new(OscillatorBackend::new().expect("calibrates")));
    host.register(Box::new(MemBackend::new(2)));
    host.register(Box::new(CpuBackend::new(3)));
    host
}

#[test]
fn quantum_and_cpu_agree_on_factoring() {
    let mut host = full_host();
    let quantum = host.dispatch(&Kernel::Factor { n: 21 }).unwrap();
    let mut cpu = CpuBackend::new(9);
    let classical = cpu.execute(&Kernel::Factor { n: 21 }).unwrap();
    let product = |r: &KernelResult| match r {
        KernelResult::Factors(p, q) => p * q,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(product(&quantum.result), 21);
    assert_eq!(product(&classical.result), 21);
}

#[test]
fn mem_and_cpu_agree_on_satisfiability() {
    let inst = planted_3sat(20, 4.0, 4).unwrap();
    let kernel = Kernel::SolveSat {
        formula: inst.formula.clone(),
    };
    let mut host = full_host();
    let dmm_run = host.dispatch(&kernel).unwrap();
    let mut cpu = CpuBackend::new(5);
    let cpu_run = cpu.execute(&kernel).unwrap();
    for (name, run) in [("dmm", dmm_run), ("cpu", cpu_run)] {
        match run.result {
            KernelResult::SatSolution(Some(bits)) => {
                let a = mem::assignment::Assignment::from_bools(&bits);
                assert!(inst.formula.is_satisfied(&a), "{name} invalid");
            }
            other => panic!("{name} unexpected {other:?}"),
        }
    }
}

#[test]
fn oscillator_distance_orders_like_cpu_distance() {
    let mut host = full_host();
    let pairs = [(0.5, 0.52), (0.5, 0.6), (0.2, 0.8)];
    let mut osc_values = Vec::new();
    let mut cpu_values = Vec::new();
    let mut cpu = CpuBackend::new(7);
    for &(x, y) in &pairs {
        let k = Kernel::Compare { x, y };
        match host.dispatch(&k).unwrap().result {
            KernelResult::Distance(d) => osc_values.push(d),
            other => panic!("unexpected {other:?}"),
        }
        match cpu.execute(&k).unwrap().result {
            KernelResult::Distance(d) => cpu_values.push(d),
            other => panic!("unexpected {other:?}"),
        }
    }
    // The analog measure must preserve the classical ordering.
    assert!(osc_values[0] <= osc_values[1] + 1e-12);
    assert!(osc_values[1] <= osc_values[2] + 1e-12);
    assert!(cpu_values.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(host.stats()["oscillator"].kernels, 3);
}

#[test]
fn workload_routes_every_class_to_its_specialist() {
    let inst = planted_3sat(15, 3.8, 6).unwrap();
    let workload = vec![
        Kernel::Factor { n: 15 },
        Kernel::SolveSat {
            formula: inst.formula,
        },
        Kernel::Compare { x: 0.3, y: 0.4 },
        Kernel::DnaSimilarity {
            a: "ACGTACGTACGT".into(),
            b: "ACGTACGAACGT".into(),
            k: 2,
        },
    ];
    let mut host = full_host();
    host.run_workload(&workload).unwrap();
    let stats = host.stats();
    assert_eq!(stats["quantum"].kernels, 2);
    assert_eq!(stats["memcomputing"].kernels, 1);
    assert_eq!(stats["oscillator"].kernels, 1);
    assert_eq!(stats["cpu"].kernels, 0);
    assert!(host.total_device_seconds() > 0.0);
}

#[test]
fn cpu_only_policy_still_answers_everything() {
    let inst = planted_3sat(12, 3.5, 8).unwrap();
    let workload = vec![
        Kernel::Factor { n: 15 },
        Kernel::SolveSat {
            formula: inst.formula,
        },
        Kernel::Compare { x: 0.3, y: 0.4 },
    ];
    let mut host = HostRuntime::new(DispatchPolicy::CpuOnly);
    host.register(Box::new(QuantumBackend::new(1)));
    host.register(Box::new(CpuBackend::new(2)));
    let runs = host.run_workload(&workload).unwrap();
    assert_eq!(runs.len(), 3);
    assert_eq!(host.stats()["cpu"].kernels, 3);
    assert_eq!(host.stats()["quantum"].kernels, 0);
}

#[test]
fn umbrella_crate_reexports_work() {
    use rebooting::prelude::*;
    let mut circuit = Circuit::new(2).unwrap();
    circuit.h(0).unwrap().cx(0, 1).unwrap();
    let state = circuit.run(StateVector::zero(2)).unwrap();
    assert!((state.probability(3).unwrap() - 0.5).abs() < 1e-12);
    assert!(rebooting::PAPER.contains("Rebooting"));
}
