//! Property-based tests on the workspace's core invariants (proptest).

use mem::assignment::Assignment;
use mem::cnf::{Clause, Formula, Literal};
use numerics::Complex;
use proptest::prelude::*;
use quantum::circuit::Circuit;
use quantum::gate::Gate;
use quantum::state::StateVector;
use vision::image::GrayImage;

/// Strategy: a random gate over `n` qubits.
fn gate_strategy(n: usize) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let q2 = move || {
        (0..n, 0..n).prop_filter_map("distinct qubits", |(a, b)| {
            if a == b {
                None
            } else {
                Some((a, b))
            }
        })
    };
    prop_oneof![
        q.clone().prop_map(Gate::H),
        q.clone().prop_map(Gate::X),
        q.clone().prop_map(Gate::S),
        q.clone().prop_map(Gate::T),
        (q.clone(), -3.0f64..3.0).prop_map(|(q, t)| Gate::Rx(q, t)),
        (q.clone(), -3.0f64..3.0).prop_map(|(q, t)| Gate::Ry(q, t)),
        (q, -3.0f64..3.0).prop_map(|(q, t)| Gate::Phase(q, t)),
        q2().prop_map(|(a, b)| Gate::CX(a, b)),
        q2().prop_map(|(a, b)| Gate::CZ(a, b)),
        q2().prop_map(|(a, b)| Gate::Swap(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unitary evolution preserves the state norm.
    #[test]
    fn random_circuits_preserve_norm(gates in prop::collection::vec(gate_strategy(4), 1..40)) {
        let mut state = StateVector::zero(4);
        for g in &gates {
            g.apply(&mut state).unwrap();
        }
        prop_assert!((state.norm() - 1.0).abs() < 1e-9);
    }

    /// A circuit followed by its inverse is the identity.
    #[test]
    fn circuit_inverse_roundtrip(gates in prop::collection::vec(gate_strategy(3), 1..25)) {
        let mut c = Circuit::new(3).unwrap();
        for g in &gates {
            c.push(*g).unwrap();
        }
        let forward = c.run(StateVector::zero(3)).unwrap();
        let back = c.inverse().run(forward).unwrap();
        prop_assert!((back.probability(0).unwrap() - 1.0).abs() < 1e-8);
    }

    /// FFT then inverse FFT is the identity.
    #[test]
    fn fft_roundtrip(values in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..5)) {
        // Pad to a power of two.
        let mut data: Vec<Complex> = values.iter().map(|&(re, im)| Complex::new(re, im)).collect();
        let n = data.len().next_power_of_two().max(2);
        data.resize(n, Complex::ZERO);
        let original = data.clone();
        numerics::fft::fft_in_place(&mut data).unwrap();
        numerics::fft::ifft_in_place(&mut data).unwrap();
        for (a, b) in data.iter().zip(&original) {
            prop_assert!((*a - *b).norm() < 1e-9);
        }
    }

    /// `l_k` norms are monotone nonincreasing in `k` (power-mean inequality).
    #[test]
    fn lk_norm_monotone_in_k(values in prop::collection::vec(-5.0f64..5.0, 1..10)) {
        let v = numerics::linalg::Vector::from_slice(&values);
        let n1 = v.lk_norm(1.0).unwrap();
        let n2 = v.lk_norm(2.0).unwrap();
        let n4 = v.lk_norm(4.0).unwrap();
        prop_assert!(n1 >= n2 - 1e-9);
        prop_assert!(n2 >= n4 - 1e-9);
    }

    /// DIMACS emit/parse round-trips arbitrary valid formulas.
    #[test]
    fn dimacs_roundtrip(clause_specs in prop::collection::vec(
        prop::collection::btree_set(0usize..12, 1..4), 1..20
    )) {
        let clauses: Vec<Clause> = clause_specs.iter().map(|vars| {
            Clause::new(vars.iter().enumerate().map(|(i, &v)| {
                if i % 2 == 0 { Literal::positive(v) } else { Literal::negative(v) }
            }).collect()).unwrap()
        }).collect();
        let f = Formula::new(12, clauses).unwrap();
        let text = mem::dimacs::emit(&f);
        let parsed = mem::dimacs::parse(&text).unwrap();
        prop_assert_eq!(parsed, f);
    }

    /// SAT evaluation agrees between count and boolean forms.
    #[test]
    fn unsat_count_consistent(bits in prop::collection::vec(any::<bool>(), 12)) {
        let f = mem::generators::random_ksat(12, 3, 3.0, 99).unwrap();
        let a = Assignment::from_bools(&bits);
        let count = f.count_unsatisfied(&a);
        prop_assert_eq!(count == 0, f.is_satisfied(&a));
        prop_assert_eq!(count, f.unsatisfied_clauses(&a).len());
    }

    /// The QUBO → weighted-MaxSAT reduction is exact on random points.
    #[test]
    fn qubo_maxsat_reduction_exact(
        linear in prop::collection::vec(-2.0f64..2.0, 5),
        quad in prop::collection::vec((-2.0f64..2.0,), 4),
        probe in prop::collection::vec(any::<bool>(), 5),
    ) {
        let mut q = mem::qubo::Qubo::new(5).unwrap();
        for (i, &c) in linear.iter().enumerate() {
            q.add_linear(i, c).unwrap();
        }
        for (k, &(w,)) in quad.iter().enumerate() {
            q.add_quadratic(k, (k + 1) % 5, w).unwrap();
        }
        let (wf, offset) = q.to_weighted_maxsat().unwrap();
        let direct = q.value(&probe);
        let via = wf.violation_cost(&Assignment::from_bools(&probe)) + offset;
        prop_assert!((direct - via).abs() < 1e-9, "direct {} vs via {}", direct, via);
    }

    /// PGM image round-trips through write/read.
    #[test]
    fn pgm_roundtrip(w in 1usize..12, h in 1usize..12, seed in any::<u64>()) {
        let mut img = GrayImage::new(w, h, 0);
        let mut state = seed;
        for y in 0..h {
            for x in 0..w {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                img.set(x, y, (state >> 32) as u8).unwrap();
            }
        }
        let mut buf = Vec::new();
        img.write_pgm(&mut buf).unwrap();
        let back = GrayImage::read_pgm(&buf[..]).unwrap();
        prop_assert_eq!(img, back);
    }

    /// Voltage thresholding and spin conversion are mutually consistent.
    #[test]
    fn assignment_voltage_spin_consistency(voltages in prop::collection::vec(-1.0f64..1.0, 1..20)) {
        let a = Assignment::from_voltages(&voltages);
        let spins = a.to_spins();
        for (v, s) in voltages.iter().zip(&spins) {
            prop_assert_eq!(*v > 0.0, *s == 1);
        }
    }

    /// Matrix solve satisfies A·x = b for diagonally dominant systems.
    #[test]
    fn linear_solve_residual(vals in prop::collection::vec(-1.0f64..1.0, 9), b in prop::collection::vec(-5.0f64..5.0, 3)) {
        let mut m = numerics::linalg::Matrix::zeros(3, 3);
        for r in 0..3 {
            for c in 0..3 {
                m[(r, c)] = vals[r * 3 + c];
            }
            m[(r, r)] += 4.0;
        }
        let x = m.solve(&b).unwrap();
        let back = m.matvec(&x).unwrap();
        for (bi, bb) in b.iter().zip(&back) {
            prop_assert!((bi - bb).abs() < 1e-8);
        }
    }
}
