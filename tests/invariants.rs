//! Randomized tests on the workspace's core invariants.
//!
//! Formerly written with `proptest`; rewritten on the in-repo
//! `numerics::rng` so the tier-1 suite builds with no crates.io
//! dependencies. Each test draws many random cases from a fixed seed, so
//! failures reproduce deterministically.

use mem::assignment::Assignment;
use mem::cnf::{Clause, Formula, Literal};
use numerics::rng::{rng_from_seed, Rng, StdRng};
use numerics::Complex;
use quantum::circuit::Circuit;
use quantum::gate::Gate;
use quantum::state::StateVector;
use vision::image::GrayImage;

const CASES: usize = 64;

/// Draws a random gate over `n` qubits.
fn random_gate(rng: &mut StdRng, n: usize) -> Gate {
    fn q2(rng: &mut StdRng, n: usize) -> (usize, usize) {
        let a = rng.gen_range(0..n);
        loop {
            let b = rng.gen_range(0..n);
            if b != a {
                return (a, b);
            }
        }
    }
    let kind = rng.gen_range(0..10);
    let q = rng.gen_range(0..n);
    match kind {
        0 => Gate::H(q),
        1 => Gate::X(q),
        2 => Gate::S(q),
        3 => Gate::T(q),
        4 => Gate::Rx(q, rng.gen_range(-3.0..3.0)),
        5 => Gate::Ry(q, rng.gen_range(-3.0..3.0)),
        6 => Gate::Phase(q, rng.gen_range(-3.0..3.0)),
        7 => {
            let (a, b) = q2(rng, n);
            Gate::CX(a, b)
        }
        8 => {
            let (a, b) = q2(rng, n);
            Gate::CZ(a, b)
        }
        _ => {
            let (a, b) = q2(rng, n);
            Gate::Swap(a, b)
        }
    }
}

/// Unitary evolution preserves the state norm.
#[test]
fn random_circuits_preserve_norm() {
    let mut rng = rng_from_seed(0xA11CE);
    for _ in 0..CASES {
        let n_gates = rng.gen_range(1..40);
        let mut state = StateVector::zero(4);
        for _ in 0..n_gates {
            random_gate(&mut rng, 4).apply(&mut state).unwrap();
        }
        assert!((state.norm() - 1.0).abs() < 1e-9);
    }
}

/// A circuit followed by its inverse is the identity.
#[test]
fn circuit_inverse_roundtrip() {
    let mut rng = rng_from_seed(0xB0B);
    for _ in 0..CASES {
        let n_gates = rng.gen_range(1..25);
        let mut c = Circuit::new(3).unwrap();
        for _ in 0..n_gates {
            c.push(random_gate(&mut rng, 3)).unwrap();
        }
        let forward = c.run(StateVector::zero(3)).unwrap();
        let back = c.inverse().run(forward).unwrap();
        assert!((back.probability(0).unwrap() - 1.0).abs() < 1e-8);
    }
}

/// FFT then inverse FFT is the identity.
#[test]
fn fft_roundtrip() {
    let mut rng = rng_from_seed(0xFF7);
    for _ in 0..CASES {
        let len = rng.gen_range(1..5);
        let mut data: Vec<Complex> = (0..len)
            .map(|_| Complex::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)))
            .collect();
        let n = data.len().next_power_of_two().max(2);
        data.resize(n, Complex::ZERO);
        let original = data.clone();
        numerics::fft::fft_in_place(&mut data).unwrap();
        numerics::fft::ifft_in_place(&mut data).unwrap();
        for (a, b) in data.iter().zip(&original) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }
}

/// `l_k` norms are monotone nonincreasing in `k` (power-mean inequality).
#[test]
fn lk_norm_monotone_in_k() {
    let mut rng = rng_from_seed(0x17);
    for _ in 0..CASES {
        let len = rng.gen_range(1..10);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let v = numerics::linalg::Vector::from_slice(&values);
        let n1 = v.lk_norm(1.0).unwrap();
        let n2 = v.lk_norm(2.0).unwrap();
        let n4 = v.lk_norm(4.0).unwrap();
        assert!(n1 >= n2 - 1e-9);
        assert!(n2 >= n4 - 1e-9);
    }
}

/// DIMACS emit/parse round-trips arbitrary valid formulas.
#[test]
fn dimacs_roundtrip() {
    let mut rng = rng_from_seed(0xD1AC5);
    for _ in 0..CASES {
        let n_clauses = rng.gen_range(1..20);
        let clauses: Vec<Clause> = (0..n_clauses)
            .map(|_| {
                let width = rng.gen_range(1..4);
                let vars = numerics::rng::sample_indices(&mut rng, 12, width);
                Clause::new(
                    vars.iter()
                        .enumerate()
                        .map(|(i, &v)| {
                            if i % 2 == 0 {
                                Literal::positive(v)
                            } else {
                                Literal::negative(v)
                            }
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        let f = Formula::new(12, clauses).unwrap();
        let text = mem::dimacs::emit(&f);
        let parsed = mem::dimacs::parse(&text).unwrap();
        assert_eq!(parsed, f);
    }
}

/// SAT evaluation agrees between count and boolean forms.
#[test]
fn unsat_count_consistent() {
    let mut rng = rng_from_seed(0x5A7);
    let f = mem::generators::random_ksat(12, 3, 3.0, 99).unwrap();
    for _ in 0..CASES {
        let bits: Vec<bool> = (0..12).map(|_| rng.gen()).collect();
        let a = Assignment::from_bools(&bits);
        let count = f.count_unsatisfied(&a);
        assert_eq!(count == 0, f.is_satisfied(&a));
        assert_eq!(count, f.unsatisfied_clauses(&a).len());
    }
}

/// The QUBO → weighted-MaxSAT reduction is exact on random points.
#[test]
fn qubo_maxsat_reduction_exact() {
    let mut rng = rng_from_seed(0x9B0);
    for _ in 0..CASES {
        let mut q = mem::qubo::Qubo::new(5).unwrap();
        for i in 0..5 {
            q.add_linear(i, rng.gen_range(-2.0..2.0)).unwrap();
        }
        for k in 0..4 {
            q.add_quadratic(k, (k + 1) % 5, rng.gen_range(-2.0..2.0))
                .unwrap();
        }
        let probe: Vec<bool> = (0..5).map(|_| rng.gen()).collect();
        let (wf, offset) = q.to_weighted_maxsat().unwrap();
        let direct = q.value(&probe);
        let via = wf.violation_cost(&Assignment::from_bools(&probe)) + offset;
        assert!((direct - via).abs() < 1e-9, "direct {direct} vs via {via}");
    }
}

/// PGM image round-trips through write/read.
#[test]
fn pgm_roundtrip() {
    let mut rng = rng_from_seed(0x969);
    for _ in 0..CASES {
        let w = rng.gen_range(1..12);
        let h = rng.gen_range(1..12);
        let mut img = GrayImage::new(w, h, 0);
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, (rng.next_u64() >> 32) as u8).unwrap();
            }
        }
        let mut buf = Vec::new();
        img.write_pgm(&mut buf).unwrap();
        let back = GrayImage::read_pgm(&buf[..]).unwrap();
        assert_eq!(img, back);
    }
}

/// Voltage thresholding and spin conversion are mutually consistent.
#[test]
fn assignment_voltage_spin_consistency() {
    let mut rng = rng_from_seed(0xB01);
    for _ in 0..CASES {
        let len = rng.gen_range(1..20);
        let voltages: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let a = Assignment::from_voltages(&voltages);
        let spins = a.to_spins();
        for (v, s) in voltages.iter().zip(&spins) {
            assert_eq!(*v > 0.0, *s == 1);
        }
    }
}

/// Matrix solve satisfies A·x = b for diagonally dominant systems.
#[test]
fn linear_solve_residual() {
    let mut rng = rng_from_seed(0x50F);
    for _ in 0..CASES {
        let mut m = numerics::linalg::Matrix::zeros(3, 3);
        for r in 0..3 {
            for c in 0..3 {
                m[(r, c)] = rng.gen_range(-1.0..1.0);
            }
            m[(r, r)] += 4.0;
        }
        let b: Vec<f64> = (0..3).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let x = m.solve(&b).unwrap();
        let back = m.matvec(&x).unwrap();
        for (bi, bb) in b.iter().zip(&back) {
            assert!((bi - bb).abs() < 1e-8);
        }
    }
}
