//! Integration: the §IV memcomputing pipeline — generators → DMM vs
//! classical solvers → trajectory analysis → spin glass → RBM training.

use mem::analysis::{boundedness, cluster_flip_stats, recurrence_check};
use mem::assignment::Assignment;
use mem::dmm::{DmmParams, DmmSolver};
use mem::dpll::Dpll;
use mem::generators::{frustrated_loop_ising, planted_3sat, random_ksat};
use mem::ising::{AnnealSchedule, SimulatedAnnealing};
use mem::maxsat::{MaxSatDmm, MaxSatDmmParams, WeightedFormula};
use mem::walksat::{WalkSat, WalkSatParams};

#[test]
fn all_three_solvers_agree_on_planted_instances() {
    for seed in 0..3u64 {
        let inst = planted_3sat(25, 4.0, seed).unwrap();
        let dmm = DmmSolver::new(DmmParams::default())
            .solve(&inst.formula, seed)
            .unwrap();
        let ws = WalkSat::new(WalkSatParams::default()).solve(&inst.formula, seed);
        let dp = Dpll::new(10_000_000).solve(&inst.formula);
        for (name, solution) in [
            ("dmm", dmm.solution),
            ("walksat", ws.solution),
            ("dpll", dp.solution),
        ] {
            let sol = solution.unwrap_or_else(|| panic!("{name} failed on seed {seed}"));
            assert!(inst.formula.is_satisfied(&sol), "{name} invalid solution");
        }
    }
}

#[test]
fn dmm_respects_unsat_instances() {
    // DPLL proves UNSAT; the DMM must never claim a solution.
    let f = mem::dimacs::parse("p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n").unwrap();
    assert!(Dpll::new(1000).solve(&f).proved_unsat());
    let params = DmmParams {
        max_steps: 3_000,
        ..DmmParams::default()
    };
    let outcome = DmmSolver::new(params).solve(&f, 1).unwrap();
    assert!(outcome.solution.is_none());
    assert!(outcome.best_unsat >= 1);
}

#[test]
fn dmm_noise_robustness_plateau() {
    // The ref.-[59] experiment shape: moderate ODE noise leaves success
    // intact.
    let inst = planted_3sat(20, 4.0, 7).unwrap();
    for sigma in [0.0, 0.02, 0.08] {
        let params = DmmParams {
            noise_sigma: sigma,
            ..DmmParams::default()
        };
        let outcome = DmmSolver::new(params).solve(&inst.formula, 3).unwrap();
        let sol = outcome
            .solution
            .unwrap_or_else(|| panic!("failed at sigma {sigma}"));
        assert!(inst.formula.is_satisfied(&sol));
    }
}

#[test]
fn dmm_trajectories_bounded_and_acyclic() {
    let inst = planted_3sat(25, 4.2, 11).unwrap();
    let outcome = DmmSolver::new(DmmParams::default())
        .solve(&inst.formula, 9)
        .unwrap();
    assert!(outcome.solution.is_some());
    assert!(boundedness(&outcome).bounded);
    // Refs. [52, 53]: with a solution present, the digital projection makes
    // monotone-ish progress without revisiting configurations.
    let rec = recurrence_check(&outcome.checkpoints);
    assert!(
        !rec.has_cycle(),
        "cycle of length {} detected",
        rec.longest_cycle
    );
}

#[test]
fn dmm_flips_clusters_annealer_flips_spins() {
    // The DLRO contrast of ref. [56]: between checkpoints the DMM flips
    // whole clusters; Metropolis flips one spin per accepted move.
    let inst = planted_3sat(30, 4.2, 13).unwrap();
    let outcome = DmmSolver::new(DmmParams::default())
        .solve(&inst.formula, 2)
        .unwrap();
    let stats = cluster_flip_stats(&outcome.checkpoints);
    assert!(stats.max_size > 1, "DMM never flipped a cluster: {stats:?}");
}

#[test]
fn dmm_reaches_spin_glass_ground_state_via_maxsat() {
    let inst = frustrated_loop_ising(4, 4, 5).unwrap();
    // Reduce the Ising ground-state search to a QUBO and then MaxSAT.
    let mut qubo = mem::qubo::Qubo::new(inst.model.n_spins()).unwrap();
    for &(a, b, j) in inst.model.couplings() {
        // E = −J s_a s_b with s = 2x − 1:
        // −J(2xa−1)(2xb−1) = −4J xa xb + 2J xa + 2J xb − J.
        qubo.add_quadratic(a, b, -4.0 * j).unwrap();
        qubo.add_linear(a, 2.0 * j).unwrap();
        qubo.add_linear(b, 2.0 * j).unwrap();
    }
    let (bits, _) = qubo.minimize_dmm(MaxSatDmmParams::default(), 3).unwrap();
    let energy = inst.model.energy(&Assignment::from_bools(&bits));
    assert!(
        (energy - inst.ground_energy).abs() < 1e-9,
        "dmm energy {energy} vs ground {}",
        inst.ground_energy
    );
}

#[test]
fn annealer_also_finds_small_ground_states() {
    let inst = frustrated_loop_ising(4, 3, 9).unwrap();
    let sa = SimulatedAnnealing::new(AnnealSchedule::default());
    let result = sa.run(&inst.model, 4);
    assert!(
        (result.best_energy - inst.ground_energy).abs() < 1e-9,
        "sa energy {} vs ground {}",
        result.best_energy,
        inst.ground_energy
    );
}

#[test]
fn maxsat_dmm_beats_or_matches_gsat_on_weighted_conflicts() {
    use mem::cnf::{Clause, Literal};
    // A weighted instance with a known optimum: chain of conflicting units.
    let mut clauses = Vec::new();
    for v in 0..6 {
        clauses.push((Clause::new(vec![Literal::positive(v)]).unwrap(), 3.0));
        clauses.push((Clause::new(vec![Literal::negative(v)]).unwrap(), 1.0));
    }
    let wf = WeightedFormula::new(6, clauses).unwrap();
    let dmm = MaxSatDmm::new(MaxSatDmmParams::default())
        .solve(&wf, 1)
        .unwrap();
    // Optimum: all true, cost 6 × 1.0.
    assert!((dmm.best_cost - 6.0).abs() < 1e-9, "cost {}", dmm.best_cost);
}

#[test]
fn boolean_circuit_self_organizes_through_dmm() {
    // The paper's §IV construction, end to end: write the problem as a
    // Boolean circuit, replace each gate by its SOLG (Tseitin clauses),
    // pin the output, and let the dynamics self-organize the inputs.
    use mem::encode::{BoolCircuit, GateKind};
    // out = (in0 XOR in1) AND (in2 OR ¬in3), forced true.
    let mut circuit = BoolCircuit::new(4);
    let x = circuit.add_gate(GateKind::Xor, &[0, 1]).unwrap();
    let n3 = circuit.add_gate(GateKind::Not, &[3]).unwrap();
    let o = circuit.add_gate(GateKind::Or, &[2, n3]).unwrap();
    let out = circuit.add_gate(GateKind::And, &[x, o]).unwrap();
    let formula = circuit.to_cnf(&[(out, true)]).unwrap();

    let outcome = DmmSolver::new(DmmParams::default())
        .solve(&formula, 5)
        .unwrap();
    let solution = outcome.solution.expect("solvable circuit constraint");
    // The self-organized inputs must actually drive the circuit true.
    let inputs: Vec<bool> = (0..4).map(|i| solution.value(i)).collect();
    let wires = circuit.evaluate(&inputs);
    assert!(
        wires[out],
        "DMM inputs {inputs:?} do not satisfy the circuit"
    );
}

#[test]
fn dimacs_roundtrip_through_solver() {
    let f = random_ksat(15, 3, 3.0, 21).unwrap();
    let text = mem::dimacs::emit(&f);
    let parsed = mem::dimacs::parse(&text).unwrap();
    assert_eq!(parsed, f);
    // Solving the reparsed formula gives a valid answer.
    let out = WalkSat::new(WalkSatParams::default()).solve(&parsed, 1);
    if let Some(sol) = out.solution {
        assert!(f.is_satisfied(&sol));
    }
}
