//! End-to-end serving tests over real sockets: handshake, pipelining,
//! deadlines, cancellation, stats, hostile peers, the connection limit,
//! and graceful draining shutdown.

use accel::kernel::{Kernel, KernelResult};
use rebooting_models::workload::{job_seeds, mixed_workload};
use runtime::{DispatchPolicy, RuntimeConfig};
use server::{Client, ClientError, Server, ServerConfig, SubmitOptions};
use std::io::Read;
use std::net::TcpStream;
use std::time::Duration;
use wire::{
    encode_request, read_frame, write_frame, ErrorCode, Request, Response, WireOutcome,
    MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};

fn test_server(workers: usize, max_connections: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_connections,
        runtime: RuntimeConfig {
            workers,
            queue_capacity: 64,
            policy: DispatchPolicy::PreferSpecialized,
            seed: 7,
            default_timeout: None,
            ..RuntimeConfig::default()
        },
    })
    .expect("server must start")
}

/// A kernel the quantum backend takes a human-noticeable time to run —
/// used to keep a worker busy while tests race against it.
fn slow_kernel() -> Kernel {
    Kernel::Factor { n: 77 }
}

#[test]
fn end_to_end_mixed_workload() {
    let server = test_server(2, 4);
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(client.version(), PROTOCOL_VERSION);
    client.ping(0xBEEF).unwrap();

    let workload = mixed_workload(12, 7).unwrap();
    let seeds = job_seeds(12, 7);
    let tickets: Vec<u64> = workload
        .iter()
        .zip(&seeds)
        .map(|(kernel, &seed)| {
            client
                .submit(kernel.clone(), SubmitOptions::with_seed(seed))
                .unwrap()
        })
        .collect();
    // Redeem in reverse order: responses arrive in completion order and
    // the client must demultiplex them by ticket.
    for &ticket in tickets.iter().rev() {
        match client.wait(ticket).unwrap() {
            WireOutcome::Completed { backend, .. } => assert!(!backend.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.submitted, 12);
    assert_eq!(stats.completed, 12);
    assert!(stats.per_backend.len() >= 3, "mixed workload should spread");
    // The Display impl must render over-the-wire snapshots too.
    let rendered = stats.to_string();
    assert!(rendered.contains("12 submitted"));
    drop(client);
    let final_stats = server.shutdown();
    assert_eq!(final_stats.completed, 12);
}

#[test]
fn results_deterministic_across_transport() {
    // The same kernel with the same explicit seed must produce identical
    // bytes whether it travels the wire or not.
    let kernel = Kernel::DnaSimilarity {
        a: "ACGTACGTACGT".into(),
        b: "TTGCACGATCGA".into(),
        k: 2,
    };
    let server = test_server(2, 2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let first = client
        .run(kernel.clone(), SubmitOptions::with_seed(4242))
        .unwrap();
    let second = client
        .run(kernel.clone(), SubmitOptions::with_seed(4242))
        .unwrap();
    let (a, b) = match (&first, &second) {
        (WireOutcome::Completed { result: a, .. }, WireOutcome::Completed { result: b, .. }) => {
            (a, b)
        }
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(a, b);
    assert_eq!(
        wire::encode_kernel_result(a).unwrap(),
        wire::encode_kernel_result(b).unwrap()
    );
    drop(client);
    let _ = server.shutdown();
}

#[test]
fn invalid_kernels_rejected_over_the_wire() {
    let server = test_server(1, 2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let ticket = client
        .submit(Kernel::Factor { n: 3 }, SubmitOptions::default())
        .unwrap();
    match client.wait(ticket) {
        Err(ClientError::Rejected { code, message }) => {
            assert_eq!(code, ErrorCode::InvalidKernel);
            assert!(message.contains("invalid kernel"), "got: {message}");
        }
        other => panic!("unexpected {other:?}"),
    }
    // The connection stays usable after a rejected request.
    match client
        .run(Kernel::Factor { n: 15 }, SubmitOptions::default())
        .unwrap()
    {
        WireOutcome::Completed { result, .. } => match result {
            KernelResult::Factors(p, q) => assert_eq!(p * q, 15),
            other => panic!("unexpected {other:?}"),
        },
        other => panic!("unexpected {other:?}"),
    }
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.invalid, 1);
}

#[test]
fn zero_deadline_times_out_over_the_wire() {
    let server = test_server(1, 2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let options = SubmitOptions {
        timeout_ms: Some(0),
        ..SubmitOptions::default()
    };
    match client
        .run(Kernel::Compare { x: 0.1, y: 0.9 }, options)
        .unwrap()
    {
        WireOutcome::TimedOut => {}
        other => panic!("unexpected {other:?}"),
    }
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.timed_out, 1);
}

#[test]
fn cancellation_races_and_reports_honestly() {
    let server = test_server(1, 2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Occupy the single worker, then queue a victim behind it.
    let busy = client
        .submit(slow_kernel(), SubmitOptions::default())
        .unwrap();
    let victim = client
        .submit(Kernel::Compare { x: 0.2, y: 0.8 }, SubmitOptions::default())
        .unwrap();
    let cancelled = client.cancel(victim).unwrap();
    if cancelled {
        match client.wait(victim).unwrap() {
            WireOutcome::Cancelled => {}
            other => panic!("cancel acknowledged but outcome was {other:?}"),
        }
    } else {
        // The job won the race; it must then have completed normally.
        match client.wait(victim).unwrap() {
            WireOutcome::Completed { .. } => {}
            other => panic!("cancel lost the race but outcome was {other:?}"),
        }
    }
    // Cancelling an unknown ticket is a no-op, not an error.
    assert!(!client.cancel(9_999).unwrap());
    assert!(client.wait(busy).unwrap().is_completed());
    drop(client);
    let _ = server.shutdown();
}

#[test]
fn connection_limit_rejects_gracefully() {
    let server = test_server(1, 1);
    let first = Client::connect(server.local_addr()).unwrap();
    // The accept loop admits connections asynchronously; retry until the
    // limit is visibly taken, then expect a busy rejection.
    let mut rejected = None;
    for _ in 0..200 {
        match Client::connect(server.local_addr()) {
            Err(ClientError::Busy(message)) => {
                rejected = Some(message);
                break;
            }
            Ok(extra) => {
                // Raced ahead of the first connection's registration;
                // drop and retry.
                drop(extra);
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(other) => panic!("unexpected {other}"),
        }
    }
    let message = rejected.expect("the connection limit should reject");
    assert!(message.contains("1-connection limit"), "got: {message}");
    drop(first);
    let _ = server.shutdown();
}

#[test]
fn garbage_bytes_answered_with_error_frame_and_server_survives() {
    let server = test_server(1, 4);
    // A peer that speaks no protocol at all.
    let mut hostile = TcpStream::connect(server.local_addr()).unwrap();
    std::io::Write::write_all(&mut hostile, b"GET / HTTP/1.1\r\n\r\n").unwrap();
    // The server answers with a connection-level Malformed frame (bad
    // magic) and hangs up.
    match read_frame(&mut hostile) {
        Ok(payload) => match wire::decode_response(&payload).unwrap() {
            Response::Error {
                request_id, code, ..
            } => {
                assert_eq!(request_id, 0);
                assert_eq!(code, ErrorCode::Malformed);
            }
            other => panic!("unexpected {other:?}"),
        },
        // A hangup without the courtesy frame is also acceptable if the
        // write raced the close.
        Err(e) => assert!(e.is_disconnect(), "unexpected {e}"),
    }
    let mut rest = Vec::new();
    let _ = hostile.read_to_end(&mut rest);
    drop(hostile);

    // A hostile frame with a huge claimed payload: rejected without the
    // server allocating or crashing.
    let mut hostile = TcpStream::connect(server.local_addr()).unwrap();
    std::io::Write::write_all(&mut hostile, b"RBCM\xFF\xFF\xFF\xFF").unwrap();
    let mut rest = Vec::new();
    let _ = hostile.read_to_end(&mut rest);
    drop(hostile);

    // Well-behaved clients are unaffected.
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ping(1).unwrap();
    assert!(client
        .run(Kernel::Compare { x: 0.4, y: 0.6 }, SubmitOptions::default())
        .unwrap()
        .is_completed());
    drop(client);
    let _ = server.shutdown();
}

#[test]
fn wrong_version_hello_refused() {
    let server = test_server(1, 2);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let hello = encode_request(&Request::Hello {
        min_version: PROTOCOL_VERSION + 1,
        max_version: PROTOCOL_VERSION + 5,
    })
    .unwrap();
    write_frame(&mut stream, &hello).unwrap();
    let payload = read_frame(&mut stream).unwrap();
    match wire::decode_response(&payload).unwrap() {
        Response::Error {
            request_id,
            code,
            message,
        } => {
            assert_eq!(request_id, 0);
            assert_eq!(code, ErrorCode::UnsupportedVersion);
            assert!(message.contains(&MIN_SUPPORTED_VERSION.to_string()));
        }
        other => panic!("unexpected {other:?}"),
    }
    drop(stream);
    let _ = server.shutdown();
}

#[test]
fn submit_before_hello_refused() {
    let server = test_server(1, 2);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let premature = encode_request(&Request::Ping { token: 1 }).unwrap();
    write_frame(&mut stream, &premature).unwrap();
    let payload = read_frame(&mut stream).unwrap();
    match wire::decode_response(&payload).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("unexpected {other:?}"),
    }
    drop(stream);
    let _ = server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_jobs() {
    let server = test_server(1, 2);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    // Pipeline several jobs; the single worker guarantees a backlog.
    let tickets: Vec<u64> = (0..6)
        .map(|i| {
            client
                .submit(
                    if i == 0 {
                        slow_kernel()
                    } else {
                        Kernel::Compare {
                            x: i as f64 / 10.0,
                            y: 0.5,
                        }
                    },
                    SubmitOptions::default(),
                )
                .unwrap()
        })
        .collect();
    // Ping round-trips after the submissions on the same socket, so all
    // six were read by the handler before shutdown begins.
    client.ping(7).unwrap();
    let shutdown = std::thread::spawn(move || server.shutdown());
    // Every in-flight job must still complete and flush its response.
    for ticket in tickets {
        assert!(
            client.wait(ticket).unwrap().is_completed(),
            "draining shutdown must finish in-flight jobs"
        );
    }
    let stats = shutdown.join().unwrap();
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.settled(), 6);
}

#[test]
fn cancel_during_drain_yields_typed_outcome_not_dropped_connection() {
    let server = test_server(1, 2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Occupy the single worker, then queue a victim behind it.
    let busy = client
        .submit(slow_kernel(), SubmitOptions::default())
        .unwrap();
    let victim = client
        .submit(slow_kernel(), SubmitOptions::default())
        .unwrap();
    // Ping round-trips after the submissions, so both jobs were read by
    // the handler before the drain begins.
    client.ping(3).unwrap();
    let shutdown = std::thread::spawn(move || server.shutdown());
    // Cancel the queued victim while the server is draining. Whatever
    // the race decides, the client must receive typed answers on a live
    // connection — never a dropped socket.
    let cancelled = client.cancel(victim).unwrap();
    assert!(client.wait(busy).unwrap().is_completed());
    let victim_outcome = client.wait(victim).unwrap();
    match (&victim_outcome, cancelled) {
        (WireOutcome::Cancelled, true) => {}
        (WireOutcome::Completed { .. }, false) => {}
        (outcome, acked) => panic!("cancel acked={acked} but outcome was {outcome:?}"),
    }
    let stats = shutdown.join().unwrap();
    assert_eq!(stats.settled(), 2);
    assert_eq!(stats.cancelled, u64::from(cancelled));
    assert_eq!(stats.completed, if cancelled { 1 } else { 2 });
}

#[test]
fn v1_client_negotiates_down_and_serves() {
    // A client that only speaks protocol v1 must still get full service
    // from a v2 server: the connection negotiates down and every frame
    // after the ack uses the v1 layout.
    let server = test_server(1, 2);
    let mut client = Client::connect_with_range(server.local_addr(), 1, 1).unwrap();
    assert_eq!(client.version(), 1);
    client.ping(0xA11CE).unwrap();
    match client
        .run(Kernel::Factor { n: 21 }, SubmitOptions::with_seed(3))
        .unwrap()
    {
        WireOutcome::Completed { result, .. } => match result {
            KernelResult::Factors(p, q) => assert_eq!(p * q, 21),
            other => panic!("unexpected {other:?}"),
        },
        other => panic!("unexpected {other:?}"),
    }
    // Stats decode under the v1 row layout (no prediction triple), so
    // the calibration fields sit at their defaults.
    let stats = client.stats().unwrap();
    assert_eq!(stats.completed, 1);
    for t in stats.per_backend.values() {
        assert_eq!(t.predicted_device_seconds, 0.0);
        assert_eq!(t.ewma_correction, 1.0);
    }
    drop(client);
    let _ = server.shutdown();
}

#[test]
fn v2_stats_carry_prediction_fields_over_the_wire() {
    let server = test_server(1, 2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(client.version(), PROTOCOL_VERSION);
    assert!(client
        .run(Kernel::Factor { n: 35 }, SubmitOptions::with_seed(5))
        .unwrap()
        .is_completed());
    let stats = client.stats().unwrap();
    assert!(
        stats.total_predicted_device_seconds() > 0.0,
        "v2 stats must carry the planner's predictions across the wire"
    );
    drop(client);
    let _ = server.shutdown();
}

#[test]
fn policy_override_needs_v2_connection() {
    let server = test_server(1, 2);
    // On a v1 link the client refuses to encode the override ...
    let mut v1 = Client::connect_with_range(server.local_addr(), 1, 1).unwrap();
    let options = SubmitOptions::with_policy(DispatchPolicy::MinPredictedLatency);
    match v1.submit(Kernel::Compare { x: 0.2, y: 0.8 }, options) {
        Err(ClientError::Wire(wire::WireError::Invalid { .. })) => {}
        other => panic!("unexpected {other:?}"),
    }
    // ... and the connection stays healthy for policy-free submissions.
    assert!(v1
        .run(
            Kernel::Compare { x: 0.2, y: 0.8 },
            SubmitOptions::with_seed(1)
        )
        .unwrap()
        .is_completed());
    drop(v1);

    // On a v2 link the same override rides the Submit frame and reroutes
    // the job: Compare normally lands on the oscillator, but the cost
    // model knows the CPU comparison is cheaper than an analog readout
    // window.
    let mut v2 = Client::connect(server.local_addr()).unwrap();
    let options = SubmitOptions::with_seed(1).policy(DispatchPolicy::MinPredictedLatency);
    match v2.run(Kernel::Compare { x: 0.2, y: 0.8 }, options).unwrap() {
        WireOutcome::Completed { backend, .. } => assert_eq!(backend, "cpu"),
        other => panic!("unexpected {other:?}"),
    }
    match v2
        .run(
            Kernel::Compare { x: 0.2, y: 0.8 },
            SubmitOptions::with_seed(1),
        )
        .unwrap()
    {
        WireOutcome::Completed { backend, .. } => assert_eq!(backend, "oscillator"),
        other => panic!("unexpected {other:?}"),
    }
    drop(v2);
    let _ = server.shutdown();
}
