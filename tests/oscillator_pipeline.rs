//! Integration: the §III oscillator-computing pipeline — device model →
//! coupled pair → locking → norms → FAST corner detection → power.

use device::units::{Seconds, Volts};
use osc::locking::LockingSweep;
use osc::norms::{NormRegime, NormSweep, OscillatorDistance};
use osc::pair::{CoupledPair, PairConfig};
use vision::energy::{compare_power, ComparisonSetup};
use vision::fast::{FastDetector, FastParams};
use vision::metrics::{match_against_ground_truth, match_corners};
use vision::osc_fast::{OscFastDetector, OscFastParams};
use vision::synth::benchmark_scene;

fn quick(regime: NormRegime) -> PairConfig {
    let mut cfg = regime.config();
    cfg.sim.duration = Seconds(2e-6);
    cfg
}

#[test]
fn locking_plateau_exists_and_is_finite() {
    let sweep = LockingSweep::new(quick(NormRegime::Shallow));
    let curve = sweep.run(0.62, 0.05, 11).expect("sweep");
    let range = curve.locking_range(0.01).expect("locks at zero detuning");
    assert!(range.0 < 0.0 && range.1 > 0.0, "range {range:?}");
    // And some swept detunings must NOT lock (finite Arnold tongue).
    assert!(curve.locked_fraction(0.01) < 1.0);
}

#[test]
fn norm_exponent_orders_across_regimes() {
    // The Fig. 5 family: the fitted exponent must increase from the shallow
    // to the steep regime.
    let mut exponents = Vec::new();
    for regime in [NormRegime::Shallow, NormRegime::Steep] {
        let sweep = NormSweep::new(quick(regime)).unwrap();
        let curve = sweep.run(0.62, 0.012, 8).unwrap();
        let fit = curve.fit_exponent(0.3, 6.0).unwrap();
        exponents.push(fit.exponent);
    }
    assert!(
        exponents[1] > exponents[0],
        "steep ({}) should exceed shallow ({})",
        exponents[1],
        exponents[0]
    );
}

#[test]
fn oscillator_fast_matches_digital_fast_on_benchmark_scene() {
    let scene = benchmark_scene(48);
    let img = scene.build(3);
    let digital = FastDetector::new(FastParams::default()).detect(&img);
    let distance = OscillatorDistance::calibrate(quick(NormRegime::Shallow), 0.62, 0.02, 7)
        .expect("calibrates");
    let osc_out = OscFastDetector::new(distance, OscFastParams::default()).detect(&img);
    let agreement = match_corners(&digital, &osc_out.corners, 2);
    assert!(
        agreement.f1() > 0.7,
        "agreement {} (digital {}, oscillator {})",
        agreement,
        digital.len(),
        osc_out.corners.len()
    );
    // Both should recover most ground-truth corners.
    let truth = scene.ground_truth_corners();
    let vs_truth = match_against_ground_truth(&truth, &osc_out.corners, 2);
    assert!(vs_truth.recall() > 0.5, "recall {}", vs_truth.recall());
}

#[test]
fn power_comparison_favors_oscillator_block() {
    let img = benchmark_scene(48).build(1);
    let setup = ComparisonSetup {
        calibration_points: 5,
        ..ComparisonSetup::default()
    };
    let cmp = compare_power(&img, &setup).expect("comparison");
    assert!(cmp.ratio() > 1.0, "{cmp}");
    assert!(cmp.agreement_f1 > 0.6, "{cmp}");
    // Same order of magnitude as the paper's numbers (sub-10 mW blocks).
    assert!(cmp.oscillator.0 < 10e-3);
    assert!(cmp.cmos.0 < 100e-3);
}

#[test]
fn distance_primitive_consistent_with_full_simulation() {
    let distance = OscillatorDistance::calibrate(quick(NormRegime::Shallow), 0.62, 0.016, 9)
        .expect("calibrates");
    // Spot-check the calibrated LUT against a fresh full-physics run.
    let lut = distance.distance(0.5, 0.75);
    let exact = distance.distance_exact(0.5, 0.75).expect("simulates");
    assert!(
        (lut - exact).abs() < 0.15,
        "calibration drift: lut {lut} vs exact {exact}"
    );
}

#[test]
fn pair_locks_and_unlocks_across_detuning() {
    let cfg = quick(NormRegime::Shallow);
    let locked = CoupledPair::new(cfg, Volts(0.62), Volts(0.622))
        .unwrap()
        .simulate_default()
        .unwrap();
    assert!(locked.is_locked(0.01).unwrap());
    let unlocked = CoupledPair::new(cfg, Volts(0.58), Volts(0.68))
        .unwrap()
        .simulate_default()
        .unwrap();
    assert!(!unlocked.is_locked(0.005).unwrap());
}
