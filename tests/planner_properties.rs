//! Property tests for the cost-model planner, driven by the workspace's
//! seeded RNG so every run checks the same cases.
//!
//! Invariants under test:
//!
//! * every backend estimate is finite and strictly positive;
//! * per backend, estimates are monotone in the kernel's problem size;
//! * `DeadlineAware` planning never ranks a backend whose *corrected*
//!   estimate exceeds the deadline budget — under arbitrary correction
//!   factors — and fails with `DeadlineUnmeetable` instead of silently
//!   picking a too-slow device.

use accel::accelerator::{Accelerator, CpuBackend};
use accel::backends::{standard_pool, MemBackend, QuantumBackend};
use accel::host::{CorrectionTable, DispatchPolicy, HostRuntime};
use accel::kernel::Kernel;
use accel::AccelError;
use mem::generators::planted_3sat;
use numerics::rng::{rng_from_seed, Rng, StdRng};

const ROUNDS: usize = 200;

fn random_kernel(rng: &mut StdRng) -> Kernel {
    match rng.gen_range(0..5u32) {
        0 => Kernel::Factor {
            n: rng.gen_range(4..100_000u64),
        },
        1 => {
            let n_qubits = rng.gen_range(2..14usize);
            let marked = (0..rng.gen_range(1..4usize))
                .map(|_| rng.gen_range(0..(1usize << n_qubits)))
                .collect();
            Kernel::Search { n_qubits, marked }
        }
        2 => {
            let len_a = rng.gen_range(4..40usize);
            let len_b = rng.gen_range(4..40usize);
            let bases = ['A', 'C', 'G', 'T'];
            let seq = |rng: &mut StdRng, len: usize| -> String {
                (0..len).map(|_| bases[rng.gen_range(0..4usize)]).collect()
            };
            Kernel::DnaSimilarity {
                a: seq(rng, len_a),
                b: seq(rng, len_b),
                k: rng.gen_range(1..4usize),
            }
        }
        3 => {
            let sat = planted_3sat(rng.gen_range(6..16usize), 3.5, rng.gen::<u64>())
                .expect("generator parameters are valid");
            Kernel::SolveSat {
                formula: sat.formula,
            }
        }
        _ => Kernel::Compare {
            x: rng.gen_range(0.0..1.0),
            y: rng.gen_range(0.0..1.0),
        },
    }
}

#[test]
fn estimates_are_finite_and_positive() {
    let mut rng = rng_from_seed(0x11AA_0001);
    let pool = standard_pool(3).expect("pool builds");
    for round in 0..ROUNDS {
        let kernel = random_kernel(&mut rng);
        for backend in &pool {
            if let Some(e) = backend.estimate(&kernel) {
                assert!(
                    e.device_seconds.is_finite() && e.device_seconds > 0.0,
                    "round {round}: {} predicts device_seconds {} for {}",
                    backend.name(),
                    e.device_seconds,
                    kernel.describe()
                );
                assert!(
                    e.energy_joules.is_finite() && e.energy_joules > 0.0,
                    "round {round}: {} predicts energy_joules {} for {}",
                    backend.name(),
                    e.energy_joules,
                    kernel.describe()
                );
            }
        }
    }
}

/// Asserts `device_seconds` does not decrease along a sequence of
/// kernels ordered by problem size.
fn assert_monotone(backend: &dyn Accelerator, kernels: &[Kernel], label: &str) {
    let mut last = 0.0f64;
    for kernel in kernels {
        let e = backend
            .estimate(kernel)
            .unwrap_or_else(|| panic!("{label}: no estimate for {}", kernel.describe()));
        assert!(
            e.device_seconds >= last,
            "{label}: estimate shrank from {last:.3e} to {:.3e} at {}",
            e.device_seconds,
            kernel.describe()
        );
        last = e.device_seconds;
    }
}

#[test]
fn estimates_are_monotone_in_problem_size() {
    let mut rng = rng_from_seed(0x11AA_0002);
    let cpu = CpuBackend::new(1);
    let quantum = QuantumBackend::new(2);
    let mem = MemBackend::new(3);

    // Factoring: more bits, more work — on both the classical trial
    // divider and the modelled Shor circuit.
    let factors: Vec<Kernel> = [15u64, 77, 1_763, 25_117, 1_299_709]
        .iter()
        .map(|&n| Kernel::Factor { n })
        .collect();
    assert_monotone(&cpu, &factors, "cpu factor");
    assert_monotone(&quantum, &factors, "quantum factor");

    // Search: wider registers, deeper Grover circuits.
    let searches: Vec<Kernel> = (2..12usize)
        .map(|n_qubits| Kernel::Search {
            n_qubits,
            marked: vec![1],
        })
        .collect();
    assert_monotone(&quantum, &searches, "quantum search");
    assert_monotone(&cpu, &searches, "cpu search");

    // DNA similarity: longer sequences cost the CPU more.
    let bases = ['A', 'C', 'G', 'T'];
    let dnas: Vec<Kernel> = (1..8usize)
        .map(|scale| {
            let len = scale * 10;
            let seq: String = (0..len).map(|_| bases[rng.gen_range(0..4usize)]).collect();
            Kernel::DnaSimilarity {
                a: seq.clone(),
                b: seq,
                k: 2,
            }
        })
        .collect();
    assert_monotone(&cpu, &dnas, "cpu dna");

    // SAT: more variables (at fixed clause ratio) cost the memcomputing
    // solver more predicted integration steps.
    let sats: Vec<Kernel> = (0..5usize)
        .map(|scale| {
            let sat = planted_3sat(8 + scale * 6, 3.5, 9).expect("valid generator");
            Kernel::SolveSat {
                formula: sat.formula,
            }
        })
        .collect();
    assert_monotone(&mem, &sats, "mem sat");
    assert_monotone(&cpu, &sats, "cpu sat");
}

/// A host over the standard pool with frozen correction factors.
fn host_with(corrections: CorrectionTable) -> HostRuntime {
    let mut host = HostRuntime::with_corrections(DispatchPolicy::PreferSpecialized, corrections);
    for backend in standard_pool(7).expect("pool builds") {
        host.register(backend);
    }
    host
}

#[test]
fn deadline_aware_never_plans_past_the_budget() {
    let mut rng = rng_from_seed(0x11AA_0003);
    let backends = ["quantum", "oscillator", "memcomputing", "cpu"];
    for round in 0..ROUNDS {
        // Random correction factors spanning six orders of magnitude:
        // the invariant must hold however miscalibrated the models are.
        let mut corrections = CorrectionTable::new();
        for name in backends {
            corrections.set(name, 10f64.powf(rng.gen_range(-3.0..3.0)));
        }
        let host = host_with(corrections);
        let kernel = random_kernel(&mut rng);
        // Budgets from 1 femtosecond (unmeetable) to 10 kiloseconds
        // (everything fits).
        let budget = 10f64.powf(rng.gen_range(-15.0..4.0));
        match host.plan(&kernel, Some(DispatchPolicy::DeadlineAware), Some(budget)) {
            Ok(plan) => {
                assert!(!plan.ranked.is_empty(), "round {round}: empty plan");
                for (i, estimate) in &plan.ranked {
                    let e = estimate.unwrap_or_else(|| {
                        panic!("round {round}: backend {i} ranked without an estimate")
                    });
                    assert!(
                        e.device_seconds <= budget,
                        "round {round}: backend {i} predicted {:.3e}s over budget {budget:.3e}s \
                         for {}",
                        e.device_seconds,
                        kernel.describe()
                    );
                }
            }
            Err(AccelError::DeadlineUnmeetable {
                deadline_seconds,
                best_seconds,
                ..
            }) => {
                assert_eq!(deadline_seconds, budget, "round {round}");
                assert!(
                    best_seconds > budget,
                    "round {round}: rejected although the best estimate {best_seconds:.3e}s \
                     fits {budget:.3e}s"
                );
            }
            Err(other) => panic!("round {round}: unexpected {other}"),
        }
    }
}

#[test]
fn deadline_aware_with_no_deadline_matches_min_latency() {
    let mut rng = rng_from_seed(0x11AA_0004);
    let host = host_with(CorrectionTable::new());
    for round in 0..64 {
        let kernel = random_kernel(&mut rng);
        let unconstrained = host
            .plan(&kernel, Some(DispatchPolicy::DeadlineAware), None)
            .expect("plannable");
        let min_latency = host
            .plan(&kernel, Some(DispatchPolicy::MinPredictedLatency), None)
            .expect("plannable");
        assert_eq!(
            unconstrained.ranked,
            min_latency.ranked,
            "round {round}: without a deadline, DeadlineAware must rank like \
             MinPredictedLatency for {}",
            kernel.describe()
        );
    }
}
