//! Integration: the full Fig. 2 quantum-accelerator pipeline — assembly →
//! mapping/routing → micro-architecture execution → results — plus Shor and
//! noise behaviour end to end.

use numerics::rng::rng_from_seed;
use quantum::circuit::Circuit;
use quantum::isa::{assemble, Program};
use quantum::mapping::{check_routed, route, CouplingGraph, RoutingStrategy};
use quantum::microarch::{Microarchitecture, TimingModel};
use quantum::noise::{average_fidelity, NoiseModel};
use quantum::state::StateVector;

#[test]
fn assembly_to_execution_pipeline() {
    let source = "\
qubits 3
h q0
cnot q0, q1
cnot q1, q2
measure_all
";
    let program = assemble(source).expect("assembles");
    let arch = Microarchitecture::new(TimingModel::default());
    let mut rng = rng_from_seed(1);
    let counts = arch.sample(&program, 300, &mut rng).expect("samples");
    // GHZ: only |000> and |111>.
    for (outcome, count) in counts {
        assert!(outcome == 0 || outcome == 7, "outcome {outcome:03b}");
        assert!(count > 80);
    }
}

#[test]
fn mapped_and_routed_circuit_preserves_ghz_statistics() {
    // Logical GHZ needing routing on a line.
    let mut c = Circuit::new(4).unwrap();
    c.h(0)
        .unwrap()
        .cx(0, 3)
        .unwrap()
        .cx(3, 1)
        .unwrap()
        .cx(1, 2)
        .unwrap();
    let graph = CouplingGraph::line(4);
    let routed = route(&c, &graph, RoutingStrategy::Lookahead { window: 4 }).unwrap();
    check_routed(&routed.circuit, &graph).unwrap();

    let logical = c.run(StateVector::zero(4)).unwrap();
    let physical = routed.circuit.run(StateVector::zero(4)).unwrap();
    for basis in 0..16usize {
        let mut phys_basis = 0usize;
        for (l, &p) in routed.final_layout.iter().take(4).enumerate() {
            if basis >> l & 1 == 1 {
                phys_basis |= 1 << p;
            }
        }
        let pl = logical.probability(basis).unwrap();
        let pp = physical.probability(phys_basis).unwrap();
        assert!((pl - pp).abs() < 1e-10, "basis {basis:04b}");
    }
}

#[test]
fn routed_program_executes_on_microarchitecture() {
    let mut c = Circuit::new(3).unwrap();
    c.h(0).unwrap().cx(0, 2).unwrap();
    let graph = CouplingGraph::line(3);
    let routed = route(&c, &graph, RoutingStrategy::Greedy).unwrap();
    let program = Program::from_circuit(&routed.circuit, true);
    let arch = Microarchitecture::new(TimingModel::default());
    let mut rng = rng_from_seed(2);
    let report = arch.execute(&program, &mut rng).unwrap();
    assert!(report.measured.is_some());
    assert!(report.duration_ns > 0.0);
    // Routing cost shows up as extra 2-qubit gates.
    assert!(report.class_counts.1 > routed.swap_count);
}

#[test]
fn shor_factors_semiprimes_end_to_end() {
    let mut rng = rng_from_seed(3);
    for n in [15u64, 21] {
        let outcome = quantum::shor::factor(n, &mut rng, 40).expect("factors");
        let (p, q) = outcome.factors;
        assert_eq!(p * q, n);
        assert!(p > 1 && q > 1);
    }
}

#[test]
fn noise_degrades_then_destroys_ghz_fidelity() {
    let mut c = Circuit::new(4).unwrap();
    c.h(0).unwrap();
    for q in 1..4 {
        c.cx(q - 1, q).unwrap();
    }
    let mut rng = rng_from_seed(4);
    let clean = average_fidelity(&c, &NoiseModel::noiseless(), 20, &mut rng).unwrap();
    let light = average_fidelity(&c, &NoiseModel::depolarizing(0.002), 60, &mut rng).unwrap();
    let heavy = average_fidelity(&c, &NoiseModel::depolarizing(0.08), 60, &mut rng).unwrap();
    assert!((clean - 1.0).abs() < 1e-10);
    assert!(light > heavy, "light {light} vs heavy {heavy}");
    assert!(light > 0.85, "light-noise fidelity {light}");
}

#[test]
fn grover_beats_classical_scan_in_oracle_calls() {
    let mut rng = rng_from_seed(5);
    let n_qubits = 8;
    let marked = vec![200usize];
    let run = quantum::grover::search(n_qubits, &marked, &mut rng).unwrap();
    assert!(run.hit);
    let classical = quantum::grover::classical_expected_probes(n_qubits, 1);
    assert!(
        (run.iterations as f64) < classical / 4.0,
        "quantum {} vs classical {classical}",
        run.iterations
    );
}
