//! Integration tests for the concurrent serving engine: backpressure,
//! queue timeouts, cancellation racing completion, and end-to-end mixed
//! workloads on the real heterogeneous pool.
//!
//! The concurrency-control paths are exercised with a deliberately slow
//! backend injected through `Runtime::with_backend_factory`, so the tests
//! control exactly how long workers stay busy.

use accel::accelerator::Accelerator;
use accel::kernel::{CostReport, Kernel, KernelExecution, KernelResult};
use accel::AccelError;
use runtime::{DispatchPolicy, JobOptions, JobOutcome, Runtime, RuntimeConfig, SubmitError};
use std::time::{Duration, Instant};

/// A backend that sleeps for a fixed wall time on every kernel.
struct SlowBackend {
    delay: Duration,
}

impl Accelerator for SlowBackend {
    fn name(&self) -> &str {
        "slow"
    }

    fn supports(&self, _kernel: &Kernel) -> bool {
        true
    }

    fn execute(&mut self, _kernel: &Kernel) -> Result<KernelExecution, AccelError> {
        std::thread::sleep(self.delay);
        Ok(KernelExecution {
            result: KernelResult::Distance(0.0),
            cost: CostReport {
                device_seconds: self.delay.as_secs_f64(),
                operations: 1,
            },
        })
    }
}

fn slow_runtime(workers: usize, queue_capacity: usize, delay: Duration) -> Runtime {
    let config = RuntimeConfig {
        workers,
        queue_capacity,
        policy: DispatchPolicy::PreferSpecialized,
        seed: 1,
        default_timeout: None,
        ..RuntimeConfig::default()
    };
    Runtime::with_backend_factory(config, move |_seed| {
        Ok(vec![Box::new(SlowBackend { delay }) as Box<dyn Accelerator>])
    })
    .expect("runtime should start")
}

fn probe() -> Kernel {
    Kernel::Compare { x: 0.0, y: 1.0 }
}

/// A full queue rejects non-blocking submissions and counts them.
#[test]
fn backpressure_try_submit_rejects_when_full() {
    let rt = slow_runtime(1, 2, Duration::from_millis(200));
    // First job occupies the worker; the next two fill the queue. Keep
    // submitting until the queue is actually full (the worker may not have
    // popped the first job yet, so the exact fill point can vary by one).
    let mut accepted = Vec::new();
    let rejected;
    loop {
        match rt.try_submit(probe()) {
            Ok(h) => accepted.push(h),
            Err(e) => {
                rejected = e;
                break;
            }
        }
        assert!(accepted.len() <= 4, "queue of 2 accepted too many jobs");
    }
    assert_eq!(rejected, SubmitError::QueueFull);
    let stats = rt.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.submitted, accepted.len() as u64);
    // The accepted jobs all drain and complete.
    for h in &accepted {
        assert!(h.wait().is_completed());
    }
    let stats = rt.shutdown();
    assert_eq!(stats.completed, accepted.len() as u64);
}

/// A blocking submit stalls on a full queue instead of rejecting, then
/// proceeds once the worker frees a slot — the backpressure contract.
#[test]
fn backpressure_submit_blocks_until_space() {
    let rt = slow_runtime(1, 1, Duration::from_millis(150));
    let first = rt.submit(probe()).unwrap();
    // Let the worker pick `first` up so it is mid-execution, then fill the
    // single queue slot.
    std::thread::sleep(Duration::from_millis(30));
    while rt.try_submit(probe()).is_ok() {}
    let started = Instant::now();
    let blocked = rt.submit(probe()).unwrap();
    let waited = started.elapsed();
    assert!(
        waited >= Duration::from_millis(50),
        "blocking submit returned after {waited:?}; expected to wait for a slot"
    );
    assert!(first.wait().is_completed());
    assert!(blocked.wait().is_completed());
    drop(rt);
}

/// Jobs whose queue deadline passes before a worker frees up time out.
#[test]
fn queued_jobs_time_out_past_deadline() {
    let rt = slow_runtime(1, 8, Duration::from_millis(200));
    // Occupy the worker, then queue a job that can only wait 10 ms.
    let busy = rt.submit(probe()).unwrap();
    let hurried = rt
        .submit_with(probe(), JobOptions::with_timeout(Duration::from_millis(10)))
        .unwrap();
    let patient = rt
        .submit_with(probe(), JobOptions::with_timeout(Duration::from_secs(60)))
        .unwrap();
    assert_eq!(hurried.wait(), JobOutcome::TimedOut);
    assert!(busy.wait().is_completed());
    assert!(patient.wait().is_completed());
    let stats = rt.shutdown();
    assert_eq!(stats.timed_out, 1);
    assert_eq!(stats.completed, 2);
}

/// Cancelling a queued job settles it as `Cancelled` and the worker skips
/// its execution.
#[test]
fn cancel_queued_job_before_pickup() {
    let rt = slow_runtime(1, 8, Duration::from_millis(150));
    let busy = rt.submit(probe()).unwrap();
    let doomed = rt.submit(probe()).unwrap();
    assert!(doomed.cancel(), "cancel should win while the job is queued");
    assert_eq!(doomed.wait(), JobOutcome::Cancelled);
    assert!(busy.wait().is_completed());
    let stats = rt.shutdown();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 1);
}

/// Cancellation racing completion settles exactly one way, and both sides
/// observe the same agreed outcome.
#[test]
fn cancel_races_completion_consistently() {
    for trial in 0..20u64 {
        let rt = slow_runtime(1, 4, Duration::from_millis(2));
        let h = rt.submit(probe()).unwrap();
        // Jitter the cancel point across trials to land on both sides of
        // the completion boundary.
        std::thread::sleep(Duration::from_micros(trial * 300));
        let cancel_won = h.cancel();
        let outcome = h.wait();
        if cancel_won {
            assert_eq!(outcome, JobOutcome::Cancelled, "trial {trial}");
        } else {
            assert!(
                outcome.is_completed(),
                "trial {trial}: cancel lost but outcome is {outcome:?}"
            );
        }
        let stats = rt.shutdown();
        assert_eq!(stats.cancelled + stats.completed, 1, "trial {trial}");
        assert_eq!(
            u64::from(cancel_won),
            stats.cancelled,
            "trial {trial}: stats must agree with the race winner"
        );
    }
}

/// A cancelled handle reports `false` from a second cancel call.
#[test]
fn cancel_is_idempotent() {
    let rt = slow_runtime(1, 4, Duration::from_millis(100));
    let _busy = rt.submit(probe()).unwrap();
    let h = rt.submit(probe()).unwrap();
    assert!(h.cancel());
    assert!(!h.cancel());
    assert_eq!(h.try_result(), Some(JobOutcome::Cancelled));
    drop(rt);
}

/// `wait_timeout` returns `None` while a job is still queued, without
/// consuming the result.
#[test]
fn wait_timeout_leaves_pending_job_intact() {
    let rt = slow_runtime(1, 4, Duration::from_millis(120));
    let _busy = rt.submit(probe()).unwrap();
    let h = rt.submit(probe()).unwrap();
    assert_eq!(h.wait_timeout(Duration::from_millis(5)), None);
    assert!(h.wait().is_completed());
    drop(rt);
}

/// The real heterogeneous pool serves a mixed workload concurrently and
/// routes each kernel class to its specialized backend.
#[test]
fn mixed_workload_routes_to_specialized_backends() {
    let rt = Runtime::start(RuntimeConfig {
        workers: 2,
        queue_capacity: 16,
        policy: DispatchPolicy::PreferSpecialized,
        seed: 9,
        default_timeout: None,
        ..RuntimeConfig::default()
    })
    .expect("standard pool should start");
    let sat = mem::generators::planted_3sat(10, 3.5, 11).unwrap();
    let jobs = vec![
        (Kernel::Factor { n: 15 }, "quantum"),
        (Kernel::Compare { x: 0.2, y: 0.7 }, "oscillator"),
        (
            Kernel::SolveSat {
                formula: sat.formula,
            },
            "memcomputing",
        ),
    ];
    for (kernel, expected_backend) in jobs {
        let h = rt.submit(kernel).unwrap();
        match h.wait() {
            JobOutcome::Completed { backend, .. } => assert_eq!(backend, expected_backend),
            other => panic!("unexpected {other:?}"),
        }
    }
    let stats = rt.shutdown();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.per_backend.len(), 3);
    assert!(stats
        .per_backend
        .values()
        .all(|t| t.jobs == 1 && t.busy_seconds > 0.0));
}
