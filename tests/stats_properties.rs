//! Seeded property tests for the statistics layer: histogram algebra and
//! calibration-table robustness.
//!
//! All randomness flows from `numerics::rng` with fixed seeds, so every
//! "property" here is a deterministic test — failures reproduce exactly.

use accel::host::CorrectionTable;
use numerics::rng::{rng_from_seed, Rng};
use runtime::stats::{LatencyHistogram, LATENCY_BOUNDS_US, LATENCY_BUCKETS};
use runtime::{BackendThroughput, RuntimeStats};
use std::time::Duration;

fn random_histogram(rng: &mut impl Rng) -> LatencyHistogram {
    let mut counts = [0u64; LATENCY_BUCKETS];
    for c in &mut counts {
        // Small values: conservation checks must not wrap u64.
        *c = rng.gen_range(0..1_000u64);
    }
    LatencyHistogram::from_counts(counts)
}

#[test]
fn histogram_merge_is_commutative() {
    let mut rng = rng_from_seed(0xA1);
    for _ in 0..200 {
        let a = random_histogram(&mut rng);
        let b = random_histogram(&mut rng);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
    }
}

#[test]
fn histogram_merge_is_associative() {
    let mut rng = rng_from_seed(0xA2);
    for _ in 0..200 {
        let a = random_histogram(&mut rng);
        let b = random_histogram(&mut rng);
        let c = random_histogram(&mut rng);
        let mut left = a; // (a + b) + c
        left.merge(&b);
        left.merge(&c);
        let mut bc = b; // a + (b + c)
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);
    }
}

#[test]
fn histogram_merge_conserves_counts() {
    let mut rng = rng_from_seed(0xA3);
    for _ in 0..200 {
        let a = random_histogram(&mut rng);
        let b = random_histogram(&mut rng);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.total(), a.total() + b.total());
        for i in 0..LATENCY_BUCKETS {
            assert_eq!(merged.counts()[i], a.counts()[i] + b.counts()[i]);
        }
        // The empty histogram is the identity element.
        let mut with_empty = a;
        with_empty.merge(&LatencyHistogram::new());
        assert_eq!(with_empty, a);
    }
}

#[test]
fn histogram_counts_round_trip_through_from_counts() {
    let mut rng = rng_from_seed(0xA4);
    for _ in 0..100 {
        let h = random_histogram(&mut rng);
        assert_eq!(LatencyHistogram::from_counts(*h.counts()), h);
    }
}

#[test]
fn histogram_record_never_panics_and_buckets_monotonically() {
    // Extremes first: zero, the bucket bounds themselves (inclusive),
    // one past each bound, and durations far beyond the last bucket.
    let mut h = LatencyHistogram::new();
    let mut expected_total = 0u64;
    let mut probes: Vec<Duration> = vec![
        Duration::ZERO,
        Duration::from_nanos(1),
        Duration::from_secs(u64::MAX / 2_000_000_000),
        Duration::MAX,
    ];
    for &bound in &LATENCY_BOUNDS_US {
        probes.push(Duration::from_micros(bound));
        probes.push(Duration::from_micros(bound + 1));
    }
    let mut rng = rng_from_seed(0xA5);
    for _ in 0..500 {
        probes.push(Duration::from_micros(rng.gen_range(0..100_000_000u64)));
    }
    for latency in probes {
        h.record(latency);
        expected_total += 1;
        assert_eq!(h.total(), expected_total, "each record adds exactly one");
    }
    // Longer latency never lands in a lower bucket.
    let bucket_of = |d: Duration| {
        let mut probe = LatencyHistogram::new();
        probe.record(d);
        probe.counts().iter().position(|&c| c == 1).unwrap()
    };
    let mut last = 0usize;
    for us in [0u64, 5, 10, 11, 99, 100, 5_000, 1_000_000, 10_000_001] {
        let bucket = bucket_of(Duration::from_micros(us));
        assert!(bucket >= last, "{us}µs bucketed below a faster latency");
        last = bucket;
    }
    assert_eq!(bucket_of(Duration::MAX), LATENCY_BUCKETS - 1);
}

/// Garbage and edge-case EWMA ratios a hostile or broken peer could
/// report in a stats row.
fn hostile_ratios(rng: &mut impl Rng) -> Vec<f64> {
    let mut ratios = vec![
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        0.0,
        -0.0,
        -1.0,
        f64::MIN_POSITIVE,
        f64::MAX,
        1e-300,
        1e300,
    ];
    for _ in 0..50 {
        ratios.push((rng.next_f64() - 0.5) * 1e6);
    }
    ratios
}

#[test]
fn calibrated_corrections_stay_finite_and_positive_under_arbitrary_ratios() {
    let mut rng = rng_from_seed(0xB1);
    let backends = ["cpu", "quantum", "oscillator", "memcomputing"];
    for trial in 0..100 {
        // A base table with random (valid) factors for some backends.
        let mut base = CorrectionTable::new();
        for name in &backends {
            if rng.gen_bool(0.7) {
                base.set(name, 0.01 + rng.next_f64() * 10.0);
            }
        }
        // Stats rows carrying arbitrary — possibly garbage — ratios.
        let hostile = hostile_ratios(&mut rng);
        let mut stats = RuntimeStats::default();
        for name in &backends {
            stats.per_backend.insert(
                (*name).into(),
                BackendThroughput {
                    jobs: rng.gen_range(0..3u64),
                    ewma_correction: hostile[rng.gen_range(0..hostile.len())],
                    ..BackendThroughput::default()
                },
            );
        }
        let calibrated = stats.calibrated(&base);
        for name in &backends {
            let factor = calibrated.factor(name);
            assert!(
                factor.is_finite() && factor > 0.0,
                "trial {trial}: factor for {name} must stay usable, got {factor}"
            );
            // A garbage ratio must leave the base factor untouched rather
            // than poisoning it.
            let t = &stats.per_backend[*name];
            let proposed = base.factor(name) * t.ewma_correction;
            if t.jobs == 0 || !proposed.is_finite() || proposed <= 0.0 {
                assert_eq!(
                    factor,
                    base.factor(name),
                    "trial {trial}: {name} must keep its base factor"
                );
            }
        }
    }
}

#[test]
fn calibrated_composes_with_itself_without_drifting_to_nonsense() {
    // Repeatedly folding the same (valid) stats into the table is the
    // steady-state serving loop; factors must stay positive and finite
    // for any number of rounds.
    let mut stats = RuntimeStats::default();
    stats.per_backend.insert(
        "cpu".into(),
        BackendThroughput {
            jobs: 10,
            ewma_correction: 1.5,
            ..BackendThroughput::default()
        },
    );
    let mut table = CorrectionTable::new();
    for round in 0..200 {
        table = stats.calibrated(&table);
        let factor = table.factor("cpu");
        assert!(
            factor.is_finite() && factor > 0.0,
            "round {round}: factor degenerated to {factor}"
        );
    }
}
